"""``python -m repro.analysis`` — run simlint from the command line."""

import sys

from .runner import main

if __name__ == "__main__":
    sys.exit(main())
