"""API002 — pipeline paradigm conformance (dataflow tier).

ROADMAP item 4 turns fetch paradigms into plugins; PAPERS.md already
queues two (VIFR, HLPM fetch).  A new pipeline class that forgets part
of the hook/gauge surface works fine at obs_level 0 and then crashes
(or silently reports nothing) the first time someone attaches an
observer — a harness audit today, a lint-checked contract here.

Checks, per class named ``*Pipeline`` or transitively inheriting one:

* the full hook surface exists (own or inherited in-project):
  ``attach_verifier``, ``attach_observer``, ``obs_gauges``, ``run``,
  ``_mode_name``;
* an ``obs_gauges`` override extends ``super().obs_gauges()`` rather
  than replacing it (dropping the base gauges breaks every dashboard);
* ``_mode_name`` returns a string literal, and when the harness mode
  registry (a module-level ``MODES`` tuple) is visible, the literal is
  registered in it.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from .core import Finding, ProjectRule
from .callgraph import ClassInfo, ProjectContext

__all__ = ["ParadigmConformanceRule"]

_REQUIRED_METHODS = ("attach_verifier", "attach_observer", "obs_gauges",
                     "run", "_mode_name")


class ParadigmConformanceRule(ProjectRule):
    id = "API002"
    name = "pipeline paradigm conformance"
    rationale = (
        "Every pipeline class must implement the full hook/gauge "
        "surface (attach_verifier, attach_observer, obs_gauges, run, "
        "_mode_name) and keep obs_gauges additive over its base, so "
        "adding a fetch paradigm is a lint-checked contract instead "
        "of a harness audit.")

    def check_project(self,
                      project: ProjectContext) -> Iterator[Finding]:
        for _name, infos in sorted(project.classes.items()):
            for cls in infos:
                if self._is_pipeline(project, cls):
                    yield from self._check_class(project, cls)

    # ------------------------------------------------------------------
    def _is_pipeline(self, project: ProjectContext,
                     cls: ClassInfo) -> bool:
        if cls.name.endswith("Pipeline"):
            return True
        return any(base.name.endswith("Pipeline")
                   for base in project.resolve_bases(cls))

    def _check_class(self, project: ProjectContext,
                     cls: ClassInfo) -> Iterator[Finding]:
        missing: List[str] = []
        if _all_bases_resolved(project, cls):
            # with an unresolved base (outside the linted file set) the
            # surface may be inherited from code we cannot see — a
            # partial-tree lint must not claim it is missing
            for required in _REQUIRED_METHODS:
                if project.lookup_method(cls, required) is None:
                    missing.append(required)
        if missing:
            yield cls.ctx.finding(
                self, cls.node,
                f"pipeline class `{cls.name}` is missing the "
                f"hook/gauge surface: {', '.join(missing)} "
                f"(see docs/analysis.md#api002)")
        yield from self._check_obs_gauges(project, cls)
        yield from self._check_mode_name(project, cls)

    def _check_obs_gauges(self, project: ProjectContext,
                          cls: ClassInfo) -> Iterator[Finding]:
        own = cls.methods.get("obs_gauges")
        if own is None:
            return
        overrides = any("obs_gauges" in base.methods
                        for base in project.resolve_bases(cls))
        if not overrides:
            return                      # root definition
        for node in ast.walk(own.node):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr == "obs_gauges":
                return                  # super().obs_gauges(...) etc.
        yield cls.ctx.finding(
            self, own.node,
            f"`{cls.name}.obs_gauges` overrides the base surface "
            f"without extending super().obs_gauges() — base gauges "
            f"would silently vanish")

    def _check_mode_name(self, project: ProjectContext,
                         cls: ClassInfo) -> Iterator[Finding]:
        own = cls.methods.get("_mode_name")
        if own is None:
            return
        literal = _returned_literal(own.node)
        if literal is None:
            yield cls.ctx.finding(
                self, own.node,
                f"`{cls.name}._mode_name` must return a string "
                f"literal so the mode registry stays statically "
                f"checkable")
            return
        modes = _declared_modes(project)
        if modes is not None and literal not in modes:
            yield cls.ctx.finding(
                self, own.node,
                f"`{cls.name}._mode_name` returns {literal!r}, which "
                f"is not registered in the harness MODES tuple "
                f"({', '.join(repr(m) for m in modes)})")


def _all_bases_resolved(project: ProjectContext,
                        cls: ClassInfo) -> bool:
    seen: List[str] = [cls.name]
    queue = list(cls.base_names)
    while queue:
        base_name = queue.pop(0)
        if base_name in seen:
            continue
        seen.append(base_name)
        bases = project.classes.get(base_name)
        if not bases:
            return False
        for base in bases:
            queue.extend(base.base_names)
    return True


def _returned_literal(func: ast.AST) -> Optional[str]:
    for node in ast.walk(func):
        if isinstance(node, ast.Return) and node.value is not None:
            if isinstance(node.value, ast.Constant) and \
                    isinstance(node.value.value, str):
                return node.value.value
            return None
    return None


def _declared_modes(project: ProjectContext) -> Optional[List[str]]:
    for module in sorted(project.module_globals):
        binding = project.module_globals[module].get("MODES")
        if binding is None or binding.value is None:
            continue
        if isinstance(binding.value, (ast.Tuple, ast.List)):
            modes: List[str] = []
            for element in binding.value.elts:
                if isinstance(element, ast.Constant) and \
                        isinstance(element.value, str):
                    modes.append(element.value)
            return modes
    return None
