"""simlint reporters: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, List

if TYPE_CHECKING:                                  # pragma: no cover
    from .runner import LintReport

__all__ = ["render_text", "render_json"]


def render_text(report: "LintReport", verbose: bool = False) -> str:
    """GCC-style ``path:line:col: RULE message`` lines plus a summary."""
    lines: List[str] = []
    for finding in report.findings:
        lines.append(finding.render())
        if verbose and finding.snippet:
            lines.append(f"    | {finding.snippet}")
    if report.stale_baseline:
        lines.append("")
        lines.append("stale baseline entries (code is gone; prune with "
                     "--write-baseline):")
        for key in report.stale_baseline:
            lines.append(f"  - {key}")
    lines.append("")
    verdict = "FAIL" if report.findings else "OK"
    lines.append(
        f"simlint: {verdict} — {len(report.findings)} finding(s), "
        f"{report.suppressed} suppressed, {report.grandfathered} "
        f"baselined, {report.files_checked} file(s) checked")
    return "\n".join(lines)


def render_json(report: "LintReport") -> str:
    payload = {
        "findings": [f.to_dict() for f in report.findings],
        "summary": {
            "findings": len(report.findings),
            "suppressed": report.suppressed,
            "grandfathered": report.grandfathered,
            "stale_baseline": list(report.stale_baseline),
            "files_checked": report.files_checked,
            "rules": sorted({f.rule for f in report.findings}),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)
