"""simlint reporters: text, JSON, and SARIF 2.1.0.

SARIF output (``--format sarif`` / ``--sarif-out``) feeds GitHub code
scanning: the CI lint job uploads it so findings annotate PR diffs.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Dict, List, Sequence

if TYPE_CHECKING:                                  # pragma: no cover
    from .core import Rule
    from .runner import LintReport

__all__ = ["render_text", "render_json", "render_sarif"]

_SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                 "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")


def render_text(report: "LintReport", verbose: bool = False,
                timings: bool = False) -> str:
    """GCC-style ``path:line:col: RULE message`` lines plus a summary."""
    lines: List[str] = []
    for finding in report.findings:
        lines.append(finding.render())
        if verbose and finding.snippet:
            lines.append(f"    | {finding.snippet}")
    if report.unused_suppressions:
        lines.append("")
        lines.append("warnings:")
        for unused in report.unused_suppressions:
            lines.append(f"  {unused.render()}")
    if report.stale_baseline:
        lines.append("")
        lines.append("stale baseline entries (code is gone; prune with "
                     "--write-baseline):")
        for key in report.stale_baseline:
            lines.append(f"  - {key}")
    if timings and report.rule_seconds:
        lines.append("")
        lines.append("per-rule wall time:")
        total = 0.0
        for rule_id in sorted(report.rule_seconds):
            seconds = report.rule_seconds[rule_id]
            total += seconds
            lines.append(f"  {rule_id:<8} {seconds * 1000.0:8.1f} ms")
        lines.append(f"  {'total':<8} {total * 1000.0:8.1f} ms")
    lines.append("")
    verdict = "FAIL" if report.findings else "OK"
    summary = (
        f"simlint: {verdict} — {len(report.findings)} finding(s), "
        f"{report.suppressed} suppressed, {report.grandfathered} "
        f"baselined, {report.files_checked} file(s) checked")
    if report.unused_suppressions:
        summary += (f", {len(report.unused_suppressions)} unused "
                    f"suppression(s)")
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: "LintReport") -> str:
    payload = {
        "findings": [f.to_dict() for f in report.findings],
        "unused_suppressions": [
            {"path": u.path, "line": u.line, "rules": list(u.rules)}
            for u in report.unused_suppressions],
        "rule_seconds": {rule_id: round(seconds, 6)
                         for rule_id, seconds
                         in sorted(report.rule_seconds.items())},
        "summary": {
            "findings": len(report.findings),
            "suppressed": report.suppressed,
            "grandfathered": report.grandfathered,
            "stale_baseline": list(report.stale_baseline),
            "files_checked": report.files_checked,
            "unused_suppressions": len(report.unused_suppressions),
            "rules": sorted({f.rule for f in report.findings}),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(report: "LintReport",
                 rules: Sequence["Rule"]) -> str:
    """SARIF 2.1.0 document for GitHub code scanning."""
    rule_meta = []
    rule_index: Dict[str, int] = {}
    for index, rule in enumerate(rules):
        rule_index[rule.id] = index
        rule_meta.append({
            "id": rule.id,
            "name": rule.name.title().replace(" ", "").replace("-", ""),
            "shortDescription": {"text": rule.name},
            "fullDescription": {"text": rule.rationale},
            "helpUri": ("https://github.com/repro-sim/repro/blob/main/"
                        f"docs/analysis.md#{rule.id.lower()}"),
            "defaultConfiguration": {"level": "error"},
        })
    results = []
    for finding in report.findings:
        result = {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": finding.col + 1,
                    },
                },
            }],
        }
        if finding.rule in rule_index:
            result["ruleIndex"] = rule_index[finding.rule]
        results.append(result)
    document = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "simlint",
                    "informationUri": ("https://github.com/repro-sim/"
                                       "repro/blob/main/docs/"
                                       "analysis.md"),
                    "version": "2.0.0",
                    "rules": rule_meta,
                },
            },
            "results": results,
            "columnKind": "utf16CodeUnits",
        }],
    }
    return json.dumps(document, indent=2, sort_keys=True)
