"""TIME001 — cycle monotonicity (dataflow tier).

PR 5's writeback bug: dirty victims were written back with
``self.dram.access(0, ...)`` — timestamp literal zero — so every
writeback landed at cycle 0 and DRAM bank/bus contention evaporated.
The whole class is "a timestamp that does not derive from the current
cycle": literal constants, or locals whose reaching definitions never
touch a cycle-like quantity.

This rule knows the timestamped entry points of the memory hierarchy
and the scheduler — including the event engine's unified wakeup heap
(``heappush(self.wakeups, when)`` carries a bare cycle number, and
``_schedule_wakeup``'s argument is a timestamp) — resolves aliased
callees through reaching definitions (``ifetch = self.mem.ifetch``),
expands timestamp arguments through local definitions, and flags any
argument with no cycle-derived source.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional, Tuple

from .core import Finding, LintContext, Rule
from .cfg import FunctionNode, iter_function_defs, stmt_expressions
from .dataflow import FunctionAnalysis, analyze_function
from .semantics import expanded_dotteds, expression_texts, unparse

__all__ = ["CycleMonotonicityRule"]

#: identifiers that mark a value as derived from simulated time
_CYCLEISH = re.compile(
    r"cycle|complet|issue|probe|expir|ready|resume|when|tick|"
    r"timestamp|retire|commit_at|deadline", re.IGNORECASE)

#: attr name -> (positional timestamp args, receiver-hint regex).
#: A None hint means the attr name alone is distinctive enough.
_TIMED_CALLS: Tuple[Tuple[str, Tuple[int, ...], Optional[str]], ...] = (
    ("load", (0,), r"mem"),
    ("ifetch", (0,), r"mem"),
    ("store_commit", (0,), r"mem"),
    ("access", (0,), r"dram"),
    ("expire", (0,), r"mshr"),
    ("allocate", (1,), r"mshr"),
    ("on_mem_request", (0, 1), None),
    ("_complete_at", (1, 2), None),
    ("_schedule_wakeup", (0,), None),
)

#: telemetry/driver layers that don't feed simulated state
_EXEMPT_MODULES = ("repro.harness", "repro.cli", "repro.analysis",
                   "repro.obs")


class CycleMonotonicityRule(Rule):
    id = "TIME001"
    name = "cycle monotonicity"
    rationale = (
        "Timestamps entering the memory hierarchy or the event queue "
        "must derive from the current cycle. A literal 0 or a stale "
        "local (the PR 5 writeback bug) time-travels the request, "
        "silently deleting contention while every run still completes.")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        module = ctx.module
        for exempt in _EXEMPT_MODULES:
            if module == exempt or module.startswith(exempt + "."):
                return
        for func in iter_function_defs(ctx.tree):
            yield from self._check_function(ctx, func)

    # ------------------------------------------------------------------
    def _check_function(self, ctx: LintContext,
                        func: FunctionNode) -> Iterator[Finding]:
        analysis = analyze_function(func)
        for block_id in analysis.cfg.block_ids():
            for stmt in analysis.cfg.blocks[block_id].stmts:
                for node in stmt_expressions(stmt):
                    if isinstance(node, ast.Call):
                        yield from self._check_call(ctx, node, stmt,
                                                    analysis)

    def _check_call(self, ctx: LintContext, call: ast.Call,
                    stmt: ast.stmt, analysis: FunctionAnalysis
                    ) -> Iterator[Finding]:
        spec = self._match_spec(call, stmt, analysis)
        if spec is not None:
            attr, positions = spec
            for position in positions:
                if position < len(call.args):
                    yield from self._check_timestamp(
                        ctx, call.args[position], stmt, analysis,
                        f"argument {position} of `{attr}`")
            return
        # scheduler: heapq.heappush(self.events, (timestamp, ...)) and
        # the unified wakeup heap, heapq.heappush(self.wakeups, when),
        # whose entries are bare cycle numbers rather than tuples.
        callee = call.func
        if isinstance(callee, (ast.Name, ast.Attribute)):
            name = callee.id if isinstance(callee, ast.Name) \
                else callee.attr
            if name == "heappush" and len(call.args) >= 2:
                heap_paths = expanded_dotteds(call.args[0], analysis,
                                              stmt)
                if any("events" in path or "wakeups" in path
                       for path in heap_paths):
                    entry = call.args[1]
                    if isinstance(entry, ast.Tuple):
                        if entry.elts:
                            yield from self._check_timestamp(
                                ctx, entry.elts[0], stmt, analysis,
                                "event-queue sort key")
                    else:
                        yield from self._check_timestamp(
                            ctx, entry, stmt, analysis,
                            "wakeup-heap timestamp")

    def _match_spec(self, call: ast.Call, stmt: ast.stmt,
                    analysis: FunctionAnalysis
                    ) -> Optional[Tuple[str, Tuple[int, ...]]]:
        callee = call.func
        receiver_paths: List[str] = []
        attr: Optional[str] = None
        if isinstance(callee, ast.Attribute):
            attr = callee.attr
            receiver_paths = expanded_dotteds(callee.value, analysis,
                                              stmt)
            if not receiver_paths:
                # super()._complete_at(...) and friends
                receiver_paths = [unparse(callee.value)]
        elif isinstance(callee, ast.Name):
            # aliased bound method: `ifetch = self.mem.ifetch`
            for source in analysis.reaching.name_sources(callee, stmt):
                if isinstance(source, ast.Attribute):
                    attr = source.attr
                    receiver_paths = [unparse(source.value)]
                    break
        if attr is None:
            return None
        for known_attr, positions, hint in _TIMED_CALLS:
            if attr != known_attr:
                continue
            if hint is None:
                return attr, positions
            pattern = re.compile(hint, re.IGNORECASE)
            if any(pattern.search(path) for path in receiver_paths):
                return attr, positions
        return None

    def _check_timestamp(self, ctx: LintContext, arg: ast.expr,
                         stmt: ast.stmt, analysis: FunctionAnalysis,
                         what: str) -> Iterator[Finding]:
        if isinstance(arg, ast.Constant) and isinstance(
                arg.value, (int, float)) and not isinstance(
                arg.value, bool):
            yield ctx.finding(
                self, arg,
                f"literal timestamp `{arg.value}` as {what} — "
                f"timestamps must derive from the current cycle "
                f"(the PR 5 writeback-at-0 bug class)")
            return
        # a well-named local is no defense if every reaching value is a
        # numeric literal: `when = 0; heappush(events, (when, ...))`
        sources = analysis.reaching.name_sources(arg, stmt)
        if sources and all(
                isinstance(source, ast.Constant) and
                isinstance(source.value, (int, float)) and
                not isinstance(source.value, bool)
                for source in sources):
            yield ctx.finding(
                self, arg,
                f"timestamp {what} (`{unparse(arg)}`) only ever holds "
                f"numeric literal(s) — timestamps must derive from the "
                f"current cycle (the PR 5 writeback-at-0 bug class)")
            return
        texts = expression_texts(arg, analysis, stmt)
        if not any(_CYCLEISH.search(text) for text in texts):
            yield ctx.finding(
                self, arg,
                f"timestamp {what} (`{unparse(arg)}`) has no "
                f"cycle-derived source — expands to "
                f"{', '.join(repr(t) for t in texts[:3])}")
