"""CONC001 — process safety (dataflow tier).

The engine fans jobs out to a ``ProcessPoolExecutor``; ROADMAP item 1
turns that into a long-running distributed fleet.  Both are only sound
if worker-side code is a pure function of the ``Job``: a worker that
mutates a module global or class-level state computes results that
depend on *which jobs shared its process* — invisible locally,
catastrophic for the content-addressed result cache.

The rule discovers worker entry points structurally (functions
registered as ``JobKind(execute=...)`` handlers and functions passed
to ``.submit(...)``), walks the approximate call graph, and flags in
every reachable function: ``global`` declarations that are assigned,
class-attribute assignment, and mutation of module-level mutable
bindings.  Independently, it flags unpicklable values (lambdas, open
file handles) captured into ``Job(...)`` or ``.submit(...)`` calls.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Tuple

from .core import Finding, ProjectRule
from .callgraph import FunctionInfo, ModuleGlobal, ProjectContext
from .cfg import stmt_expressions
from .semantics import dotted, iter_statements

__all__ = ["ProcessSafetyRule"]

#: calls whose constructed value is a mutable container
_MUTABLE_FACTORIES = ("dict", "list", "set", "OrderedDict",
                      "defaultdict", "deque", "Counter")

#: method calls that mutate their receiver in place
_MUTATORS = ("append", "add", "update", "pop", "popitem", "clear",
             "remove", "discard", "extend", "insert", "setdefault",
             "move_to_end", "appendleft", "__setitem__")


class ProcessSafetyRule(ProjectRule):
    id = "CONC001"
    name = "process safety"
    rationale = (
        "Worker-side code (reachable from JobKind handlers / pool "
        "submit targets) must be a pure function of the Job: mutating "
        "module globals or class-level state makes results depend on "
        "which jobs shared a worker process, silently poisoning the "
        "content-addressed result cache and any distributed sweep.")

    def check_project(self,
                      project: ProjectContext) -> Iterator[Finding]:
        entries = _worker_entries(project)
        reachable = project.reachable_from(entries)
        for info in reachable:
            yield from self._check_worker_function(project, info)
        yield from self._check_job_payloads(project)

    # ------------------------------------------------------------------
    def _check_worker_function(self, project: ProjectContext,
                               info: FunctionInfo) -> Iterator[Finding]:
        func = info.node
        assigned = _assigned_names(func)
        for stmt in iter_statements(func):  # type: ignore[arg-type]
            if isinstance(stmt, ast.Global):
                written = [n for n in stmt.names if n in assigned]
                if written:
                    yield info.ctx.finding(
                        self, stmt,
                        f"worker-reachable `{info.qualname}` assigns "
                        f"module global(s) {', '.join(written)} — "
                        f"per-process state leaks across jobs")
            yield from self._check_class_attr_store(info, stmt, project)
            yield from self._check_module_mutable(info, stmt, project,
                                                  assigned)

    def _check_class_attr_store(self, info: FunctionInfo,
                                stmt: ast.stmt,
                                project: ProjectContext
                                ) -> Iterator[Finding]:
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        for target in targets:
            if not isinstance(target, ast.Attribute):
                continue
            receiver = target.value
            if isinstance(receiver, ast.Name) and \
                    receiver.id in project.classes:
                yield info.ctx.finding(
                    self, target,
                    f"worker-reachable `{info.qualname}` assigns "
                    f"class attribute `{receiver.id}.{target.attr}` — "
                    f"class-level state is shared within a worker "
                    f"process")
            elif isinstance(receiver, ast.Attribute) and \
                    receiver.attr == "__class__":
                yield info.ctx.finding(
                    self, target,
                    f"worker-reachable `{info.qualname}` assigns "
                    f"through __class__ — class-level state is shared "
                    f"within a worker process")

    def _check_module_mutable(self, info: FunctionInfo,
                              stmt: ast.stmt, project: ProjectContext,
                              local_names: Dict[str, bool]
                              ) -> Iterator[Finding]:
        mutables = _mutable_globals(project, info.module)
        if not mutables:
            return
        for node in stmt_expressions(stmt):
            name: str = ""
            how: str = ""
            if isinstance(node, ast.Subscript) and isinstance(
                    getattr(node, "ctx", None),
                    (ast.Store, ast.Del)) and isinstance(
                    node.value, ast.Name):
                name, how = node.value.id, "subscript-assigns"
            elif isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute) and \
                    node.func.attr in _MUTATORS and isinstance(
                    node.func.value, ast.Name):
                name = node.func.value.id
                how = f"calls .{node.func.attr}() on"
            if not name or name in local_names:
                continue
            if name in mutables:
                yield info.ctx.finding(
                    self, node,
                    f"worker-reachable `{info.qualname}` {how} "
                    f"module-level mutable `{name}` — per-process "
                    f"state leaks across jobs")

    # ------------------------------------------------------------------
    def _check_job_payloads(self,
                            project: ProjectContext) -> Iterator[Finding]:
        for ctx in project.contexts:
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Call):
                    continue
                callee = node.func
                callee_name = ""
                if isinstance(callee, ast.Name):
                    callee_name = callee.id
                elif isinstance(callee, ast.Attribute):
                    callee_name = callee.attr
                if callee_name not in ("Job", "submit"):
                    continue
                payload_args = list(node.args) + \
                    [kw.value for kw in node.keywords]
                for arg in payload_args:
                    if isinstance(arg, ast.Lambda):
                        yield ctx.finding(
                            self, arg,
                            f"lambda captured into `{callee_name}` "
                            f"payload — unpicklable across the "
                            f"process boundary")
                    elif isinstance(arg, ast.Call) and \
                            isinstance(arg.func, ast.Name) and \
                            arg.func.id == "open":
                        yield ctx.finding(
                            self, arg,
                            f"open file handle captured into "
                            f"`{callee_name}` payload — unpicklable "
                            f"across the process boundary")


def _worker_entries(project: ProjectContext) -> List[FunctionInfo]:
    """Functions that run in worker processes: JobKind execute
    handlers, ``.submit(...)`` callables, and ``Process(target=...)``
    entry points — discovered structurally, not by name list."""
    entry_names: List[Tuple[str, str]] = []   # (module, function name)
    for ctx in project.contexts:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            if isinstance(callee, ast.Name) and callee.id == "JobKind":
                for value in list(node.args) + \
                        [kw.value for kw in node.keywords]:
                    if isinstance(value, ast.Name):
                        entry_names.append((ctx.module, value.id))
            elif isinstance(callee, ast.Attribute) and \
                    callee.attr == "submit" and node.args:
                first = node.args[0]
                if isinstance(first, ast.Name):
                    entry_names.append((ctx.module, first.id))
            elif _is_process_ctor(callee):
                # multiprocessing.Process(target=fn, ...): fn's body
                # runs in a fresh process, same sharing rules as a pool
                # worker (the sweep service spawns workers this way).
                for keyword in node.keywords:
                    if keyword.arg == "target" and \
                            isinstance(keyword.value, ast.Name):
                        entry_names.append((ctx.module,
                                            keyword.value.id))
    entries: List[FunctionInfo] = []
    for module, name in entry_names:
        for info in project.functions.get(name, []):
            if info.module == module and info.class_name is None:
                entries.append(info)
    return entries


def _is_process_ctor(callee: ast.AST) -> bool:
    """Matches ``Process(...)``, ``multiprocessing.Process(...)`` and
    aliased module forms like ``mp.Process(...)``."""
    if isinstance(callee, ast.Name):
        return callee.id == "Process"
    return isinstance(callee, ast.Attribute) and \
        callee.attr == "Process"


def _assigned_names(func: ast.AST) -> Dict[str, bool]:
    """Names assigned anywhere in *func* (params count), as an
    insertion-ordered membership dict."""
    names: Dict[str, bool] = {}
    args = getattr(func, "args", None)
    if args is not None:
        for arg in (list(args.posonlyargs) + list(args.args) +
                    list(args.kwonlyargs)):
            names[arg.arg] = True
        if args.vararg is not None:
            names[args.vararg.arg] = True
        if args.kwarg is not None:
            names[args.kwarg.arg] = True
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and isinstance(
                getattr(node, "ctx", None), ast.Store):
            names[node.id] = True
    return names


def _mutable_globals(project: ProjectContext,
                     module: str) -> Dict[str, ModuleGlobal]:
    bindings = project.module_globals.get(module, {})
    mutables: Dict[str, ModuleGlobal] = {}
    for name, binding in bindings.items():
        value = binding.value
        if value is None:
            continue
        if isinstance(value, (ast.Dict, ast.List, ast.Set)):
            mutables[name] = binding
        elif isinstance(value, ast.Call):
            callee = value.func
            callee_name = callee.id if isinstance(callee, ast.Name) \
                else (callee.attr if isinstance(callee, ast.Attribute)
                      else "")
            if callee_name in _MUTABLE_FACTORIES:
                mutables[name] = binding
    return mutables
