"""Worklist dataflow solvers over :mod:`repro.analysis.cfg` graphs.

Two analyses back the semantic rules:

* **Reaching definitions** (may, forward): for a name used at a
  statement, which assignments can have produced its value.  This is
  what lets rules see through local aliases —
  ``verifier = self.verifier`` or ``ifetch = self.mem.ifetch`` — and
  judge the *source* expression instead of the local name.
* **Guard dominance** (must, forward): the set of branch tests every
  path from function entry to a block necessarily passed through.
  Edge conditions come from the CFG; the intersection over
  predecessors is exactly "tests the author made this code
  control-dependent on".

Both are deterministic: facts are kept in insertion-ordered dicts keyed
by node identity, never in hash-ordered sets (simlint lints itself).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .cfg import CFG, Edge, FunctionNode, build_cfg, stmt_expressions

__all__ = [
    "Definition",
    "FunctionAnalysis",
    "ReachingDefs",
    "analyze_function",
    "guard_facts",
]


@dataclass(frozen=True)
class Definition:
    """One assignment of *name* at *stmt* (``value`` is the RHS for a
    simple ``name = expr``; ``None`` when opaque — augmented
    assignment, tuple unpack, loop target, parameter)."""

    name: str
    stmt: ast.stmt
    value: Optional[ast.expr] = None
    is_param: bool = False


def _stmt_definitions(stmt: ast.stmt) -> List[Definition]:
    defs: List[Definition] = []

    def add_target(target: ast.expr, value: Optional[ast.expr]) -> None:
        if isinstance(target, ast.Name):
            defs.append(Definition(name=target.id, stmt=stmt, value=value))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                add_target(element, None)
        elif isinstance(target, ast.Starred):
            add_target(target.value, None)

    if isinstance(stmt, ast.Assign):
        single = len(stmt.targets) == 1 and isinstance(stmt.targets[0],
                                                       ast.Name)
        for target in stmt.targets:
            add_target(target, stmt.value if single else None)
    elif isinstance(stmt, ast.AnnAssign):
        add_target(stmt.target, stmt.value)
    elif isinstance(stmt, ast.AugAssign):
        add_target(stmt.target, None)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        add_target(stmt.target, None)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                add_target(item.optional_vars, item.context_expr)
    elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
        for alias in stmt.names:
            bound = alias.asname or alias.name.split(".")[0]
            defs.append(Definition(name=bound, stmt=stmt, value=None))
    # walrus targets anywhere in the statement's expressions
    for node in stmt_expressions(stmt):
        if isinstance(node, ast.NamedExpr) and isinstance(node.target,
                                                          ast.Name):
            defs.append(Definition(name=node.target.id, stmt=stmt,
                                   value=node.value))
    return defs


#: dataflow fact: name -> def-index tuple (sorted, so joins are
#: order-independent and iteration is deterministic)
_Facts = Dict[str, Tuple[int, ...]]


class ReachingDefs:
    """May-reaching definitions for one function."""

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        self._defs: List[Definition] = []
        self._param_defs: _Facts = {}
        self._block_in: Dict[int, _Facts] = {}
        #: id(stmt) -> indices into _defs created by that statement
        self._stmt_defs: Dict[int, List[int]] = {}
        self._solve()

    # ------------------------------------------------------------------
    def _solve(self) -> None:
        cfg = self.cfg
        gen_by_block: Dict[int, List[int]] = {}
        for block_id in cfg.block_ids():
            indices: List[int] = []
            for stmt in cfg.blocks[block_id].stmts:
                per_stmt: List[int] = []
                for definition in _stmt_definitions(stmt):
                    per_stmt.append(len(self._defs))
                    self._defs.append(definition)
                self._stmt_defs[id(stmt)] = per_stmt
                indices.extend(per_stmt)
            gen_by_block[block_id] = indices

        args = cfg.func.args
        params = list(args.posonlyargs) + list(args.args) + \
            list(args.kwonlyargs)
        if args.vararg is not None:
            params.append(args.vararg)
        if args.kwarg is not None:
            params.append(args.kwarg)
        for arg in params:
            index = len(self._defs)
            self._defs.append(Definition(name=arg.arg, stmt=cfg.func,
                                         value=None, is_param=True))
            self._param_defs[arg.arg] = (index,)

        def transfer(facts: _Facts, block_id: int) -> _Facts:
            out = dict(facts)
            for index in gen_by_block[block_id]:
                out[self._defs[index].name] = (index,)
            return out

        def join(left: _Facts, right: _Facts) -> _Facts:
            merged = dict(left)
            for name, indices in right.items():
                previous = merged.get(name, ())
                merged[name] = tuple(sorted(set(previous) | set(indices)))
            return merged

        preds: Dict[int, List[int]] = {b: [] for b in cfg.block_ids()}
        for edge in cfg.edges:
            preds[edge.dst].append(edge.src)
        out_facts: Dict[int, _Facts] = {}
        ordered = cfg.block_ids()
        changed = True
        while changed:
            changed = False
            for block_id in ordered:
                if block_id == cfg.entry:
                    incoming: _Facts = dict(self._param_defs)
                else:
                    incoming = {}
                    for source in preds[block_id]:
                        incoming = join(incoming,
                                        out_facts.get(source, {}))
                self._block_in[block_id] = incoming
                new_out = transfer(incoming, block_id)
                if out_facts.get(block_id) != new_out:
                    out_facts[block_id] = new_out
                    changed = True

    # ------------------------------------------------------------------
    def at(self, stmt: ast.stmt, name: str) -> List[Definition]:
        """Definitions of *name* that may reach the start of *stmt*."""
        block_id = self.cfg.block_of.get(id(stmt))
        if block_id is None:
            return []
        facts = dict(self._block_in.get(block_id, {}))
        for earlier in self.cfg.blocks[block_id].stmts:
            if earlier is stmt:
                break
            for index in self._stmt_defs.get(id(earlier), ()):
                facts[self._defs[index].name] = (index,)
        return [self._defs[i] for i in facts.get(name, ())]

    # ------------------------------------------------------------------
    def name_sources(self, expr: ast.AST, at_stmt: ast.stmt,
                     depth: int = 3) -> List[ast.AST]:
        """Leaf source expressions *expr* may evaluate to.

        Chases ``Name`` loads through their reaching definitions up to
        *depth* hops; opaque definitions (parameters, loop targets,
        augmented assignment) and unresolved names contribute the
        ``Name`` node itself, to be judged by its identifier text.
        """
        results: List[ast.AST] = []
        seen: List[Tuple[int, str]] = []

        def walk(node: ast.AST, origin: ast.stmt, hops: int) -> None:
            if isinstance(node, ast.IfExp) and hops > 0:
                # `x = a if cond else b` aliases either branch
                walk(node.body, origin, hops)
                walk(node.orelse, origin, hops)
                return
            if isinstance(node, ast.BoolOp) and hops > 0:
                # `x = a or default` aliases any operand
                for value in node.values:
                    walk(value, origin, hops)
                return
            if not isinstance(node, ast.Name) or hops <= 0:
                results.append(node)
                return
            definitions = self.at(origin, node.id)
            if not definitions:
                results.append(node)
                return
            for definition in definitions:
                key = (id(definition.stmt), definition.name)
                if key in seen:
                    continue
                seen.append(key)
                if definition.value is None:
                    results.append(node)
                else:
                    walk(definition.value, definition.stmt, hops - 1)

        walk(expr, at_stmt, depth)
        return results


def guard_facts(cfg: CFG) -> Dict[int, List[ast.expr]]:
    """Tests dominating each block's entry (must-analysis).

    ``result[block_id]`` lists every branch test that *all* paths from
    entry pass through before reaching the block, in deterministic
    order.  Polarity is not tracked (see :mod:`repro.analysis.cfg`).
    Unreachable blocks dominate vacuously and report every test seen.
    """
    # facts: id(test) -> test, insertion-ordered; None marks TOP
    facts: Dict[int, Optional[Dict[int, ast.expr]]] = {
        block_id: None for block_id in cfg.block_ids()}
    facts[cfg.entry] = {}
    ordered = cfg.block_ids()
    pred_edges: Dict[int, List[Edge]] = {b: [] for b in ordered}
    for edge in cfg.edges:
        pred_edges[edge.dst].append(edge)
    changed = True
    while changed:
        changed = False
        for block_id in ordered:
            if block_id == cfg.entry:
                continue
            incoming: Optional[Dict[int, ast.expr]] = None
            for edge in pred_edges[block_id]:
                source = facts[edge.src]
                if source is None:
                    continue        # TOP predecessor constrains nothing
                contribution = dict(source)
                if edge.cond is not None:
                    contribution[id(edge.cond)] = edge.cond
                if incoming is None:
                    incoming = contribution
                else:
                    incoming = {key: value
                                for key, value in incoming.items()
                                if key in contribution}
            if incoming is None:
                continue
            if facts[block_id] is None or \
                    set(facts[block_id] or {}) != set(incoming):
                facts[block_id] = incoming
                changed = True
    result: Dict[int, List[ast.expr]] = {}
    every_test = [edge.cond for edge in cfg.edges
                  if edge.cond is not None]
    for block_id in ordered:
        block_facts = facts[block_id]
        if block_facts is None:
            result[block_id] = list(every_test)
        else:
            result[block_id] = list(block_facts.values())
    return result


@dataclass
class FunctionAnalysis:
    """CFG + solved dataflow for one function, built on demand."""

    cfg: CFG
    reaching: ReachingDefs
    guards: Dict[int, List[ast.expr]]

    def dominating_tests(self, stmt: ast.stmt) -> List[ast.expr]:
        block_id = self.cfg.block_of.get(id(stmt))
        if block_id is None:
            return []
        return self.guards.get(block_id, [])


def analyze_function(func: FunctionNode) -> FunctionAnalysis:
    cfg = build_cfg(func)
    return FunctionAnalysis(cfg=cfg, reaching=ReachingDefs(cfg),
                            guards=guard_facts(cfg))
