"""PUR001 — level-gating purity (dataflow tier).

The level-0 contract: with ``obs_level == 0`` / ``verify_level == 0``
no observer, verifier, event log, or profiler object exists — the hook
attributes are ``None`` — and results are bit-identical to a build
with telemetry deleted.  Today that contract is enforced only after
the fact, by pinned fingerprints.  This rule enforces it statically:
any *use* of a hook attribute (``self.observer`` / ``self.verifier`` /
``self.obs`` / ``self.event_log`` / ``self.profiler``, or a local
aliasing one) must be dominated by an ``is not None`` / truthiness
guard on that hook or by an ``obs_level``/``verify_level`` check.

Allowed without a guard: storing to the hook (``attach_observer``),
aliasing it into a local (``observer = self.observer``), and testing
it (the guard itself).  Guards are found both on dominating CFG edges
and inside the statement (``x.f() if x is not None else ...``,
``x and x.f()``).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from .core import Finding, LintContext, Rule
from .cfg import FunctionNode, iter_function_defs, stmt_expressions
from .dataflow import FunctionAnalysis, analyze_function
from .semantics import analyze_guard, dotted, local_guards

__all__ = ["LevelGatingPurityRule", "HOOK_ATTRS"]

#: pipeline/memory attributes that are None below their obs/verify level
HOOK_ATTRS = ("observer", "verifier", "obs", "event_log", "profiler")

#: layers allowed to touch hooks freely: the hook implementations
#: themselves, the harness that attaches them, and the CLI.
_EXEMPT_MODULES = ("repro.obs", "repro.verify", "repro.harness",
                   "repro.cli", "repro.analysis")


class LevelGatingPurityRule(Rule):
    id = "PUR001"
    name = "level-gating purity"
    rationale = (
        "At obs_level/verify_level 0 the hook attributes (observer, "
        "verifier, obs, event_log, profiler) are None and results must "
        "be bit-identical to a telemetry-free build; an unguarded hook "
        "use either crashes at level 0 or, worse, leaks telemetry work "
        "into simulated state. Every hook use must be dominated by an "
        "`is not None`/truthiness guard or a level check.")

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        module = ctx.module
        for exempt in _EXEMPT_MODULES:
            if module == exempt or module.startswith(exempt + "."):
                return
        for func in iter_function_defs(ctx.tree):
            yield from self._check_function(ctx, func)

    # ------------------------------------------------------------------
    def _check_function(self, ctx: LintContext,
                        func: FunctionNode) -> Iterator[Finding]:
        analysis = analyze_function(func)
        cfg = analysis.cfg
        for block_id in cfg.block_ids():
            for stmt in cfg.blocks[block_id].stmts:
                for use, path, aliases in _hook_uses(stmt, analysis):
                    if self._use_is_allowed(use, stmt):
                        continue
                    if self._is_guarded(use, stmt, analysis,
                                        [path] + aliases):
                        continue
                    yield ctx.finding(
                        self, use,
                        f"use of hook `{path}` is not dominated by an "
                        f"`is not None`/level guard — at level 0 this "
                        f"is None (see docs/analysis.md#pur001)")

    def _use_is_allowed(self, use: ast.AST, stmt: ast.stmt) -> bool:
        # stores/deletes are how hooks get attached
        use_ctx = getattr(use, "ctx", None)
        if isinstance(use_ctx, (ast.Store, ast.Del)):
            return True
        # aliasing the hook into a local: `observer = self.observer`
        if isinstance(stmt, ast.Assign) and stmt.value is use:
            return True
        if isinstance(stmt, ast.AnnAssign) and stmt.value is use:
            return True
        # the use *is* the guard: `if self.verifier is not None:` or a
        # bare truthiness test / comparison against None anywhere
        if _is_none_test_operand(use, stmt):
            return True
        # returning the raw hook (accessors) is the caller's problem
        if isinstance(stmt, ast.Return) and stmt.value is use:
            return True
        return False

    def _is_guarded(self, use: ast.AST, stmt: ast.stmt,
                    analysis: FunctionAnalysis,
                    paths: List[str]) -> bool:
        tests = list(analysis.dominating_tests(stmt))
        tests.extend(local_guards(use, stmt))
        for test in tests:
            info = analyze_guard(test)
            if info.checks_level:
                return True
            for checked in info.checked_paths:
                if checked in paths:
                    return True
        return False


def _hook_uses(stmt: ast.stmt, analysis: FunctionAnalysis
               ) -> List[Tuple[ast.AST, str, List[str]]]:
    """(node, display path, alias paths) for each outermost hook use
    in *stmt*."""
    uses: List[Tuple[ast.AST, str, List[str]]] = []

    def visit(node: ast.AST) -> None:
        resolved = _resolve_hook(node, stmt, analysis)
        if resolved is not None:
            uses.append((node, resolved[0], resolved[1]))
            return          # outermost hook expression only
        for child in ast.iter_child_nodes(node):
            visit(child)

    for root in _expression_roots(stmt):
        visit(root)
    return uses


def _expression_roots(stmt: ast.stmt) -> List[ast.expr]:
    roots: List[ast.expr] = []
    for _name, value in ast.iter_fields(stmt):
        if isinstance(value, ast.expr):
            roots.append(value)
        elif isinstance(value, list):
            roots.extend(v for v in value if isinstance(v, ast.expr))
    return roots


def _resolve_hook(node: ast.AST, stmt: ast.stmt,
                  analysis: FunctionAnalysis, depth: int = 3
                  ) -> Optional[Tuple[str, List[str]]]:
    """If *node* denotes a hook, return (display path, alias paths)."""
    if depth <= 0:
        return None
    if isinstance(node, ast.Attribute) and node.attr in HOOK_ATTRS:
        receiver = node.value
        if isinstance(receiver, ast.Name):
            if receiver.id == "self":
                path = f"self.{node.attr}"
                return path, [path]
            inner = _resolve_hook_name(receiver, stmt, analysis,
                                       depth - 1)
            if inner is not None:
                path = f"{receiver.id}.{node.attr}"
                return path, [path]
        return None
    if isinstance(node, ast.Name) and isinstance(
            getattr(node, "ctx", None), ast.Load):
        resolved = _resolve_hook_name(node, stmt, analysis, depth)
        if resolved is not None:
            return node.id, [node.id] + resolved
    return None


def _resolve_hook_name(name: ast.Name, stmt: ast.stmt,
                       analysis: FunctionAnalysis,
                       depth: int) -> Optional[List[str]]:
    """Alias paths if local *name* is derived from a hook attribute
    (and not from a parameter — injected hooks are the caller's
    opt-in).  ``None`` when the name is not hook-derived."""
    if depth <= 0:
        return None
    alias_paths: List[str] = []
    hooky = False
    for source in analysis.reaching.name_sources(name, stmt):
        if source is name:
            continue
        if isinstance(source, ast.Name):
            continue
        resolved = _resolve_hook(source, stmt, analysis, depth - 1)
        if resolved is not None:
            hooky = True
            for path in resolved[1]:
                if path not in alias_paths:
                    alias_paths.append(path)
    if not hooky:
        return None
    for definition in analysis.reaching.at(stmt, name.id):
        if definition.is_param:
            return None
    return alias_paths


def _is_none_test_operand(use: ast.AST, stmt: ast.stmt) -> bool:
    """True if *use* is an operand of a None comparison or sits in a
    boolean-test position within *stmt*."""
    # direct test of an If/While: `if self.observer:`
    test = getattr(stmt, "test", None)
    if test is not None:
        if use is test:
            return True
        for node in ast.walk(test):
            if isinstance(node, ast.Compare) and _compares_none(node,
                                                                use):
                return True
            if isinstance(node, ast.BoolOp) and use in node.values:
                return True
    for node in stmt_expressions(stmt):
        if isinstance(node, ast.Compare) and _compares_none(node, use):
            return True
        if isinstance(node, ast.IfExp) and use is node.test:
            return True
        if isinstance(node, ast.BoolOp) and use in node.values:
            return True
    return False


def _compares_none(compare: ast.Compare, use: ast.AST) -> bool:
    operands = [compare.left] + list(compare.comparators)
    if use not in operands:
        return False
    return any(isinstance(op, ast.Constant) and op.value is None
               for op in operands)
