"""simlint: domain-specific static analysis for the simulator.

The experiment engine's content-addressed result cache (PR 1) is only
sound if every simulation is a pure, deterministic function of
(workload, scale, seed, SimConfig, code).  This package machine-checks
the bug classes that silently break that contract — unseeded RNG,
hash-order-dependent iteration, caller-config mutation, wall-clock
leakage, typo'd counter keys, float drift in cycle counts, layering
violations, and mutable default arguments.

Entry points::

    repro-sim lint [paths...]          # CLI subcommand
    python -m repro.analysis [paths...]

See ``docs/analysis.md`` for the rule catalogue, suppression syntax
(``# simlint: disable=RULEID``) and the baseline workflow.
"""

from .core import Finding, LintContext, Rule, parse_suppressions
from .baseline import Baseline
from .rules import ALL_RULES, rule_by_id
from .runner import LintReport, lint_paths, lint_source, main

__all__ = [
    "ALL_RULES",
    "Baseline",
    "Finding",
    "LintContext",
    "LintReport",
    "Rule",
    "lint_paths",
    "lint_source",
    "main",
    "parse_suppressions",
    "rule_by_id",
]
