"""simlint: domain-specific static analysis for the simulator.

The experiment engine's content-addressed result cache (PR 1) is only
sound if every simulation is a pure, deterministic function of
(workload, scale, seed, SimConfig, code).  This package machine-checks
the bug classes that silently break that contract, in two tiers:

* **syntactic** rules (DET/CFG/STAT/NUM/ARCH/API001) pattern-match a
  single module's AST — unseeded RNG, hash-order iteration,
  caller-config mutation, wall-clock leakage, typo'd counter keys,
  float drift, layering violations, mutable default arguments;
* **dataflow** rules (PUR001/TIME001/CONC001/GRD001/API002) run a
  per-function CFG + reaching-definitions/guard-dominance analysis and
  a project-wide call graph — level-gating purity, cycle monotonicity,
  process safety, capacity-guarded growth, pipeline paradigm
  conformance.

Entry points::

    repro-sim lint [paths...]          # CLI subcommand
    python -m repro.analysis [paths...]

See ``docs/analysis.md`` for the rule catalogue, suppression syntax
(``# simlint: disable=RULEID``) and the baseline workflow.
"""

from .core import Directive, Finding, LintContext, ProjectRule, Rule, \
    parse_suppressions
from .baseline import Baseline
from .cfg import build_cfg
from .dataflow import FunctionAnalysis, analyze_function
from .callgraph import ProjectContext, build_project
from .rules import ALL_RULES, rule_by_id
from .runner import LintReport, UnusedSuppression, lint_paths, \
    lint_source, main

__all__ = [
    "ALL_RULES",
    "Baseline",
    "Directive",
    "Finding",
    "FunctionAnalysis",
    "LintContext",
    "LintReport",
    "ProjectContext",
    "ProjectRule",
    "Rule",
    "UnusedSuppression",
    "analyze_function",
    "build_cfg",
    "build_project",
    "lint_paths",
    "lint_source",
    "main",
    "parse_suppressions",
    "rule_by_id",
]
