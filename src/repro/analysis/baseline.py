"""Baseline files: grandfather existing findings without hiding new ones.

A baseline is a JSON snapshot of currently-accepted findings.  Each
entry is keyed line-number-insensitively (rule, path, stripped source
line) with a count, so:

* unrelated edits that shift line numbers do not resurrect findings;
* a *new* instance of a grandfathered rule in the same file still fires
  (counts are consumed one finding at a time);
* deleting the offending code automatically shrinks the baseline debt
  (stale entries are reported so they can be pruned).

Workflow::

    repro-sim lint --baseline simlint-baseline.json --write-baseline
    repro-sim lint --baseline simlint-baseline.json      # CI: must exit 0

The repo itself ships lint-clean (the tier-1 test runs with an **empty**
baseline); the mechanism exists for downstream forks and for staging
future rules.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .core import Finding

__all__ = ["Baseline"]

_VERSION = 1


class Baseline:
    """A multiset of accepted finding keys."""

    def __init__(self, counts: Optional[Dict[str, int]] = None) -> None:
        self.counts: Dict[str, int] = dict(counts or {})

    # ------------------------------------------------------------- I/O
    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(path.read_text())
        if data.get("version") != _VERSION:
            raise ValueError(
                f"unsupported simlint baseline version "
                f"{data.get('version')!r} in {path}")
        counts: Dict[str, int] = {}
        for entry in data.get("findings", []):
            key = (f"{entry['rule']}::{entry['path']}::"
                   f"{entry.get('snippet', '')}")
            counts[key] = counts.get(key, 0) + int(entry.get("count", 1))
        return cls(counts)

    @classmethod
    def from_findings(cls, findings: List[Finding]) -> "Baseline":
        counts = Counter(f.baseline_key() for f in findings)
        return cls(dict(counts))

    def dump(self, path: Path) -> None:
        entries = []
        for key in sorted(self.counts):
            rule, fpath, snippet = key.split("::", 2)
            entries.append({"rule": rule, "path": fpath,
                            "snippet": snippet,
                            "count": self.counts[key]})
        payload = {"version": _VERSION, "findings": entries}
        path.write_text(json.dumps(payload, indent=2, sort_keys=True)
                        + "\n")

    # ------------------------------------------------------------ filter
    def filter(self, findings: List[Finding]
               ) -> Tuple[List[Finding], int, List[str]]:
        """Split findings into (new, grandfathered_count, stale_keys).

        Consumes baseline counts finding-by-finding; leftover baseline
        entries are *stale* (the code they covered is gone) and should
        be pruned with ``--write-baseline``.
        """
        remaining = dict(self.counts)
        new: List[Finding] = []
        grandfathered = 0
        for finding in sorted(findings, key=Finding.sort_key):
            key = finding.baseline_key()
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                grandfathered += 1
            else:
                new.append(finding)
        stale = sorted(key for key, count in remaining.items() if count > 0)
        return new, grandfathered, stale
