"""simlint driver: walk files, apply rules, filter, report.

``lint_paths`` is the programmatic entry point (the tier-1 repo-clean
test calls it directly); ``main`` backs both ``python -m repro.analysis``
and the ``repro-sim lint`` subcommand.

v2 drives two rule tiers: per-file syntactic rules run module by
module; :class:`~repro.analysis.core.ProjectRule` subclasses run once
over a :class:`~repro.analysis.callgraph.ProjectContext` built from
every parsed file.  The runner also tracks per-rule wall time (printed
with ``--timings``; the CI lint job budgets the total) and
unused-suppression warnings (directives that no longer suppress any
finding of a rule that ran).
"""

from __future__ import annotations

import argparse
import ast
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .baseline import Baseline
from .callgraph import build_project
from .core import Finding, LintContext, ProjectRule, Rule, \
    module_name_for, parse_suppressions
from .report import render_json, render_sarif, render_text
from .rules import ALL_RULES, rule_by_id

__all__ = ["LintReport", "UnusedSuppression", "changed_files",
           "lint_paths", "lint_source", "main"]


@dataclass(frozen=True)
class UnusedSuppression:
    """A ``# simlint: disable`` directive that suppressed nothing."""

    path: str
    line: int
    rules: Tuple[str, ...]

    def render(self) -> str:
        return (f"{self.path}:{self.line}: unused suppression for "
                f"{', '.join(self.rules)} — no finding here; remove "
                f"the directive")


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    grandfathered: int = 0
    stale_baseline: List[str] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: List[str] = field(default_factory=list)
    #: rule id -> wall-clock seconds spent in that rule
    rule_seconds: Dict[str, float] = field(default_factory=dict)
    unused_suppressions: List[UnusedSuppression] = \
        field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings and not self.parse_errors


def iter_python_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(p for p in path.rglob("*.py")
                         if "__pycache__" not in p.parts)
        elif path.suffix == ".py":
            files.append(path)
    return sorted(set(files))


def _relpath(path: Path, root: Optional[Path]) -> str:
    if root is not None:
        try:
            return path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    return path.as_posix()


def build_context(path: Path, source: str,
                  root: Optional[Path] = None,
                  module: Optional[str] = None) -> LintContext:
    lines = source.splitlines()
    tree = ast.parse(source, filename=str(path))
    return LintContext(
        path=path,
        relpath=_relpath(path, root),
        module=module if module is not None else module_name_for(path),
        source=source,
        lines=lines,
        tree=tree,
        suppressions=parse_suppressions(lines),
    )


def lint_source(source: str, rules: Optional[Sequence[Rule]] = None,
                module: str = "snippet",
                path: str = "<snippet>") -> Tuple[List[Finding], int]:
    """Lint an in-memory snippet (the rule-fixture tests use this).

    Project rules see a single-file project.  Returns
    (findings, suppressed_count).
    """
    ctx = build_context(Path(path), source, module=module)
    active: List[Finding] = []
    suppressed = 0
    project = None
    for rule in (rules if rules is not None else ALL_RULES):
        if isinstance(rule, ProjectRule):
            if project is None:
                project = build_project([ctx])
            found, hidden = rule.run_project(project)
        else:
            found, hidden = rule.run(ctx)
        active.extend(found)
        suppressed += hidden
    active.sort(key=Finding.sort_key)
    return active, suppressed


def lint_paths(paths: Sequence[Path],
               rules: Optional[Sequence[Rule]] = None,
               baseline: Optional[Baseline] = None,
               root: Optional[Path] = None,
               report_only: Optional[Sequence[Path]] = None
               ) -> LintReport:
    """Lint files/directories; returns a :class:`LintReport`.

    With *report_only* (the ``--changed`` path set), every file under
    *paths* is still parsed — project rules need the whole call graph —
    but per-file rules run, and findings/warnings are reported, only
    for the listed files.
    """
    chosen = list(rules) if rules is not None else list(ALL_RULES)
    files = iter_python_files(paths)
    if root is None and len(paths) == 1 and paths[0].is_dir():
        root = paths[0].parent
    report = LintReport()
    contexts: List[LintContext] = []
    for file_path in files:
        try:
            source = file_path.read_text(encoding="utf-8")
            ctx = build_context(file_path, source, root=root)
        except (SyntaxError, UnicodeDecodeError) as exc:
            report.parse_errors.append(f"{file_path}: {exc}")
            continue
        contexts.append(ctx)
    restrict: Optional[List[str]] = None
    if report_only is not None:
        wanted = {p.resolve().as_posix() for p in report_only}
        restrict = [ctx.relpath for ctx in contexts
                    if ctx.path.resolve().as_posix() in wanted]
    checked = [ctx for ctx in contexts
               if restrict is None or ctx.relpath in restrict]
    report.files_checked = len(checked)

    file_rules = [r for r in chosen if not isinstance(r, ProjectRule)]
    project_rules = [r for r in chosen if isinstance(r, ProjectRule)]
    for rule in file_rules:
        start = time.perf_counter()
        for ctx in checked:
            found, hidden = rule.run(ctx)
            report.findings.extend(found)
            report.suppressed += hidden
        report.rule_seconds[rule.id] = \
            report.rule_seconds.get(rule.id, 0.0) + \
            (time.perf_counter() - start)
    if project_rules:
        project = build_project(contexts)
        for rule in project_rules:
            start = time.perf_counter()
            found, hidden = rule.run_project(project)
            if restrict is not None:
                found = [f for f in found if f.path in restrict]
            report.findings.extend(found)
            report.suppressed += hidden
            report.rule_seconds[rule.id] = \
                report.rule_seconds.get(rule.id, 0.0) + \
                (time.perf_counter() - start)
    report.findings.sort(key=Finding.sort_key)

    ran_ids = [rule.id for rule in chosen]
    for ctx in checked:
        for directive, unused_ids in ctx.suppressions.unused(ran_ids):
            report.unused_suppressions.append(UnusedSuppression(
                path=ctx.relpath, line=directive.line,
                rules=tuple(unused_ids)))
    report.unused_suppressions.sort(
        key=lambda u: (u.path, u.line, u.rules))

    if baseline is not None:
        new, grandfathered, stale = baseline.filter(report.findings)
        report.findings = new
        report.grandfathered = grandfathered
        report.stale_baseline = stale
    return report


# --------------------------------------------------------------------------
# --changed support
# --------------------------------------------------------------------------

def _git(args: List[str], cwd: Path) -> Optional[str]:
    try:
        proc = subprocess.run(["git"] + args, cwd=cwd,
                              capture_output=True, text=True)
    except OSError:
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout


def changed_files(ref: Optional[str],
                  paths: Sequence[Path]) -> Optional[List[Path]]:
    """Python files changed vs *ref* (plus untracked ones), or None if
    git is unavailable / no ref resolves.

    With ``ref=None`` tries ``origin/main``, then ``main``, then
    ``HEAD`` — so ``--changed`` works in fresh clones and detached CI
    checkouts alike.
    """
    anchor = paths[0] if paths else Path.cwd()
    cwd = anchor if anchor.is_dir() else anchor.parent
    top = _git(["rev-parse", "--show-toplevel"], cwd)
    if top is None:
        return None
    root = Path(top.strip())
    candidates = [ref] if ref is not None else ["origin/main", "main",
                                                "HEAD"]
    resolved: Optional[str] = None
    for candidate in candidates:
        if candidate is not None and _git(
                ["rev-parse", "--verify", "--quiet",
                 candidate], root) is not None:
            resolved = candidate
            break
    if resolved is None:
        return None
    listed = _git(["diff", "--name-only", "--diff-filter=d", resolved,
                   "--", "*.py"], root)
    untracked = _git(["ls-files", "--others", "--exclude-standard",
                      "--", "*.py"], root)
    if listed is None:
        return None
    names = [line.strip() for line in listed.splitlines()
             if line.strip()]
    if untracked is not None:
        names.extend(line.strip() for line in untracked.splitlines()
                     if line.strip())
    return [root / name for name in sorted(dict.fromkeys(names))]


# --------------------------------------------------------------------------
# CLI
# --------------------------------------------------------------------------

def default_lint_root() -> Path:
    """The installed ``repro`` package: what ``repro-sim lint`` checks
    when invoked with no paths."""
    import repro
    return Path(repro.__file__).parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim lint",
        description="simlint: determinism/config/counter static analysis "
                    "plus CFG/dataflow semantic rules for the simulator "
                    "(see docs/analysis.md)")
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to lint (default: the repro package)")
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        dest="output_format", help="report format (default: text)")
    parser.add_argument(
        "--select", default=None, metavar="IDS",
        help="comma-separated rule ids to run (default: all)")
    parser.add_argument(
        "--rule", default=None, metavar="IDS",
        help="synonym for --select (comma-separated rule ids)")
    parser.add_argument(
        "--changed", nargs="?", const="", default=None, metavar="REF",
        help="lint only files changed vs REF (default: origin/main, "
             "falling back to main, then HEAD)")
    parser.add_argument(
        "--baseline", type=Path, default=None, metavar="FILE",
        help="JSON baseline of grandfathered findings")
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write current findings to --baseline and exit 0")
    parser.add_argument(
        "--sarif-out", type=Path, default=None, metavar="FILE",
        help="additionally write a SARIF 2.1.0 report to FILE")
    parser.add_argument(
        "--timings", action="store_true",
        help="print per-rule wall time in the text report")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit")
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="include source snippets in the text report")
    return parser


def _list_rules() -> str:
    lines = []
    for rule in ALL_RULES:
        lines.append(f"{rule.id}  {rule.name}")
        lines.append(f"    {rule.rationale}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0
    rules: Optional[List[Rule]] = None
    selected = args.select or args.rule
    if selected:
        try:
            rules = [rule_by_id(rule_id.strip())
                     for rule_id in selected.split(",")
                     if rule_id.strip()]
        except KeyError as exc:
            print(f"simlint: {exc.args[0]}", file=sys.stderr)
            return 2
    paths = args.paths or [default_lint_root()]

    report_only: Optional[List[Path]] = None
    if args.changed is not None:
        ref = args.changed or None
        report_only = changed_files(ref, paths)
        if report_only is None:
            print("simlint: --changed requires a git checkout with a "
                  "resolvable ref (origin/main, main, or HEAD)",
                  file=sys.stderr)
            return 2

    if args.write_baseline:
        if args.baseline is None:
            print("--write-baseline requires --baseline FILE",
                  file=sys.stderr)
            return 2
        report = lint_paths(paths, rules=rules,
                            report_only=report_only)
        Baseline.from_findings(report.findings).dump(args.baseline)
        print(f"wrote {len(report.findings)} finding(s) to "
              f"{args.baseline}")
        return 0

    baseline = None
    if args.baseline is not None and args.baseline.exists():
        baseline = Baseline.load(args.baseline)
    report = lint_paths(paths, rules=rules, baseline=baseline,
                        report_only=report_only)
    chosen = rules if rules is not None else list(ALL_RULES)
    if args.sarif_out is not None:
        args.sarif_out.write_text(render_sarif(report, chosen),
                                  encoding="utf-8")
    if args.output_format == "json":
        print(render_json(report))
    elif args.output_format == "sarif":
        print(render_sarif(report, chosen))
    else:
        print(render_text(report, verbose=args.verbose,
                          timings=args.timings))
    for error in report.parse_errors:
        print(f"simlint: parse error: {error}", file=sys.stderr)
    return 0 if report.clean else 1


if __name__ == "__main__":                          # pragma: no cover
    sys.exit(main())
