"""simlint driver: walk files, apply rules, filter, report.

``lint_paths`` is the programmatic entry point (the tier-1 repo-clean
test calls it directly); ``main`` backs both ``python -m repro.analysis``
and the ``repro-sim lint`` subcommand.
"""

from __future__ import annotations

import argparse
import ast
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from .baseline import Baseline
from .core import Finding, LintContext, Rule, module_name_for, \
    parse_suppressions
from .report import render_json, render_text
from .rules import ALL_RULES, rule_by_id

__all__ = ["LintReport", "lint_paths", "lint_source", "main"]


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    grandfathered: int = 0
    stale_baseline: List[str] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings and not self.parse_errors


def iter_python_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(p for p in path.rglob("*.py")
                         if "__pycache__" not in p.parts)
        elif path.suffix == ".py":
            files.append(path)
    return sorted(set(files))


def _relpath(path: Path, root: Optional[Path]) -> str:
    if root is not None:
        try:
            return path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    return path.as_posix()


def build_context(path: Path, source: str,
                  root: Optional[Path] = None,
                  module: Optional[str] = None) -> LintContext:
    lines = source.splitlines()
    tree = ast.parse(source, filename=str(path))
    return LintContext(
        path=path,
        relpath=_relpath(path, root),
        module=module if module is not None else module_name_for(path),
        source=source,
        lines=lines,
        tree=tree,
        suppressions=parse_suppressions(lines),
    )


def lint_source(source: str, rules: Optional[Sequence[Rule]] = None,
                module: str = "snippet",
                path: str = "<snippet>") -> Tuple[List[Finding], int]:
    """Lint an in-memory snippet (the rule-fixture tests use this).

    Returns (findings, suppressed_count).
    """
    ctx = build_context(Path(path), source, module=module)
    active: List[Finding] = []
    suppressed = 0
    for rule in (rules if rules is not None else ALL_RULES):
        found, hidden = rule.run(ctx)
        active.extend(found)
        suppressed += hidden
    active.sort(key=Finding.sort_key)
    return active, suppressed


def lint_paths(paths: Sequence[Path],
               rules: Optional[Sequence[Rule]] = None,
               baseline: Optional[Baseline] = None,
               root: Optional[Path] = None) -> LintReport:
    """Lint files/directories; returns a :class:`LintReport`."""
    chosen = list(rules) if rules is not None else list(ALL_RULES)
    files = iter_python_files(paths)
    if root is None and len(paths) == 1 and paths[0].is_dir():
        root = paths[0].parent
    report = LintReport()
    for file_path in files:
        try:
            source = file_path.read_text(encoding="utf-8")
            ctx = build_context(file_path, source, root=root)
        except (SyntaxError, UnicodeDecodeError) as exc:
            report.parse_errors.append(f"{file_path}: {exc}")
            continue
        report.files_checked += 1
        for rule in chosen:
            found, hidden = rule.run(ctx)
            report.findings.extend(found)
            report.suppressed += hidden
    report.findings.sort(key=Finding.sort_key)
    if baseline is not None:
        new, grandfathered, stale = baseline.filter(report.findings)
        report.findings = new
        report.grandfathered = grandfathered
        report.stale_baseline = stale
    return report


# --------------------------------------------------------------------------
# CLI
# --------------------------------------------------------------------------

def default_lint_root() -> Path:
    """The installed ``repro`` package: what ``repro-sim lint`` checks
    when invoked with no paths."""
    import repro
    return Path(repro.__file__).parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim lint",
        description="simlint: determinism/config/counter static analysis "
                    "for the simulator (see docs/analysis.md)")
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to lint (default: the repro package)")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        dest="output_format", help="report format (default: text)")
    parser.add_argument(
        "--select", default=None, metavar="IDS",
        help="comma-separated rule ids to run (default: all)")
    parser.add_argument(
        "--baseline", type=Path, default=None, metavar="FILE",
        help="JSON baseline of grandfathered findings")
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write current findings to --baseline and exit 0")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit")
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="include source snippets in the text report")
    return parser


def _list_rules() -> str:
    lines = []
    for rule in ALL_RULES:
        lines.append(f"{rule.id}  {rule.name}")
        lines.append(f"    {rule.rationale}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0
    rules: Optional[List[Rule]] = None
    if args.select:
        rules = [rule_by_id(rule_id.strip())
                 for rule_id in args.select.split(",") if rule_id.strip()]
    paths = args.paths or [default_lint_root()]

    if args.write_baseline:
        if args.baseline is None:
            print("--write-baseline requires --baseline FILE",
                  file=sys.stderr)
            return 2
        report = lint_paths(paths, rules=rules)
        Baseline.from_findings(report.findings).dump(args.baseline)
        print(f"wrote {len(report.findings)} finding(s) to "
              f"{args.baseline}")
        return 0

    baseline = None
    if args.baseline is not None and args.baseline.exists():
        baseline = Baseline.load(args.baseline)
    report = lint_paths(paths, rules=rules, baseline=baseline)
    if args.output_format == "json":
        print(render_json(report))
    else:
        print(render_text(report, verbose=args.verbose))
    for error in report.parse_errors:
        print(f"simlint: parse error: {error}", file=sys.stderr)
    return 0 if report.clean else 1


if __name__ == "__main__":                          # pragma: no cover
    sys.exit(main())
