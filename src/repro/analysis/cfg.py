"""Per-function control-flow graphs over Python AST.

The dataflow rules (PUR001/TIME001/GRD001) need two facts a flat AST
walk cannot provide: *which tests dominate a statement* (so an
``self.observer.on_x(...)`` call inside ``if observer is not None:`` is
distinguishable from an unguarded one, including the early-return shape
``if not ok: return`` / mutate-after) and *which definitions reach a
use* (so ``ifetch = self.mem.ifetch; ifetch(cycle, line)`` resolves to
the memory API it aliases).  This module builds the CFG; the solvers
live in :mod:`repro.analysis.dataflow`.

Design notes:

* Edges carry the branch **test expression** but not its polarity.  A
  statement is treated as guarded by a test whenever it is
  control-dependent on it — loose, but exactly right for lint: the
  interesting question is "did the author *consider* capacity/level
  here", not "which arm am I in".
* ``return`` / ``raise`` / ``break`` / ``continue`` terminate their
  block, which is what makes early-return guards dominate the join
  block after the ``if``.
* ``try`` bodies conservatively edge into every handler from both the
  pre-``try`` state and the body (partial execution), so handler code
  claims neither guards nor definitions it might not have.
* ``with`` bodies run unconditionally and stay in the current block.
* ``assert cond`` splits the block and guards everything after it.

The graph is deterministic by construction (block ids are allocation
order, edge lists are append order) — simlint lints itself, so no rule
may iterate an unordered container.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union

__all__ = [
    "BasicBlock",
    "CFG",
    "Edge",
    "FunctionNode",
    "build_cfg",
    "iter_function_defs",
    "stmt_expressions",
]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass
class BasicBlock:
    """A maximal straight-line statement sequence."""

    id: int
    stmts: List[ast.stmt] = field(default_factory=list)


@dataclass(frozen=True)
class Edge:
    src: int
    dst: int
    #: branch test controlling this edge; ``None`` for unconditional
    #: (and for loop-iteration edges, which guard nothing).
    cond: Optional[ast.expr] = None


@dataclass
class CFG:
    """Control-flow graph of one function body."""

    func: FunctionNode
    blocks: Dict[int, BasicBlock]
    edges: List[Edge]
    entry: int
    exit: int
    #: ``id(stmt) -> block id`` for every statement in the function.
    #: Compound statements map to the block that evaluates their test.
    block_of: Dict[int, int]

    def preds(self, block_id: int) -> List[Edge]:
        return [e for e in self.edges if e.dst == block_id]

    def succs(self, block_id: int) -> List[Edge]:
        return [e for e in self.edges if e.src == block_id]

    def block_ids(self) -> List[int]:
        return sorted(self.blocks)


class _Builder:
    def __init__(self, func: FunctionNode) -> None:
        self.func = func
        self.blocks: Dict[int, BasicBlock] = {}
        self.edges: List[Edge] = []
        self.block_of: Dict[int, int] = {}
        #: (continue target, break target) per enclosing loop
        self.loop_stack: List[Tuple[int, int]] = []
        self.entry = self.new_block()
        self.exit = self.new_block()

    def new_block(self) -> int:
        block_id = len(self.blocks)
        self.blocks[block_id] = BasicBlock(id=block_id)
        return block_id

    def edge(self, src: int, dst: int,
             cond: Optional[ast.expr] = None) -> None:
        self.edges.append(Edge(src=src, dst=dst, cond=cond))

    def place(self, stmt: ast.stmt, block_id: int) -> None:
        self.blocks[block_id].stmts.append(stmt)
        self.block_of[id(stmt)] = block_id

    # ------------------------------------------------------------------
    def build(self) -> CFG:
        end = self.visit_body(self.func.body, self.entry)
        if end is not None:
            self.edge(end, self.exit)
        return CFG(func=self.func, blocks=self.blocks, edges=self.edges,
                   entry=self.entry, exit=self.exit,
                   block_of=self.block_of)

    def visit_body(self, stmts: List[ast.stmt],
                   current: int) -> Optional[int]:
        """Thread *stmts* through the graph; returns the open block at
        the end of the sequence, or ``None`` if every path terminated."""
        open_block: Optional[int] = current
        for stmt in stmts:
            if open_block is None:
                # unreachable code after return/raise/break — still
                # place it so block_of is total (guards default to TOP).
                open_block = self.new_block()
            open_block = self.visit_stmt(stmt, open_block)
        return open_block

    def visit_stmt(self, stmt: ast.stmt, current: int) -> Optional[int]:
        if isinstance(stmt, ast.If):
            return self._visit_if(stmt, current)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._visit_loop(stmt, current)
        if isinstance(stmt, ast.Try):
            return self._visit_try(stmt, current)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self.place(stmt, current)
            return self.visit_body(stmt.body, current)
        if isinstance(stmt, ast.Assert):
            self.place(stmt, current)
            after = self.new_block()
            self.edge(current, after, cond=stmt.test)
            return after
        if isinstance(stmt, (ast.Return, ast.Raise)):
            self.place(stmt, current)
            self.edge(current, self.exit)
            return None
        if isinstance(stmt, ast.Break):
            self.place(stmt, current)
            if self.loop_stack:
                self.edge(current, self.loop_stack[-1][1])
            return None
        if isinstance(stmt, ast.Continue):
            self.place(stmt, current)
            if self.loop_stack:
                self.edge(current, self.loop_stack[-1][0])
            return None
        match_cls = getattr(ast, "Match", None)
        if match_cls is not None and isinstance(stmt, match_cls):
            return self._visit_match(stmt, current)
        # plain statement (incl. nested def/class, treated as opaque)
        self.place(stmt, current)
        return current

    def _visit_if(self, stmt: ast.If, current: int) -> Optional[int]:
        self.place(stmt, current)
        then_block = self.new_block()
        self.edge(current, then_block, cond=stmt.test)
        then_end = self.visit_body(stmt.body, then_block)
        else_end: Optional[int] = None
        has_else = bool(stmt.orelse)
        if has_else:
            else_block = self.new_block()
            self.edge(current, else_block, cond=stmt.test)
            else_end = self.visit_body(stmt.orelse, else_block)
        if then_end is None and else_end is None and has_else:
            return None
        join = self.new_block()
        if not has_else:
            # fall-through when the test failed: this edge is what makes
            # `if bad: return` guard everything after the if.
            self.edge(current, join, cond=stmt.test)
        if then_end is not None:
            self.edge(then_end, join)
        if else_end is not None:
            self.edge(else_end, join)
        return join

    def _visit_loop(self, stmt: Union[ast.While, ast.For, ast.AsyncFor],
                    current: int) -> Optional[int]:
        header = self.new_block()
        self.place(stmt, header)
        self.edge(current, header)
        body_block = self.new_block()
        after = self.new_block()
        if isinstance(stmt, ast.While):
            self.edge(header, body_block, cond=stmt.test)
            infinite = (isinstance(stmt.test, ast.Constant)
                        and bool(stmt.test.value))
            if not infinite:
                self.edge(header, after, cond=stmt.test)
        else:
            self.edge(header, body_block)
            self.edge(header, after)
        self.loop_stack.append((header, after))
        body_end = self.visit_body(stmt.body, body_block)
        self.loop_stack.pop()
        if body_end is not None:
            self.edge(body_end, header)
        if stmt.orelse:
            return self.visit_body(stmt.orelse, after)
        return after

    def _visit_try(self, stmt: ast.Try, current: int) -> Optional[int]:
        self.place(stmt, current)
        body_block = self.new_block()
        self.edge(current, body_block)
        body_end = self.visit_body(stmt.body, body_block)
        ends: List[int] = []
        for handler in stmt.handlers:
            handler_block = self.new_block()
            # an exception may fire before the body ran at all, or
            # after it partially ran — edge from both states.
            self.edge(current, handler_block)
            self.edge(body_block, handler_block)
            if body_end is not None:
                self.edge(body_end, handler_block)
            handler_end = self.visit_body(handler.body, handler_block)
            if handler_end is not None:
                ends.append(handler_end)
        if body_end is not None and stmt.orelse:
            body_end = self.visit_body(stmt.orelse, body_end)
        if body_end is not None:
            ends.append(body_end)
        if stmt.finalbody:
            final_block = self.new_block()
            for end in ends:
                self.edge(end, final_block)
            if not ends:
                # all paths raised/returned; finally still runs.
                self.edge(current, final_block)
            return self.visit_body(stmt.finalbody, final_block)
        if not ends:
            return None
        join = self.new_block()
        for end in ends:
            self.edge(end, join)
        return join

    def _visit_match(self, stmt: ast.stmt, current: int) -> Optional[int]:
        self.place(stmt, current)
        join = self.new_block()
        self.edge(current, join)        # no case matched
        for case in getattr(stmt, "cases", []):
            case_block = self.new_block()
            self.edge(current, case_block)
            case_end = self.visit_body(case.body, case_block)
            if case_end is not None:
                self.edge(case_end, join)
        return join


def build_cfg(func: FunctionNode) -> CFG:
    """Build the control-flow graph of *func*'s body."""
    return _Builder(func).build()


def iter_function_defs(tree: ast.AST) -> Iterator[FunctionNode]:
    """Every function/method in *tree*, including nested ones, in
    source order."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def stmt_expressions(stmt: ast.stmt) -> List[ast.AST]:
    """All expression-level nodes belonging *directly* to *stmt*.

    Descends through expressions (which cannot contain statements) but
    not into child statement bodies, so a node found here genuinely
    executes in *stmt*'s basic block.
    """
    roots: List[ast.AST] = []
    for _field_name, value in ast.iter_fields(stmt):
        if isinstance(value, ast.expr):
            roots.append(value)
        elif isinstance(value, list):
            roots.extend(v for v in value if isinstance(v, ast.expr))
    nodes: List[ast.AST] = []
    for root in roots:
        nodes.extend(ast.walk(root))
    return nodes
