"""simlint framework: findings, rules, lint context, suppressions.

A :class:`Rule` inspects one module's AST and yields :class:`Finding`
objects.  The :class:`LintContext` hands every rule the same parsed
tree, source lines, and the module's dotted name (``repro.cdf.cct``),
which is what allowlists and the layering rule key on.

Suppression syntax (checked per physical line of the flagged node's
span, so multi-line statements can carry the directive on any of their
lines)::

    for t in set(xs):          # simlint: disable=DET002  <reason>
    # simlint: disable-next=DET002  <reason>
    for t in set(xs):
    # simlint: disable-file=DET003  <reason>   (anywhere in the file)

``disable=all`` silences every rule for the line.  Suppressions are
counted and surfaced in reports so they stay visible, not buried.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterator, List, Sequence, \
    Set, Tuple

if TYPE_CHECKING:                                   # pragma: no cover
    from .callgraph import ProjectContext

__all__ = [
    "Directive",
    "Finding",
    "LintContext",
    "ProjectRule",
    "Rule",
    "Suppressions",
    "parse_suppressions",
]

_DIRECTIVE_RE = re.compile(
    r"#\s*simlint:\s*(disable|disable-next|disable-file)\s*=\s*"
    r"([A-Za-z0-9_,\s]+?)\s*(?:\s[^,].*)?$")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str                 # POSIX-style path, relative to the lint root
    line: int                 # 1-based
    col: int                  # 0-based
    message: str
    snippet: str = ""         # stripped source line, for reports/baselines
    #: last physical line of the flagged node (suppression directives on
    #: any line of a multi-line statement count); 0 means same as `line`
    end_line: int = 0

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
        }

    def baseline_key(self) -> str:
        """Line-number-insensitive identity used by the baseline file.

        Keyed on (rule, path, snippet) so grandfathered findings survive
        unrelated edits that shift line numbers, but a *new* instance of
        the same rule in the same file on a different line still fires.
        """
        return f"{self.rule}::{self.path}::{self.snippet}"

    def render(self) -> str:
        location = f"{self.path}:{self.line}:{self.col + 1}"
        return f"{location}: {self.rule} {self.message}"


@dataclass
class Directive:
    """One ``# simlint: disable...`` comment, with usage tracking.

    A directive that never suppressed a finding for any rule that
    actually ran is *stale* — dead weight that hides future findings —
    and is surfaced as an unused-suppression warning by the runner.
    """

    line: int                     # line the comment sits on (1-based)
    kind: str                     # disable | disable-next | disable-file
    rules: Tuple[str, ...]        # rule ids, possibly including 'all'
    #: rule ids this directive actually suppressed during the run
    used_for: Set[str] = field(default_factory=set)

    def matches(self, rule_id: str) -> bool:
        return rule_id in self.rules or "all" in self.rules

    def unused_rules(self, ran_rule_ids: Sequence[str]) -> List[str]:
        """Rule ids listed here that ran but suppressed nothing
        (``'all'`` is unused only if nothing at all was suppressed)."""
        unused: List[str] = []
        for rule_id in self.rules:
            if rule_id == "all":
                if ran_rule_ids and not self.used_for:
                    unused.append("all")
            elif rule_id in ran_rule_ids and rule_id not in self.used_for:
                unused.append(rule_id)
        return unused


@dataclass
class Suppressions:
    """Per-file suppression directives parsed from comments."""

    directives: List[Directive] = field(default_factory=list)
    #: effective line (1-based) -> directives applying to that line
    by_line: Dict[int, List[Directive]] = field(default_factory=dict)
    #: directives suppressing for the whole file
    file_wide: List[Directive] = field(default_factory=list)

    def add(self, directive: Directive) -> None:
        self.directives.append(directive)
        if directive.kind == "disable-file":
            self.file_wide.append(directive)
        else:
            offset = 1 if directive.kind == "disable-next" else 0
            self.by_line.setdefault(directive.line + offset,
                                    []).append(directive)

    def is_suppressed(self, rule_id: str, first_line: int,
                      last_line: int) -> bool:
        hit = False
        for directive in self.file_wide:
            if directive.matches(rule_id):
                directive.used_for.add(rule_id)
                hit = True
        if hit:
            return True
        for line in range(first_line, last_line + 1):
            for directive in self.by_line.get(line, []):
                if directive.matches(rule_id):
                    directive.used_for.add(rule_id)
                    hit = True
        return hit

    def unused(self, ran_rule_ids: Sequence[str]
               ) -> List[Tuple[Directive, List[str]]]:
        """(directive, unused rule ids) pairs for stale directives."""
        stale: List[Tuple[Directive, List[str]]] = []
        for directive in self.directives:
            unused_ids = directive.unused_rules(ran_rule_ids)
            if unused_ids:
                stale.append((directive, unused_ids))
        return stale


def _iter_comments(lines: Sequence[str]) -> List[Tuple[int, str]]:
    """(lineno, text) of every real comment token.

    Tokenizing (rather than regex-scanning raw lines) keeps directives
    quoted inside strings/docstrings — like the examples in this very
    module's docstring — from being parsed as live suppressions, which
    matters now that unused directives are reported.
    """
    source = "\n".join(lines) + "\n"
    try:
        return [(token.start[0], token.string)
                for token in tokenize.generate_tokens(
                    io.StringIO(source).readline)
                if token.type == tokenize.COMMENT]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Unparseable source: fall back to raw lines so suppressions
        # still work (the file will fail with a parse error anyway).
        return list(enumerate(lines, start=1))


def parse_suppressions(lines: Sequence[str]) -> Suppressions:
    """Extract ``# simlint:`` directives from source comments."""
    supp = Suppressions()
    for lineno, text in _iter_comments(lines):
        match = _DIRECTIVE_RE.search(text)
        if match is None:
            continue
        ids = [part.strip() for part in match.group(2).split(",")
               if part.strip()]
        if not ids:
            continue
        supp.add(Directive(line=lineno, kind=match.group(1),
                           rules=tuple(ids)))
    return supp


@dataclass
class LintContext:
    """Everything a rule needs to inspect one module."""

    path: Path                # absolute path on disk
    relpath: str              # POSIX path relative to the lint root
    module: str               # dotted module name, e.g. 'repro.cdf.cct'
    source: str
    lines: List[str]
    tree: ast.AST
    suppressions: Suppressions

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def finding(self, rule: "Rule", node: ast.AST,
                message: str) -> Finding:
        first, last = node_span(node)
        col = getattr(node, "col_offset", 0)
        return Finding(rule=rule.id, path=self.relpath, line=first,
                       col=col, message=message,
                       snippet=self.line_text(first), end_line=last)


def module_name_for(path: Path) -> str:
    """Derive a dotted module name from a file path.

    Walks the path components looking for the ``repro`` package root so
    both ``src/repro/cdf/cct.py`` and an installed
    ``.../site-packages/repro/cdf/cct.py`` map to ``repro.cdf.cct``.
    Files outside any ``repro`` tree fall back to their stem.
    """
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return ".".join(parts[index:])
    return parts[-1] if parts else ""


class Rule:
    """Base class: one named, documented invariant over a module AST.

    Subclasses set ``id`` / ``name`` / ``rationale`` and implement
    :meth:`check`.  Rules must be deterministic themselves: iterate
    sorted structures, never sets (simlint lints its own source).
    """

    id: str = "RULE000"
    name: str = "unnamed"
    #: One paragraph: why violating this breaks the simulator contract.
    rationale: str = ""

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        raise NotImplementedError
        yield  # pragma: no cover

    # ------------------------------------------------------------------
    def run(self, ctx: LintContext) -> Tuple[List[Finding], int]:
        """Apply the rule; returns (active findings, suppressed count)."""
        active: List[Finding] = []
        suppressed = 0
        for finding in self.check(ctx):
            end_line = finding.end_line or finding.line
            if ctx.suppressions.is_suppressed(self.id, finding.line,
                                              end_line):
                suppressed += 1
            else:
                active.append(finding)
        return active, suppressed


class ProjectRule(Rule):
    """A rule over the *whole* linted file set, not one module.

    Per-file rules see one AST; project rules (reachability, caller
    audits, inheritance contracts) get a
    :class:`~repro.analysis.callgraph.ProjectContext` indexing every
    linted module.  Findings still land in individual files, so the
    per-file suppression directives apply unchanged.
    """

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        """Project rules contribute nothing in the per-file pass."""
        return iter(())

    def check_project(self,
                      project: "ProjectContext") -> Iterator[Finding]:
        raise NotImplementedError
        yield  # pragma: no cover

    def run_project(self, project: "ProjectContext"
                    ) -> Tuple[List[Finding], int]:
        """Apply over the project; per-file suppressions still count."""
        active: List[Finding] = []
        suppressed = 0
        for finding in self.check_project(project):
            ctx = project.by_relpath.get(finding.path)
            end_line = finding.end_line or finding.line
            if ctx is not None and ctx.suppressions.is_suppressed(
                    self.id, finding.line, end_line):
                suppressed += 1
            else:
                active.append(finding)
        return active, suppressed


def node_span(node: ast.AST) -> Tuple[int, int]:
    """(first, last) physical line of *node*, tolerant of old ASTs."""
    first = getattr(node, "lineno", 1)
    last = getattr(node, "end_lineno", None) or first
    return first, last
