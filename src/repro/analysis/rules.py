"""The simlint rule catalogue.

Eight domain-specific rules, each enforcing one clause of the simulator
determinism/correctness contract that the result cache relies on.  The
catalogue table in ``docs/analysis.md`` mirrors the ``id``/``name``/
``rationale`` attributes below.

Rules are syntactic (single-module AST), deliberately: they must run in
milliseconds in CI and never depend on import order or installed state.
Where a rule needs repository-wide knowledge (STAT001's counter names)
it reads the same declarative registry the runtime uses, so the static
and dynamic checks cannot drift apart.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, FrozenSet, Iterator, List, Optional, Sequence

from .core import Finding, LintContext, Rule

__all__ = ["ALL_RULES", "rule_by_id"]


# --------------------------------------------------------------------------
# shared helpers
# --------------------------------------------------------------------------

def _dotted(node: ast.AST) -> Optional[str]:
    """Render an Attribute/Name chain as 'a.b.c' (None if not a chain)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _root_name(node: ast.AST) -> Optional[str]:
    """Leftmost Name of an attribute/subscript chain ('cfg.core.x'->'cfg')."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_module(module: str, candidates: Sequence[str]) -> bool:
    """True if *module* is any candidate or lives inside one."""
    for candidate in candidates:
        if module == candidate or module.startswith(candidate + "."):
            return True
    return False


# --------------------------------------------------------------------------
# DET001 — unseeded RNG
# --------------------------------------------------------------------------

class UnseededRandomRule(Rule):
    id = "DET001"
    name = "unseeded-random"
    rationale = (
        "Module-level `random.*` / `numpy.random.*` functions draw from "
        "hidden global state, so results depend on import order and on "
        "every other caller of the global RNG.  All randomness must flow "
        "through an explicitly seeded generator (`random.Random(seed)` "
        "via `workloads.base.make_rng`, or `numpy.random.default_rng`)."
    )

    _ALLOWED_RANDOM = frozenset({"Random", "SystemRandom"})
    _ALLOWED_NUMPY = frozenset({
        "default_rng", "Generator", "RandomState", "SeedSequence",
        "PCG64", "Philox",
    })

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        numpy_aliases = {"numpy"}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy" and alias.asname:
                        numpy_aliases.add(alias.asname)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.level == 0:
                yield from self._check_import_from(ctx, node)
            elif isinstance(node, ast.Attribute):
                yield from self._check_attribute(ctx, node, numpy_aliases)

    def _check_import_from(self, ctx: LintContext,
                           node: ast.ImportFrom) -> Iterator[Finding]:
        if node.module == "random":
            bad = sorted(alias.name for alias in node.names
                         if alias.name not in self._ALLOWED_RANDOM)
            if bad:
                yield ctx.finding(self, node, (
                    f"importing global-state RNG function(s) "
                    f"{', '.join(bad)} from `random`; construct a seeded "
                    f"`random.Random` (see workloads.base.make_rng)"))
        elif node.module and node.module.startswith("numpy.random"):
            bad = sorted(alias.name for alias in node.names
                         if alias.name not in self._ALLOWED_NUMPY)
            if bad:
                yield ctx.finding(self, node, (
                    f"importing global-state RNG function(s) "
                    f"{', '.join(bad)} from `numpy.random`; use "
                    f"`numpy.random.default_rng(seed)`"))

    def _check_attribute(self, ctx: LintContext, node: ast.Attribute,
                         numpy_aliases: FrozenSet[str]) -> Iterator[Finding]:
        dotted = _dotted(node)
        if dotted is None:
            return
        parts = dotted.split(".")
        if parts[0] == "random" and len(parts) == 2 \
                and parts[1] not in self._ALLOWED_RANDOM:
            yield ctx.finding(self, node, (
                f"`{dotted}` uses the process-global RNG; thread a seeded "
                f"`random.Random` through instead (workloads.base.make_rng)"))
        elif len(parts) >= 3 and parts[0] in numpy_aliases \
                and parts[1] == "random" \
                and parts[2] not in self._ALLOWED_NUMPY:
            yield ctx.finding(self, node, (
                f"`{dotted}` uses numpy's global RNG; use "
                f"`numpy.random.default_rng(seed)`"))


# --------------------------------------------------------------------------
# DET002 — hash-order iteration
# --------------------------------------------------------------------------

class SetIterationRule(Rule):
    id = "DET002"
    name = "set-iteration"
    rationale = (
        "Iterating a `set`/`frozenset` (or anything built from one) "
        "visits elements in hash order, which for str keys varies with "
        "PYTHONHASHSEED — trace generation and timing loops become "
        "run-dependent while every individual value still looks right.  "
        "Dedup with `sorted(...)` or first-seen order via "
        "`dict.fromkeys(...)` instead."
    )

    #: Wrappers whose result is order-insensitive: consuming a set
    #: through these is fine.
    _ORDER_SAFE = frozenset({
        "sorted", "len", "sum", "min", "max", "any", "all", "set",
        "frozenset", "bool",
    })
    #: Wrappers that preserve (and therefore leak) iteration order.
    _ORDER_LEAKY = frozenset({"list", "tuple", "enumerate", "iter",
                              "reversed"})

    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id in ("set", "frozenset"):
            return True
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)):
            # set algebra: a & b, a | b, a - b, a ^ b on set operands
            return self._is_set_expr(node.left) \
                or self._is_set_expr(node.right)
        return False

    def _describe(self, node: ast.AST) -> str:
        if isinstance(node, ast.SetComp):
            return "a set comprehension"
        if isinstance(node, ast.Set):
            return "a set literal"
        return "a set()"

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if self._is_set_expr(node.iter):
                    yield ctx.finding(self, node.iter, (
                        f"iterating {self._describe(node.iter)} visits "
                        f"elements in hash order; use sorted(...) or "
                        f"dict.fromkeys(...) for a deterministic order"))
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for gen in node.generators:
                    if self._is_set_expr(gen.iter):
                        yield ctx.finding(self, gen.iter, (
                            f"comprehension iterates "
                            f"{self._describe(gen.iter)} in hash order; "
                            f"use sorted(...) or dict.fromkeys(...)"))
            elif isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)

    def _check_call(self, ctx: LintContext,
                    node: ast.Call) -> Iterator[Finding]:
        func = node.func
        leaky = (isinstance(func, ast.Name) and func.id in self._ORDER_LEAKY)
        if isinstance(func, ast.Attribute) and func.attr in ("join",
                                                             "fromkeys"):
            leaky = True
        if not leaky:
            return
        for arg in node.args:
            if self._is_set_expr(arg):
                name = func.id if isinstance(func, ast.Name) else func.attr
                yield ctx.finding(self, arg, (
                    f"`{name}(...)` materialises {self._describe(arg)} in "
                    f"hash order; sort or dedup deterministically first"))


# --------------------------------------------------------------------------
# DET003 — wall clock in simulated state
# --------------------------------------------------------------------------

class WallClockRule(Rule):
    id = "DET003"
    name = "wall-clock"
    rationale = (
        "Wall-clock reads (`time.time`, `perf_counter`, `datetime.now`) "
        "differ on every run; any value derived from them that reaches "
        "simulated state or results breaks bit-reproducibility and "
        "poisons the content-addressed cache.  Only the harness's "
        "telemetry layer (engine/report timing lines on stderr) may "
        "touch the clock."
    )

    #: Telemetry modules allowed to read the clock (timings are printed,
    #: never mixed into simulated state or cached results).
    ALLOWED_MODULES = (
        "repro.harness.engine",
        "repro.harness.figures",
        "repro.harness.perfbench",
        "repro.harness.report",
        # the sweep service supervises real processes: heartbeat aging,
        # poll sleeps, and wall-clock report lines are operational
        # telemetry, never simulated state (journal records and job
        # results stay clock-free — see repro.harness.journal)
        "repro.harness.service",
        # per-rule lint timings are telemetry printed in the report,
        # never simulated state
        "repro.analysis.runner",
    )

    _CLOCK_FUNCS = frozenset({
        "time", "time_ns", "perf_counter", "perf_counter_ns",
        "monotonic", "monotonic_ns", "process_time", "process_time_ns",
        "clock",
    })
    _DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if _is_module(ctx.module, self.ALLOWED_MODULES):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.level == 0 \
                    and node.module == "time":
                bad = sorted(alias.name for alias in node.names
                             if alias.name in self._CLOCK_FUNCS)
                if bad:
                    yield ctx.finding(self, node, (
                        f"importing wall-clock function(s) "
                        f"{', '.join(bad)}; simulator code must be a pure "
                        f"function of its inputs (allowlisted: "
                        f"{', '.join(self.ALLOWED_MODULES)})"))
            elif isinstance(node, ast.Attribute):
                dotted = _dotted(node)
                if dotted is None:
                    continue
                parts = dotted.split(".")
                if parts[0] == "time" and len(parts) == 2 \
                        and parts[1] in self._CLOCK_FUNCS:
                    yield ctx.finding(self, node, (
                        f"`{dotted}` reads the wall clock inside simulator "
                        f"code; simulated time must come from the cycle "
                        f"model, not the host"))
                elif parts[-1] in self._DATETIME_FUNCS \
                        and "datetime" in parts[:-1]:
                    yield ctx.finding(self, node, (
                        f"`{dotted}` reads the wall clock inside simulator "
                        f"code; results must not depend on when they were "
                        f"computed"))


# --------------------------------------------------------------------------
# CFG001 — caller-config mutation
# --------------------------------------------------------------------------

class ConfigMutationRule(Rule):
    id = "CFG001"
    name = "config-mutation"
    rationale = (
        "A `SimConfig` received as a parameter is owned by the caller — "
        "sweeps share one config object across many jobs, so assigning "
        "to its attributes leaks state into *other* simulations (the "
        "exact bug PR 1 fixed in run_benchmark).  Copy first: "
        "`config = copy.deepcopy(config)` or `dataclasses.replace(...)`."
    )

    #: Parameter names presumed to carry a caller-owned config.
    _CONFIG_PARAM_NAMES = frozenset({"config", "cfg", "sim_config",
                                     "simconfig"})
    ALLOWED_MODULES = ("repro.config",)

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if _is_module(ctx.module, self.ALLOWED_MODULES):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, node)

    def _config_params(self, func: ast.AST) -> FrozenSet[str]:
        args = func.args  # type: ignore[attr-defined]
        names = []
        for arg in (list(args.posonlyargs) + list(args.args)
                    + list(args.kwonlyargs)):
            hint = ""
            if arg.annotation is not None:
                hint = ast.dump(arg.annotation)
            if arg.arg in self._CONFIG_PARAM_NAMES \
                    or "SimConfig" in hint:
                names.append(arg.arg)
        return frozenset(names)

    def _check_function(self, ctx: LintContext,
                        func: ast.AST) -> Iterator[Finding]:
        params = self._config_params(func)
        if not params:
            return
        # A parameter rebound anywhere in the function (the deepcopy /
        # replace idiom) is treated as locally owned from then on.
        rebound = set()
        for node in ast.walk(func):
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)) \
                    and isinstance(node.target, ast.Name):
                targets = [node.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id in params:
                    rebound.add(target.id)
        live = params - rebound
        if not live:
            return
        for node in ast.walk(func):
            target = None
            if isinstance(node, ast.Assign):
                for tgt in node.targets:
                    if isinstance(tgt, ast.Attribute):
                        target = tgt
                        break
            elif isinstance(node, ast.AugAssign) \
                    and isinstance(node.target, ast.Attribute):
                target = node.target
            elif isinstance(node, ast.AnnAssign) \
                    and isinstance(node.target, ast.Attribute):
                target = node.target
            if target is None:
                continue
            root = _root_name(target)
            if root in live:
                dotted = _dotted(target) or root
                yield ctx.finding(self, node, (
                    f"assignment to `{dotted}` mutates the caller-supplied "
                    f"config parameter `{root}`; deepcopy or "
                    f"dataclasses.replace it first"))


# --------------------------------------------------------------------------
# STAT001 — counter keys must be registered
# --------------------------------------------------------------------------

class CounterRegistryRule(Rule):
    id = "STAT001"
    name = "counter-registry"
    rationale = (
        "`Counters` is a string-keyed bag: a typo'd key silently "
        "fabricates a new counter (writes) or reads zero via "
        "`__missing__` (reads).  Every literal key used with "
        "`.bump(...)` or a `counters[...]` subscript must be declared in "
        "`repro.stats.registry`; f-string keys must match a declared "
        "dynamic family template."
    )

    #: Modules exempt because they define/teach the machinery itself.
    ALLOWED_MODULES = ("repro.stats.counters", "repro.stats.registry")

    def _registry(self) -> Any:
        from ..stats import registry
        return registry

    def _fstring_template(self, node: ast.JoinedStr) -> Optional[str]:
        parts: List[str] = []
        for value in node.values:
            if isinstance(value, ast.Constant) \
                    and isinstance(value.value, str):
                parts.append(value.value)
            elif isinstance(value, ast.FormattedValue):
                parts.append("{}")
            else:
                return None
        return "".join(parts)

    def _check_key_node(self, ctx: LintContext, node: ast.AST,
                        usage: str) -> Iterator[Finding]:
        registry = self._registry()
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            if not registry.is_known(node.value):
                yield ctx.finding(self, node, (
                    f"counter key '{node.value}' ({usage}) is not declared "
                    f"in repro.stats.registry; add it to COUNTERS or fix "
                    f"the typo"))
        elif isinstance(node, ast.JoinedStr):
            template = self._fstring_template(node)
            if template is not None and "{}" in template \
                    and template not in registry.DYNAMIC_COUNTERS:
                yield ctx.finding(self, node, (
                    f"f-string counter key template '{template}' ({usage}) "
                    f"has no matching entry in "
                    f"repro.stats.registry.DYNAMIC_COUNTERS"))

    def _is_counters_expr(self, node: ast.AST) -> bool:
        """True for `counters[...]`-style bases: a name or attribute
        whose final component is 'counters' (pipeline.counters, etc.)."""
        if isinstance(node, ast.Name):
            return node.id == "counters"
        if isinstance(node, ast.Attribute):
            return node.attr == "counters"
        return False

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if _is_module(ctx.module, self.ALLOWED_MODULES):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "bump" and node.args:
                yield from self._check_key_node(ctx, node.args[0],
                                                "Counters.bump")
            elif isinstance(node, ast.Subscript) \
                    and self._is_counters_expr(node.value):
                yield from self._check_key_node(ctx, node.slice,
                                                "counters subscript")


# --------------------------------------------------------------------------
# NUM001 — float arithmetic flowing into counters
# --------------------------------------------------------------------------

class FloatIntoCounterRule(Rule):
    id = "NUM001"
    name = "float-into-counter"
    rationale = (
        "Cycle/retire/event counters are exact integers; feeding them "
        "float arithmetic (true division, float literals) introduces "
        "rounding that can differ across platforms and accumulates into "
        "wrong cycle counts.  Use integer arithmetic (`//`) or wrap the "
        "expression in `int(...)`/`round(...)` at a single, deliberate "
        "boundary."
    )

    def _contains_float_math(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id in ("int", "round", "len"):
            return None     # explicit integer boundary
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name) \
                    and sub.func.id in ("int", "round"):
                # conversions deeper in the tree sanitize their subtree;
                # cheap approximation: accept the whole expression.
                return None
            if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Div):
                return "true division (`/`)"
            if isinstance(sub, ast.Constant) \
                    and isinstance(sub.value, float):
                return f"float literal {sub.value!r}"
        return None

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "bump" \
                    and len(node.args) >= 2:
                reason = self._contains_float_math(node.args[1])
                if reason:
                    yield ctx.finding(self, node.args[1], (
                        f"bump amount contains {reason}; counters are "
                        f"exact integers — use `//` or wrap in int()"))
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                target = node.targets[0] if isinstance(node, ast.Assign) \
                    else node.target
                if isinstance(target, ast.Subscript) \
                        and isinstance(target.value, (ast.Name,
                                                      ast.Attribute)) \
                        and (getattr(target.value, "id", None) == "counters"
                             or getattr(target.value, "attr", None)
                             == "counters"):
                    reason = self._contains_float_math(node.value)
                    if reason:
                        yield ctx.finding(self, node.value, (
                            f"counter assignment contains {reason}; "
                            f"counters are exact integers"))


# --------------------------------------------------------------------------
# ARCH001 — import layering
# --------------------------------------------------------------------------

class ImportLayeringRule(Rule):
    id = "ARCH001"
    name = "import-layering"
    rationale = (
        "The simulator is layered: foundations (isa, config, stats, "
        "memory, frontend) must stay importable without dragging in the "
        "models built on top (core, cdf, runahead) or the experiment "
        "harness — otherwise worker processes, partial installs, and "
        "future backend shards pay for everything, and refactors "
        "entangle.  Higher layers may import lower ones, never the "
        "reverse."
    )

    #: repro sub-package -> sub-packages it must NOT import.
    #: (Derived from the dependency DAG in docs/architecture.md; cli and
    #: harness sit at the top and may import anything.)
    #:
    #: ``obs`` is deliberately near-leaf: it may lean on the config/
    #: stats foundations but nothing else, and *no layer below the
    #: harness may import it* — the obs_level-0 elision contract
    #: (docs/observability.md) promises the telemetry subsystem is never
    #: even imported unless a collector is attached, which only the
    #: harness/cli layer does.
    FORBIDDEN: Dict[str, FrozenSet[str]] = {
        # engine_select is the REPRO_ENGINE variant switch: the absolute
        # bottom of the DAG (below isa) so every foundation layer may
        # consult it; it may import nothing from repro at all.
        "engine_select": frozenset({
            "config", "isa", "stats", "memory", "frontend", "energy",
            "workloads", "core", "cdf", "runahead", "verify", "obs",
            "analytic", "harness", "cli", "analysis"}),
        "config": frozenset({
            "isa", "stats", "memory", "frontend", "energy", "workloads",
            "core", "cdf", "runahead", "verify", "obs", "analytic",
            "harness", "cli", "analysis"}),
        "isa": frozenset({
            "config", "stats", "memory", "frontend", "energy",
            "workloads", "core", "cdf", "runahead", "verify", "obs",
            "analytic", "harness", "cli", "analysis"}),
        "stats": frozenset({
            "memory", "frontend", "energy", "workloads", "core", "cdf",
            "runahead", "verify", "obs", "analytic", "harness", "cli",
            "analysis"}),
        "memory": frozenset({
            "stats", "frontend", "energy", "workloads", "core", "cdf",
            "runahead", "verify", "obs", "analytic", "harness", "cli",
            "analysis"}),
        "frontend": frozenset({
            "memory", "energy", "workloads", "core", "cdf", "runahead",
            "verify", "obs", "analytic", "harness", "cli", "analysis"}),
        "energy": frozenset({
            "memory", "frontend", "workloads", "core", "cdf", "runahead",
            "verify", "obs", "analytic", "harness", "cli", "analysis"}),
        "workloads": frozenset({
            "memory", "frontend", "energy", "core", "cdf", "runahead",
            "verify", "obs", "analytic", "harness", "cli", "analysis"}),
        "obs": frozenset({
            "memory", "frontend", "energy", "workloads", "core", "cdf",
            "runahead", "verify", "analytic", "harness", "cli",
            "analysis"}),
        # analytic (the fast-tier screening model) is a *consumer* of
        # the foundations only: profiles summarize isa-level traces and
        # the model reads SimConfig.  It must never import the
        # cycle-accurate machine — predictions that peek at simulator
        # internals stop being an independent cross-check.
        "analytic": frozenset({
            "memory", "frontend", "energy", "workloads", "core", "cdf",
            "runahead", "verify", "obs", "harness", "cli", "analysis"}),
        "core": frozenset({
            "workloads", "cdf", "runahead", "verify", "obs", "analytic",
            "harness", "cli", "analysis"}),
        "cdf": frozenset({
            "workloads", "runahead", "verify", "obs", "analytic",
            "harness", "cli", "analysis"}),
        "runahead": frozenset({
            "workloads", "verify", "obs", "analytic", "harness", "cli",
            "analysis"}),
        "verify": frozenset({
            "workloads", "obs", "analytic", "harness", "cli",
            "analysis"}),
        "analysis": frozenset({
            "memory", "frontend", "energy", "workloads", "core", "cdf",
            "runahead", "verify", "obs", "analytic", "harness", "cli"}),
    }

    def _source_package(self, module: str) -> Optional[str]:
        parts = module.split(".")
        if len(parts) < 2 or parts[0] != "repro":
            return None
        return parts[1]

    def _imported_modules(self, ctx: LintContext,
                          node: ast.AST) -> List[str]:
        """Absolute dotted names this import statement brings in."""
        if isinstance(node, ast.Import):
            return [alias.name for alias in node.names]
        if isinstance(node, ast.ImportFrom):
            if node.level == 0:
                return [node.module] if node.module else []
            # Resolve the relative import against ctx.module.  For a
            # plain module, level=1 strips the module's own name; for a
            # package __init__, level=1 is the package itself.
            base_parts = ctx.module.split(".")
            is_package = ctx.path.name == "__init__.py"
            drop = node.level - (1 if is_package else 0)
            if drop >= len(base_parts):
                return []
            base = base_parts[:len(base_parts) - drop] if drop else \
                list(base_parts)
            if node.module:
                return [".".join(base + node.module.split("."))]
            # `from .. import config` — each alias is a submodule
            return [".".join(base + [alias.name]) for alias in node.names]
        return []

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        source_pkg = self._source_package(ctx.module)
        if source_pkg is None:
            return
        forbidden = self.FORBIDDEN.get(source_pkg)
        if not forbidden:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            for imported in self._imported_modules(ctx, node):
                parts = imported.split(".")
                if len(parts) < 2 or parts[0] != "repro":
                    continue
                target_pkg = parts[1]
                if target_pkg in forbidden:
                    yield ctx.finding(self, node, (
                        f"layer `repro.{source_pkg}` must not import "
                        f"`repro.{target_pkg}` (dependency DAG in "
                        f"docs/architecture.md); invert the dependency or "
                        f"move the shared piece down a layer"))


# --------------------------------------------------------------------------
# API001 — mutable default arguments
# --------------------------------------------------------------------------

class MutableDefaultRule(Rule):
    id = "API001"
    name = "mutable-default"
    rationale = (
        "A mutable default (`def f(xs=[])`) is evaluated once at import "
        "and shared by every call — state leaks across invocations "
        "exactly like the shared-SimConfig bug, but for any API.  "
        "Default to None and materialise inside the function."
    )

    _MUTABLE_CONSTRUCTORS = frozenset({
        "list", "dict", "set", "bytearray", "Counters", "defaultdict",
        "OrderedDict", "deque",
    })

    def _is_mutable_default(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = None
            if isinstance(node.func, ast.Name):
                name = node.func.id
            elif isinstance(node.func, ast.Attribute):
                name = node.func.attr
            return name in self._MUTABLE_CONSTRUCTORS
        return False

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) \
                + [d for d in node.args.kw_defaults if d is not None]
            for default in defaults:
                if self._is_mutable_default(default):
                    yield ctx.finding(self, default, (
                        f"mutable default argument in `{node.name}(...)` "
                        f"is shared across calls; default to None and "
                        f"build it inside the function"))


# --------------------------------------------------------------------------

# Tier-2 dataflow rules (CFG + reaching-defs + guard dominance; see
# docs/analysis.md "Dataflow rules").  Imported at the bottom so the
# syntactic rules above stay dependency-free.
from .rules_capacity import GuardedCapacityRule        # noqa: E402
from .rules_paradigm import ParadigmConformanceRule    # noqa: E402
from .rules_process import ProcessSafetyRule           # noqa: E402
from .rules_purity import LevelGatingPurityRule        # noqa: E402
from .rules_timing import CycleMonotonicityRule        # noqa: E402

ALL_RULES = (
    UnseededRandomRule(),
    SetIterationRule(),
    WallClockRule(),
    ConfigMutationRule(),
    CounterRegistryRule(),
    FloatIntoCounterRule(),
    ImportLayeringRule(),
    MutableDefaultRule(),
    # dataflow tier
    LevelGatingPurityRule(),
    CycleMonotonicityRule(),
    ProcessSafetyRule(),
    GuardedCapacityRule(),
    ParadigmConformanceRule(),
)


def rule_by_id(rule_id: str) -> Rule:
    for rule in ALL_RULES:
        if rule.id == rule_id:
            return rule
    raise KeyError(f"unknown simlint rule id: {rule_id!r}; known: "
                   f"{', '.join(r.id for r in ALL_RULES)}")
