"""Project-wide symbol table and approximate call graph.

The project rules (CONC001/GRD001/API002) need facts no single module
holds: which functions are reachable from the engine's worker entry
points, whether *every* caller of an allocator is capacity-gated, and
what a pipeline class inherits.  :class:`ProjectContext` indexes every
linted module's classes, functions, and module-level bindings, plus a
name-based call graph.

The call graph is deliberately approximate: a call ``x.f(...)`` edges
to *every* project function named ``f``.  That over-approximates
reachability (safe for CONC001, which wants "could a worker run this")
and over-approximates the caller set (safe for GRD001, which demands
all callers be gated).  Methods that only exist in the stdlib resolve
to nothing and terminate the walk.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .cfg import stmt_expressions
from .core import LintContext

__all__ = [
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ProjectContext",
    "build_project",
]

_FuncNode = ast.AST  # FunctionDef | AsyncFunctionDef


@dataclass
class FunctionInfo:
    """One function or method definition somewhere in the project."""

    module: str
    qualname: str                 # 'Class.method' or 'function'
    name: str
    node: ast.AST                 # the FunctionDef / AsyncFunctionDef
    ctx: LintContext
    class_name: Optional[str] = None
    #: simple names this function calls (``f(...)`` and ``x.f(...)``)
    called_names: List[str] = field(default_factory=list)

    @property
    def key(self) -> str:
        return f"{self.module}.{self.qualname}"


@dataclass
class CallSite:
    """One call expression, with enough context to re-analyze the
    calling function around it."""

    caller: FunctionInfo
    call: ast.Call
    stmt: ast.stmt                # statement containing the call


@dataclass
class ClassInfo:
    module: str
    name: str
    node: ast.ClassDef
    ctx: LintContext
    base_names: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: names assigned at class level (class attributes)
    class_assigns: List[str] = field(default_factory=list)


@dataclass
class ModuleGlobal:
    """A module-level name binding (``NAME = <expr>`` at top level)."""

    module: str
    name: str
    stmt: ast.stmt
    value: Optional[ast.expr]


class ProjectContext:
    """Symbol tables over every linted module."""

    def __init__(self, contexts: List[LintContext]) -> None:
        self.contexts = list(contexts)
        self.by_relpath: Dict[str, LintContext] = {
            ctx.relpath: ctx for ctx in contexts}
        #: simple name -> every project function/method with that name
        self.functions: Dict[str, List[FunctionInfo]] = {}
        #: simple name -> every project class with that name
        self.classes: Dict[str, List[ClassInfo]] = {}
        #: module -> name -> module-level binding
        self.module_globals: Dict[str, Dict[str, ModuleGlobal]] = {}
        for ctx in contexts:
            self._index_module(ctx)
        #: simple name -> call sites invoking that name anywhere
        self.call_sites: Dict[str, List[CallSite]] = {}
        self._index_calls()

    # ------------------------------------------------------------------
    def _index_module(self, ctx: LintContext) -> None:
        module_bindings: Dict[str, ModuleGlobal] = {}
        self.module_globals[ctx.module] = module_bindings
        tree = ctx.tree
        body = getattr(tree, "body", [])
        for stmt in body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        module_bindings[target.id] = ModuleGlobal(
                            module=ctx.module, name=target.id,
                            stmt=stmt, value=stmt.value)
            elif isinstance(stmt, ast.AnnAssign) and \
                    isinstance(stmt.target, ast.Name):
                module_bindings[stmt.target.id] = ModuleGlobal(
                    module=ctx.module, name=stmt.target.id,
                    stmt=stmt, value=stmt.value)
        method_ids: Dict[int, bool] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                for child in node.body:
                    if isinstance(child, (ast.FunctionDef,
                                          ast.AsyncFunctionDef)):
                        method_ids[id(child)] = True
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                self._index_class(ctx, node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if id(node) not in method_ids:
                    self._add_function(FunctionInfo(
                        module=ctx.module, qualname=node.name,
                        name=node.name, node=node, ctx=ctx))

    def _index_class(self, ctx: LintContext, node: ast.ClassDef) -> None:
        info = ClassInfo(module=ctx.module, name=node.name, node=node,
                         ctx=ctx)
        for base in node.bases:
            dotted = _dotted_name(base)
            if dotted is not None:
                info.base_names.append(dotted.split(".")[-1])
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method = FunctionInfo(
                    module=ctx.module,
                    qualname=f"{node.name}.{child.name}",
                    name=child.name, node=child, ctx=ctx,
                    class_name=node.name)
                info.methods[child.name] = method
                self._add_function(method)
            elif isinstance(child, ast.Assign):
                for target in child.targets:
                    if isinstance(target, ast.Name):
                        info.class_assigns.append(target.id)
            elif isinstance(child, ast.AnnAssign) and \
                    isinstance(child.target, ast.Name):
                info.class_assigns.append(child.target.id)
        self.classes.setdefault(node.name, []).append(info)

    def _add_function(self, info: FunctionInfo) -> None:
        self.functions.setdefault(info.name, []).append(info)
        called: List[str] = []
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call):
                name = _callee_name(node)
                if name is not None and name not in called:
                    called.append(name)
        info.called_names = called

    def _index_calls(self) -> None:
        for _name, infos in sorted(self.functions.items()):
            for info in infos:
                for stmt in ast.walk(info.node):
                    if not isinstance(stmt, ast.stmt):
                        continue
                    for expr in stmt_expressions(stmt):
                        if isinstance(expr, ast.Call):
                            name = _callee_name(expr)
                            if name is not None:
                                self.call_sites.setdefault(
                                    name, []).append(CallSite(
                                        caller=info, call=expr,
                                        stmt=stmt))

    # ------------------------------------------------------------------
    def resolve_bases(self, cls: ClassInfo) -> List[ClassInfo]:
        """Transitive project base classes of *cls* (simple-name
        resolution, cycle-safe, deterministic order)."""
        resolved: List[ClassInfo] = []
        seen: List[str] = [cls.name]
        queue = list(cls.base_names)
        while queue:
            base_name = queue.pop(0)
            if base_name in seen:
                continue
            seen.append(base_name)
            for base in self.classes.get(base_name, []):
                resolved.append(base)
                queue.extend(base.base_names)
        return resolved

    def lookup_method(self, cls: ClassInfo,
                      name: str) -> Optional[FunctionInfo]:
        """Resolve *name* on *cls* or its project bases (MRO-ish)."""
        if name in cls.methods:
            return cls.methods[name]
        for base in self.resolve_bases(cls):
            if name in base.methods:
                return base.methods[name]
        return None

    def reachable_from(self, entries: List[FunctionInfo]
                       ) -> List[FunctionInfo]:
        """Functions transitively callable from *entries* under the
        name-based approximation, in BFS order."""
        seen_keys: Dict[str, FunctionInfo] = {}
        queue: List[FunctionInfo] = []
        for entry in entries:
            if entry.key not in seen_keys:
                seen_keys[entry.key] = entry
                queue.append(entry)
        order: List[FunctionInfo] = []
        while queue:
            current = queue.pop(0)
            order.append(current)
            for called in current.called_names:
                targets = list(self.functions.get(called, []))
                # instantiating a class runs its __init__ chain
                for cls in self.classes.get(called, []):
                    init = self.lookup_method(cls, "__init__")
                    if init is not None:
                        targets.append(init)
                for target in targets:
                    if target.key not in seen_keys:
                        seen_keys[target.key] = target
                        queue.append(target)
        return order


def _dotted_name(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _callee_name(call: ast.Call) -> Optional[str]:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def build_project(contexts: List[LintContext]) -> ProjectContext:
    return ProjectContext(contexts)
