"""Shared helpers for the dataflow (tier-2) rules.

Small, composable queries over expressions + a
:class:`~repro.analysis.dataflow.FunctionAnalysis`: rendering dotted
paths, chasing locals back to the expressions they alias, extracting
what a branch test actually guards, and locating intra-statement
guards (``x.f() if x is not None else ...``, ``x and x.f()``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from .cfg import FunctionNode, stmt_expressions
from .dataflow import FunctionAnalysis, analyze_function

__all__ = [
    "AnalysisCache",
    "GuardInfo",
    "analyze_guard",
    "dotted",
    "expanded_dotteds",
    "expression_texts",
    "iter_statements",
    "local_guards",
    "unparse",
]


def dotted(node: ast.AST) -> Optional[str]:
    """Render an Attribute/Name chain as ``'a.b.c'`` (else ``None``)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def unparse(node: ast.AST) -> str:
    """`ast.unparse` hardened against exotic nodes."""
    try:
        return ast.unparse(node)
    except Exception:                              # pragma: no cover
        return ast.dump(node)


def expanded_dotteds(expr: ast.AST, analysis: FunctionAnalysis,
                     stmt: ast.stmt) -> List[str]:
    """Dotted paths *expr* may denote, chasing local aliases.

    ``ifetch`` with ``ifetch = self.mem.ifetch`` in scope yields both
    ``'ifetch'`` and ``'self.mem.ifetch'``.
    """
    paths: List[str] = []
    direct = dotted(expr)
    if direct is not None:
        paths.append(direct)
    if isinstance(expr, ast.Name):
        for source in analysis.reaching.name_sources(expr, stmt):
            if source is expr:
                continue
            resolved = dotted(source)
            if resolved is not None and resolved not in paths:
                paths.append(resolved)
    return paths


def expression_texts(expr: ast.AST, analysis: FunctionAnalysis,
                     stmt: ast.stmt) -> List[str]:
    """Source texts *expr* may evaluate to: the expression itself plus
    the reaching-definition expansion of every name inside it."""
    texts = [unparse(expr)]
    for node in ast.walk(expr):
        if isinstance(node, ast.Name):
            for source in analysis.reaching.name_sources(node, stmt):
                if source is node:
                    continue
                text = unparse(source)
                if text not in texts:
                    texts.append(text)
    return texts


@dataclass
class GuardInfo:
    """What one branch test guards."""

    #: dotted paths None-compared or truthiness-tested by the guard
    checked_paths: List[str] = field(default_factory=list)
    #: test mentions an obs_level / verify_level comparison
    checks_level: bool = False


def _boolean_operands(test: ast.expr) -> Iterator[ast.expr]:
    if isinstance(test, ast.BoolOp):
        for value in test.values:
            yield from _boolean_operands(value)
    elif isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        yield from _boolean_operands(test.operand)
    else:
        yield test


def analyze_guard(test: ast.expr) -> GuardInfo:
    info = GuardInfo()
    for node in ast.walk(test):
        if isinstance(node, ast.Compare):
            operands = [node.left] + list(node.comparators)
            if any(isinstance(op, ast.Constant) and op.value is None
                   for op in operands):
                for operand in operands:
                    path = dotted(operand)
                    if path is not None and \
                            path not in info.checked_paths:
                        info.checked_paths.append(path)
        if isinstance(node, (ast.Name, ast.Attribute)):
            path = dotted(node)
            if path is not None and (
                    "obs_level" in path or "verify_level" in path):
                info.checks_level = True
    for operand in _boolean_operands(test):
        path = dotted(operand)
        if path is not None and path not in info.checked_paths:
            info.checked_paths.append(path)
    return info


def _parent_map(stmt: ast.stmt) -> Dict[int, ast.AST]:
    parents: Dict[int, ast.AST] = {}
    # stmt_expressions already yields every expression node under the
    # statement, parents before children.
    for node in stmt_expressions(stmt):
        for child in ast.iter_child_nodes(node):
            parents.setdefault(id(child), node)
    return parents


def local_guards(use: ast.AST, stmt: ast.stmt) -> List[ast.expr]:
    """Intra-statement guards covering *use*: the tests of enclosing
    conditional expressions and the earlier operands of enclosing
    short-circuit ``BoolOp``s (``x and x.f()``, ``x.f() if x ...``)."""
    parents = _parent_map(stmt)
    guards: List[ast.expr] = []
    node: ast.AST = use
    while True:
        parent = parents.get(id(node))
        if parent is None:
            break
        if isinstance(parent, ast.IfExp) and node is not parent.test:
            guards.append(parent.test)
        elif isinstance(parent, ast.BoolOp):
            for value in parent.values:
                if value is node:
                    break
                guards.append(value)
        node = parent
    return guards


def iter_statements(func: FunctionNode) -> Iterator[ast.stmt]:
    """Every statement in *func*'s body (not nested functions)."""
    stack: List[ast.stmt] = list(func.body)
    while stack:
        stmt = stack.pop(0)
        yield stmt
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for field_name in ("body", "orelse", "finalbody"):
            stack.extend(getattr(stmt, field_name, []) or [])
        for handler in getattr(stmt, "handlers", []) or []:
            stack.extend(handler.body)
        for case in getattr(stmt, "cases", []) or []:
            stack.extend(case.body)


class AnalysisCache:
    """Memoized :func:`analyze_function` keyed by node identity —
    project rules re-visit caller functions repeatedly."""

    def __init__(self) -> None:
        self._cache: Dict[int, FunctionAnalysis] = {}

    def get(self, func: FunctionNode) -> FunctionAnalysis:
        analysis = self._cache.get(id(func))
        if analysis is None:
            analysis = analyze_function(func)
            self._cache[id(func)] = analysis
        return analysis
