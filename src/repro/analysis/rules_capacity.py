"""GRD001 — guarded-capacity mutation (dataflow tier).

PR 3's bug: the CDF partition rebalance grew ``critical_size`` past
``total - min_noncritical`` because the growth expression lost its
clamp.  Generalized: any occupancy-increasing mutation of a sized
structure (ROB/RS/LSQ/PRF shares, MSHR files, bounded FIFOs, fetch
buffers, partition sizes) must be *provably bounded* — by a dominating
capacity test, by a ``min``/``max`` clamp in the value's reaching
definitions, or, for allocator helpers, by a capacity gate dominating
every project call site (found through the call graph).

That last excusal is what lets ``_allocate`` stay guard-free while
``_dispatch`` holds the ``_allocation_block_reason`` gate — the shape
the pipelines actually use — while still flagging a *new* caller that
skips the gate.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from .core import Finding, ProjectRule
from .callgraph import CallSite, FunctionInfo, ProjectContext
from .cfg import stmt_expressions
from .dataflow import FunctionAnalysis
from .semantics import AnalysisCache, expanded_dotteds, unparse

__all__ = ["GuardedCapacityRule"]


@dataclass(frozen=True)
class _Structure:
    """One family of sized structures."""

    label: str
    occupancy: "re.Pattern[str]"      # matches the mutated symbol
    capacity: "re.Pattern[str]"       # matches a bounding test/clamp


def _structure(label: str, occupancy: str, capacity: str) -> _Structure:
    return _Structure(label=label,
                      occupancy=re.compile(occupancy),
                      capacity=re.compile(capacity, re.IGNORECASE))


_STRUCTURES: Tuple[_Structure, ...] = (
    _structure("ROB", r"^rob(_crit)?$",
               r"rob|_block_reason|critical_size|noncritical_size"),
    _structure("RS/LSQ share", r"^(rs|lq|sq)(_crit)?_used$",
               r"size|_block_reason"),
    _structure("PRF writers", r"^writers(_crit)?(_inflight)?$",
               r"prf|writer|_block_reason"),
    _structure("frontend queue", r"^frontend_q$", r"frontend"),
    _structure("critical fetch buffer", r"^crit_fetch_buffer$",
               r"crit_fetch"),
    _structure("partition share", r"^(non)?critical_size$",
               r"total|min_noncritical|min_critical"),
    _structure("bounded FIFO", r"^(dbq|cmq)$", r"full|dbq|cmq"),
    _structure("FIFO backing deque", r"^_q$", r"full|capacity"),
    _structure("MSHR file", r"^(_outstanding|.*mshrs?)$",
               r"can_allocate|mshr|capacity"),
)

#: functions whose return value encodes "is there room"
_GATE_FN = re.compile(r"_block_reason|can_allocate|has_room|full",
                      re.IGNORECASE)

_GROW_METHODS = ("append", "appendleft", "push", "add", "insort",
                 "allocate")

_EXEMPT_MODULES = ("repro.harness", "repro.cli", "repro.analysis",
                   "repro.obs", "repro.verify", "repro.workloads")


@dataclass
class _Growth:
    """One occupancy-increasing mutation."""

    node: ast.AST                 # node to report
    stmt: ast.stmt
    structure: _Structure
    symbol: str                   # matched occupancy symbol
    info: FunctionInfo            # function containing the mutation
    value: Optional[ast.expr]     # RHS for augmented assignment


class GuardedCapacityRule(ProjectRule):
    id = "GRD001"
    name = "guarded-capacity mutation"
    rationale = (
        "Growing a sized structure (ROB/RS/LSQ share, MSHR file, "
        "bounded FIFO, partition size) without a dominating capacity "
        "check or a min/max clamp overflows silently — the PR 3 CDF "
        "rebalance bug class. Allocator helpers are accepted when "
        "every project call site is capacity-gated.")

    def check_project(self,
                      project: ProjectContext) -> Iterator[Finding]:
        cache = AnalysisCache()
        for _name, infos in sorted(project.functions.items()):
            for info in infos:
                if _is_exempt(info.module):
                    continue
                yield from self._check_function(project, info, cache)

    # ------------------------------------------------------------------
    def _check_function(self, project: ProjectContext,
                        info: FunctionInfo, cache: AnalysisCache
                        ) -> Iterator[Finding]:
        analysis = cache.get(info.node)  # type: ignore[arg-type]
        growths = _find_growths(info, analysis)
        for growth in growths:
            if _is_transfer(growth, analysis):
                continue
            if _locally_bounded(growth, analysis):
                continue
            # allocator excusal: every caller must hold the gate
            sites = project.call_sites.get(info.name, [])
            external = [site for site in sites
                        if site.caller.key != info.key and
                        _site_targets(project, site, info)]
            if external:
                ungated = [
                    site for site in external
                    if not _site_gated(site, growth.structure, cache)]
                for site in ungated:
                    if _is_exempt(site.caller.module):
                        continue
                    yield site.caller.ctx.finding(
                        self, site.call,
                        f"call to allocator `{info.name}` (grows "
                        f"{growth.structure.label} `{growth.symbol}`) "
                        f"is not dominated by a capacity gate")
                continue
            yield info.ctx.finding(
                self, growth.node,
                f"{growth.structure.label} `{growth.symbol}` grows "
                f"without a dominating capacity check or min/max "
                f"clamp (the PR 3 rebalance bug class)")


def _is_exempt(module: str) -> bool:
    for exempt in _EXEMPT_MODULES:
        if module == exempt or module.startswith(exempt + "."):
            return True
    return False


def _last_segment(path: str) -> str:
    return path.rsplit(".", 1)[-1]


def _match_structure(paths: List[str]
                     ) -> Optional[Tuple[_Structure, str]]:
    for path in paths:
        segment = _last_segment(path)
        for structure in _STRUCTURES:
            if structure.occupancy.search(segment):
                return structure, segment
    return None


def _find_growths(info: FunctionInfo,
                  analysis: FunctionAnalysis) -> List[_Growth]:
    growths: List[_Growth] = []
    cfg = analysis.cfg
    for block_id in cfg.block_ids():
        for stmt in cfg.blocks[block_id].stmts:
            if isinstance(stmt, ast.AugAssign) and \
                    isinstance(stmt.op, ast.Add):
                paths = expanded_dotteds(stmt.target, analysis, stmt)
                matched = _match_structure(paths)
                if matched is not None:
                    growths.append(_Growth(
                        node=stmt, stmt=stmt, structure=matched[0],
                        symbol=matched[1], info=info,
                        value=stmt.value))
            for node in stmt_expressions(stmt):
                if isinstance(node, ast.Call) and \
                        isinstance(node.func, ast.Attribute) and \
                        node.func.attr in _GROW_METHODS:
                    paths = expanded_dotteds(node.func.value, analysis,
                                             stmt)
                    matched = _match_structure(paths)
                    if matched is not None:
                        growths.append(_Growth(
                            node=node, stmt=stmt,
                            structure=matched[0], symbol=matched[1],
                            info=info, value=None))
                elif isinstance(node, ast.Subscript) and isinstance(
                        getattr(node, "ctx", None), ast.Store):
                    paths = expanded_dotteds(node.value, analysis,
                                             stmt)
                    matched = _match_structure(paths)
                    if matched is not None:
                        growths.append(_Growth(
                            node=node, stmt=stmt,
                            structure=matched[0], symbol=matched[1],
                            info=info, value=None))
    # dedupe: a statement may be walked once as stmt and once nested
    unique: List[_Growth] = []
    for growth in growths:
        if not any(g.node is growth.node for g in unique):
            unique.append(growth)
    return unique


def _is_transfer(growth: _Growth,
                 analysis: FunctionAnalysis) -> bool:
    """A paired `+=` / `-=` on the same structure family in the same
    basic block moves occupancy between partitions; net growth is
    zero (e.g. the CDF critical->shared share handoff)."""
    block_id = analysis.cfg.block_of.get(id(growth.stmt))
    if block_id is None:
        return False
    for stmt in analysis.cfg.blocks[block_id].stmts:
        if isinstance(stmt, ast.AugAssign) and \
                isinstance(stmt.op, ast.Sub):
            paths = expanded_dotteds(stmt.target, analysis, stmt)
            for path in paths:
                if growth.structure.occupancy.search(
                        _last_segment(path)):
                    return True
    return False


def _locally_bounded(growth: _Growth,
                     analysis: FunctionAnalysis) -> bool:
    capacity = growth.structure.capacity
    for test in analysis.dominating_tests(growth.stmt):
        if capacity.search(unparse(test)):
            return True
        if _gate_derived(test, growth.stmt, analysis):
            return True
    if growth.value is not None and _clamped(growth.value, growth.stmt,
                                             analysis, capacity):
        return True
    return False


def _gate_derived(test: ast.expr, stmt: ast.stmt,
                  analysis: FunctionAnalysis) -> bool:
    """The test examines a local produced by a capacity-gate function
    (``reason = self._allocation_block_reason(uop)`` ... ``if reason
    is not None: break``)."""
    if _GATE_FN.search(unparse(test)):
        return True
    for node in ast.walk(test):
        if isinstance(node, ast.Name):
            for source in analysis.reaching.name_sources(node, stmt):
                if isinstance(source, ast.Call):
                    callee = source.func
                    name = callee.attr if isinstance(
                        callee, ast.Attribute) else (
                        callee.id if isinstance(callee, ast.Name)
                        else "")
                    if _GATE_FN.search(name):
                        return True
    return False


def _clamped(value: ast.expr, stmt: ast.stmt,
             analysis: FunctionAnalysis,
             capacity: "re.Pattern[str]") -> bool:
    """Every non-trivial reaching source of *value* carries a min/max
    clamp mentioning a capacity symbol."""
    sources = analysis.reaching.name_sources(value, stmt)
    saw_growth_source = False
    for source in sources:
        if isinstance(source, ast.Constant):
            if isinstance(source.value, (int, float)) and \
                    source.value <= 0:
                continue            # grows by nothing
            saw_growth_source = True
            if not _has_clamp(source, stmt, analysis, capacity):
                return False
            continue
        saw_growth_source = True
        if not _has_clamp(source, stmt, analysis, capacity):
            return False
    return saw_growth_source


def _has_clamp(source: ast.AST, stmt: ast.stmt,
               analysis: FunctionAnalysis,
               capacity: "re.Pattern[str]") -> bool:
    texts = [unparse(source)]
    for node in ast.walk(source):
        if isinstance(node, ast.Name):
            for inner in analysis.reaching.name_sources(node, stmt):
                if inner is not node:
                    texts.append(unparse(inner))
    for text in texts:
        if ("min(" in text or "max(" in text) and capacity.search(text):
            return True
    return False


def _site_targets(project: ProjectContext, site: CallSite,
                  info: FunctionInfo) -> bool:
    """Could this call site actually invoke *info*?  The name-based
    call graph over-approximates; for ``self.f(...)`` sites the caller's
    class must be related to the allocator's class, or a same-named
    method elsewhere (e.g. TAGE's ``_allocate`` vs the pipeline's)
    would drag in callers that can never reach it."""
    func = site.call.func
    if isinstance(func, ast.Attribute) and \
            isinstance(func.value, ast.Name) and func.value.id == "self":
        if info.class_name is None or site.caller.class_name is None:
            return False
        if site.caller.class_name == info.class_name:
            return True
        return _classes_related(project, site.caller.class_name,
                                info.class_name)
    if isinstance(func, ast.Name):
        # a bare name cannot call a method
        return info.class_name is None
    return True


def _classes_related(project: ProjectContext, first: str,
                     second: str) -> bool:
    for cls in project.classes.get(first, []):
        if any(base.name == second
               for base in project.resolve_bases(cls)):
            return True
    for cls in project.classes.get(second, []):
        if any(base.name == first
               for base in project.resolve_bases(cls)):
            return True
    return False


def _site_gated(site: CallSite, structure: _Structure,
                cache: AnalysisCache) -> bool:
    analysis = cache.get(site.caller.node)  # type: ignore[arg-type]
    for test in analysis.dominating_tests(site.stmt):
        if structure.capacity.search(unparse(test)):
            return True
        if _gate_derived(test, site.stmt, analysis):
            return True
    return False
