"""Branch Target Buffer: set-associative pc -> target store."""

from __future__ import annotations

from typing import Optional


class BTB:
    """Direct target cache. A taken branch that misses costs a bubble."""

    def __init__(self, entries: int = 4096, ways: int = 4) -> None:
        if entries % ways:
            raise ValueError("entries must be a multiple of ways")
        self.num_sets = entries // ways
        if self.num_sets & (self.num_sets - 1):
            raise ValueError("number of sets must be a power of two")
        self.ways = ways
        self._mask = self.num_sets - 1
        self._tags = [[-1] * ways for _ in range(self.num_sets)]
        self._targets = [[0] * ways for _ in range(self.num_sets)]
        self._lru = [list(range(ways)) for _ in range(self.num_sets)]
        self.lookups = 0
        self.hits = 0

    def lookup(self, pc: int) -> Optional[int]:
        """Return the stored target for *pc*, or None on a miss."""
        self.lookups += 1
        set_index = pc & self._mask
        tags = self._tags[set_index]
        for way in range(self.ways):
            if tags[way] == pc:
                self.hits += 1
                lru = self._lru[set_index]
                lru.remove(way)
                lru.append(way)
                return self._targets[set_index][way]
        return None

    def update(self, pc: int, target: int) -> None:
        """Install or refresh the target for *pc*."""
        set_index = pc & self._mask
        tags = self._tags[set_index]
        for way in range(self.ways):
            if tags[way] == pc:
                self._targets[set_index][way] = target
                lru = self._lru[set_index]
                lru.remove(way)
                lru.append(way)
                return
        lru = self._lru[set_index]
        victim = lru.pop(0)
        tags[victim] = pc
        self._targets[set_index][victim] = target
        lru.append(victim)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 1.0
