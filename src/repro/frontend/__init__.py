"""Frontend structures: branch predictors, BTB, RAS, branch unit."""

from .bpred import (
    BimodalPredictor,
    DirectionPredictor,
    GsharePredictor,
    TAGEPredictor,
    make_predictor,
)
from .branch_unit import BranchOutcome, BranchUnit
from .btb import BTB
from .ras import ReturnAddressStack

__all__ = [
    "BimodalPredictor",
    "DirectionPredictor",
    "GsharePredictor",
    "TAGEPredictor",
    "make_predictor",
    "BranchOutcome",
    "BranchUnit",
    "BTB",
    "ReturnAddressStack",
]
