"""Return Address Stack for CALL/RET target prediction."""

from __future__ import annotations

from typing import Optional


class ReturnAddressStack:
    """Fixed-depth circular RAS; overflows overwrite the oldest entry."""

    def __init__(self, depth: int = 32) -> None:
        if depth <= 0:
            raise ValueError("depth must be positive")
        self.depth = depth
        self._stack = []
        self.pushes = 0
        self.pops = 0
        self.underflows = 0

    def push(self, return_pc: int) -> None:
        self.pushes += 1
        if len(self._stack) == self.depth:
            self._stack.pop(0)
        self._stack.append(return_pc)

    def pop(self) -> Optional[int]:
        self.pops += 1
        if not self._stack:
            self.underflows += 1
            return None
        return self._stack.pop()

    def __len__(self) -> int:
        return len(self._stack)
