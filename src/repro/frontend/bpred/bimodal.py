"""Bimodal (per-PC 2-bit counter) predictor."""

from __future__ import annotations

from .base import DirectionPredictor


class BimodalPredictor(DirectionPredictor):
    """Classic table of 2-bit saturating counters indexed by PC."""

    def __init__(self, entries: int = 4096) -> None:
        super().__init__()
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self._mask = entries - 1
        self._counters = [2] * entries   # weakly taken

    def predict(self, pc: int) -> bool:
        return self._counters[pc & self._mask] >= 2

    def update(self, pc: int, taken: bool) -> None:
        index = pc & self._mask
        counter = self._counters[index]
        if taken:
            if counter < 3:
                self._counters[index] = counter + 1
        elif counter > 0:
            self._counters[index] = counter - 1
