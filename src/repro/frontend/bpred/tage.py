"""TAGE predictor (TAGE-SC-L-class, per Table 1).

A faithful-in-structure (reduced-in-size) TAGE: a bimodal base predictor
plus several partially-tagged tables indexed by geometrically increasing
global-history lengths. Includes the standard mechanisms that give TAGE
its accuracy: longest-match provider selection, alternate prediction on
weak entries, usefulness counters with periodic aging, and allocation on
mispredictions into longer-history tables.

The paper uses the 64KB TAGE-SC-L championship predictor; the statistical
corrector and loop predictor contribute a small accuracy delta that does
not change any CDF mechanism, so they are omitted. Hard-to-predict
branches (the ones CDF marks critical) remain hard under TAGE either way.
"""

from __future__ import annotations

from typing import List, Optional

from .base import DirectionPredictor


class _TaggedEntry:
    __slots__ = ("tag", "counter", "useful")

    def __init__(self) -> None:
        self.tag = 0
        self.counter = 0   # 3-bit signed: -4..3; >=0 predicts taken
        self.useful = 0    # 2-bit


class _TaggedTable:
    """One tagged component with its own history length."""

    def __init__(self, entries: int, tag_bits: int, history_length: int) -> None:
        self.entries = entries
        self.tag_mask = (1 << tag_bits) - 1
        self.history_length = history_length
        self.index_mask = entries - 1
        self.table = [_TaggedEntry() for _ in range(entries)]

    def fold(self, history: int, bits: int) -> int:
        """Fold `history_length` history bits down to `bits` bits."""
        length = self.history_length
        folded = 0
        chunk_mask = (1 << bits) - 1
        remaining = history & ((1 << length) - 1)
        while remaining:
            folded ^= remaining & chunk_mask
            remaining >>= bits
        return folded

    def index(self, pc: int, history: int) -> int:
        folded = self.fold(history, max(1, self.index_mask.bit_length()))
        return (pc ^ (pc >> 4) ^ folded) & self.index_mask

    def tag(self, pc: int, history: int) -> int:
        folded = self.fold(history, max(1, self.tag_mask.bit_length()))
        return (pc ^ (folded << 1)) & self.tag_mask


class TAGEPredictor(DirectionPredictor):
    """Multi-table TAGE with geometric history lengths."""

    def __init__(self, base_entries: int = 8192,
                 table_entries: int = 1024, tag_bits: int = 9,
                 history_lengths: Optional[List[int]] = None,
                 useful_reset_interval: int = 256 * 1024) -> None:
        super().__init__()
        history_lengths = history_lengths or [5, 13, 34, 89, 233]
        self._base = [2] * base_entries
        self._base_mask = base_entries - 1
        self._tables = [_TaggedTable(table_entries, tag_bits, length)
                        for length in history_lengths]
        self._history = 0
        self._history_limit = (1 << (max(history_lengths) + 1)) - 1
        self._useful_reset_interval = useful_reset_interval
        self._updates = 0
        # Provider bookkeeping between predict() and update(): trace-driven
        # pipelines call them back-to-back for the same branch.
        self._last_provider: Optional[int] = None
        self._last_provider_index: int = 0
        self._last_altpred: bool = False
        self._use_alt_on_weak = 8   # 4-bit counter, >=8 means use alt

    # -- prediction ---------------------------------------------------------
    def _base_predict(self, pc: int) -> bool:
        return self._base[pc & self._base_mask] >= 2

    def predict(self, pc: int) -> bool:
        provider = None
        provider_index = 0
        altpred = self._base_predict(pc)
        prediction = altpred
        # Search from longest history down for a tag match; the first
        # match is the provider, the next match (or base) the alternate.
        matches = []
        for table_number in range(len(self._tables) - 1, -1, -1):
            table = self._tables[table_number]
            index = table.index(pc, self._history)
            entry = table.table[index]
            if entry.tag == table.tag(pc, self._history):
                matches.append((table_number, index, entry))
        if matches:
            table_number, index, entry = matches[0]
            provider = table_number
            provider_index = index
            if len(matches) > 1:
                altpred = matches[1][2].counter >= 0
            weak = entry.counter in (-1, 0)
            if weak and entry.useful == 0 and self._use_alt_on_weak >= 8:
                prediction = altpred
            else:
                prediction = entry.counter >= 0
        self._last_provider = provider
        self._last_provider_index = provider_index
        self._last_altpred = altpred
        return prediction

    # -- update -----------------------------------------------------------
    def _update_base(self, pc: int, taken: bool) -> None:
        index = pc & self._base_mask
        counter = self._base[index]
        if taken:
            if counter < 3:
                self._base[index] = counter + 1
        elif counter > 0:
            self._base[index] = counter - 1

    @staticmethod
    def _bump(entry: _TaggedEntry, taken: bool) -> None:
        if taken:
            if entry.counter < 3:
                entry.counter += 1
        elif entry.counter > -4:
            entry.counter -= 1

    def update(self, pc: int, taken: bool) -> None:
        provider = self._last_provider
        provider_prediction = None
        # The base prediction must be sampled *before* the base counters
        # are trained, or the allocate-on-mispredict check below would
        # compare against the already-corrected counter and never fire.
        base_prediction = self._base_predict(pc)
        if provider is not None:
            table = self._tables[provider]
            entry = table.table[self._last_provider_index]
            provider_prediction = entry.counter >= 0
            # Usefulness: provider correct where the alternate was wrong.
            if provider_prediction != self._last_altpred:
                if provider_prediction == taken:
                    if entry.useful < 3:
                        entry.useful += 1
                elif entry.useful > 0:
                    entry.useful -= 1
            # use-alt-on-weak adaptation.
            if entry.counter in (-1, 0) and entry.useful == 0:
                if self._last_altpred == taken and provider_prediction != taken:
                    if self._use_alt_on_weak < 15:
                        self._use_alt_on_weak += 1
                elif provider_prediction == taken and self._last_altpred != taken:
                    if self._use_alt_on_weak > 0:
                        self._use_alt_on_weak -= 1
            self._bump(entry, taken)
        else:
            self._update_base(pc, taken)

        # Allocate into a longer table on a provider (or base) mispredict.
        mispredicted = ((provider_prediction if provider is not None
                         else base_prediction) != taken)
        if mispredicted:
            self._allocate(pc, taken, provider)

        self._history = ((self._history << 1) | int(taken)) & self._history_limit
        self._updates += 1
        if self._updates % self._useful_reset_interval == 0:
            self._age_useful_bits()

    def _allocate(self, pc: int, taken: bool, provider: Optional[int]) -> None:
        start = 0 if provider is None else provider + 1
        for table_number in range(start, len(self._tables)):
            table = self._tables[table_number]
            index = table.index(pc, self._history)
            entry = table.table[index]
            if entry.useful == 0:
                entry.tag = table.tag(pc, self._history)
                entry.counter = 0 if taken else -1
                entry.useful = 0
                return
        # No free entry: decay usefulness along the way (TAGE's fallback).
        for table_number in range(start, len(self._tables)):
            table = self._tables[table_number]
            index = table.index(pc, self._history)
            entry = table.table[index]
            if entry.useful > 0:
                entry.useful -= 1

    def _age_useful_bits(self) -> None:
        for table in self._tables:
            for entry in table.table:
                entry.useful >>= 1
