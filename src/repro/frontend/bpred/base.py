"""Direction-predictor interface and shared state."""

from __future__ import annotations


class DirectionPredictor:
    """Predicts taken/not-taken for conditional branches.

    Trace-driven usage: the pipeline calls :meth:`predict` at fetch time,
    compares with the actual outcome from the trace, charges a misprediction
    penalty if they differ, then calls :meth:`update` with the actual
    outcome (history is updated with the true direction, as resolved
    hardware eventually does).
    """

    def __init__(self) -> None:
        self.predictions = 0
        self.mispredictions = 0

    def predict(self, pc: int) -> bool:
        raise NotImplementedError

    def update(self, pc: int, taken: bool) -> None:
        raise NotImplementedError

    def record_outcome(self, predicted: bool, actual: bool) -> bool:
        """Book-keeping helper; returns True when mispredicted."""
        self.predictions += 1
        mispredicted = predicted != actual
        if mispredicted:
            self.mispredictions += 1
        return mispredicted

    @property
    def accuracy(self) -> float:
        if self.predictions == 0:
            return 1.0
        return 1.0 - self.mispredictions / self.predictions

    @property
    def mpki_numerator(self) -> int:
        return self.mispredictions
