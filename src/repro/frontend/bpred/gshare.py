"""Gshare predictor: global history XOR PC indexing."""

from __future__ import annotations

from .base import DirectionPredictor


class GsharePredictor(DirectionPredictor):
    """2-bit counters indexed by (PC xor global history)."""

    def __init__(self, entries: int = 16384, history_bits: int = 12) -> None:
        super().__init__()
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self._mask = entries - 1
        self._history_mask = (1 << history_bits) - 1
        self._counters = [2] * entries
        self._history = 0

    def _index(self, pc: int) -> int:
        return (pc ^ self._history) & self._mask

    def predict(self, pc: int) -> bool:
        return self._counters[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        index = self._index(pc)
        counter = self._counters[index]
        if taken:
            if counter < 3:
                self._counters[index] = counter + 1
        elif counter > 0:
            self._counters[index] = counter - 1
        self._history = ((self._history << 1) | int(taken)) & self._history_mask
