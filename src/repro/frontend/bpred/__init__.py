"""Branch direction predictors."""

from .base import DirectionPredictor
from .bimodal import BimodalPredictor
from .gshare import GsharePredictor
from .tage import TAGEPredictor


def make_predictor(name: str = "tage") -> DirectionPredictor:
    """Factory for the configured predictor (Table 1 uses TAGE-SC-L)."""
    if name == "tage":
        return TAGEPredictor()
    if name == "gshare":
        return GsharePredictor()
    if name == "bimodal":
        return BimodalPredictor()
    raise ValueError(f"unknown predictor: {name!r}")


__all__ = [
    "DirectionPredictor",
    "BimodalPredictor",
    "GsharePredictor",
    "TAGEPredictor",
    "make_predictor",
]
