"""Combined branch handling: direction predictor + BTB + RAS.

The pipelines call :meth:`predict_and_train` once per fetched branch uop.
Trace-driven semantics: the actual outcome is known (from the functional
trace), so the unit predicts, compares, trains, and reports whether the
fetch engine would have been redirected (misprediction) or bubbled (BTB
miss on a taken branch).
"""

from __future__ import annotations

from typing import NamedTuple

from ..isa.dynuop import DynUop
from ..isa.opcodes import Opcode
from .bpred import make_predictor
from .btb import BTB
from .ras import ReturnAddressStack


class BranchOutcome(NamedTuple):
    mispredicted: bool
    btb_miss: bool
    predicted_taken: bool


class BranchUnit:
    """Frontend branch machinery shared by all pipeline models."""

    def __init__(self, predictor: str = "tage", btb_entries: int = 4096,
                 ras_depth: int = 32) -> None:
        self.predictor = make_predictor(predictor)
        self.btb = BTB(entries=btb_entries)
        self.ras = ReturnAddressStack(ras_depth)
        self.branches_seen = 0
        self.mispredicts = 0
        self.btb_misses = 0

    def predict_and_train(self, uop: DynUop) -> BranchOutcome:
        """Process one fetched branch; returns the frontend outcome."""
        self.branches_seen += 1
        op = uop.op
        mispredicted = False
        btb_miss = False
        predicted_taken = True

        if uop.is_cond_branch:
            predicted_taken = self.predictor.predict(uop.pc)
            mispredicted = self.predictor.record_outcome(
                predicted_taken, uop.taken)
            self.predictor.update(uop.pc, uop.taken)
            if uop.taken:
                if self.btb.lookup(uop.pc) is None:
                    btb_miss = True
                self.btb.update(uop.pc, uop.next_pc)
        elif op == Opcode.RET:
            predicted = self.ras.pop()
            mispredicted = predicted != uop.next_pc
        elif op == Opcode.CALL:
            self.ras.push(uop.pc + 1)
            if self.btb.lookup(uop.pc) is None:
                btb_miss = True
            self.btb.update(uop.pc, uop.next_pc)
        else:  # JMP: direct, taken; only a BTB training effect
            if self.btb.lookup(uop.pc) is None:
                btb_miss = True
            self.btb.update(uop.pc, uop.next_pc)

        if mispredicted:
            self.mispredicts += 1
        if btb_miss:
            self.btb_misses += 1
        return BranchOutcome(mispredicted, btb_miss, predicted_taken)

    def mpki(self, retired_uops: int) -> float:
        """Branch mispredictions per kilo-instruction."""
        if retired_uops == 0:
            return 0.0
        return 1000.0 * self.mispredicts / retired_uops
