"""Per-structure energy and area models (CACTI/McPAT substitute).

The paper uses CACTI 6.0 and McPAT for energy/area. Offline, we model each
SRAM/CAM/regfile structure analytically with the same first-order scaling
CACTI exhibits: access energy grows roughly with the square root of
capacity (bitline/wordline length), leakage and area grow linearly with
capacity, and ports multiply both. Absolute numbers are representative of
a 22nm-class node; every figure only uses *relative* energy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

# Scaling constants (22nm-ish, first order).
_SRAM_BASE_PJ = 2.0
_SRAM_SQRT_PJ = 0.08        # per sqrt(byte)
_CAM_FACTOR = 3.0           # associative search premium
_REGFILE_FACTOR = 0.6       # small, heavily ported arrays
_LEAK_NW_PER_BYTE = 0.020   # leakage power per byte
_AREA_MM2_PER_KB = 0.0022   # SRAM density
_PORT_ENERGY_FACTOR = 0.35  # extra energy per extra port
_PORT_AREA_FACTOR = 0.45    # extra area per extra port


@dataclass(frozen=True)
class Structure:
    """One hardware structure with capacity/ports/kind."""

    name: str
    capacity_bytes: int
    ports: int = 1
    kind: str = "sram"          # 'sram' | 'cam' | 'regfile'

    def access_energy_pj(self) -> float:
        """Dynamic energy of one access."""
        energy = _SRAM_BASE_PJ + _SRAM_SQRT_PJ * math.sqrt(
            max(1, self.capacity_bytes))
        if self.kind == "cam":
            energy *= _CAM_FACTOR
        elif self.kind == "regfile":
            energy *= _REGFILE_FACTOR
        energy *= 1.0 + _PORT_ENERGY_FACTOR * (self.ports - 1)
        return energy

    def leakage_nw(self) -> float:
        """Static power (nW); multiplied by cycle time externally."""
        leak = _LEAK_NW_PER_BYTE * self.capacity_bytes
        if self.kind == "cam":
            leak *= 1.6
        return leak * (1.0 + 0.2 * (self.ports - 1))

    def area_mm2(self) -> float:
        area = _AREA_MM2_PER_KB * self.capacity_bytes / 1024.0
        if self.kind == "cam":
            area *= 1.8
        elif self.kind == "regfile":
            area *= 1.3
        return area * (1.0 + _PORT_AREA_FACTOR * (self.ports - 1))


#: Energy of one 64B DRAM transfer (read or write), in pJ. DDR4-class
#: devices land at 40-100 pJ/bit including I/O; 64B = 512 bits.
DRAM_ACCESS_PJ = 22_000.0

#: Fixed core overhead (decode, execution units, clocking) charged per
#: executed uop; makes 'duplicate instructions executed twice' visible in
#: the PRE comparison, as McPAT's core model does.
CORE_UOP_PJ = 20.0

#: Non-modelled leakage + clock tree power, per cycle at 3.2 GHz, in pJ.
#: This is what converts a runtime reduction into an energy reduction.
CORE_STATIC_PJ_PER_CYCLE = 800.0
