"""Whole-core energy and area accounting.

`EnergyModel.compute(result)` turns a pipeline's event counters into an
energy figure (and fills ``result.energy_nj``). The structure inventory
mirrors Table 1; the CDF structures are included only when the mode that
produced the result had them active, letting the Fig. 16/17 comparisons
report CDF's ~2% structure-energy and ~3.2% area overheads.
"""

from __future__ import annotations

from typing import Dict

from ..config import SimConfig
from ..stats import SimResult
from .structures import (
    CORE_STATIC_PJ_PER_CYCLE,
    CORE_UOP_PJ,
    DRAM_ACCESS_PJ,
    Structure,
)


def _baseline_structures(config: SimConfig) -> Dict[str, Structure]:
    core = config.core
    return {
        "l1i": Structure("l1i", config.l1i.size_bytes, ports=1),
        "l1d": Structure("l1d", config.l1d.size_bytes, ports=2),
        "llc": Structure("llc", config.llc.size_bytes, ports=1),
        "bpred": Structure("bpred", 64 * 1024, ports=1),
        "btb": Structure("btb", 4096 * 8, ports=1),
        "rat": Structure("rat", 32 * 8, ports=core.rename_width,
                         kind="regfile"),
        "rob": Structure("rob", core.rob_size * 16,
                         ports=core.retire_width, kind="regfile"),
        "rs": Structure("rs", core.rs_size * 20, ports=core.issue_width,
                        kind="cam"),
        "prf": Structure("prf", core.num_phys_regs * 8,
                         ports=core.issue_width * 2, kind="regfile"),
        "lq": Structure("lq", core.lq_size * 12, ports=2, kind="cam"),
        "sq": Structure("sq", core.sq_size * 12, ports=2, kind="cam"),
    }


def _cdf_structures(config: SimConfig) -> Dict[str, Structure]:
    cdf = config.cdf
    return {
        "cct": Structure("cct", 64 * 2, ports=1),           # 64B x2 tables
        "mask_cache": Structure("mask_cache", 4 * 1024, ports=1),
        "uop_cache": Structure("uop_cache", 18 * 1024, ports=1),
        "fill_buffer": Structure("fill_buffer", 16 * 1024, ports=1),
        "dbq": Structure("dbq", 1024, ports=1),
        "cmq": Structure("cmq", 512, ports=1),
        "crit_rat": Structure("crit_rat", 32 * 8,
                              ports=config.core.rename_width,
                              kind="regfile"),
    }


#: counter name -> (structure, accesses per count)
_BASE_EVENTS = {
    "l1i_accesses": ("l1i", 1.0),
    "l1d_accesses": ("l1d", 1.0),
    "llc_accesses": ("llc", 1.0),
    "bpred_lookups": ("bpred", 1.0),
    "btb_lookups": ("btb", 1.0),
    "rename_uops": ("rat", 1.0),
    "rob_writes": ("rob", 1.0),
    "rob_reads": ("rob", 1.0),
    "wakeup_broadcasts": ("rs", 1.0),
    "prf_reads": ("prf", 1.0),
    "prf_writes": ("prf", 1.0),
    "lq_searches": ("lq", 1.0),
    "sq_searches": ("sq", 1.0),
}

_CDF_EVENTS = {
    "cct_updates": ("cct", 1.0),
    "uop_cache_reads": ("uop_cache", 1.0),
    "fill_walk_uops": ("fill_buffer", 1.0),
    "crit_rename_uops": ("crit_rat", 1.0),
    "replayed_uops": ("rat", 1.0),          # replay updates the regular RAT
    "dbq_pops": ("dbq", 2.0),               # one push + one pop
    "crit_fetch_uops": ("cmq", 2.0),
}


class EnergyBreakdown:
    """Per-category energy totals in nanojoules."""

    def __init__(self) -> None:
        self.dynamic_nj: Dict[str, float] = {}
        self.static_nj = 0.0
        self.dram_nj = 0.0
        self.core_uop_nj = 0.0

    @property
    def total_nj(self) -> float:
        return (sum(self.dynamic_nj.values()) + self.static_nj
                + self.dram_nj + self.core_uop_nj)


class EnergyModel:
    """Counts events against the structure inventory."""

    def __init__(self, config: SimConfig) -> None:
        self.config = config
        self.structures = _baseline_structures(config)
        self.cdf_structures = _cdf_structures(config)

    def compute(self, result: SimResult,
                include_cdf_structures: bool = None) -> EnergyBreakdown:
        """Fill ``result.energy_nj`` and return the breakdown."""
        if include_cdf_structures is None:
            include_cdf_structures = result.mode in ("cdf", "pre")
        breakdown = EnergyBreakdown()
        counters = result.counters
        inventory = dict(self.structures)
        events = dict(_BASE_EVENTS)
        if include_cdf_structures:
            inventory.update(self.cdf_structures)
            events.update(_CDF_EVENTS)
        for counter_name, (structure_name, weight) in events.items():
            count = counters.get(counter_name, 0)
            if not count:
                continue
            structure = inventory[structure_name]
            energy_nj = count * weight * structure.access_energy_pj() / 1000
            breakdown.dynamic_nj[structure_name] = (
                breakdown.dynamic_nj.get(structure_name, 0.0) + energy_nj)

        dram_transfers = (sum(result.dram_reads.values())
                          + sum(result.dram_writes.values()))
        breakdown.dram_nj = dram_transfers * DRAM_ACCESS_PJ / 1000

        executed = counters.get("rename_uops", 0) \
            + counters.get("crit_rename_uops", 0)
        breakdown.core_uop_nj = executed * CORE_UOP_PJ / 1000

        leakage_pj_per_cycle = CORE_STATIC_PJ_PER_CYCLE + sum(
            s.leakage_nw() for s in inventory.values()) * 0.001
        breakdown.static_nj = result.cycles * leakage_pj_per_cycle / 1000

        result.energy_nj = breakdown.total_nj
        return breakdown

    # ------------------------------------------------------------------ area
    def baseline_area_mm2(self) -> float:
        return sum(s.area_mm2() for s in self.structures.values())

    def cdf_extra_area_mm2(self) -> float:
        return sum(s.area_mm2() for s in self.cdf_structures.values())

    def cdf_area_overhead(self) -> float:
        """Fractional area overhead of the CDF structures (paper: ~3.2%)."""
        return self.cdf_extra_area_mm2() / self.baseline_area_mm2()
