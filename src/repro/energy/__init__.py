"""Energy and area modelling (CACTI/McPAT substitute)."""

from .model import EnergyBreakdown, EnergyModel
from .structures import (
    CORE_STATIC_PJ_PER_CYCLE,
    CORE_UOP_PJ,
    DRAM_ACCESS_PJ,
    Structure,
)

__all__ = [
    "EnergyBreakdown",
    "EnergyModel",
    "Structure",
    "CORE_STATIC_PJ_PER_CYCLE",
    "CORE_UOP_PJ",
    "DRAM_ACCESS_PJ",
]
