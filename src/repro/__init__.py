"""Criticality Driven Fetch — a Python reproduction.

A cycle-level reproduction of "Criticality Driven Fetch" (Deshmukh &
Patt, MICRO 2021, DOI 10.1145/3466752.3480115): the baseline OoO core,
the CDF machinery, the Precise Runahead comparator, the memory system,
the energy model, the synthetic SPEC-like workload suite, and the
harness that regenerates every table and figure of the paper's
evaluation.

Quick start::

    from repro import run_benchmark

    base = run_benchmark("astar", "baseline", scale=0.5)
    cdf = run_benchmark("astar", "cdf", scale=0.5)
    print(cdf.ipc / base.ipc)

See README.md for the guided tour and DESIGN.md for the system map.
"""

from .cdf import CDFPipeline
from .config import (
    CacheConfig,
    CDFConfig,
    CoreConfig,
    DRAMConfig,
    PREConfig,
    PrefetcherConfig,
    SimConfig,
)
from .core import BaselinePipeline
from .energy import EnergyModel
from .harness import run_benchmark, run_comparison
from .isa import Program, ProgramBuilder, assemble, execute
from .runahead import PREPipeline
from .stats import SimResult
from .workloads import SUITE, Workload, get_workload, suite_names

__version__ = "1.0.0"

__all__ = [
    "CDFPipeline",
    "BaselinePipeline",
    "PREPipeline",
    "SimConfig",
    "CoreConfig",
    "CacheConfig",
    "CDFConfig",
    "DRAMConfig",
    "PREConfig",
    "PrefetcherConfig",
    "EnergyModel",
    "run_benchmark",
    "run_comparison",
    "Program",
    "ProgramBuilder",
    "assemble",
    "execute",
    "SimResult",
    "SUITE",
    "Workload",
    "get_workload",
    "suite_names",
    "__version__",
]
