"""The analytical throughput model: profile + SimConfig -> cycles/IPC.

An interval-analysis-style bound model in the uiCA tradition, adapted to
this repo's uop ISA and :class:`~repro.config.SimConfig`.  Steady-state
execution time is the *maximum* of independent throughput bounds — the
machine runs at the speed of its tightest bottleneck — plus serializing
penalties (branch mispredicts, I-cache misses) that no amount of
out-of-order overlap hides:

* **width / ports** — uops over machine width, and per execution-port
  class over its port count (units are fully pipelined; see
  :mod:`repro.isa.ports`), derated by a scheduling-efficiency factor
  because a real RS never issues perfectly.
* **frontend** — fetch groups end at taken branches, so fetch needs
  roughly ``uops/width`` cycles plus half a cycle of lost slots per
  taken branch, plus L1I refills when the code footprint spills.
* **critical path** — the longest dependency chain, with its loads
  re-weighted by this config's own L1/LLC/DRAM latencies (the profile
  classes each chain load by reuse gap).
* **memory latency** — DRAM misses serialized through the achievable
  memory-level parallelism: bounded by MSHRs, by window occupancy, and
  by the number of *independent* miss chains (dependent pointer chases
  cannot overlap, which the miss-per-chain ratio captures).
* **memory bandwidth** — every DRAM transfer occupies a channel for a
  burst, demand and prefetch alike.

Calibration constants below were fitted once against the cycle-accurate
model on the pinned six-kernel perf suite (see
``benchmarks/analytic_baseline.json`` and tests/analytic/); they are
global — never tuned per workload — so held-out kernels and configs see
honest errors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..config import SimConfig
from .profile import TraceProfile

__all__ = ["AnalyticModel", "AnalyticPrediction", "predict_ipc"]


# ---------------------------------------------------------------------
# Calibration constants (global; fitted on the pinned perf suite).
# ---------------------------------------------------------------------

#: Maps reuse-histogram access-gap buckets onto cache capacities: a line
#: whose reuse gap is <= LOCALITY_FACTOR * capacity_lines is predicted
#: to hit.  Gaps are counted in *accesses* (not distinct lines), which
#: overestimates working sets for loop kernels; a factor > 1 compensates.
LOCALITY_FACTOR = 2.0

#: Fraction of DRAM-bound misses on strided streams the stream
#: prefetcher converts into LLC-latency fills.  Applied against the
#: *squared* strided fraction: partially-strided access patterns also
#: lose timeliness (short streams end before the prefetcher ramps), so
#: coverage falls off faster than linearly.
PREFETCH_COVERAGE = 0.75

#: Row-buffer locality: the fraction of the row-activation latency
#: (tRCD) an average access pays scales from ROW_MISS_FRACTION for
#: random access streams down by the strided fraction (sequential
#: streams mostly hit open rows).
ROW_MISS_FRACTION = 0.9
ROW_HIT_DISCOUNT = 0.6

#: The sim's direction predictor is simple per-branch state; on the
#: pinned suite it mispredicts about this multiple of the profiling
#: lower bound (the better of always-majority and last-outcome) —
#: warmup, aliasing, and noisy data-dependent branches cost real
#: predictors well above the oracle-ish bound.
PREDICTOR_FACTOR = 1.6

#: Lost fetch slots per taken branch, in cycles: the expected ceil()
#: rounding when a fetch group ends early at a taken branch.
TAKEN_BRANCH_BUBBLE = 0.5

#: Real scheduling never issues at full width: RS pressure, picker
#: conflicts, and load replays derate the pure throughput bounds.
ISSUE_EFFICIENCY = 0.85

#: A dependency chain costs more than its raw latencies: every hop pays
#: the wakeup/select loop, RS pressure, and (for chains of misses)
#: window-refill after the head drains.  The retire-observed chain is
#: this multiple of the profiled one.
CHAIN_PRESSURE = 1.5

#: Window occupancy achieved when estimating memory-level parallelism
#: from misses-per-uop x ROB size (the window is never perfectly full
#: of misses).
MLP_WINDOW_EFFICIENCY = 0.5

#: MLP uplift on the memory bound when criticality-driven fetch or
#: precise runahead is enabled: both mechanisms get miss-causing loads
#: into the window sooner.  Fitted to the cycle-accurate per-mode
#: uplifts on the pinned suite (CDF slightly ahead of PRE).
CDF_MLP_BOOST = 1.10
PRE_MLP_BOOST = 1.07


@dataclass(frozen=True)
class AnalyticPrediction:
    """One model evaluation: predicted cycles, IPC, and the per-bound
    breakdown (cycles attributed to each candidate bottleneck)."""

    cycles: float
    ipc: float
    bounds: Dict[str, float]

    @property
    def bottleneck(self) -> str:
        """Name of the binding throughput bound."""
        return max(self.bounds, key=lambda key: self.bounds[key])


class AnalyticModel:
    """Evaluate a :class:`TraceProfile` under a concrete config.

    Stateless and cheap: one evaluation is a handful of arithmetic
    operations over the profile's summary statistics, so a sweep can
    score hundreds of configs per workload in milliseconds.
    """

    def predict(self, profile: TraceProfile,
                config: SimConfig) -> AnalyticPrediction:
        core = config.core
        uops = max(1, profile.uops)

        # -- memory latency chain -----------------------------------
        l1_hit_latency = float(config.l1d.latency)
        llc_hit_latency = float(config.l1d.latency + config.llc.latency)
        row_fraction = max(
            0.0, ROW_MISS_FRACTION
            - ROW_HIT_DISCOUNT * profile.strided_fraction)
        # Large-stride walks open a new row per access and revisit the
        # same banks, so they pay the precharge on top.
        conflict_fraction = profile.large_stride_fraction
        dram_core = config.dram.core_cycles(
            round(config.dram.tcl + row_fraction * config.dram.trcd
                  + conflict_fraction * config.dram.trp),
            core.freq_ghz) + config.dram.burst_core_cycles
        dram_latency = llc_hit_latency + dram_core

        # -- hit/miss mix from the reuse histogram ------------------
        l1_lines = config.l1d.size_bytes // config.l1d.line_bytes
        llc_lines = config.llc.size_bytes // config.llc.line_bytes
        l1_hits, llc_hits, dram_misses = profile.reuse_split(
            LOCALITY_FACTOR * l1_lines, LOCALITY_FACTOR * llc_lines)
        prefetched = 0.0
        if config.prefetcher.enabled and dram_misses:
            prefetched = dram_misses * PREFETCH_COVERAGE * \
                profile.strided_fraction ** 2
            dram_misses -= prefetched
            llc_hits += prefetched

        bounds: Dict[str, float] = {}

        # -- pure throughput ----------------------------------------
        width = min(core.fetch_width, core.decode_width,
                    core.rename_width, core.issue_width,
                    core.retire_width)
        bounds["width"] = uops / (width * ISSUE_EFFICIENCY)

        port_counts = {
            "alu": core.num_alu_ports,
            "muldiv": core.num_muldiv_ports,
            "fp": core.num_fp_ports,
            "load": core.num_load_ports,
            "store": core.num_store_ports,
        }
        for klass, ports in port_counts.items():
            bounds[f"port:{klass}"] = (
                profile.class_counts.get(klass, 0)
                / (max(1, ports) * ISSUE_EFFICIENCY))

        # -- frontend -----------------------------------------------
        icache_capacity = config.l1i.size_bytes // config.l1i.line_bytes
        icache_penalty = 0.0
        if profile.icache_lines > icache_capacity:
            # Code footprint spills L1I: charge the uncovered fraction
            # of fetch groups an LLC refill (instruction footprints
            # here never spill the LLC).
            miss_fraction = 1.0 - icache_capacity / profile.icache_lines
            fetch_groups = uops / core.fetch_width \
                + profile.taken_branches
            icache_penalty = \
                miss_fraction * fetch_groups * config.llc.latency
        bounds["frontend"] = (uops / core.fetch_width
                              + TAKEN_BRANCH_BUBBLE
                              * profile.taken_branches
                              + icache_penalty)

        # -- dependency critical path -------------------------------
        bounds["critical_path"] = CHAIN_PRESSURE * (
            profile.critical_path_cycles
            + profile.critical_path_near * l1_hit_latency
            + profile.critical_path_mid * llc_hit_latency
            + profile.critical_path_far * dram_latency)

        # -- serializing penalties (needed by the MLP estimate too) --
        mispredicts = PREDICTOR_FACTOR * profile.predicted_branch_misses()
        branch_penalty = mispredicts * \
            (core.mispredict_redirect_penalty + core.decode_latency)

        # -- memory latency (miss parallelism) ----------------------
        if dram_misses > 0:
            miss_density = dram_misses / uops
            # The window past an unresolved mispredicted branch is
            # squashed, so the instructions a mispredict-heavy workload
            # can actually keep in flight shrink below the ROB.
            effective_window = min(float(core.rob_size),
                                   uops / (mispredicts + 1.0))
            window_mlp = max(
                1.0,
                MLP_WINDOW_EFFICIENCY * miss_density * effective_window)
            # Dependent misses cannot overlap: the profiled chain's
            # DRAM loads are serialized, so at most misses-per-chain
            # independent streams exist.
            chains = dram_misses / max(1, profile.critical_path_far)
            mlp = min(float(config.l1d.mshrs), float(config.llc.mshrs),
                      window_mlp, max(1.0, chains))
            if config.cdf.enabled:
                mlp *= CDF_MLP_BOOST
            elif config.pre.enabled:
                mlp *= PRE_MLP_BOOST
            bounds["memory"] = dram_misses * dram_latency / mlp
        else:
            bounds["memory"] = 0.0

        # -- memory bandwidth ---------------------------------------
        transfers = dram_misses + prefetched
        bounds["bandwidth"] = (transfers * config.dram.burst_core_cycles
                               / max(1, config.dram.channels))

        cycles = max(max(bounds.values()) + branch_penalty, 1.0)
        return AnalyticPrediction(
            cycles=cycles, ipc=uops / cycles,
            bounds=dict(bounds, branch_penalty=branch_penalty))


def predict_ipc(profile: TraceProfile, config: SimConfig) -> float:
    """Convenience one-shot: predicted IPC for (profile, config)."""
    return AnalyticModel().predict(profile, config).ipc
