"""Analytical fast tier: millisecond throughput predictions per config.

The cycle-accurate pipelines in :mod:`repro.core`, :mod:`repro.cdf`, and
:mod:`repro.runahead` cost seconds to minutes per (workload, config)
point.  This package is the screening tier: a port/resource throughput
model in the uiCA/interval-analysis tradition that predicts cycles and
IPC for a (workload, :class:`~repro.config.SimConfig`) point in
milliseconds, so large sweeps can rank hundreds of configurations
analytically and promote only the interesting few to full simulation
(see ``repro-sim sweep --screen`` and docs/analytic.md).

Two-phase design:

* :class:`~repro.analytic.profile.TraceProfile` — one O(uops) pass over
  a workload's dynamic trace collecting config-*independent* structure:
  port-class mix, dependency critical path, branch predictability,
  memory reuse histogram, fetch geometry.  Built once per workload and
  reused across every config in a sweep.
* :class:`~repro.analytic.model.AnalyticModel` — an O(1) evaluation
  combining the profile with a concrete ``SimConfig`` into throughput
  bounds (issue width, per-port pressure, frontend, dependency critical
  path, memory bandwidth/parallelism) plus branch and I-cache penalty
  terms.

Layering: ``analytic`` sits beside the harness and may import only
``config``, ``isa``, ``stats``, and ``engine_select`` — never the
cycle-accurate models it predicts (enforced by ARCH001 in
:mod:`repro.analysis.rules`).
"""

from .model import AnalyticModel, AnalyticPrediction, predict_ipc
from .profile import PROFILE_SCHEMA_VERSION, TraceProfile

__all__ = [
    "AnalyticModel",
    "AnalyticPrediction",
    "PROFILE_SCHEMA_VERSION",
    "TraceProfile",
    "predict_ipc",
]
