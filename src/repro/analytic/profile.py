"""Config-independent trace profiles for the analytical fast tier.

A :class:`TraceProfile` is everything the analytical model needs to know
about a workload, collected in ONE linear pass over its dynamic uop
trace and then reused for every configuration in a sweep.  The profile
deliberately contains no machine parameters: port counts, cache sizes,
and DRAM timings are applied later by :mod:`repro.analytic.model`, so
screening a 200-point sweep builds one profile and performs 200 cheap
closed-form evaluations.

What the single pass collects:

* **Port-class mix** — uop counts per execution-port class
  (:data:`repro.isa.ports.PORT_CLASSES`), for per-port throughput
  bounds.
* **Dependency critical path** — the longest register/store-forwarding
  dependency chain, tracked as ``(base_cycles, loads_on_path)`` so the
  model can re-weight the memory portion of the chain per config
  instead of baking one latency in.
* **Branch behaviour** — taken-branch count (fetch groups end at taken
  branches) and two per-PC mispredict estimators: a *static* bound
  (min(taken, not-taken) per branch) and a *transition* bound (outcome
  flips per branch).  A direction predictor with per-branch state does
  no worse than the smaller of the two.
* **Memory reuse histogram** — log2-bucketed gaps (in memory accesses)
  between touches of the same 64B line, the capacity proxy the model
  maps onto concrete cache sizes to estimate the L1/LLC/DRAM hit mix.
* **Strided-load fraction** — per-PC stride repetition, the coverage
  proxy for the stream prefetcher.
* **Fetch footprint** — distinct I-cache lines
  (:data:`repro.isa.ports.UOPS_PER_ICACHE_LINE` uops each).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

from ..isa.dynuop import DynUop
from ..isa.ports import PORT_CLASSES, UOPS_PER_ICACHE_LINE

__all__ = ["PROFILE_SCHEMA_VERSION", "TraceProfile"]

#: Bump when the profile's collected fields change incompatibly; cached
#: profile dicts with a different version must be rebuilt.
PROFILE_SCHEMA_VERSION = 1

#: Chain loads are classed by reuse gap so the model can weight each
#: class with the profiled config's own latencies.  The thresholds are
#: *access-gap* boundaries: gaps within NEAR_GAP accesses hit any
#: plausible L1, gaps within MID_GAP hit the LLC, the rest (and cold
#: first touches) go to DRAM.  They bracket the default 32KB/1MB
#: hierarchy; sweeps that resize caches shift the boundary slightly,
#: which the committed error bands absorb.
NEAR_GAP = 1 << 10
MID_GAP = 1 << 15

#: Nominal per-class load weights (cycles) used only when *choosing*
#: the critical path during profiling — the real per-config latencies
#: are applied by the model.  Roughly an L1 hit, an LLC hit, and a
#: DRAM access on the default config.
NOMINAL_CLASS_WEIGHT = {"near": 2, "mid": 20, "far": 90}

#: Cache-line granularity of the reuse histogram.  Matches the default
#: ``CacheConfig.line_bytes``; the model converts capacities with the
#: config's own line size, so a non-64B config only shifts the proxy.
_LINE_BYTES = 64

#: Reuse-histogram bucket for first-touch (cold) lines: larger than any
#: realistic log2 gap, so cold misses never count as capacity hits.
COLD_BUCKET = 63

#: A repeating per-PC stride only helps the stream prefetcher when it
#: stays within a few cache lines — streams are tracked at line
#: granularity with a bounded lookahead, so a 4KB-strided walk opens a
#: new DRAM row per access and outruns any stream.  Strides above this
#: count as *large* (a row-conflict signal, not a coverage signal).
PREFETCHABLE_STRIDE_BYTES = 256


@dataclass
class TraceProfile:
    """Config-independent summary of one workload's dynamic trace."""

    name: str = ""
    uops: int = 0
    #: Uop count per execution-port class, every PORT_CLASSES key present.
    class_counts: Dict[str, int] = field(default_factory=dict)
    branches: int = 0
    cond_branches: int = 0
    taken_branches: int = 0
    #: Sum over branch PCs of min(taken, not-taken): the mispredicts a
    #: static always-majority predictor cannot avoid.
    static_branch_misses: int = 0
    #: Sum over branch PCs of outcome transitions: what a last-outcome
    #: predictor would miss.
    flip_branch_misses: int = 0
    loads: int = 0
    #: Loads satisfied by store-to-load forwarding (store_dep >= 0);
    #: these never leave the core, so they see L1-class latency in any
    #: config.
    forwarded_loads: int = 0
    stores: int = 0
    #: Loads whose PC repeats a small (prefetchable) address stride —
    #: the stream prefetcher's coverage proxy.
    strided_loads: int = 0
    #: Loads whose PC repeats a stride too large for stream prefetching
    #: (> PREFETCHABLE_STRIDE_BYTES): each access opens a new DRAM row.
    large_strided_loads: int = 0
    #: log2(reuse gap in memory accesses) -> count, non-forwarded loads
    #: only.  COLD_BUCKET holds first touches.
    reuse_histogram: Dict[int, int] = field(default_factory=dict)
    #: Critical path: cycles contributed by execution latencies along
    #: the longest dependency chain ...
    critical_path_cycles: int = 0
    #: ... and how many non-forwarded loads sit on that chain, classed
    #: by reuse gap (NEAR_GAP/MID_GAP); their memory latency is
    #: config-dependent and added by the model.
    critical_path_near: int = 0
    critical_path_mid: int = 0
    critical_path_far: int = 0
    #: Distinct I-cache lines touched (UOPS_PER_ICACHE_LINE uops each).
    icache_lines: int = 0
    #: Distinct 64B data lines touched (cold-miss count lower bound).
    data_lines: int = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_trace(cls, trace: Sequence[DynUop],
                   name: str = "") -> "TraceProfile":
        """Profile *trace* in one linear pass (O(uops) time and memory)."""
        profile = cls(name=name)
        profile.class_counts = {klass: 0 for klass in PORT_CLASSES}
        class_counts = profile.class_counts
        reuse_histogram: Dict[int, int] = {}

        # Critical path: per-uop chain depth as (base_cycles, loads per
        # reuse class).  Chains are compared by base plus the nominal
        # per-class load weights.
        n = len(trace)
        depth_base: List[int] = [0] * n
        depth_near: List[int] = [0] * n
        depth_mid: List[int] = [0] * n
        depth_far: List[int] = [0] * n
        weight_near = NOMINAL_CLASS_WEIGHT["near"]
        weight_mid = NOMINAL_CLASS_WEIGHT["mid"]
        weight_far = NOMINAL_CLASS_WEIGHT["far"]
        best_score = 0
        best = (0, 0, 0, 0)

        # Per-branch-PC direction stats: [taken, not_taken, flips,
        # last_outcome].
        branch_pcs: Dict[int, List[int]] = {}
        # Per-load-PC stride state: [last_addr, last_stride].
        load_pcs: Dict[int, List[int]] = {}
        # Reuse tracking: line -> index of its previous access.
        last_access: Dict[int, int] = {}
        access_index = 0

        icache_lines = set()

        for uop in trace:
            class_counts[uop.exec_class] += 1
            icache_lines.add(uop.pc // UOPS_PER_ICACHE_LINE)

            forwarded = False
            if uop.is_load:
                profile.loads += 1
                forwarded = uop.store_dep >= 0
                if forwarded:
                    profile.forwarded_loads += 1
            elif uop.is_store:
                profile.stores += 1

            if uop.is_branch:
                profile.branches += 1
                if uop.taken:
                    profile.taken_branches += 1
                if uop.is_cond_branch:
                    profile.cond_branches += 1
                    stats = branch_pcs.get(uop.pc)
                    outcome = 1 if uop.taken else 0
                    if stats is None:
                        branch_pcs[uop.pc] = [outcome, 1 - outcome, 0,
                                              outcome]
                    else:
                        if outcome:
                            stats[0] += 1
                        else:
                            stats[1] += 1
                        if outcome != stats[3]:
                            stats[2] += 1
                            stats[3] = outcome
            load_class = None
            if uop.is_mem and uop.mem_addr is not None:
                line = uop.mem_addr // _LINE_BYTES
                previous = last_access.get(line)
                if uop.is_load and not forwarded:
                    if previous is None:
                        bucket = COLD_BUCKET
                        load_class = "far"
                    else:
                        gap = access_index - previous
                        bucket = gap.bit_length()
                        load_class = ("near" if gap <= NEAR_GAP else
                                      "mid" if gap <= MID_GAP else "far")
                    reuse_histogram[bucket] = \
                        reuse_histogram.get(bucket, 0) + 1
                last_access[line] = access_index
                access_index += 1
                if uop.is_load:
                    stride_state = load_pcs.get(uop.pc)
                    if stride_state is None:
                        load_pcs[uop.pc] = [uop.mem_addr, None]
                    else:
                        stride = uop.mem_addr - stride_state[0]
                        if stride_state[1] == stride and stride != 0:
                            if abs(stride) <= PREFETCHABLE_STRIDE_BYTES:
                                profile.strided_loads += 1
                            else:
                                profile.large_strided_loads += 1
                        stride_state[0] = uop.mem_addr
                        stride_state[1] = stride

            # Longest chain among register producers and, for forwarded
            # loads, the forwarding store (a true memory dependency).
            parent = None
            parent_score = -1
            deps = uop.src_deps
            if uop.is_load and forwarded:
                deps = deps + (uop.store_dep,)
            for dep in deps:
                score = (depth_base[dep]
                         + depth_near[dep] * weight_near
                         + depth_mid[dep] * weight_mid
                         + depth_far[dep] * weight_far)
                if score > parent_score:
                    parent_score = score
                    parent = dep
            if parent is None:
                base, near, mid, far = uop.exec_lat, 0, 0, 0
            else:
                base = depth_base[parent] + uop.exec_lat
                near = depth_near[parent]
                mid = depth_mid[parent]
                far = depth_far[parent]
            if load_class == "near":
                near += 1
            elif load_class == "mid":
                mid += 1
            elif load_class == "far":
                far += 1
            seq = uop.seq
            depth_base[seq] = base
            depth_near[seq] = near
            depth_mid[seq] = mid
            depth_far[seq] = far
            score = (base + near * weight_near + mid * weight_mid
                     + far * weight_far)
            if score > best_score:
                best_score = score
                best = (base, near, mid, far)

        profile.uops = n
        profile.reuse_histogram = reuse_histogram
        (profile.critical_path_cycles, profile.critical_path_near,
         profile.critical_path_mid, profile.critical_path_far) = best
        profile.icache_lines = len(icache_lines)
        profile.data_lines = len(last_access)
        profile.static_branch_misses = sum(
            min(stats[0], stats[1]) for stats in branch_pcs.values())
        profile.flip_branch_misses = sum(
            stats[2] for stats in branch_pcs.values())
        return profile

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------

    @property
    def critical_path_loads(self) -> int:
        """Total non-forwarded loads on the critical chain."""
        return (self.critical_path_near + self.critical_path_mid
                + self.critical_path_far)

    @property
    def demand_loads(self) -> int:
        """Loads that actually reach the cache hierarchy."""
        return self.loads - self.forwarded_loads

    @property
    def strided_fraction(self) -> float:
        """Fraction of loads with a repeating prefetchable stride."""
        if self.loads == 0:
            return 0.0
        return self.strided_loads / self.loads

    @property
    def large_stride_fraction(self) -> float:
        """Fraction of loads striding past the stream prefetcher's
        reach — a DRAM row-conflict signal."""
        if self.loads == 0:
            return 0.0
        return self.large_strided_loads / self.loads

    def predicted_branch_misses(self) -> int:
        """Mispredicts a per-branch direction predictor cannot beat.

        The real frontend keeps per-branch state, so it does at least as
        well as the better of the always-majority and last-outcome
        predictors captured during profiling.
        """
        return min(self.static_branch_misses, self.flip_branch_misses)

    def reuse_split(self, l1_capacity_lines: float,
                    llc_capacity_lines: float) -> Tuple[int, int, int]:
        """Partition demand loads into (l1_hits, llc_hits, dram) counts.

        ``*_capacity_lines`` are *effective* capacities in the reuse
        histogram's access-gap units — the model applies its locality
        factor before calling this.
        """
        l1_hits = 0
        llc_hits = 0
        dram = 0
        for bucket, count in self.reuse_histogram.items():
            gap = 1 << bucket if bucket < COLD_BUCKET else None
            if gap is not None and gap <= l1_capacity_lines:
                l1_hits += count
            elif gap is not None and gap <= llc_capacity_lines:
                llc_hits += count
            else:
                dram += count
        return l1_hits, llc_hits, dram

    # ------------------------------------------------------------------
    # serialization (for on-disk profile caching by the screening tier)
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema_version": PROFILE_SCHEMA_VERSION,
            "name": self.name,
            "uops": self.uops,
            "class_counts": dict(self.class_counts),
            "branches": self.branches,
            "cond_branches": self.cond_branches,
            "taken_branches": self.taken_branches,
            "static_branch_misses": self.static_branch_misses,
            "flip_branch_misses": self.flip_branch_misses,
            "loads": self.loads,
            "forwarded_loads": self.forwarded_loads,
            "stores": self.stores,
            "strided_loads": self.strided_loads,
            "large_strided_loads": self.large_strided_loads,
            "reuse_histogram": {str(bucket): count for bucket, count
                                in sorted(self.reuse_histogram.items())},
            "critical_path_cycles": self.critical_path_cycles,
            "critical_path_near": self.critical_path_near,
            "critical_path_mid": self.critical_path_mid,
            "critical_path_far": self.critical_path_far,
            "icache_lines": self.icache_lines,
            "data_lines": self.data_lines,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "TraceProfile":
        version = payload.get("schema_version")
        if version != PROFILE_SCHEMA_VERSION:
            raise ValueError(
                f"profile schema {version!r} != {PROFILE_SCHEMA_VERSION}"
                " (rebuild the profile)")
        profile = cls(name=str(payload["name"]))
        for key in ("uops", "branches", "cond_branches", "taken_branches",
                    "static_branch_misses", "flip_branch_misses", "loads",
                    "forwarded_loads", "stores", "strided_loads",
                    "large_strided_loads",
                    "critical_path_cycles", "critical_path_near",
                    "critical_path_mid", "critical_path_far",
                    "icache_lines", "data_lines"):
            setattr(profile, key, int(payload[key]))  # type: ignore[arg-type]
        counts = payload["class_counts"]
        profile.class_counts = {str(k): int(v)  # type: ignore[arg-type]
                                for k, v in counts.items()}  # type: ignore[union-attr]
        histogram = payload["reuse_histogram"]
        profile.reuse_histogram = {int(k): int(v)  # type: ignore[arg-type]
                                   for k, v in histogram.items()}  # type: ignore[union-attr]
        return profile
