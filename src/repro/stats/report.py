"""Simulation result record shared by all pipelines and the harness."""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Optional

from .counters import Counters


@dataclass
class SimResult:
    """Everything one timing run produces.

    ``counters`` carries the long tail of microarchitectural event counts
    (per-structure accesses for the energy model, stall breakdowns, CDF
    events); the named fields are the headline metrics every figure uses.
    """

    benchmark: str
    mode: str                      # 'baseline' | 'cdf' | 'pre'
    cycles: int
    retired_uops: int
    mlp: float
    dram_reads: Dict[str, int]
    dram_writes: Dict[str, int]
    full_window_stall_cycles: int
    energy_nj: float = 0.0
    counters: Counters = field(default_factory=Counters)
    #: Observability payload (see docs/observability.md): the telemetry
    #: collected by :class:`repro.obs.ObsCollector` at ``obs_level >= 1``
    #: — sampled gauge time-series, memory-latency aggregates, and (at
    #: level 2) per-uop lifecycle / per-request event streams.  ``None``
    #: at obs_level 0, and then *omitted* from :meth:`to_dict`, so
    #: level-0 serialized results and fingerprints are byte-identical to
    #: builds without the obs subsystem.
    obs: Optional[dict] = None

    @property
    def ipc(self) -> float:
        return self.retired_uops / self.cycles if self.cycles else 0.0

    @property
    def total_traffic(self) -> int:
        """Total DRAM transfers (reads + writes), the Fig. 15 metric."""
        return sum(self.dram_reads.values()) + sum(self.dram_writes.values())

    def speedup_over(self, baseline: "SimResult") -> float:
        """IPC ratio vs *baseline* (same benchmark)."""
        if baseline.ipc == 0:
            return 0.0
        return self.ipc / baseline.ipc

    def traffic_ratio(self, baseline: "SimResult") -> float:
        if baseline.total_traffic == 0:
            return 1.0 if self.total_traffic == 0 else float("inf")
        return self.total_traffic / baseline.total_traffic

    def energy_ratio(self, baseline: "SimResult") -> float:
        if baseline.energy_nj == 0:
            return 1.0
        return self.energy_nj / baseline.energy_nj

    def mlp_ratio(self, baseline: "SimResult") -> float:
        if baseline.mlp == 0:
            return 1.0
        return self.mlp / baseline.mlp

    def summary(self) -> str:
        return (f"{self.benchmark:12s} {self.mode:8s} "
                f"cycles={self.cycles:>9d} ipc={self.ipc:5.3f} "
                f"mlp={self.mlp:4.2f} traffic={self.total_traffic:>7d}")

    # ---------------------------------------------------- JSON round-trip
    def to_dict(self) -> dict:
        """Plain-dict form suitable for ``json.dumps``.

        The ``obs`` key is present only when an obs payload was
        collected, keeping obs_level-0 serializations (and therefore
        :meth:`fingerprint`) identical to pre-obs builds.
        """
        data = {
            "benchmark": self.benchmark,
            "mode": self.mode,
            "cycles": self.cycles,
            "retired_uops": self.retired_uops,
            "mlp": self.mlp,
            "dram_reads": dict(self.dram_reads),
            "dram_writes": dict(self.dram_writes),
            "full_window_stall_cycles": self.full_window_stall_cycles,
            "energy_nj": self.energy_nj,
            "counters": dict(self.counters),
        }
        if self.obs is not None:
            data["obs"] = self.obs
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "SimResult":
        """Inverse of :meth:`to_dict`.

        Raises ``KeyError``/``TypeError`` on malformed input — the
        engine's result cache relies on that to detect corrupt entries.
        """
        return cls(
            benchmark=data["benchmark"],
            mode=data["mode"],
            cycles=int(data["cycles"]),
            retired_uops=int(data["retired_uops"]),
            mlp=float(data["mlp"]),
            dram_reads={str(k): int(v)
                        for k, v in data["dram_reads"].items()},
            dram_writes={str(k): int(v)
                         for k, v in data["dram_writes"].items()},
            full_window_stall_cycles=int(data["full_window_stall_cycles"]),
            energy_nj=float(data["energy_nj"]),
            counters=Counters({str(k): int(v)
                               for k, v in data["counters"].items()}),
            obs=data.get("obs"),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialize to JSON (floats round-trip exactly via ``repr``)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "SimResult":
        return cls.from_dict(json.loads(text))

    def fingerprint(self) -> str:
        """SHA-256 hex digest of the canonical JSON form.

        Two runs of the same (workload, scale, seed, config, code) must
        produce identical fingerprints regardless of ``PYTHONHASHSEED``,
        worker-process layout, or wall-clock — the determinism contract
        the result cache and simlint's DET rules enforce.  The
        cross-hashseed integration test asserts exactly this.
        """
        digest = hashlib.sha256(self.to_json().encode("utf-8"))
        return digest.hexdigest()
