"""Statistics: counters, MLP measurement, ROB-stall profiling, results."""

from .counters import Counters
from .metrics import MetricDomainError, geomean, mean, percent_delta, ratio_of
from .mlp import MLPTracker
from .registry import (
    COUNTERS,
    DYNAMIC_COUNTERS,
    UnknownCounterError,
    is_known,
    validate_key,
)
from .report import SimResult
from .robstall import RobStallProfiler, mark_critical_chains

__all__ = [
    "COUNTERS",
    "Counters",
    "DYNAMIC_COUNTERS",
    "MLPTracker",
    "MetricDomainError",
    "RobStallProfiler",
    "SimResult",
    "UnknownCounterError",
    "geomean",
    "is_known",
    "mark_critical_chains",
    "mean",
    "percent_delta",
    "ratio_of",
    "validate_key",
]
