"""Statistics: counters, MLP measurement, ROB-stall profiling, results."""

from .counters import Counters
from .mlp import MLPTracker
from .report import SimResult
from .robstall import RobStallProfiler, mark_critical_chains

__all__ = [
    "Counters",
    "MLPTracker",
    "SimResult",
    "RobStallProfiler",
    "mark_critical_chains",
]
