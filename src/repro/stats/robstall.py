"""ROB-occupancy profiling during full-window stalls (Fig. 1).

The paper's Fig. 1 shows that during full-window stalls, most ROB entries
hold non-critical instructions. In the baseline pipeline the ROB holds a
contiguous program-order range [head_seq, tail_seq], so we accumulate
per-uop "ROB-resident cycles during stalls" with a difference array and
classify uops as critical afterwards (LLC-miss loads, mispredicted
branches, and their backward dependence chains).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Set


class RobStallProfiler:
    """Accumulates which uops sat in the ROB during full-window stalls."""

    def __init__(self, trace_length: int) -> None:
        self._diff = [0] * (trace_length + 1)
        self.stall_cycles = 0

    def on_stall_cycle(self, head_seq: int, tail_seq: int,
                       weight: int = 1) -> None:
        """Record *weight* full-window-stall cycles with ROB = [head, tail]."""
        if tail_seq < head_seq:
            return
        self.stall_cycles += weight
        self._diff[head_seq] += weight
        self._diff[tail_seq + 1] -= weight

    def occupancy_cycles(self) -> List[int]:
        """Per-seq count of stall cycles the uop spent in the ROB."""
        result = []
        running = 0
        for delta in self._diff[:-1]:
            running += delta
            result.append(running)
        return result

    def critical_fraction(self, critical_seqs: Set[int]) -> float:
        """Fraction of stalled ROB slots x cycles held by critical uops."""
        occupancy = self.occupancy_cycles()
        total = sum(occupancy)
        if total == 0:
            return 0.0
        critical = sum(occupancy[seq] for seq in critical_seqs
                       if seq < len(occupancy))
        return critical / total


def mark_critical_chains(trace: Sequence, roots: Iterable[int],
                         include_memory_deps: bool = True) -> Set[int]:
    """Oracle backward-dependence-chain marking.

    Given dynamic *roots* (seq numbers of critical loads/branches), walk the
    true dataflow backwards and return the set of seqs on any chain. Used
    by the Fig. 1 analysis; the CDF hardware analogue is the Fill Buffer
    walk in :mod:`repro.cdf.fill_buffer`.
    """
    critical: Set[int] = set()
    stack = list(roots)
    while stack:
        seq = stack.pop()
        if seq < 0 or seq in critical:
            continue
        critical.add(seq)
        uop = trace[seq]
        for dep in uop.src_deps:
            if dep not in critical:
                stack.append(dep)
        if include_memory_deps and uop.is_load and uop.store_dep >= 0:
            if uop.store_dep not in critical:
                stack.append(uop.store_dep)
    return critical
