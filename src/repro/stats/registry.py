"""Central registry of every event-counter key the simulator may emit.

``Counters`` is a string-keyed bag, which makes adding a counter a
one-liner — and makes a typo'd key a silent bug: ``bump("fetch_uop")``
fabricates a brand-new counter instead of failing, and every consumer of
the real key (energy model, figures, cache fingerprints) quietly reads
zero.  This module closes that hole:

* every legal key is declared here, once, with a one-line description
  (the table in ``docs/analysis.md`` is generated from it);
* :meth:`repro.stats.counters.Counters.bump` validates keys against the
  registry — unknown keys raise :class:`UnknownCounterError` in strict
  mode (the default) or warn once when ``REPRO_STRICT=0``;
* the ``STAT001`` simlint rule checks the same contract statically, so
  typos fail in CI before any simulation runs.

Keys whose name embeds a runtime value (the per-resource dispatch-stall
breakdowns) are declared as *dynamic* counters: a ``{}`` template plus
the regular expression of legal instantiations.  The template form is
what the static checker matches f-strings against; the regex is what the
runtime validator uses.
"""

from __future__ import annotations

import os
import re
import warnings
from typing import Dict, Set

__all__ = [
    "COUNTERS",
    "DYNAMIC_COUNTERS",
    "KNOWN_KEYS",
    "UnknownCounterError",
    "is_known",
    "validate_key",
]


class UnknownCounterError(KeyError):
    """A counter key was used that the registry does not declare."""


#: Every statically-named counter key -> one-line description.
COUNTERS: Dict[str, str] = {
    # ------------------------------------------------ frontend / fetch
    "fetch_uops": "uops fetched from the I-cache path",
    "bpred_accesses": "direction-predictor accesses at fetch",
    "bpred_lookups": "branches seen by the branch unit",
    "btb_lookups": "branch-target-buffer lookups",
    "branch_mispredicts": "mispredicted branches (resolved)",
    # ------------------------------------------------ rename / dispatch
    "rename_uops": "uops renamed through the regular RAT",
    "rob_writes": "ROB allocations",
    "rob_reads": "ROB reads (retire and CCT training)",
    "wakeup_broadcasts": "RS wakeup-port broadcasts",
    "prf_reads": "physical-register-file read-port uses",
    "prf_writes": "physical-register-file write-port uses",
    # ------------------------------------------------ memory pipeline
    "lq_searches": "load-queue CAM searches",
    "sq_searches": "store-queue CAM searches",
    "store_forwards": "loads satisfied by store-to-load forwarding",
    "loads_held_by_stores": "loads stalled behind unresolved stores",
    "llc_miss_loads": "demand loads that missed the LLC",
    # ------------------------------------------------ stalls / cycles
    "full_window_stall_cycles": "cycles dispatch stalled on a full ROB",
    "stall_head_llc_miss_cycles":
        "full-window stall cycles with an LLC-missing load at ROB head",
    "idle_skipped_cycles": "cycles fast-forwarded by the event loop",
    # ------------------------------------------------ external structures
    "l1i_accesses": "L1 instruction-cache accesses",
    "l1d_accesses": "L1 data-cache accesses",
    "llc_accesses": "last-level-cache accesses",
    "dram_reads": "DRAM read bursts",
    "dram_writes": "DRAM write bursts",
    "prefetches": "prefetch requests issued",
    # ------------------------------------------------ CDF: training
    "cct_updates": "Critical Count Table training updates",
    "longlat_roots": "long-latency ALU uops rooting critical chains",
    # ------------------------------------------------ CDF: fill buffer
    "fill_walks": "fill-buffer walks started",
    "fill_walk_uops": "uops examined by fill-buffer walks",
    "fill_rejected": "fill results rejected by the density gates",
    "fill_applied": "fill results installed into mask/uop caches",
    # ------------------------------------------------ CDF: mode control
    "cdf_mode_entries": "transitions into CDF mode",
    "cdf_mode_exits": "transitions out of CDF mode",
    "cdf_mode_cycles": "cycles spent in CDF mode",
    "cdf_exit_uop_cache_miss": "CDF-mode exits forced by a uop-cache miss",
    # ------------------------------------------------ CDF: fetch/rename
    "uop_cache_reads": "Critical Uop Cache reads",
    "nc_uop_cache_reads": "Non-Critical Uop Cache reads (ablation)",
    "crit_fetch_uops": "critical uops fetched from the uop cache",
    "crit_fetch_blocked_on_critical_branch":
        "critical fetch stalled on an unresolved critical branch",
    "crit_fetch_blocked_on_noncritical_branch":
        "critical fetch stalled on an unresolved non-critical branch",
    "crit_rename_uops": "uops renamed through the critical RAT",
    "replayed_uops": "non-critical uops replayed to re-sync the RAT",
    # ------------------------------------------------ CDF: queues
    "dbq_pops": "Delayed Branch Queue pops",
    "dbq_mismatches": "DBQ entries that disagreed with fetch",
    "dbq_leftover_entries": "DBQ entries discarded at CDF-mode exit",
    # ------------------------------------------------ CDF: correctness
    "dependence_violations": "memory-dependence violations detected",
    "violation_flushed_uops": "uops flushed by violation recovery",
    "poisoned_register_sources": "critical uops with poisoned reg inputs",
    "poisoned_memory_sources": "critical loads with poisoned mem inputs",
    # ------------------------------------------------ CDF: static hints
    "static_hint_blocks": "basic blocks installed from static hints",
    "static_hints_rejected": "static hint sets rejected at load time",
    # ------------------------------------------------ PRE comparator
    "runahead_intervals": "runahead intervals entered",
    "runahead_uops": "uops examined during runahead",
    "runahead_prefetches": "prefetches issued by runahead chains",
    "runahead_wrong_address": "runahead chains producing wrong addresses",
    "runahead_wrongpath_intervals": "runahead intervals down the wrong path",
    "runahead_stopped_uncached_bb": "runahead stops at uncached blocks",
    "runahead_chain_truncated": "runahead chains truncated by RS limits",
    "runahead_mshr_rejected": "runahead prefetches rejected by MSHRs",
    # ------------------------------------------------ runtime verification
    "verify_retired_uops": "retired uops seen by the invariant checker",
    "verify_oracle_uops": "retired uops cross-checked by the oracle",
    "verify_dispatch_checks": "dispatch-time invariant evaluations",
    "verify_issue_checks": "issue-time invariant evaluations",
    "verify_cycle_checks": "per-cycle occupancy sweeps (level >= 2)",
    "verify_structural_scans": "full structural ROB/LSQ/RS scans",
    "verify_cache_scans": "cache tag-store sanity scans",
    # ------------------------------------------------ event scheduler
    # (repro.core.sched; engine telemetry, deliberately kept in a
    # separate SchedulerStats accumulator so it never enters SimResult
    # or its fingerprint — see docs/performance.md#the-event-engine)
    "sched_events_scheduled": "completion events pushed into the event heap",
    "sched_wakeups_scheduled": "timers pushed into the unified wakeup heap",
    "sched_wakeups_coalesced": "same-cycle wakeups coalesced into one broadcast",
    "sched_stage_skips": "stage invocations skipped (provably no work)",
    "sched_idle_jumps": "idle spans jumped in O(1) by the event engine",
    "sched_subclass_wakeups": "wakeup candidates from next_wakeups() hooks",
    # ------------------------------------------------ observability
    "obs_samples": "occupancy-gauge samples taken (obs_level >= 1)",
    "obs_mem_events": "memory-request events recorded (obs_level >= 2)",
    "obs_uop_events": "uop lifecycle events recorded (obs_level >= 2)",
    # ------------------------------------------------ sweep service
    # (repro.harness.service; surfaced in the recovery report)
    "service_jobs_submitted": "jobs accepted into the durable queue",
    "service_jobs_completed": "jobs finished (worker result or cache)",
    "service_jobs_executed": "jobs freshly simulated by a worker",
    "service_cache_hits": "jobs served from the result cache",
    "service_batches_dispatched": "job batches handed to workers",
    "service_worker_deaths": "worker processes that died mid-sweep",
    "service_heartbeats_missed": "workers killed for stalled heartbeats",
    "service_results_dropped": "completed jobs whose result write vanished",
    "service_requeues": "jobs returned to the queue after a fault",
    "service_retries": "job dispatches beyond the first attempt",
    "service_redundant_results": "late results for already-done jobs",
    "service_journal_replays": "service starts that replayed a journal",
    "service_checkpoints": "atomic state checkpoints written",
    # ------------------------------------------------ analytic screening
    # (repro.harness.engine.ScreeningEngine / repro.harness.sweep)
    "screen_profiles_built": "trace profiles built for analytic scoring",
    "screen_configs_scored": "configs scored by the analytic model",
    "screen_configs_promoted": "screened points promoted to full sim",
    "screen_configs_pruned": "screened points dropped without simulating",
}

#: Dynamic counter families: ``{}``-template (what the static checker
#: matches f-strings against) -> regex of legal instantiations (what the
#: runtime validator checks concrete keys against).
DYNAMIC_COUNTERS: Dict[str, str] = {
    # per-resource dispatch-stall breakdown (core.pipeline._account_stall;
    # reasons from _allocation_block_reason plus the CDF pipeline's
    # cmq_wait back-pressure state)
    "dispatch_stall_{}_cycles":
        r"dispatch_stall_(rob|rs|lq|sq|prf|cmq_wait)_cycles",
    # critical-partition stall breakdown (cdf.cdf_pipeline; adds the
    # CDF-only rat_copy/cmq resources)
    "crit_dispatch_stall_{}_cycles":
        r"crit_dispatch_stall_(rob|rs|lq|sq|prf|rat_copy|cmq)_cycles",
}

_DYNAMIC_PATTERNS = [re.compile(pattern)
                     for pattern in DYNAMIC_COUNTERS.values()]

#: Mutable memo of every key validated so far.  ``Counters.bump`` does a
#: plain membership test against this set on its hot path; dynamic keys
#: are added on first successful validation so the regex matching cost is
#: paid once per distinct key, not once per bump.
KNOWN_KEYS: Set[str] = set(COUNTERS)


def _strict() -> bool:
    """Strict unless ``REPRO_STRICT`` is explicitly disabled."""
    return os.environ.get("REPRO_STRICT", "1") not in ("0", "false", "no")


def is_known(key: str) -> bool:
    """True if *key* is declared (statically or via a dynamic family)."""
    if key in KNOWN_KEYS:
        return True
    for pattern in _DYNAMIC_PATTERNS:
        if pattern.fullmatch(key):
            KNOWN_KEYS.add(key)  # simlint: disable=CONC001 monotonic memo; is_known stays a pure function of key
            return True
    return False


def validate_key(key: str) -> None:
    """Validate one counter key against the registry.

    Unknown keys raise :class:`UnknownCounterError` in strict mode (the
    default); with ``REPRO_STRICT=0`` they warn once and are then
    tolerated (so exploratory notebooks keep working).
    """
    if is_known(key):
        return
    message = (
        f"counter key {key!r} is not declared in repro.stats.registry; "
        f"declare it in COUNTERS (or a DYNAMIC_COUNTERS family) or fix "
        f"the typo.  Set REPRO_STRICT=0 to downgrade this to a warning."
    )
    if _strict():
        raise UnknownCounterError(message)
    warnings.warn(message, stacklevel=3)
    KNOWN_KEYS.add(key)      # simlint: disable=CONC001 non-strict warn-once memo, never enabled under the engine
