"""Scalar metric helpers shared by the harness and the figure registry.

The paper reports every headline number as a geometric mean over the
benchmark suite, usually as a percentage delta against the baseline
core.  These helpers are the single place that arithmetic lives so the
figure drivers (:mod:`repro.harness.experiments`), the paper-parity
registry (:mod:`repro.harness.figures`), and ad-hoc analysis scripts
cannot disagree on how a "geomean uplift" is computed.

Everything here is a pure function of its inputs (no config, no state),
which keeps the module inside the mypy strict island and importable
from any layer.
"""

from __future__ import annotations

import math
from typing import Iterable

__all__ = [
    "MetricDomainError",
    "geomean",
    "mean",
    "percent_delta",
    "ratio_of",
]


class MetricDomainError(ValueError):
    """A metric helper received input outside its mathematical domain.

    Raised instead of a bare ``ValueError``/``math domain error`` so
    callers can distinguish "a claim's kernel list filtered to nothing"
    from an arbitrary arithmetic bug and decide their own policy (the
    figure extractors report such claims as diverged; see
    ``repro.harness.figures``).
    """

    def __init__(self, message: str, offending: object = None) -> None:
        super().__init__(message)
        #: The value (or lack of one) that violated the domain.
        self.offending = offending


def geomean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values.

    The geometric mean is undefined for an empty sequence and for
    non-positive values; both raise :class:`MetricDomainError` naming
    the offending input instead of a bare ``math`` error from deep
    inside the log.  Callers that legitimately see empty or mixed-sign
    inputs (a figure claim whose kernel list filtered to nothing, a
    sweep containing a zero-IPC point) must filter or catch explicitly
    — see ``repro.harness.runner.geomean`` for the defensive wrapper
    the sweep reducers use.
    """
    listed = list(values)
    if not listed:
        raise MetricDomainError(
            "geomean of an empty sequence is undefined (did a kernel "
            "list filter to nothing?)", offending=None)
    for value in listed:
        if value <= 0:
            raise MetricDomainError(
                f"geomean is undefined for non-positive value {value!r}",
                offending=value)
    return math.exp(sum(math.log(value) for value in listed)
                    / len(listed))


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; 0.0 for an empty input (Fig. 1 uses this for
    the stalling-benchmark average)."""
    listed = list(values)
    if not listed:
        return 0.0
    return sum(listed) / len(listed)


def percent_delta(ratio: float) -> float:
    """A ratio-over-baseline expressed the way the paper reports it:
    ``1.061 -> +6.1`` (percent above baseline), ``0.965 -> -3.5``."""
    return (ratio - 1.0) * 100.0


def ratio_of(value: float, baseline: float,
             default: float = 0.0) -> float:
    """``value / baseline`` with an explicit zero-baseline policy."""
    if baseline == 0:
        return default
    return value / baseline
