"""Scalar metric helpers shared by the harness and the figure registry.

The paper reports every headline number as a geometric mean over the
benchmark suite, usually as a percentage delta against the baseline
core.  These helpers are the single place that arithmetic lives so the
figure drivers (:mod:`repro.harness.experiments`), the paper-parity
registry (:mod:`repro.harness.figures`), and ad-hoc analysis scripts
cannot disagree on how a "geomean uplift" is computed.

Everything here is a pure function of its inputs (no config, no state),
which keeps the module inside the mypy strict island and importable
from any layer.
"""

from __future__ import annotations

import math
from typing import Iterable

__all__ = [
    "geomean",
    "mean",
    "percent_delta",
    "ratio_of",
]


def geomean(values: Iterable[float]) -> float:
    """Geometric mean; ignores non-positive values defensively.

    An empty (or all-non-positive) input yields 0.0 rather than raising,
    matching the long-standing harness behaviour the figure drivers and
    their pinned outputs rely on.
    """
    positive = [value for value in values if value > 0]
    if not positive:
        return 0.0
    return math.exp(sum(math.log(value) for value in positive)
                    / len(positive))


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; 0.0 for an empty input (Fig. 1 uses this for
    the stalling-benchmark average)."""
    listed = list(values)
    if not listed:
        return 0.0
    return sum(listed) / len(listed)


def percent_delta(ratio: float) -> float:
    """A ratio-over-baseline expressed the way the paper reports it:
    ``1.061 -> +6.1`` (percent above baseline), ``0.965 -> -3.5``."""
    return (ratio - 1.0) * 100.0


def ratio_of(value: float, baseline: float,
             default: float = 0.0) -> float:
    """``value / baseline`` with an explicit zero-baseline policy."""
    if baseline == 0:
        return default
    return value / baseline
