"""Generic named-counter bag with snapshot/delta support.

The pipelines bump counters by name; the harness diffs snapshots to
exclude warmup. A plain dict subclass keeps the hot path cheap.

Every key fed to :meth:`Counters.bump` must be declared in
:mod:`repro.stats.registry`; undeclared keys fail loudly (or warn once
under ``REPRO_STRICT=0``) instead of silently fabricating a new counter.
The hot path pays one set-membership test per bump — against a bound
``set.__contains__`` captured at definition time (the registry memo is
only ever mutated in place, so the binding stays valid) — and dict
subscripting via ``__missing__`` instead of a ``.get`` method call.

Innermost pipeline loops go one step further and use plain
``counters[key] += n`` subscripts on statically-declared keys: the
simlint ``STAT001`` rule checks subscripted literal keys against the
registry exactly like ``bump`` arguments, so the registration contract
holds without paying any per-event validation at runtime.  See
docs/performance.md.
"""

from __future__ import annotations

from typing import Callable, Dict

from .registry import KNOWN_KEYS, validate_key


class Counters(Dict[str, int]):
    """String-keyed integer counters; missing keys read as zero."""

    def __missing__(self, key: str) -> int:
        return 0

    def bump(self, key: str, amount: int = 1,
             _known: Callable[[str], bool] = KNOWN_KEYS.__contains__,
             ) -> None:
        if not _known(key):
            validate_key(key)
        self[key] = self[key] + amount

    def snapshot(self) -> Dict[str, int]:
        return dict(self)

    def delta(self, snap: Dict[str, int]) -> "Counters":
        """Counters accumulated since *snap* was taken."""
        result = Counters()
        for key, value in self.items():
            diff = value - snap.get(key, 0)
            if diff:
                result[key] = diff
        return result

    def merged_with(self, other: "Counters") -> "Counters":
        result = Counters(self)
        for key, value in other.items():
            result[key] = result.get(key, 0) + value
        return result
