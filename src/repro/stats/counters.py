"""Generic named-counter bag with snapshot/delta support.

The pipelines bump counters by name; the harness diffs snapshots to
exclude warmup. A plain dict subclass keeps the hot path cheap.

Every key fed to :meth:`Counters.bump` must be declared in
:mod:`repro.stats.registry`; undeclared keys fail loudly (or warn once
under ``REPRO_STRICT=0``) instead of silently fabricating a new counter.
The hot path pays one set-membership test per bump.
"""

from __future__ import annotations

from typing import Dict

from .registry import KNOWN_KEYS, validate_key


class Counters(Dict[str, int]):
    """String-keyed integer counters; missing keys read as zero."""

    def __missing__(self, key: str) -> int:
        return 0

    def bump(self, key: str, amount: int = 1) -> None:
        if key not in KNOWN_KEYS:
            validate_key(key)
        self[key] = self.get(key, 0) + amount

    def snapshot(self) -> Dict[str, int]:
        return dict(self)

    def delta(self, snap: Dict[str, int]) -> "Counters":
        """Counters accumulated since *snap* was taken."""
        result = Counters()
        for key, value in self.items():
            diff = value - snap.get(key, 0)
            if diff:
                result[key] = diff
        return result

    def merged_with(self, other: "Counters") -> "Counters":
        result = Counters(self)
        for key, value in other.items():
            result[key] = result.get(key, 0) + value
        return result
