"""Generic named-counter bag with snapshot/delta support.

The pipelines bump counters by name; the harness diffs snapshots to
exclude warmup. A plain dict subclass keeps the hot path cheap.
"""

from __future__ import annotations

from typing import Dict


class Counters(dict):
    """String-keyed integer counters; missing keys read as zero."""

    def __missing__(self, key: str) -> int:
        return 0

    def bump(self, key: str, amount: int = 1) -> None:
        self[key] = self.get(key, 0) + amount

    def snapshot(self) -> Dict[str, int]:
        return dict(self)

    def delta(self, snap: Dict[str, int]) -> "Counters":
        """Counters accumulated since *snap* was taken."""
        result = Counters()
        for key, value in self.items():
            diff = value - snap.get(key, 0)
            if diff:
                result[key] = diff
        return result

    def merged_with(self, other: "Counters") -> "Counters":
        result = Counters(self)
        for key, value in other.items():
            result[key] = result.get(key, 0) + value
        return result
