"""Memory-level-parallelism measurement.

MLP is defined as in the paper's Fig. 14 discussion: the average number of
outstanding main-memory (LLC-miss) requests over the cycles during which at
least one such request is outstanding. We accumulate it online from the
(start, completion) interval of every DRAM read, separately per traffic
source so runahead-generated parallelism can be included or excluded.

Intervals arrive in nondecreasing start order (the pipelines issue them in
cycle order), which lets the busy-time union be maintained in O(1) per
interval.
"""

from __future__ import annotations

from typing import Dict


class MLPTracker:
    """Online MLP accumulator over DRAM read intervals."""

    #: Sources whose intervals count toward MLP (prefetcher traffic is part
    #: of the baseline and excluded, as in the paper).
    COUNTED_SOURCES = frozenset({"demand", "runahead"})

    def __init__(self) -> None:
        self.total_latency = 0      # sum of interval lengths
        self.busy_cycles = 0        # union of intervals
        self.intervals = 0
        self._union_end = 0
        self.per_source: Dict[str, int] = {}

    def record(self, start: int, completion: int, source: str = "demand") -> None:
        """Record one DRAM read occupying [start, completion)."""
        if source not in self.COUNTED_SOURCES:
            return
        if completion <= start:
            return
        self.intervals += 1
        length = completion - start
        self.total_latency += length
        self.per_source[source] = self.per_source.get(source, 0) + 1
        if start >= self._union_end:
            self.busy_cycles += length
            self._union_end = completion
        elif completion > self._union_end:
            self.busy_cycles += completion - self._union_end
            self._union_end = completion

    @property
    def mlp(self) -> float:
        """Average outstanding misses while any miss is outstanding."""
        if self.busy_cycles == 0:
            return 0.0
        return self.total_latency / self.busy_cycles

    def snapshot(self) -> dict:
        return {
            "total_latency": self.total_latency,
            "busy_cycles": self.busy_cycles,
            "intervals": self.intervals,
        }

    def delta_mlp(self, snap: dict) -> float:
        """MLP over the region after *snap* (for warmup exclusion)."""
        latency = self.total_latency - snap["total_latency"]
        busy = self.busy_cycles - snap["busy_cycles"]
        return latency / busy if busy else 0.0
