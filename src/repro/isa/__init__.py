"""The repro uop ISA: static instructions, programs, and functional execution."""

from .assembler import AssemblyError, assemble
from .builder import ProgramBuilder
from .dynuop import DynUop
from .functional import (
    ExecutionLimitExceeded,
    FunctionalMachine,
    execute,
    trace_summary,
)
from .instruction import Instruction
from .opcodes import (
    BRANCH_OPS,
    COND_BRANCH_OPS,
    EXEC_LATENCY,
    LOAD_OPS,
    MEM_OPS,
    STORE_OPS,
    Opcode,
    is_branch,
    is_cond_branch,
    is_load,
    is_store,
    writes_register,
)
from .program import Program, format_instruction
from .registers import NUM_ARCH_REGS, WORD_MASK, parse_reg, reg_name, to_signed

__all__ = [
    "AssemblyError",
    "assemble",
    "ProgramBuilder",
    "DynUop",
    "ExecutionLimitExceeded",
    "FunctionalMachine",
    "execute",
    "trace_summary",
    "Instruction",
    "Opcode",
    "BRANCH_OPS",
    "COND_BRANCH_OPS",
    "EXEC_LATENCY",
    "LOAD_OPS",
    "MEM_OPS",
    "STORE_OPS",
    "is_branch",
    "is_cond_branch",
    "is_load",
    "is_store",
    "writes_register",
    "Program",
    "format_instruction",
    "NUM_ARCH_REGS",
    "WORD_MASK",
    "parse_reg",
    "reg_name",
    "to_signed",
]
