"""Opcode definitions for the repro uop ISA.

The ISA is a small RISC-like uop set: integer ALU ops, floating-point ops
(modelled as latency classes on the unified register file), loads/stores
with base+index*scale+imm addressing, direct conditional branches, an
unconditional jump, and call/return (which exercise the return address
stack). This is deliberately simpler than x86-64 (the paper's Scarab
substrate) because Criticality Driven Fetch operates purely on uop-level
dataflow; nothing in the mechanism depends on ISA semantics.
"""

from __future__ import annotations

import enum


class Opcode(enum.IntEnum):
    """All opcodes in the uop ISA."""

    # Integer ALU
    ADD = 1
    SUB = 2
    MUL = 3
    DIV = 4
    AND = 5
    OR = 6
    XOR = 7
    SHL = 8
    SHR = 9
    MOV = 10        # dst <- src1
    MOVI = 11       # dst <- imm
    CMPLT = 12      # dst <- 1 if src1 < src2 else 0
    CMPEQ = 13      # dst <- 1 if src1 == src2 else 0
    MOD = 14        # dst <- src1 % src2 (unsigned-ish)

    # Floating point (latency classes; values stored in the same regfile)
    FADD = 20
    FMUL = 21
    FDIV = 22

    # Memory: addr = [src1 + src2 * scale + imm]; src2 optional
    LOAD = 30       # dst <- mem[addr]
    STORE = 31      # mem[addr] <- dst-field register (store data register)

    # Control
    BEQZ = 40       # branch to target if src1 == 0
    BNEZ = 41       # branch to target if src1 != 0
    BLTZ = 42       # branch to target if src1 < 0
    BGEZ = 43       # branch to target if src1 >= 0
    JMP = 44        # unconditional direct jump
    CALL = 45       # push return address, jump to target
    RET = 46        # pop return address, jump to it

    # Misc
    NOP = 50
    HALT = 51


#: Opcodes that read memory.
LOAD_OPS = frozenset({Opcode.LOAD})

#: Opcodes that write memory.
STORE_OPS = frozenset({Opcode.STORE})

#: All memory opcodes.
MEM_OPS = LOAD_OPS | STORE_OPS

#: Conditional branches (predicted by the direction predictor).
COND_BRANCH_OPS = frozenset({Opcode.BEQZ, Opcode.BNEZ, Opcode.BLTZ, Opcode.BGEZ})

#: All control-flow opcodes (end a basic block).
BRANCH_OPS = COND_BRANCH_OPS | frozenset({Opcode.JMP, Opcode.CALL, Opcode.RET})

#: Opcodes that produce a register value.
WRITER_OPS = frozenset(
    {
        Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.AND,
        Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.SHR, Opcode.MOV,
        Opcode.MOVI, Opcode.CMPLT, Opcode.CMPEQ, Opcode.MOD,
        Opcode.FADD, Opcode.FMUL, Opcode.FDIV, Opcode.LOAD,
    }
)

#: Execution latency (cycles) once operands are ready, excluding memory.
EXEC_LATENCY = {
    Opcode.ADD: 1, Opcode.SUB: 1, Opcode.AND: 1, Opcode.OR: 1,
    Opcode.XOR: 1, Opcode.SHL: 1, Opcode.SHR: 1, Opcode.MOV: 1,
    Opcode.MOVI: 1, Opcode.CMPLT: 1, Opcode.CMPEQ: 1,
    Opcode.MUL: 3, Opcode.DIV: 12, Opcode.MOD: 12,
    Opcode.FADD: 3, Opcode.FMUL: 4, Opcode.FDIV: 14,
    Opcode.LOAD: 1,   # address generation; memory latency added by the cache
    Opcode.STORE: 1,
    Opcode.BEQZ: 1, Opcode.BNEZ: 1, Opcode.BLTZ: 1, Opcode.BGEZ: 1,
    Opcode.JMP: 1, Opcode.CALL: 1, Opcode.RET: 1,
    Opcode.NOP: 1, Opcode.HALT: 1,
}


#: Execution-unit class per opcode: 'alu' (simple integer + control),
#: 'muldiv' (long-latency integer), 'fp' (floating point), 'load', 'store'.
EXEC_CLASS = {}
for _op in Opcode:
    if _op in LOAD_OPS:
        EXEC_CLASS[_op] = "load"
    elif _op in STORE_OPS:
        EXEC_CLASS[_op] = "store"
    elif _op in (Opcode.MUL, Opcode.DIV, Opcode.MOD):
        EXEC_CLASS[_op] = "muldiv"
    elif _op in (Opcode.FADD, Opcode.FMUL, Opcode.FDIV):
        EXEC_CLASS[_op] = "fp"
    else:
        EXEC_CLASS[_op] = "alu"
del _op


def is_load(op: Opcode) -> bool:
    """Return True if *op* reads memory."""
    return op in LOAD_OPS


def is_store(op: Opcode) -> bool:
    """Return True if *op* writes memory."""
    return op in STORE_OPS


def is_branch(op: Opcode) -> bool:
    """Return True if *op* is any control-flow uop."""
    return op in BRANCH_OPS


def is_cond_branch(op: Opcode) -> bool:
    """Return True if *op* is a conditional branch."""
    return op in COND_BRANCH_OPS


def writes_register(op: Opcode) -> bool:
    """Return True if *op* produces a register result."""
    return op in WRITER_OPS
