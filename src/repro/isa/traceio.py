"""Binary trace serialisation.

Functional execution of the bigger kernels takes longer than replaying
them; saving the dynamic uop trace lets experiment sweeps (and other
tools) reuse one functional run, the way trace-driven simulators ship
trace files.

Version 2 is *columnar*: fixed-width per-uop fields are stored as whole
arrays rather than interleaved records, so a decoder can lift each
column in one bulk operation (``struct.unpack`` of the whole array, or
``numpy.frombuffer`` when the numpy engine variant is active — see
:mod:`repro.engine_select`) instead of walking a byte offset through
millions of heterogeneous records.  Layout, little-endian throughout::

    header:   magic 'CDFT', version u16, uop count u64,
              srcs total u64, mem count u64, deps total u64,
              load count u64
    columns:  pc u32[n], op u8[n], flags u8[n], dst u8[n] (0xFF=none),
              n_srcs u8[n], next_pc u32[n], n_deps u8[n]
    blobs:    srcs u8[srcs_total]        (concatenated, row order)
              mem_addr u64[mem_count]    (rows with MEM flag, row order)
              deps u64[deps_total]       (concatenated, row order)
              store_dep i64[load_count]  (rows with LOAD flag, row order)

Version 1 (interleaved records) is still decoded for old trace files;
new traces are always written as version 2.  ``exec_lat`` and
``exec_class`` are recomputed from the opcode on load, so traces stay
valid if latency tables are retuned.
"""

from __future__ import annotations

import struct
from typing import List

from ..engine_select import get_numpy, use_numpy
from .dynuop import DynUop
from .opcodes import EXEC_CLASS, EXEC_LATENCY, Opcode

MAGIC = b"CDFT"
VERSION = 2

_FLAG_LOAD = 1
_FLAG_STORE = 2
_FLAG_BRANCH = 4
_FLAG_COND = 8
_FLAG_TAKEN = 16
_FLAG_MEM = 32

#: Int-keyed copies of the latency/class tables. ``loads_trace`` runs
#: once per uop; indexing these avoids an ``Opcode(op)`` enum
#: construction per uop (unknown opcodes raise KeyError, which the
#: deserializer's error handler turns into a TraceFormatError).
_EXEC_LAT_BY_OP = {int(op): EXEC_LATENCY[op] for op in Opcode}
_EXEC_CLASS_BY_OP = {int(op): EXEC_CLASS[op] for op in Opcode}

#: Precompiled struct readers for the v1 per-uop records.
_S_HEAD = struct.Struct("<IBBBB")
_S_U64 = struct.Struct("<Q")
_S_NEXT = struct.Struct("<IB")
_S_I64 = struct.Struct("<q")
_S_DEPS = tuple(struct.Struct(f"<{n}Q") for n in range(1, 9))

_V2_HEADER = struct.Struct("<HQQQQQ")  # version + the five counts

#: flags byte -> (is_load, is_store, is_branch, is_cond_branch, taken,
#: has_mem); decoding runs once per uop, so the six bit tests are paid
#: once per distinct flag byte here instead of once per uop.
_FLAG_DECODE = tuple(
    (bool(f & _FLAG_LOAD), bool(f & _FLAG_STORE), bool(f & _FLAG_BRANCH),
     bool(f & _FLAG_COND), bool(f & _FLAG_TAKEN), bool(f & _FLAG_MEM))
    for f in range(64))


class TraceFormatError(ValueError):
    """Raised when a trace file is malformed or version-incompatible."""


def dumps_trace(trace: List[DynUop]) -> bytes:
    """Serialize *trace* to the binary trace format (in memory).

    ``save_trace`` is ``dumps_trace`` plus a file write; the harness's
    persistent trace store uses the byte form directly so it can write
    entries atomically (temp file + ``os.replace``).
    """
    n = len(trace)
    pcs: List[int] = []
    ops: List[int] = []
    flags_col: List[int] = []
    dsts: List[int] = []
    n_srcs: List[int] = []
    next_pcs: List[int] = []
    n_deps: List[int] = []
    srcs_blob = bytearray()
    mem_addrs: List[int] = []
    deps_blob: List[int] = []
    store_deps: List[int] = []
    for uop in trace:
        flags = ((_FLAG_LOAD if uop.is_load else 0)
                 | (_FLAG_STORE if uop.is_store else 0)
                 | (_FLAG_BRANCH if uop.is_branch else 0)
                 | (_FLAG_COND if uop.is_cond_branch else 0)
                 | (_FLAG_TAKEN if uop.taken else 0)
                 | (_FLAG_MEM if uop.mem_addr is not None else 0))
        pcs.append(uop.pc)
        ops.append(uop.op)
        flags_col.append(flags)
        dsts.append(0xFF if uop.dst is None else uop.dst)
        n_srcs.append(len(uop.srcs))
        next_pcs.append(uop.next_pc)
        n_deps.append(len(uop.src_deps))
        srcs_blob += bytes(uop.srcs)
        if uop.mem_addr is not None:
            mem_addrs.append(uop.mem_addr)
        deps_blob.extend(uop.src_deps)
        if uop.is_load:
            store_deps.append(uop.store_dep)
    out = bytearray()
    out += MAGIC
    out += _V2_HEADER.pack(VERSION, n, len(srcs_blob), len(mem_addrs),
                           len(deps_blob), len(store_deps))
    out += struct.pack(f"<{n}I", *pcs)
    out += bytes(ops)
    out += bytes(flags_col)
    out += bytes(dsts)
    out += bytes(n_srcs)
    out += struct.pack(f"<{n}I", *next_pcs)
    out += bytes(n_deps)
    out += bytes(srcs_blob)
    out += struct.pack(f"<{len(mem_addrs)}Q", *mem_addrs)
    out += struct.pack(f"<{len(deps_blob)}Q", *deps_blob)
    out += struct.pack(f"<{len(store_deps)}q", *store_deps)
    return bytes(out)


def save_trace(trace: List[DynUop], path: str) -> None:
    """Write *trace* to *path* in the binary trace format."""
    with open(path, "wb") as handle:
        handle.write(dumps_trace(trace))


def _v2_columns_python(data: bytes, offset: int, n: int, n_srcs_total: int,
                       n_mem: int, n_deps_total: int, n_loads: int):
    """Lift the v2 columns with bulk ``struct.unpack_from`` calls."""
    pcs = struct.unpack_from(f"<{n}I", data, offset)
    offset += 4 * n
    ops = data[offset:offset + n]
    offset += n
    flags = data[offset:offset + n]
    offset += n
    dsts = data[offset:offset + n]
    offset += n
    n_srcs = data[offset:offset + n]
    offset += n
    next_pcs = struct.unpack_from(f"<{n}I", data, offset)
    offset += 4 * n
    n_deps = data[offset:offset + n]
    offset += n
    srcs_blob = data[offset:offset + n_srcs_total]
    offset += n_srcs_total
    mem_addrs = struct.unpack_from(f"<{n_mem}Q", data, offset)
    offset += 8 * n_mem
    deps_blob = struct.unpack_from(f"<{n_deps_total}Q", data, offset)
    offset += 8 * n_deps_total
    store_deps = struct.unpack_from(f"<{n_loads}q", data, offset)
    offset += 8 * n_loads
    return (pcs, ops, flags, dsts, n_srcs, next_pcs, n_deps, srcs_blob,
            mem_addrs, deps_blob, store_deps, offset)


def _v2_columns_numpy(data: bytes, offset: int, n: int, n_srcs_total: int,
                      n_mem: int, n_deps_total: int, n_loads: int):
    """Lift the v2 columns via ``numpy.frombuffer`` + one ``tolist``.

    Bit-identical to :func:`_v2_columns_python`: both produce the same
    sequences of Python ints/bytes; only the bulk-conversion machinery
    differs (pinned by tests/isa/test_traceio.py and the suite
    fingerprints under both ``REPRO_ENGINE`` variants).
    """
    np = get_numpy()
    pcs = np.frombuffer(data, "<u4", n, offset).tolist()
    offset += 4 * n
    ops = data[offset:offset + n]
    offset += n
    flags = data[offset:offset + n]
    offset += n
    dsts = data[offset:offset + n]
    offset += n
    n_srcs = data[offset:offset + n]
    offset += n
    next_pcs = np.frombuffer(data, "<u4", n, offset).tolist()
    offset += 4 * n
    n_deps = data[offset:offset + n]
    offset += n
    srcs_blob = data[offset:offset + n_srcs_total]
    offset += n_srcs_total
    mem_addrs = np.frombuffer(data, "<u8", n_mem, offset).tolist()
    offset += 8 * n_mem
    deps_blob = np.frombuffer(data, "<u8", n_deps_total, offset).tolist()
    offset += 8 * n_deps_total
    store_deps = np.frombuffer(data, "<i8", n_loads, offset).tolist()
    offset += 8 * n_loads
    return (pcs, ops, flags, dsts, n_srcs, next_pcs, n_deps, srcs_blob,
            mem_addrs, deps_blob, store_deps, offset)


def _loads_v2(data: bytes, context: str) -> List[DynUop]:
    (_version, count, n_srcs_total, n_mem, n_deps_total,
     n_loads) = _V2_HEADER.unpack_from(data, 4)
    need = (4 + _V2_HEADER.size + 13 * count + n_srcs_total
            + 8 * (n_mem + n_deps_total + n_loads))
    if len(data) < need:
        raise TraceFormatError(
            f"{context}: truncated v2 trace ({len(data)} bytes, "
            f"header implies {need})")
    columns = _v2_columns_numpy if use_numpy() else _v2_columns_python
    (pcs, ops, flags_col, dsts, n_srcs, next_pcs, n_deps, srcs_blob,
     mem_addrs, deps_blob, store_deps, offset) = columns(
        data, 4 + _V2_HEADER.size, count, n_srcs_total, n_mem,
        n_deps_total, n_loads)
    if offset != len(data):
        raise TraceFormatError(
            f"{context}: {len(data) - offset} trailing bytes")
    trace: List[DynUop] = []
    append = trace.append
    lat_by_op = _EXEC_LAT_BY_OP
    class_by_op = _EXEC_CLASS_BY_OP
    flag_decode = _FLAG_DECODE
    dynuop = DynUop
    src_off = 0
    dep_off = 0
    mem_i = 0
    load_i = 0
    try:
        for seq in range(count):
            op = ops[seq]
            (is_load, is_store, is_branch, is_cond, taken,
             has_mem) = flag_decode[flags_col[seq]]
            k = n_srcs[seq]
            srcs = tuple(srcs_blob[src_off:src_off + k])
            src_off += k
            k = n_deps[seq]
            deps = tuple(deps_blob[dep_off:dep_off + k])
            dep_off += k
            mem_addr = None
            if has_mem:
                mem_addr = mem_addrs[mem_i]
                mem_i += 1
            store_dep = -1
            if is_load:
                store_dep = store_deps[load_i]
                load_i += 1
            dst = dsts[seq]
            append(dynuop(
                seq=seq, pc=pcs[seq], op=op,
                dst=None if dst == 0xFF else dst, srcs=srcs,
                exec_lat=lat_by_op[op],
                is_load=is_load, is_store=is_store,
                is_branch=is_branch,
                is_cond_branch=is_cond,
                mem_addr=mem_addr, taken=taken,
                next_pc=next_pcs[seq], src_deps=deps,
                store_dep=store_dep,
                exec_class=class_by_op[op]))
    except (KeyError, IndexError, struct.error) as exc:
        raise TraceFormatError(f"{context}: truncated or corrupt "
                               f"at uop {len(trace)}: {exc}") from exc
    if src_off != n_srcs_total or dep_off != n_deps_total \
            or mem_i != n_mem or load_i != n_loads:
        raise TraceFormatError(
            f"{context}: column totals disagree with per-uop counts")
    return trace


def _loads_v1(data: bytes, context: str) -> List[DynUop]:
    """Decode the version-1 interleaved-record format (old trace files)."""
    (count,) = struct.unpack_from("<Q", data, 6)
    offset = 4 + 10
    trace: List[DynUop] = []
    append = trace.append
    lat_by_op = _EXEC_LAT_BY_OP
    class_by_op = _EXEC_CLASS_BY_OP
    dynuop = DynUop
    head = _S_HEAD.unpack_from
    u64 = _S_U64.unpack_from
    nxt = _S_NEXT.unpack_from
    i64 = _S_I64.unpack_from
    dep_structs = _S_DEPS
    try:
        for seq in range(count):
            pc, op, flags, dst, n_srcs = head(data, offset)
            offset += 8
            srcs = tuple(data[offset:offset + n_srcs])
            offset += n_srcs
            mem_addr = None
            if flags & _FLAG_MEM:
                (mem_addr,) = u64(data, offset)
                offset += 8
            next_pc, n_deps = nxt(data, offset)
            offset += 5
            if n_deps:
                deps = (dep_structs[n_deps - 1].unpack_from(data, offset)
                        if n_deps <= 8 else
                        struct.unpack_from(f"<{n_deps}Q", data, offset))
                offset += 8 * n_deps
            else:
                deps = ()
            is_load = bool(flags & _FLAG_LOAD)
            store_dep = -1
            if is_load:
                (store_dep,) = i64(data, offset)
                offset += 8
            append(dynuop(
                seq=seq, pc=pc, op=op,
                dst=None if dst == 0xFF else dst, srcs=srcs,
                exec_lat=lat_by_op[op],
                is_load=is_load, is_store=bool(flags & _FLAG_STORE),
                is_branch=bool(flags & _FLAG_BRANCH),
                is_cond_branch=bool(flags & _FLAG_COND),
                mem_addr=mem_addr, taken=bool(flags & _FLAG_TAKEN),
                next_pc=next_pc, src_deps=deps,
                store_dep=store_dep,
                exec_class=class_by_op[op]))
    except (KeyError, struct.error, ValueError) as exc:
        raise TraceFormatError(f"{context}: truncated or corrupt "
                               f"at uop {len(trace)}: {exc}") from exc
    if offset != len(data):
        raise TraceFormatError(
            f"{context}: {len(data) - offset} trailing bytes")
    return trace


def loads_trace(data: bytes, context: str = "<bytes>") -> List[DynUop]:
    """Deserialize a trace from its binary byte form.

    *context* names the source in error messages (``load_trace`` passes
    the file path).
    """
    if data[:4] != MAGIC:
        raise TraceFormatError(f"{context}: not a CDFT trace file")
    (version,) = struct.unpack_from("<H", data, 4)
    if version == 2:
        return _loads_v2(data, context)
    if version == 1:
        return _loads_v1(data, context)
    raise TraceFormatError(
        f"{context}: trace version {version}, expected <= {VERSION}")


def load_trace(path: str) -> List[DynUop]:
    """Read a trace written by :func:`save_trace`."""
    with open(path, "rb") as handle:
        data = handle.read()
    return loads_trace(data, context=str(path))
