"""Binary trace serialisation.

Functional execution of the bigger kernels takes longer than replaying
them; saving the dynamic uop trace lets experiment sweeps (and other
tools) reuse one functional run, the way trace-driven simulators ship
trace files. The format is a compact little-endian packing:

    header:  magic 'CDFT', version u16, uop count u64
    per uop: pc u32, op u8, flags u8, dst u8 (0xFF = none),
             n_srcs u8, srcs u8 x n,
             mem_addr u64 (present iff flags & MEM),
             next_pc u32,
             n_deps u8, deps: u64 x n (absolute seqs),
             store_dep i64 (present iff flags & LOAD)

``exec_lat`` and ``exec_class`` are recomputed from the opcode on load,
so traces stay valid if latency tables are retuned.
"""

from __future__ import annotations

import struct
from typing import List

from .dynuop import DynUop
from .opcodes import EXEC_CLASS, EXEC_LATENCY, Opcode

MAGIC = b"CDFT"
VERSION = 1

_FLAG_LOAD = 1
_FLAG_STORE = 2
_FLAG_BRANCH = 4
_FLAG_COND = 8
_FLAG_TAKEN = 16
_FLAG_MEM = 32

#: Int-keyed copies of the latency/class tables. ``loads_trace`` runs
#: once per uop; indexing these avoids an ``Opcode(op)`` enum
#: construction per uop (unknown opcodes raise KeyError, which the
#: deserializer's error handler turns into a TraceFormatError).
_EXEC_LAT_BY_OP = {int(op): EXEC_LATENCY[op] for op in Opcode}
_EXEC_CLASS_BY_OP = {int(op): EXEC_CLASS[op] for op in Opcode}

#: Precompiled struct readers for the per-uop records.  ``Struct`` objects
#: skip the per-call format-cache lookup of ``struct.unpack_from``; the
#: dep-vector formats are precompiled for the common small arities (the
#: general f-string path remains as fallback).
_S_HEAD = struct.Struct("<IBBBB")
_S_U64 = struct.Struct("<Q")
_S_NEXT = struct.Struct("<IB")
_S_I64 = struct.Struct("<q")
_S_DEPS = tuple(struct.Struct(f"<{n}Q") for n in range(1, 9))


class TraceFormatError(ValueError):
    """Raised when a trace file is malformed or version-incompatible."""


def dumps_trace(trace: List[DynUop]) -> bytes:
    """Serialize *trace* to the binary trace format (in memory).

    ``save_trace`` is ``dumps_trace`` plus a file write; the harness's
    persistent trace store uses the byte form directly so it can write
    entries atomically (temp file + ``os.replace``).
    """
    out = bytearray()
    out += MAGIC
    out += struct.pack("<HQ", VERSION, len(trace))
    pack = struct.pack
    for uop in trace:
        flags = ((_FLAG_LOAD if uop.is_load else 0)
                 | (_FLAG_STORE if uop.is_store else 0)
                 | (_FLAG_BRANCH if uop.is_branch else 0)
                 | (_FLAG_COND if uop.is_cond_branch else 0)
                 | (_FLAG_TAKEN if uop.taken else 0)
                 | (_FLAG_MEM if uop.mem_addr is not None else 0))
        dst = 0xFF if uop.dst is None else uop.dst
        out += pack("<IBBBB", uop.pc, uop.op, flags, dst, len(uop.srcs))
        out += bytes(uop.srcs)
        if uop.mem_addr is not None:
            out += pack("<Q", uop.mem_addr)
        out += pack("<IB", uop.next_pc, len(uop.src_deps))
        for dep in uop.src_deps:
            out += pack("<Q", dep)
        if uop.is_load:
            out += pack("<q", uop.store_dep)
    return bytes(out)


def save_trace(trace: List[DynUop], path: str) -> None:
    """Write *trace* to *path* in the binary trace format."""
    with open(path, "wb") as handle:
        handle.write(dumps_trace(trace))


def loads_trace(data: bytes, context: str = "<bytes>") -> List[DynUop]:
    """Deserialize a trace from its binary byte form.

    *context* names the source in error messages (``load_trace`` passes
    the file path).
    """
    if data[:4] != MAGIC:
        raise TraceFormatError(f"{context}: not a CDFT trace file")
    version, count = struct.unpack_from("<HQ", data, 4)
    if version != VERSION:
        raise TraceFormatError(
            f"{context}: trace version {version}, expected {VERSION}")
    offset = 4 + 10
    trace: List[DynUop] = []
    append = trace.append
    lat_by_op = _EXEC_LAT_BY_OP
    class_by_op = _EXEC_CLASS_BY_OP
    dynuop = DynUop
    head = _S_HEAD.unpack_from
    u64 = _S_U64.unpack_from
    nxt = _S_NEXT.unpack_from
    i64 = _S_I64.unpack_from
    dep_structs = _S_DEPS
    try:
        for seq in range(count):
            pc, op, flags, dst, n_srcs = head(data, offset)
            offset += 8
            srcs = tuple(data[offset:offset + n_srcs])
            offset += n_srcs
            mem_addr = None
            if flags & _FLAG_MEM:
                (mem_addr,) = u64(data, offset)
                offset += 8
            next_pc, n_deps = nxt(data, offset)
            offset += 5
            if n_deps:
                deps = (dep_structs[n_deps - 1].unpack_from(data, offset)
                        if n_deps <= 8 else
                        struct.unpack_from(f"<{n_deps}Q", data, offset))
                offset += 8 * n_deps
            else:
                deps = ()
            is_load = bool(flags & _FLAG_LOAD)
            store_dep = -1
            if is_load:
                (store_dep,) = i64(data, offset)
                offset += 8
            append(dynuop(
                seq=seq, pc=pc, op=op,
                dst=None if dst == 0xFF else dst, srcs=srcs,
                exec_lat=lat_by_op[op],
                is_load=is_load, is_store=bool(flags & _FLAG_STORE),
                is_branch=bool(flags & _FLAG_BRANCH),
                is_cond_branch=bool(flags & _FLAG_COND),
                mem_addr=mem_addr, taken=bool(flags & _FLAG_TAKEN),
                next_pc=next_pc, src_deps=deps,
                store_dep=store_dep,
                exec_class=class_by_op[op]))
    except (KeyError, struct.error, ValueError) as exc:
        raise TraceFormatError(f"{context}: truncated or corrupt "
                               f"at uop {len(trace)}: {exc}") from exc
    if offset != len(data):
        raise TraceFormatError(
            f"{context}: {len(data) - offset} trailing bytes")
    return trace


def load_trace(path: str) -> List[DynUop]:
    """Read a trace written by :func:`save_trace`."""
    with open(path, "rb") as handle:
        data = handle.read()
    return loads_trace(data, context=str(path))
