"""Functional simulator: executes a program and emits the dynamic uop trace.

This is the "execute" half of an execution-driven simulator (the paper uses
Scarab, which executes at fetch). We run the program once with full
architectural semantics, producing the program-order :class:`DynUop` stream
with resolved addresses, branch outcomes, and dataflow edges. The timing
models then replay this stream under microarchitectural constraints.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .dynuop import DynUop
from .instruction import Instruction
from .opcodes import EXEC_CLASS, EXEC_LATENCY, Opcode
from .program import Program
from .registers import NUM_ARCH_REGS, WORD_MASK, to_signed


class ExecutionLimitExceeded(RuntimeError):
    """Raised when a program does not halt within ``max_uops``."""


class FunctionalMachine:
    """Architectural-state interpreter for the repro uop ISA.

    Memory is a sparse word store: a dict from byte address to 64-bit
    value. Uninitialised locations read as zero. CALL/RET use a shadow
    return stack (the ISA has no architectural stack pointer).
    """

    def __init__(self, program: Program,
                 memory: Optional[Dict[int, int]] = None) -> None:
        self.program = program
        self.regs: List[int] = [0] * NUM_ARCH_REGS
        self.memory: Dict[int, int] = dict(memory) if memory else {}
        self.return_stack: List[int] = []
        self.pc = 0
        self.halted = False

    # -- architectural helpers --------------------------------------------
    def read_mem(self, addr: int) -> int:
        return self.memory.get(addr & WORD_MASK, 0)

    def write_mem(self, addr: int, value: int) -> None:
        self.memory[addr & WORD_MASK] = value & WORD_MASK

    def _operand2(self, inst: Instruction) -> int:
        if inst.src2 is not None:
            return self.regs[inst.src2]
        return inst.imm & WORD_MASK

    def _mem_addr(self, inst: Instruction) -> int:
        addr = self.regs[inst.src1]
        if inst.src2 is not None:
            addr += self.regs[inst.src2] * inst.scale
        addr += inst.imm
        return addr & WORD_MASK

    def _alu(self, op: Opcode, a: int, b: int) -> int:
        if op in (Opcode.ADD, Opcode.FADD):
            return (a + b) & WORD_MASK
        if op == Opcode.SUB:
            return (a - b) & WORD_MASK
        if op in (Opcode.MUL, Opcode.FMUL):
            return (a * b) & WORD_MASK
        if op in (Opcode.DIV, Opcode.FDIV):
            return (a // b) & WORD_MASK if b else 0
        if op == Opcode.MOD:
            return (a % b) & WORD_MASK if b else 0
        if op == Opcode.AND:
            return a & b
        if op == Opcode.OR:
            return a | b
        if op == Opcode.XOR:
            return a ^ b
        if op == Opcode.SHL:
            return (a << (b & 63)) & WORD_MASK
        if op == Opcode.SHR:
            return (a >> (b & 63)) & WORD_MASK
        if op == Opcode.CMPLT:
            return 1 if to_signed(a) < to_signed(b) else 0
        if op == Opcode.CMPEQ:
            return 1 if a == b else 0
        raise ValueError(f"not an ALU op: {op}")

    def _branch_taken(self, op: Opcode, value: int) -> bool:
        signed = to_signed(value)
        if op == Opcode.BEQZ:
            return signed == 0
        if op == Opcode.BNEZ:
            return signed != 0
        if op == Opcode.BLTZ:
            return signed < 0
        return signed >= 0  # BGEZ

    # -- single step --------------------------------------------------------
    def step(self) -> Instruction:
        """Execute one instruction, updating pc; return the instruction."""
        inst = self.program[self.pc]
        op = inst.op
        next_pc = self.pc + 1
        if op == Opcode.MOVI:
            self.regs[inst.dst] = inst.imm & WORD_MASK
        elif op == Opcode.MOV:
            self.regs[inst.dst] = self.regs[inst.src1]
        elif op == Opcode.LOAD:
            self.regs[inst.dst] = self.read_mem(self._mem_addr(inst))
        elif op == Opcode.STORE:
            self.write_mem(self._mem_addr(inst), self.regs[inst.dst])
        elif inst.is_cond_branch:
            if self._branch_taken(op, self.regs[inst.src1]):
                next_pc = inst.target
        elif op == Opcode.JMP:
            next_pc = inst.target
        elif op == Opcode.CALL:
            self.return_stack.append(self.pc + 1)
            next_pc = inst.target
        elif op == Opcode.RET:
            if not self.return_stack:
                raise RuntimeError(f"RET with empty return stack at pc {self.pc}")
            next_pc = self.return_stack.pop()
        elif op == Opcode.HALT:
            self.halted = True
        elif op == Opcode.NOP:
            pass
        else:
            self.regs[inst.dst] = self._alu(
                op, self.regs[inst.src1], self._operand2(inst))
        self.pc = next_pc
        return inst


def execute(program: Program, memory: Optional[Dict[int, int]] = None,
            max_uops: int = 2_000_000,
            require_halt: bool = True) -> List[DynUop]:
    """Run *program* and return its dynamic uop trace.

    The trace records, per uop, the sequence numbers of the dyn uops that
    produced each of its register sources (``src_deps``) and, for loads,
    the youngest older store to the same address (``store_dep``, -1 if the
    value came from initial memory).
    """
    machine = FunctionalMachine(program, memory)
    trace: List[DynUop] = []
    last_writer = [-1] * NUM_ARCH_REGS
    last_store: Dict[int, int] = {}
    seq = 0
    while not machine.halted:
        if seq >= max_uops:
            if require_halt:
                raise ExecutionLimitExceeded(
                    f"program did not halt within {max_uops} uops")
            break
        pc = machine.pc
        inst = machine.program[pc]
        mem_addr = machine._mem_addr(inst) if inst.is_mem else None
        inst = machine.step()
        next_pc = machine.pc

        srcs = inst.source_regs()
        deps = []
        for reg in srcs:
            producer = last_writer[reg]
            if producer >= 0:
                deps.append(producer)
        store_dep = -1
        if inst.is_load and mem_addr is not None:
            store_dep = last_store.get(mem_addr, -1)

        taken = inst.is_branch and next_pc != pc + 1
        if inst.op in (Opcode.JMP, Opcode.CALL, Opcode.RET):
            taken = True

        uop = DynUop(
            seq=seq, pc=pc, op=int(inst.op), dst=inst.dst, srcs=srcs,
            exec_lat=EXEC_LATENCY[inst.op],
            is_load=inst.is_load, is_store=inst.is_store,
            is_branch=inst.is_branch, is_cond_branch=inst.is_cond_branch,
            mem_addr=mem_addr, taken=taken, next_pc=next_pc,
            src_deps=tuple(dict.fromkeys(deps)), store_dep=store_dep,
            exec_class=EXEC_CLASS[inst.op])
        trace.append(uop)

        if inst.writes_reg:
            last_writer[inst.dst] = seq
        if inst.is_store and mem_addr is not None:
            last_store[mem_addr] = seq
        seq += 1
    return trace


def trace_summary(trace: List[DynUop]) -> Dict[str, int]:
    """Return basic instruction-mix counts for a trace."""
    loads = sum(1 for u in trace if u.is_load)
    stores = sum(1 for u in trace if u.is_store)
    branches = sum(1 for u in trace if u.is_cond_branch)
    return {
        "uops": len(trace),
        "loads": loads,
        "stores": stores,
        "cond_branches": branches,
        "other": len(trace) - loads - stores - branches,
    }
