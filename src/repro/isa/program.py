"""Program container and static control-flow analysis.

A :class:`Program` is an ordered list of :class:`Instruction` plus a label
map. Basic-block analysis (used by the CDF trace constructor and the
Critical Uop Cache) identifies block leaders: the entry point, branch
targets, and fall-through successors of branches.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from .instruction import Instruction
from .opcodes import Opcode


class Program:
    """An immutable program: instructions indexed by pc, plus labels."""

    def __init__(self, instructions: Sequence[Instruction],
                 labels: Dict[str, int] = None) -> None:
        if not instructions:
            raise ValueError("program must contain at least one instruction")
        self.instructions: List[Instruction] = list(instructions)
        self.labels: Dict[str, int] = dict(labels or {})
        self._validate()
        self._leaders = self._compute_leaders()
        self._bb_start = self._compute_bb_start()

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, pc: int) -> Instruction:
        return self.instructions[pc]

    def _validate(self) -> None:
        n = len(self.instructions)
        for pc, inst in enumerate(self.instructions):
            if inst.target is not None and not 0 <= inst.target < n:
                raise ValueError(
                    f"pc {pc}: branch target {inst.target} out of range")
        for name, pc in self.labels.items():
            if not 0 <= pc < n:
                raise ValueError(f"label {name!r} out of range: {pc}")

    def _compute_leaders(self) -> frozenset:
        leaders = {0}
        for pc, inst in enumerate(self.instructions):
            if inst.is_branch:
                if inst.target is not None:
                    leaders.add(inst.target)
                if pc + 1 < len(self.instructions):
                    leaders.add(pc + 1)
        return frozenset(leaders)

    def _compute_bb_start(self) -> List[int]:
        """For each pc, the pc of the leader of its basic block."""
        starts = [0] * len(self.instructions)
        current = 0
        for pc in range(len(self.instructions)):
            if pc in self._leaders:
                current = pc
            starts[pc] = current
        return starts

    @property
    def leaders(self) -> frozenset:
        """Set of pcs that start a basic block."""
        return self._leaders

    def basic_block_start(self, pc: int) -> int:
        """Return the pc of the basic-block leader containing *pc*."""
        return self._bb_start[pc]

    def bb_start_table(self) -> List[int]:
        """Per-pc basic-block leader table (shared; do not mutate).

        The CDF/PRE pipelines index this list on their fetch hot paths;
        handing out the precomputed table avoids rebuilding a
        program-length list per pipeline instantiation.
        """
        return self._bb_start

    def basic_block_end(self, start: int) -> int:
        """Return the last pc (inclusive) of the basic block starting at *start*."""
        pc = start
        n = len(self.instructions)
        while pc < n:
            if self.instructions[pc].is_branch:
                return pc
            if pc + 1 < n and (pc + 1) in self._leaders:
                return pc
            pc += 1
        return n - 1

    def disassemble(self) -> str:
        """Return a human-readable listing of the whole program."""
        pc_labels: Dict[int, List[str]] = {}
        for name, pc in self.labels.items():
            pc_labels.setdefault(pc, []).append(name)
        lines = []
        for pc, inst in enumerate(self.instructions):
            for name in pc_labels.get(pc, ()):
                lines.append(f"{name}:")
            lines.append(f"  {format_instruction(inst)}")
        return "\n".join(lines)


def format_instruction(inst: Instruction) -> str:
    """Render one instruction in assembly-like syntax."""
    op = inst.op
    if op == Opcode.MOVI:
        return f"movi r{inst.dst}, {inst.imm}"
    if op == Opcode.MOV:
        return f"mov r{inst.dst}, r{inst.src1}"
    if op == Opcode.LOAD:
        return f"load r{inst.dst}, {_addr_str(inst)}"
    if op == Opcode.STORE:
        return f"store r{inst.dst}, {_addr_str(inst)}"
    if inst.is_cond_branch:
        return f"{op.name.lower()} r{inst.src1}, {inst.target}"
    if op in (Opcode.JMP, Opcode.CALL):
        return f"{op.name.lower()} {inst.target}"
    if op in (Opcode.RET, Opcode.NOP, Opcode.HALT):
        return op.name.lower()
    if inst.src2 is not None:
        return f"{op.name.lower()} r{inst.dst}, r{inst.src1}, r{inst.src2}"
    return f"{op.name.lower()} r{inst.dst}, r{inst.src1}, {inst.imm}"


def _addr_str(inst: Instruction) -> str:
    parts = [f"r{inst.src1}"]
    if inst.src2 is not None:
        parts.append(f"r{inst.src2}*{inst.scale}")
    if inst.imm:
        parts.append(str(inst.imm))
    return "[" + " + ".join(parts) + "]"
