"""Per-opcode execution-port and latency metadata for the uop ISA.

The cycle-accurate pipelines consume :data:`~repro.isa.opcodes.EXEC_CLASS`
and :data:`~repro.isa.opcodes.EXEC_LATENCY` indirectly, through the
``DynUop`` records the functional simulator emits.  The analytical fast
tier (:mod:`repro.analytic`) needs the same information *as a table* —
which port class every opcode issues on, its execution latency, and
whether the port is pipelined — because it reasons about port pressure
and dependency chains without replaying uops.  This module is that
table, derived from the opcode definitions so the two tiers can never
disagree.

It also owns the ISA-level fetch geometry (:data:`UOPS_PER_ICACHE_LINE`)
that both the cycle-accurate frontend and the analytical frontend model
use to map program counters onto I-cache lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from .opcodes import EXEC_CLASS, EXEC_LATENCY, Opcode

__all__ = [
    "PORT_CLASSES",
    "PORT_TABLE",
    "UOPS_PER_ICACHE_LINE",
    "UopPortSpec",
    "port_spec",
]

#: Uops packed into one I-cache line (fetch geometry; PCs are uop
#: indices in this ISA, so a 64B line holds 16 4-byte uop slots).  The
#: cycle-accurate fetch stage and the analytical frontend model share
#: this constant.
UOPS_PER_ICACHE_LINE = 16

#: Every execution-port class, in a stable order: simple integer +
#: control ('alu'), long-latency integer ('muldiv'), floating point
#: ('fp'), load and store pipes.  Port counts per class come from
#: :class:`repro.config.CoreConfig` (``num_alu_ports`` et al.).
PORT_CLASSES: Tuple[str, ...] = ("alu", "muldiv", "fp", "load", "store")


@dataclass(frozen=True)
class UopPortSpec:
    """Issue metadata for one opcode.

    ``port``
        The execution-port class the opcode competes for (one of
        :data:`PORT_CLASSES`).
    ``latency``
        Execution latency in cycles once operands are ready.  For
        memory opcodes this is the address-generation latency only;
        the cache hierarchy adds the memory latency.
    ``pipelined``
        Whether a port can accept a new uop of this opcode every cycle.
        Every unit in the modelled core is fully pipelined (the
        cycle-accurate issue stage charges one port slot per uop
        regardless of latency), so this is uniformly True — kept
        explicit so an unpipelined divider would be a one-line change
        visible to both tiers.
    """

    port: str
    latency: int
    pipelined: bool = True


#: Opcode -> issue metadata, derived from the opcode tables.
PORT_TABLE: Dict[Opcode, UopPortSpec] = {
    op: UopPortSpec(port=EXEC_CLASS[op], latency=EXEC_LATENCY[op])
    for op in Opcode
}


def port_spec(op: Opcode) -> UopPortSpec:
    """The :class:`UopPortSpec` for *op* (KeyError on unknown opcodes)."""
    return PORT_TABLE[op]
