"""Dynamic uop record emitted by the functional simulator.

A ``DynUop`` is one executed instance of a static instruction. It carries
everything the timing models need: resolved memory address, branch outcome
and dynamic target, and — crucially — *resolved dataflow*: the program-order
sequence numbers of the producers of each source register and, for loads,
the youngest older store to the same address. True dependencies are thereby
fixed once by the functional phase; the timing phase (baseline OoO, CDF, or
PRE) is free to reorder fetch/issue around them, which is exactly the
freedom Criticality Driven Fetch exploits.
"""

from __future__ import annotations

from typing import Optional, Tuple


class DynUop:
    """One dynamic uop. Plain attributes with __slots__ for speed."""

    __slots__ = (
        "seq", "pc", "op", "dst", "srcs", "exec_lat", "exec_class",
        "is_load", "is_store", "is_branch", "is_cond_branch",
        "mem_addr", "taken", "next_pc", "src_deps", "store_dep",
        "is_mem", "writes_reg",
    )

    def __init__(self, seq: int, pc: int, op: int,
                 dst: Optional[int], srcs: Tuple[int, ...], exec_lat: int,
                 is_load: bool, is_store: bool,
                 is_branch: bool, is_cond_branch: bool,
                 mem_addr: Optional[int], taken: bool, next_pc: int,
                 src_deps: Tuple[int, ...], store_dep: int,
                 exec_class: str = "alu") -> None:
        self.seq = seq
        self.pc = pc
        self.op = op
        self.dst = dst
        self.srcs = srcs
        self.exec_lat = exec_lat
        self.is_load = is_load
        self.is_store = is_store
        self.is_branch = is_branch
        self.is_cond_branch = is_cond_branch
        self.mem_addr = mem_addr
        self.taken = taken
        self.next_pc = next_pc
        self.src_deps = src_deps
        self.store_dep = store_dep
        self.exec_class = exec_class
        # Derived flags, precomputed once here instead of recomputed by a
        # property descriptor on every access: the timing pipelines read
        # ``writes_reg`` several times per uop (allocation gating, PRF
        # accounting, retire) on their innermost loops, and a plain slot
        # load is several times cheaper than a property call.  Safe to
        # cache because DynUops are immutable after construction.
        self.is_mem = is_load or is_store
        self.writes_reg = dst is not None and not is_store

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = ("L" if self.is_load else
                "S" if self.is_store else
                "B" if self.is_branch else "A")
        return f"<DynUop #{self.seq} pc={self.pc} {kind}>"
