"""Text assembler for the repro uop ISA.

Accepts the same syntax that :func:`repro.isa.program.format_instruction`
emits, so ``assemble(program.disassemble())`` round-trips. Grammar, one
instruction or label per line, ``;`` or ``#`` start a comment::

    loop:
      movi r1, 100
      load r2, [r3 + r1*8 + 16]
      add r1, r1, -1          ; immediate form
      add r4, r2, r5          ; register form
      store r4, [r3]
      bnez r1, loop
      halt
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from .builder import ProgramBuilder
from .program import Program
from .registers import parse_reg

_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):$")

_THREE_OP = {"add", "sub", "mul", "div", "mod", "and", "or", "xor",
             "shl", "shr", "cmplt", "cmpeq", "fadd", "fmul", "fdiv"}
_BRANCHES = {"beqz", "bnez", "bltz", "bgez"}


class AssemblyError(ValueError):
    """Raised for any syntax error, with the offending line number."""

    def __init__(self, lineno: int, message: str) -> None:
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


def assemble(text: str) -> Program:
    """Assemble *text* into a :class:`Program`."""
    builder = ProgramBuilder()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";")[0].split("#")[0].strip()
        if not line:
            continue
        label_match = _LABEL_RE.match(line)
        if label_match:
            try:
                builder.label(label_match.group(1))
            except ValueError as exc:
                raise AssemblyError(lineno, str(exc)) from exc
            continue
        _assemble_line(builder, line, lineno)
    try:
        return builder.build()
    except ValueError as exc:
        raise AssemblyError(0, str(exc)) from exc


def _split_operands(rest: str) -> List[str]:
    """Split operand text on commas not inside brackets."""
    parts, depth, current = [], 0, []
    for ch in rest:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def _parse_mem(operand: str, lineno: int) -> Tuple[int, Optional[int], int, int]:
    compact = operand.replace(" ", "")
    match = re.match(
        r"^\[(r\d+)(?:\+(r\d+)\*(\d+))?(?:\+(-?\d+))?\]$", compact)
    if not match:
        raise AssemblyError(lineno, f"bad memory operand: {operand!r}")
    base = parse_reg(match.group(1))
    index = parse_reg(match.group(2)) if match.group(2) else None
    scale = int(match.group(3)) if match.group(3) else 1
    imm = int(match.group(4)) if match.group(4) else 0
    return base, index, scale, imm


def _parse_target(token: str):
    token = token.strip()
    if re.fullmatch(r"-?\d+", token):
        return int(token)
    return token


def _assemble_line(builder: ProgramBuilder, line: str, lineno: int) -> None:
    parts = line.split(None, 1)
    mnemonic = parts[0].lower()
    rest = parts[1] if len(parts) > 1 else ""
    operands = _split_operands(rest)
    try:
        _dispatch(builder, mnemonic, operands, lineno)
    except AssemblyError:
        raise
    except ValueError as exc:
        raise AssemblyError(lineno, str(exc)) from exc


def _dispatch(builder: ProgramBuilder, mnemonic: str,
              operands: List[str], lineno: int) -> None:
    if mnemonic in _THREE_OP:
        if len(operands) != 3:
            raise AssemblyError(lineno, f"{mnemonic} needs 3 operands")
        dst = parse_reg(operands[0])
        src1 = parse_reg(operands[1])
        method_name = mnemonic + "_" if mnemonic in ("and", "or") else mnemonic
        method = getattr(builder, method_name)
        if operands[2].lstrip("-").isdigit():
            method(dst, src1, imm=int(operands[2]))
        else:
            method(dst, src1, parse_reg(operands[2]))
    elif mnemonic == "mov":
        builder.mov(parse_reg(operands[0]), parse_reg(operands[1]))
    elif mnemonic == "movi":
        builder.movi(parse_reg(operands[0]), int(operands[1]))
    elif mnemonic in ("load", "store"):
        if len(operands) != 2:
            raise AssemblyError(lineno, f"{mnemonic} needs 2 operands")
        reg = parse_reg(operands[0])
        base, index, scale, imm = _parse_mem(operands[1], lineno)
        if mnemonic == "load":
            builder.load(reg, base, index=index, scale=scale, imm=imm)
        else:
            builder.store(reg, base, index=index, scale=scale, imm=imm)
    elif mnemonic in _BRANCHES:
        if len(operands) != 2:
            raise AssemblyError(lineno, f"{mnemonic} needs 2 operands")
        getattr(builder, mnemonic)(parse_reg(operands[0]),
                                   _parse_target(operands[1]))
    elif mnemonic in ("jmp", "call"):
        if len(operands) != 1:
            raise AssemblyError(lineno, f"{mnemonic} needs 1 operand")
        getattr(builder, mnemonic)(_parse_target(operands[0]))
    elif mnemonic in ("ret", "nop", "halt"):
        getattr(builder, mnemonic)()
    else:
        raise AssemblyError(lineno, f"unknown mnemonic: {mnemonic!r}")
