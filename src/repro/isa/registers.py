"""Architectural register file definition.

Thirty-two general-purpose 64-bit registers, ``r0``..``r31``. Unlike MIPS,
``r0`` is a normal register (no hardwired zero) so that workload generators
can use the full set.
"""

from __future__ import annotations

#: Number of architectural registers.
NUM_ARCH_REGS = 32

#: Mask applied to all register values (64-bit wraparound semantics).
WORD_MASK = (1 << 64) - 1

#: Sign bit for interpreting values as signed in comparisons/branches.
SIGN_BIT = 1 << 63


def reg_name(index: int) -> str:
    """Return the canonical assembly name for register *index*."""
    if not 0 <= index < NUM_ARCH_REGS:
        raise ValueError(f"register index out of range: {index}")
    return f"r{index}"


def parse_reg(name: str) -> int:
    """Parse a register name like ``r7`` into its index.

    Raises ValueError for malformed names or out-of-range indices.
    """
    name = name.strip().lower()
    if not name.startswith("r"):
        raise ValueError(f"not a register: {name!r}")
    try:
        index = int(name[1:])
    except ValueError as exc:
        raise ValueError(f"not a register: {name!r}") from exc
    if not 0 <= index < NUM_ARCH_REGS:
        raise ValueError(f"register index out of range: {name!r}")
    return index


def to_signed(value: int) -> int:
    """Interpret a 64-bit unsigned *value* as signed two's complement."""
    value &= WORD_MASK
    if value & SIGN_BIT:
        return value - (1 << 64)
    return value
