"""Static instruction representation.

An :class:`Instruction` is one entry in a :class:`~repro.isa.program.Program`.
Its ``pc`` is simply its index in the program's instruction list; there is
no variable-length encoding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .opcodes import (
    Opcode,
    is_branch,
    is_cond_branch,
    is_load,
    is_store,
    writes_register,
)


@dataclass(frozen=True)
class Instruction:
    """One static uop.

    Fields that do not apply to an opcode are ``None``/0:

    * ``dst`` — destination register for writers; for STORE it is the
      *data* register whose value is written to memory.
    * ``src1``/``src2`` — source registers. For memory ops, ``src1`` is the
      base register and ``src2`` the optional index register.
    * ``imm`` — immediate: MOVI value, memory displacement, or ALU operand
      when ``src2`` is None.
    * ``scale`` — index scale for memory ops (bytes per element).
    * ``target`` — static target pc for branches/jumps/calls.
    """

    op: Opcode
    dst: Optional[int] = None
    src1: Optional[int] = None
    src2: Optional[int] = None
    imm: int = 0
    scale: int = 1
    target: Optional[int] = None

    def __post_init__(self) -> None:
        if is_branch(self.op) and self.op != Opcode.RET and self.target is None:
            raise ValueError(f"{self.op.name} requires a target")
        if writes_register(self.op) and self.dst is None:
            raise ValueError(f"{self.op.name} requires a destination register")
        if is_store(self.op) and self.dst is None:
            raise ValueError("STORE requires a data register in dst")

    @property
    def is_load(self) -> bool:
        return is_load(self.op)

    @property
    def is_store(self) -> bool:
        return is_store(self.op)

    @property
    def is_mem(self) -> bool:
        return is_load(self.op) or is_store(self.op)

    @property
    def is_branch(self) -> bool:
        return is_branch(self.op)

    @property
    def is_cond_branch(self) -> bool:
        return is_cond_branch(self.op)

    @property
    def writes_reg(self) -> bool:
        return writes_register(self.op)

    def source_regs(self) -> tuple:
        """Return the tuple of architectural source registers read."""
        srcs = []
        if self.src1 is not None:
            srcs.append(self.src1)
        if self.src2 is not None:
            srcs.append(self.src2)
        if self.op == Opcode.STORE and self.dst is not None:
            srcs.append(self.dst)  # store data register is a source
        return tuple(srcs)
