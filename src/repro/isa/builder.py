"""Fluent builder for constructing programs in Python code.

Workload generators use this instead of assembly text; labels may be
referenced before they are defined and are resolved in :meth:`build`.

Example::

    b = ProgramBuilder()
    b.movi(0, 0)                # r0 = 0
    b.label("loop")
    b.load(1, base=2, imm=0)    # r1 = mem[r2]
    b.add(0, 0, imm=1)
    b.bnez(1, "loop")
    b.halt()
    program = b.build()
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from .instruction import Instruction
from .opcodes import Opcode
from .program import Program

LabelOrPc = Union[str, int]


class ProgramBuilder:
    """Accumulates instructions and resolves forward label references."""

    def __init__(self) -> None:
        self._instructions: List[dict] = []
        self._labels: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._instructions)

    @property
    def next_pc(self) -> int:
        """The pc the next emitted instruction will occupy."""
        return len(self._instructions)

    def label(self, name: str) -> "ProgramBuilder":
        """Bind *name* to the next instruction's pc."""
        if name in self._labels:
            raise ValueError(f"duplicate label: {name!r}")
        self._labels[name] = len(self._instructions)
        return self

    def _emit(self, op: Opcode, dst=None, src1=None, src2=None, imm=0,
              scale=1, target: Optional[LabelOrPc] = None) -> "ProgramBuilder":
        self._instructions.append(dict(op=op, dst=dst, src1=src1, src2=src2,
                                       imm=imm, scale=scale, target=target))
        return self

    # --- integer ALU -----------------------------------------------------
    def _alu(self, op, dst, src1, src2, imm):
        return self._emit(op, dst=dst, src1=src1, src2=src2, imm=imm)

    def add(self, dst, src1, src2=None, imm=0):
        return self._alu(Opcode.ADD, dst, src1, src2, imm)

    def sub(self, dst, src1, src2=None, imm=0):
        return self._alu(Opcode.SUB, dst, src1, src2, imm)

    def mul(self, dst, src1, src2=None, imm=0):
        return self._alu(Opcode.MUL, dst, src1, src2, imm)

    def div(self, dst, src1, src2=None, imm=1):
        return self._alu(Opcode.DIV, dst, src1, src2, imm)

    def mod(self, dst, src1, src2=None, imm=1):
        return self._alu(Opcode.MOD, dst, src1, src2, imm)

    def and_(self, dst, src1, src2=None, imm=0):
        return self._alu(Opcode.AND, dst, src1, src2, imm)

    def or_(self, dst, src1, src2=None, imm=0):
        return self._alu(Opcode.OR, dst, src1, src2, imm)

    def xor(self, dst, src1, src2=None, imm=0):
        return self._alu(Opcode.XOR, dst, src1, src2, imm)

    def shl(self, dst, src1, src2=None, imm=0):
        return self._alu(Opcode.SHL, dst, src1, src2, imm)

    def shr(self, dst, src1, src2=None, imm=0):
        return self._alu(Opcode.SHR, dst, src1, src2, imm)

    def cmplt(self, dst, src1, src2=None, imm=0):
        return self._alu(Opcode.CMPLT, dst, src1, src2, imm)

    def cmpeq(self, dst, src1, src2=None, imm=0):
        return self._alu(Opcode.CMPEQ, dst, src1, src2, imm)

    def mov(self, dst, src):
        return self._emit(Opcode.MOV, dst=dst, src1=src)

    def movi(self, dst, imm):
        return self._emit(Opcode.MOVI, dst=dst, imm=imm)

    # --- floating point ---------------------------------------------------
    def fadd(self, dst, src1, src2=None, imm=0):
        return self._alu(Opcode.FADD, dst, src1, src2, imm)

    def fmul(self, dst, src1, src2=None, imm=0):
        return self._alu(Opcode.FMUL, dst, src1, src2, imm)

    def fdiv(self, dst, src1, src2=None, imm=1):
        return self._alu(Opcode.FDIV, dst, src1, src2, imm)

    # --- memory -----------------------------------------------------------
    def load(self, dst, base, index=None, scale=8, imm=0):
        return self._emit(Opcode.LOAD, dst=dst, src1=base, src2=index,
                          imm=imm, scale=scale)

    def store(self, data, base, index=None, scale=8, imm=0):
        return self._emit(Opcode.STORE, dst=data, src1=base, src2=index,
                          imm=imm, scale=scale)

    # --- control ----------------------------------------------------------
    def beqz(self, src, target: LabelOrPc):
        return self._emit(Opcode.BEQZ, src1=src, target=target)

    def bnez(self, src, target: LabelOrPc):
        return self._emit(Opcode.BNEZ, src1=src, target=target)

    def bltz(self, src, target: LabelOrPc):
        return self._emit(Opcode.BLTZ, src1=src, target=target)

    def bgez(self, src, target: LabelOrPc):
        return self._emit(Opcode.BGEZ, src1=src, target=target)

    def jmp(self, target: LabelOrPc):
        return self._emit(Opcode.JMP, target=target)

    def call(self, target: LabelOrPc):
        return self._emit(Opcode.CALL, target=target)

    def ret(self):
        return self._emit(Opcode.RET)

    def nop(self):
        return self._emit(Opcode.NOP)

    def halt(self):
        return self._emit(Opcode.HALT)

    # --- finalisation -------------------------------------------------------
    def build(self) -> Program:
        """Resolve labels and return the finished :class:`Program`."""
        resolved: List[Instruction] = []
        for pc, fields in enumerate(self._instructions):
            target = fields["target"]
            if isinstance(target, str):
                if target not in self._labels:
                    raise ValueError(f"pc {pc}: undefined label {target!r}")
                target = self._labels[target]
            resolved.append(Instruction(
                op=fields["op"], dst=fields["dst"], src1=fields["src1"],
                src2=fields["src2"], imm=fields["imm"],
                scale=fields["scale"], target=target))
        return Program(resolved, self._labels)
