"""The full memory hierarchy: L1I, L1D, LLC, prefetcher, MSHRs, DRAM.

This is the single entry point the pipelines use for all memory timing.
Loads return an :class:`AccessResult` with the completion cycle and the
level that serviced the request; ``None`` means the L1D MSHRs are full and
the pipeline must retry (this bounds MLP, as in hardware).

Fill state is updated at request time ("instant tags") while latency is
carried by the returned completion cycle and MSHR entries — the standard
simplification at this abstraction level.
"""

from __future__ import annotations

from typing import NamedTuple, Optional

from ..config import SimConfig
from .cache import Cache
from .dram import DRAMModel
from .mshr import MSHRFile
from .prefetcher import StreamPrefetcher


class AccessResult(NamedTuple):
    """Outcome of a load/ifetch: when it completes and who serviced it."""

    completion: int
    level: str            # 'l1' | 'llc' | 'dram'
    merged: bool = False  # True if satisfied by an in-flight miss

    @property
    def llc_miss(self) -> bool:
        """True when the request had to go to main memory."""
        return self.level == "dram"


class MemoryHierarchy:
    """Inclusive two-level data hierarchy plus an instruction cache."""

    def __init__(self, config: SimConfig,
                 mlp_tracker=None) -> None:
        self.config = config
        self.line_bytes = config.l1d.line_bytes
        self.l1i = Cache(config.l1i, name="l1i")
        self.l1d = Cache(config.l1d, name="l1d")
        self.llc = Cache(config.llc, name="llc")
        self.l1d_mshrs = MSHRFile(config.l1d.mshrs)
        self.llc_mshrs = MSHRFile(config.llc.mshrs)
        self.dram = DRAMModel(config.dram, config.core.freq_ghz,
                              config.l1d.line_bytes)
        self.prefetcher = StreamPrefetcher(config.prefetcher)
        self.mlp_tracker = mlp_tracker
        # Stats
        self.demand_loads = 0
        self.store_commits = 0
        self.prefetches_issued = 0

    # ------------------------------------------------------------------ utils
    def line_of(self, addr: int) -> int:
        return addr // self.line_bytes

    # ------------------------------------------------------------------ loads
    def load(self, cycle: int, addr: int, source: str = "demand",
             track_mlp: bool = True) -> Optional[AccessResult]:
        """Access the data hierarchy for a read.

        Returns None when the L1D MSHRs are full (caller retries).
        """
        line = self.line_of(addr)
        self.l1d_mshrs.expire(cycle)
        self.llc_mshrs.expire(cycle)
        if source == "demand":
            self.demand_loads += 1

        # A line whose miss is still in flight sits in the L1 tag store
        # already (instant tags) but must not be treated as a hit: the
        # MSHR check comes first and yields a merge with the in-flight
        # miss's completion time. The MSHR payload records the level that
        # services the miss; a merge behind a DRAM fetch is still an LLC
        # miss for criticality training.
        outstanding = self.l1d_mshrs.lookup(line)
        if outstanding is not None:
            completion = self.l1d_mshrs.merge(line)
            level = self.l1d_mshrs.payload(line) or "llc"
            self._train_prefetcher(cycle, line, was_miss=True)
            return AccessResult(max(completion, cycle + self.l1d.latency),
                                level, merged=True)

        if self.l1d.lookup(line):
            if self.l1d.last_hit_prefetched:
                self.prefetcher.on_useful_prefetch()
            self._train_prefetcher(cycle, line, was_miss=False)
            return AccessResult(cycle + self.l1d.latency, "l1")

        if not self.l1d_mshrs.can_allocate():
            self.l1d_mshrs.full_rejections += 1
            return None

        llc_probe_cycle = cycle + self.l1d.latency
        if self.llc.lookup(line):
            if self.llc.last_hit_prefetched:
                self.prefetcher.on_useful_prefetch()
            completion = llc_probe_cycle + self.llc.latency
            self._fill_l1(line)
            self.l1d_mshrs.allocate(line, completion, payload="llc")
            self._train_prefetcher(cycle, line, was_miss=True)
            return AccessResult(completion, "llc")

        # LLC miss -> DRAM (or merge behind an outstanding LLC miss).
        merged = False
        outstanding_llc = self.llc_mshrs.lookup(line)
        if outstanding_llc is not None:
            completion = self.llc_mshrs.merge(line)
            completion = max(completion, llc_probe_cycle + self.llc.latency)
            merged = True
        else:
            if not self.llc_mshrs.can_allocate():
                self.llc_mshrs.full_rejections += 1
                return None
            issue = llc_probe_cycle + self.llc.latency
            completion = self.dram.access(issue, line, source=source)
            self.llc_mshrs.allocate(line, completion)
            if track_mlp and self.mlp_tracker is not None:
                self.mlp_tracker.record(issue, completion, source)
        self._fill_llc(line)
        self._fill_l1(line)
        self.l1d_mshrs.allocate(line, completion, payload="dram")
        self._train_prefetcher(cycle, line, was_miss=True)
        return AccessResult(completion, "dram", merged=merged)

    # ------------------------------------------------------------------ stores
    def store_commit(self, cycle: int, addr: int) -> None:
        """Commit a store: write-allocate into L1D, mark dirty."""
        line = self.line_of(addr)
        self.store_commits += 1
        if self.l1d.lookup(line):
            self.l1d.mark_dirty(line)
            return
        # Read-for-ownership fetch; latency is absorbed by the store queue.
        if not self.llc.lookup(line):
            self.dram.access(cycle, line, source="demand")
            self._fill_llc(line)
        self._fill_l1(line, dirty=True)

    # ------------------------------------------------------------------ ifetch
    def ifetch(self, cycle: int, pc_line: int) -> int:
        """Instruction fetch for one I-cache line; returns completion cycle."""
        if self.l1i.lookup(pc_line):
            return cycle + self.l1i.latency
        if self.llc.lookup(pc_line):
            completion = cycle + self.l1i.latency + self.llc.latency
        else:
            completion = self.dram.access(
                cycle + self.l1i.latency + self.llc.latency, pc_line,
                source="demand")
            self._fill_llc(pc_line)
        self.l1i.fill(pc_line)
        return completion

    # ------------------------------------------------------------------ prefetch
    def _train_prefetcher(self, cycle: int, line: int, was_miss: bool) -> None:
        for pf_line in self.prefetcher.on_access(line, was_miss):
            self._issue_prefetch(cycle, pf_line)

    def _issue_prefetch(self, cycle: int, line: int) -> None:
        if self.llc.probe(line) or self.llc_mshrs.lookup(line) is not None:
            return
        if not self.llc_mshrs.can_allocate():
            return
        completion = self.dram.access(cycle, line, source="prefetch",
                                      low_priority=True)
        self.llc_mshrs.allocate(line, completion)
        self.llc.fill(line, prefetched=True)
        self.prefetches_issued += 1

    # ------------------------------------------------------------------ fills
    def _fill_l1(self, line: int, dirty: bool = False) -> None:
        evicted = self.l1d.fill(line, dirty=dirty)
        if evicted is not None:
            victim_line, was_dirty = evicted
            if was_dirty:
                # Write back into the (inclusive) LLC.
                if not self.llc.mark_dirty(victim_line):
                    self.llc.fill(victim_line, dirty=True)

    def _fill_llc(self, line: int) -> None:
        evicted = self.llc.fill(line)
        if evicted is not None:
            victim_line, was_dirty = evicted
            # Inclusive hierarchy: back-invalidate L1.
            self.l1d.invalidate(victim_line)
            self.l1i.invalidate(victim_line)
            if was_dirty:
                self.dram.access(0, victim_line, source="writeback",
                                 is_write=True)

    def reset_stats(self) -> None:
        for cache in (self.l1i, self.l1d, self.llc):
            cache.reset_stats()
        self.l1d_mshrs.reset_stats()
        self.llc_mshrs.reset_stats()
        self.dram.reset_stats()
        self.prefetcher.reset_stats()
        self.demand_loads = self.store_commits = self.prefetches_issued = 0
