"""The full memory hierarchy: L1I, L1D, LLC, prefetcher, MSHRs, DRAM.

This is the single entry point the pipelines use for all memory timing.
Loads return an :class:`AccessResult` with the completion cycle and the
level that serviced the request; ``None`` means the L1D MSHRs are full and
the pipeline must retry (this bounds MLP, as in hardware).

Fill state is updated at request time ("instant tags") while latency is
carried by the returned completion cycle and MSHR entries — the standard
simplification at this abstraction level.  The corollary, enforced
everywhere below: **a tag hit must never be trusted while the line's fill
is still outstanding in the MSHRs.**  Instant tags say *where the line
will be*, the MSHR entry says *when it actually arrives*; consulting the
tags alone lets an in-flight prefetch (or an in-flight demand miss whose
L1 copy was evicted) satisfy a demand access at cache latency and hide
the entire DRAM round trip — the exact timing bug this module used to
have.  See docs/performance.md ("memory-timing semantics").

Observability: when :attr:`MemoryHierarchy.obs` is set (an
:class:`repro.obs.ObsCollector` bound at obs_level >= 1), every demand /
prefetch / runahead / ifetch request reports its issue cycle, completion
cycle, serviced level, and merge status for request-level latency
attribution.  At obs_level 0 the attribute stays ``None`` and every hook
site costs one comparison.
"""

from __future__ import annotations

from typing import NamedTuple, Optional

from ..config import SimConfig
from .cache import Cache
from .dram import DRAMModel
from .mshr import MSHRFile
from .prefetcher import StreamPrefetcher


class AccessResult(NamedTuple):
    """Outcome of a load/ifetch: when it completes and who serviced it."""

    completion: int
    level: str            # 'l1' | 'llc' | 'dram'
    merged: bool = False  # True if satisfied by an in-flight miss

    @property
    def llc_miss(self) -> bool:
        """True when the request had to go to main memory."""
        return self.level == "dram"


class MemoryHierarchy:
    """Inclusive two-level data hierarchy plus an instruction cache."""

    def __init__(self, config: SimConfig,
                 mlp_tracker=None) -> None:
        self.config = config
        self.line_bytes = config.l1d.line_bytes
        self.l1i = Cache(config.l1i, name="l1i")
        self.l1d = Cache(config.l1d, name="l1d")
        self.llc = Cache(config.llc, name="llc")
        self.l1d_mshrs = MSHRFile(config.l1d.mshrs)
        self.llc_mshrs = MSHRFile(config.llc.mshrs)
        self.dram = DRAMModel(config.dram, config.core.freq_ghz,
                              config.l1d.line_bytes)
        self.prefetcher = StreamPrefetcher(config.prefetcher)
        self.mlp_tracker = mlp_tracker
        #: Optional :class:`repro.obs.ObsCollector`; set by the collector
        #: when it binds to a pipeline at obs_level >= 1.  ``None`` (the
        #: default) keeps every request path at one extra comparison.
        self.obs = None
        # Stats
        self.demand_loads = 0
        self.store_commits = 0
        self.prefetches_issued = 0

    # ------------------------------------------------------------------ utils
    def line_of(self, addr: int) -> int:
        return addr // self.line_bytes

    # ------------------------------------------------------------------ loads
    def load(self, cycle: int, addr: int, source: str = "demand",
             track_mlp: bool = True) -> Optional[AccessResult]:
        """Access the data hierarchy for a read.

        Returns None when the L1D MSHRs are full (caller retries).
        """
        line = self.line_of(addr)
        self.l1d_mshrs.expire(cycle)
        self.llc_mshrs.expire(cycle)
        if source == "demand":
            self.demand_loads += 1

        # A line whose miss is still in flight sits in the L1 tag store
        # already (instant tags) but must not be treated as a hit: the
        # MSHR check comes first and yields a merge with the in-flight
        # miss's completion time. The MSHR payload records the level that
        # services the miss; a merge behind a DRAM fetch is still an LLC
        # miss for criticality training.
        outstanding = self.l1d_mshrs.lookup(line)
        if outstanding is not None:
            completion = self.l1d_mshrs.merge(line)
            level = self.l1d_mshrs.payload(line) or "llc"
            self._train_prefetcher(cycle, line, was_miss=True)
            completion = max(completion, cycle + self.l1d.latency)
            if self.obs is not None:
                self.obs.on_mem_request(cycle, completion, line, level,
                                        source, merged=True)
            return AccessResult(completion, level, merged=True)

        if self.l1d.lookup(line):
            if self.l1d.last_hit_prefetched:
                self.prefetcher.on_useful_prefetch()
            self._train_prefetcher(cycle, line, was_miss=False)
            completion = cycle + self.l1d.latency
            if self.obs is not None:
                self.obs.on_mem_request(cycle, completion, line, "l1",
                                        source, merged=False)
            return AccessResult(completion, "l1")

        if not self.l1d_mshrs.can_allocate():
            self.l1d_mshrs.full_rejections += 1
            return None

        llc_probe_cycle = cycle + self.l1d.latency

        # The LLC MSHRs are consulted *before* the LLC tag store: instant
        # tags install the line at issue time (for both demand misses and
        # prefetches), so while the fill is outstanding the tags claim a
        # hit the data cannot back yet.  Trusting that hit let an
        # in-flight prefetch satisfy a demand load at LLC latency —
        # hiding the entire DRAM round trip.  Merge with the outstanding
        # fill's completion instead.
        outstanding_llc = self.llc_mshrs.lookup(line)
        if outstanding_llc is not None:
            # Probe the tags anyway for LRU/stats/prefetch feedback: a
            # demand merge behind an in-flight prefetch is the prefetch
            # proving useful (credited once; the probe clears the bit).
            if self.llc.lookup(line) and self.llc.last_hit_prefetched:
                self.prefetcher.on_useful_prefetch()
            completion = max(self.llc_mshrs.merge(line),
                             llc_probe_cycle + self.llc.latency)
            self._fill_llc(cycle, line)   # restore tags if evicted mid-flight
            self._fill_l1(cycle, line)
            self.l1d_mshrs.allocate(line, completion, payload="dram")
            self._train_prefetcher(cycle, line, was_miss=True)
            if self.obs is not None:
                self.obs.on_mem_request(cycle, completion, line, "dram",
                                        source, merged=True)
            return AccessResult(completion, "dram", merged=True)

        if self.llc.lookup(line):
            if self.llc.last_hit_prefetched:
                self.prefetcher.on_useful_prefetch()
            completion = llc_probe_cycle + self.llc.latency
            self._fill_l1(cycle, line)
            self.l1d_mshrs.allocate(line, completion, payload="llc")
            self._train_prefetcher(cycle, line, was_miss=True)
            if self.obs is not None:
                self.obs.on_mem_request(cycle, completion, line, "llc",
                                        source, merged=False)
            return AccessResult(completion, "llc")

        # LLC miss -> DRAM.
        if not self.llc_mshrs.can_allocate():
            self.llc_mshrs.full_rejections += 1
            return None
        issue = llc_probe_cycle + self.llc.latency
        completion = self.dram.access(issue, line, source=source)
        self.llc_mshrs.allocate(line, completion, payload=source)
        if track_mlp and self.mlp_tracker is not None:
            self.mlp_tracker.record(issue, completion, source)
        self._fill_llc(cycle, line)
        self._fill_l1(cycle, line)
        self.l1d_mshrs.allocate(line, completion, payload="dram")
        self._train_prefetcher(cycle, line, was_miss=True)
        if self.obs is not None:
            self.obs.on_mem_request(cycle, completion, line, "dram",
                                    source, merged=False)
        return AccessResult(completion, "dram", merged=False)

    # ------------------------------------------------------------------ stores
    def store_commit(self, cycle: int, addr: int) -> None:
        """Commit a store: write-allocate into L1D, mark dirty."""
        line = self.line_of(addr)
        self.store_commits += 1
        if self.l1d.lookup(line):
            self.l1d.mark_dirty(line)
            return
        # Read-for-ownership fetch; latency is absorbed by the store
        # queue.  A line whose fill is already outstanding in the LLC
        # MSHRs needs no second DRAM trip (the fill brings the data).
        if not self.llc.lookup(line):
            self.llc_mshrs.expire(cycle)
            if self.llc_mshrs.lookup(line) is None:
                self.dram.access(cycle, line, source="demand")
            self._fill_llc(cycle, line)
        self._fill_l1(cycle, line, dirty=True)

    # ------------------------------------------------------------------ ifetch
    def ifetch(self, cycle: int, pc_line: int) -> int:
        """Instruction fetch for one I-cache line; returns completion cycle."""
        if self.l1i.lookup(pc_line):
            return cycle + self.l1i.latency
        self.llc_mshrs.expire(cycle)
        probe = cycle + self.l1i.latency
        merged = False
        # Same merge discipline as data loads: an outstanding LLC fill
        # (demand or prefetch) must service a same-line I-fetch miss —
        # previously each back-to-back I-fetch miss paid a full DRAM
        # round trip *and* issued duplicate DRAM traffic.
        outstanding = self.llc_mshrs.lookup(pc_line)
        if outstanding is not None:
            if self.llc.lookup(pc_line) and self.llc.last_hit_prefetched:
                self.prefetcher.on_useful_prefetch()
            completion = max(self.llc_mshrs.merge(pc_line),
                             probe + self.llc.latency)
            self._fill_llc(cycle, pc_line)
            level = "dram"
            merged = True
        elif self.llc.lookup(pc_line):
            completion = probe + self.llc.latency
            level = "llc"
        else:
            issue = probe + self.llc.latency
            completion = self.dram.access(issue, pc_line, source="demand")
            if self.llc_mshrs.can_allocate():
                self.llc_mshrs.allocate(pc_line, completion,
                                        payload="demand")
            self._fill_llc(cycle, pc_line)
            level = "dram"
        self.l1i.fill(pc_line)
        if self.obs is not None:
            self.obs.on_mem_request(cycle, completion, pc_line, level,
                                    "ifetch", merged=merged)
        return completion

    # ------------------------------------------------------------------ prefetch
    def _train_prefetcher(self, cycle: int, line: int, was_miss: bool) -> None:
        for pf_line in self.prefetcher.on_access(line, was_miss):
            self._issue_prefetch(cycle, pf_line)

    def _issue_prefetch(self, cycle: int, line: int) -> None:
        if self.llc.probe(line) or self.llc_mshrs.lookup(line) is not None:
            return
        if not self.llc_mshrs.can_allocate():
            return
        completion = self.dram.access(cycle, line, source="prefetch",
                                      low_priority=True)
        # Instant tags + an MSHR entry carrying the real arrival time:
        # demand accesses that find the tag while this entry is live
        # merge with ``completion`` instead of pretending the data
        # already landed.
        self.llc_mshrs.allocate(line, completion, payload="prefetch")
        self._fill_llc(cycle, line, prefetched=True)
        self.prefetches_issued += 1
        if self.obs is not None:
            self.obs.on_mem_request(cycle, completion, line, "dram",
                                    "prefetch", merged=False)

    # ------------------------------------------------------------------ fills
    def _fill_l1(self, cycle: int, line: int, dirty: bool = False) -> None:
        evicted = self.l1d.fill(line, dirty=dirty)
        if evicted is not None:
            victim_line, was_dirty = evicted
            if was_dirty:
                # Write back into the (inclusive) LLC; routed through
                # _fill_llc so a conflict eviction there follows the
                # same back-invalidate + writeback discipline.
                if not self.llc.mark_dirty(victim_line):
                    self._fill_llc(cycle, victim_line, dirty=True)

    def _fill_llc(self, cycle: int, line: int, dirty: bool = False,
                  prefetched: bool = False) -> None:
        evicted = self.llc.fill(line, dirty=dirty, prefetched=prefetched)
        if evicted is not None:
            victim_line, was_dirty = evicted
            # Inclusive hierarchy: back-invalidate L1.  A dirty L1D copy
            # is newer than the LLC's — it must be written back, not
            # dropped (the old code silently lost it).
            l1d_dirty = self.l1d.snoop_invalidate(victim_line)
            self.l1i.invalidate(victim_line)
            if was_dirty or l1d_dirty:
                # Writeback at the *current* cycle: issuing it at cycle 0
                # perturbed DRAM bank/bus state from the beginning of
                # time regardless of when the eviction happened.
                self.dram.access(cycle, victim_line, source="writeback",
                                 is_write=True)

    def reset_stats(self) -> None:
        for cache in (self.l1i, self.l1d, self.llc):
            cache.reset_stats()
        self.l1d_mshrs.reset_stats()
        self.llc_mshrs.reset_stats()
        self.dram.reset_stats()
        self.prefetcher.reset_stats()
        self.demand_loads = self.store_commits = self.prefetches_issued = 0
