"""Memory subsystem: caches, MSHRs, prefetcher, DRAM, and the hierarchy."""

from .cache import Cache, CacheLine
from .dram import DRAMModel, SOURCES
from .hierarchy import AccessResult, MemoryHierarchy
from .mshr import MSHRFile
from .prefetcher import StreamPrefetcher
from .replacement import (
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    ReplacementPolicy,
    make_policy,
)

__all__ = [
    "Cache",
    "CacheLine",
    "DRAMModel",
    "SOURCES",
    "AccessResult",
    "MemoryHierarchy",
    "MSHRFile",
    "StreamPrefetcher",
    "FIFOPolicy",
    "LRUPolicy",
    "RandomPolicy",
    "ReplacementPolicy",
    "make_policy",
]
