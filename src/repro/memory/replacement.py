"""Cache replacement policies.

Only true-LRU is used by the default configuration, but the policy is
pluggable so tests (and ablations) can use FIFO or random replacement.
"""

from __future__ import annotations

import random
from typing import List


class ReplacementPolicy:
    """Interface: tracks recency within one set of ``ways`` ways."""

    def __init__(self, ways: int) -> None:
        self.ways = ways

    def on_access(self, way: int) -> None:
        """Called when *way* is hit or filled."""
        raise NotImplementedError

    def victim(self) -> int:
        """Return the way to evict."""
        raise NotImplementedError


class LRUPolicy(ReplacementPolicy):
    """True LRU: per-set recency stack (most recent at the end)."""

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        self._stack: List[int] = list(range(ways))

    def on_access(self, way: int) -> None:
        self._stack.remove(way)
        self._stack.append(way)

    def victim(self) -> int:
        return self._stack[0]


class FIFOPolicy(ReplacementPolicy):
    """FIFO: evict in fill order, ignore hits."""

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        self._next = 0
        self._filled = [False] * ways

    def on_access(self, way: int) -> None:
        if not self._filled[way]:
            self._filled[way] = True

    def victim(self) -> int:
        victim = self._next
        self._next = (self._next + 1) % self.ways
        return victim


class RandomPolicy(ReplacementPolicy):
    """Random replacement with a seeded RNG for reproducibility."""

    def __init__(self, ways: int, seed: int = 0) -> None:
        super().__init__(ways)
        self._rng = random.Random(seed)

    def on_access(self, way: int) -> None:
        pass

    def victim(self) -> int:
        return self._rng.randrange(self.ways)


def make_policy(name: str, ways: int, seed: int = 0) -> ReplacementPolicy:
    """Factory used by :class:`repro.memory.cache.Cache`."""
    if name == "lru":
        return LRUPolicy(ways)
    if name == "fifo":
        return FIFOPolicy(ways)
    if name == "random":
        return RandomPolicy(ways, seed)
    raise ValueError(f"unknown replacement policy: {name!r}")
