"""Stream prefetcher with feedback-directed throttling (Table 1).

Mirrors the classic stream prefetcher: up to ``num_streams`` trackers, each
monitoring a region of memory. Two misses in the same region with a
consistent direction train a stream; once trained, each further demand
access in the stream issues ``degree`` prefetches ahead, up to
``max_distance`` lines beyond the demand pointer.

Feedback-directed prefetching (Srinath et al.) throttles the degree based
on measured accuracy: the cache sets a ``prefetched`` bit on filled lines
and reports back when a demand hit consumes one.
"""

from __future__ import annotations

from typing import List, Optional

from ..config import PrefetcherConfig


class _Stream:
    __slots__ = ("valid", "region", "last_line", "direction", "trained",
                 "next_prefetch", "lru")

    def __init__(self) -> None:
        self.valid = False
        self.region = -1
        self.last_line = -1
        self.direction = 0
        self.trained = False
        self.next_prefetch = -1
        self.lru = 0

    def reset(self, region: int, line: int, lru: int) -> None:
        self.valid = True
        self.region = region
        self.last_line = line
        self.direction = 0
        self.trained = False
        self.next_prefetch = -1
        self.lru = lru


# Region size in lines; a stream tracks accesses within +/- one region.
_REGION_LINES = 64


class StreamPrefetcher:
    """Multi-stream prefetcher with accuracy feedback."""

    def __init__(self, config: PrefetcherConfig) -> None:
        self.config = config
        self.degree = config.initial_degree
        self._streams: List[_Stream] = [_Stream()
                                        for _ in range(config.num_streams)]
        self._clock = 0
        # Feedback state.
        self.issued = 0
        self.useful = 0
        self._issued_in_window = 0
        self._useful_in_window = 0
        # Overall stats.
        self.trainings = 0
        self.degree_increases = 0
        self.degree_decreases = 0

    def _find_stream(self, region: int) -> Optional[_Stream]:
        for stream in self._streams:
            if stream.valid and abs(stream.region - region) <= 1:
                return stream
        return None

    def _allocate_stream(self, region: int, line: int) -> _Stream:
        victim = min(self._streams, key=lambda s: (s.valid, s.lru))
        victim.reset(region, line, self._clock)
        return victim

    def on_access(self, line_addr: int, was_miss: bool) -> List[int]:
        """Observe a demand access; return line addresses to prefetch.

        Training happens on misses (``train_on_hits`` widens it); issuing
        happens on any access that advances a trained stream.
        """
        if not self.config.enabled:
            return []
        self._clock += 1
        region = line_addr // _REGION_LINES
        stream = self._find_stream(region)
        if stream is None:
            if was_miss:
                self._allocate_stream(region, line_addr)
            return []
        stream.lru = self._clock
        if not was_miss and not self.config.train_on_hits and not stream.trained:
            return []

        delta = line_addr - stream.last_line
        if not stream.trained:
            if delta == 0:
                return []
            direction = 1 if delta > 0 else -1
            if stream.direction == direction:
                stream.trained = True
                stream.next_prefetch = line_addr + direction
                self.trainings += 1
            else:
                stream.direction = direction
            stream.last_line = line_addr
            stream.region = region
            if not stream.trained:
                return []
        else:
            direction = stream.direction if stream.direction else 1
            stream.last_line = line_addr
            stream.region = region

        # Issue up to `degree` prefetches, bounded by max_distance.
        prefetches = []
        direction = stream.direction or 1
        limit = line_addr + direction * self.config.max_distance
        if stream.next_prefetch * direction <= line_addr * direction:
            stream.next_prefetch = line_addr + direction
        for _ in range(self.degree):
            candidate = stream.next_prefetch
            if candidate * direction > limit * direction or candidate < 0:
                break
            prefetches.append(candidate)
            stream.next_prefetch = candidate + direction
        self.issued += len(prefetches)
        self._issued_in_window += len(prefetches)
        self._maybe_throttle()
        return prefetches

    def on_useful_prefetch(self) -> None:
        """Cache reports a demand hit on a prefetched line."""
        self.useful += 1
        self._useful_in_window += 1

    def _maybe_throttle(self) -> None:
        if self._issued_in_window < self.config.feedback_interval:
            return
        accuracy = self._useful_in_window / self._issued_in_window
        if accuracy >= self.config.high_accuracy:
            if self.degree < self.config.max_degree:
                self.degree += 1
                self.degree_increases += 1
        elif accuracy < self.config.low_accuracy:
            if self.degree > self.config.min_degree:
                self.degree -= 1
                self.degree_decreases += 1
        self._issued_in_window = 0
        self._useful_in_window = 0

    @property
    def accuracy(self) -> float:
        return self.useful / self.issued if self.issued else 0.0

    def reset_stats(self) -> None:
        self.issued = self.useful = 0
        self._issued_in_window = self._useful_in_window = 0
        self.trainings = self.degree_increases = self.degree_decreases = 0
