"""Banked DRAM timing model (Ramulator-equivalent substrate).

Models the DDR4-2400R organisation of Table 1: 2 channels x 1 rank x
4 bank groups x 4 banks, with tRP-tCL-tRCD = 16-16-16 (memory cycles),
open-row policy, per-bank busy times, and a shared per-channel data bus.
Lines are interleaved across channels and then across the banks of a
channel, so sequential streams enjoy bank-level parallelism while
pointer-chasing sees serialised row activations — the contrast the paper's
MLP results depend on.

Traffic is attributed to a *source* tag (demand / prefetch / runahead /
writeback) so the Fig. 15 memory-traffic comparison can be regenerated.
"""

from __future__ import annotations

from typing import Dict

from ..config import DRAMConfig

#: Traffic source tags.
SOURCES = ("demand", "prefetch", "runahead", "writeback")


class _Bank:
    __slots__ = ("ready_at", "open_row")

    def __init__(self) -> None:
        self.ready_at = 0
        self.open_row = -1


class DRAMModel:
    """Latency/bandwidth model for main memory.

    ``access`` returns the completion cycle of a 64B read; writes occupy
    the bank and bus but their completion time is irrelevant to the core
    (stores retire from the SQ).
    """

    def __init__(self, config: DRAMConfig, core_freq_ghz: float,
                 line_bytes: int = 64) -> None:
        self.config = config
        self.core_freq_ghz = core_freq_ghz
        self.line_bytes = line_bytes
        self.banks_per_channel = (config.ranks * config.bank_groups
                                  * config.banks_per_group)
        self.lines_per_row = max(1, config.row_bytes // line_bytes)
        self._banks = [[_Bank() for _ in range(self.banks_per_channel)]
                       for _ in range(config.channels)]
        self._bus_free = [0] * config.channels
        # Pre-converted latencies in core cycles.
        self.t_cl = config.core_cycles(config.tcl, core_freq_ghz)
        self.t_rcd = config.core_cycles(config.trcd, core_freq_ghz)
        self.t_rp = config.core_cycles(config.trp, core_freq_ghz)
        self.burst = config.burst_core_cycles
        # Statistics
        self.reads: Dict[str, int] = {s: 0 for s in SOURCES}
        self.writes: Dict[str, int] = {s: 0 for s in SOURCES}
        self.row_hits = 0
        self.row_misses = 0
        self.row_conflicts = 0

    # -- address mapping ----------------------------------------------------
    def map_address(self, line_addr: int):
        """Return (channel, bank, row) for a line address.

        Bank index is XOR-hashed with higher address bits, as real memory
        controllers do, so power-of-two strides spread across banks
        instead of hammering one.
        """
        channel = line_addr % self.config.channels
        channel_line = line_addr // self.config.channels
        hashed = channel_line ^ (channel_line >> 4) ^ (channel_line >> 9)
        bank = hashed % self.banks_per_channel
        row = (channel_line // self.banks_per_channel) // self.lines_per_row
        return channel, bank, row

    # -- timing ---------------------------------------------------------------
    def _bank_latency(self, bank: _Bank, row: int) -> int:
        if bank.open_row == row:
            self.row_hits += 1
            return self.t_cl
        if bank.open_row == -1:
            self.row_misses += 1
            return self.t_rcd + self.t_cl
        self.row_conflicts += 1
        return self.t_rp + self.t_rcd + self.t_cl

    def access(self, cycle: int, line_addr: int, source: str = "demand",
               is_write: bool = False, low_priority: bool = False) -> int:
        """Issue one 64B transfer; return its completion cycle.

        ``low_priority`` models the memory controller's demand-first
        scheduling: the request still waits behind the bank and pays the
        data-bus burst, but it does not hold the bank against subsequent
        demand requests (they would be reordered ahead of it).
        """
        if source not in SOURCES:
            raise ValueError(f"unknown traffic source: {source!r}")
        channel, bank_index, row = self.map_address(line_addr)
        bank = self._banks[channel][bank_index]
        start = max(cycle, bank.ready_at)
        latency = self._bank_latency(bank, row)
        data_ready = start + latency
        data_start = max(data_ready, self._bus_free[channel])
        completion = data_start + self.burst
        if not low_priority:
            bank.ready_at = completion
            bank.open_row = row
        self._bus_free[channel] = completion
        if is_write:
            self.writes[source] += 1
        else:
            self.reads[source] += 1
        return completion

    # -- statistics -------------------------------------------------------------
    @property
    def total_reads(self) -> int:
        return sum(self.reads.values())

    @property
    def total_writes(self) -> int:
        return sum(self.writes.values())

    @property
    def total_traffic(self) -> int:
        """Total 64B transfers in either direction."""
        return self.total_reads + self.total_writes

    def traffic_bytes(self) -> int:
        return self.total_traffic * self.line_bytes

    def reset_stats(self) -> None:
        self.reads = {s: 0 for s in SOURCES}
        self.writes = {s: 0 for s in SOURCES}
        self.row_hits = self.row_misses = self.row_conflicts = 0
