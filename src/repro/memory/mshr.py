"""Miss Status Holding Registers.

MSHRs track outstanding misses per cache level. A new miss to a line that
is already outstanding merges with it (shares the completion time and does
not generate new downstream traffic) — this merging is what allows MLP to
be measured honestly and is essential for CDF, whose whole point is to get
more independent misses outstanding at once.

Expiry is O(log n) amortised via a companion heap of completion times.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, Optional, Tuple


class MSHRFile:
    """Outstanding-miss tracker with bounded capacity."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("MSHR capacity must be positive")
        self.capacity = capacity
        self._outstanding: Dict[int, Tuple[int, Any]] = {}
        self._heap: list = []            # (completion, line)
        self.merges = 0
        self.allocations = 0
        self.full_rejections = 0

    def __len__(self) -> int:
        return len(self._outstanding)

    def expire(self, cycle: int) -> None:
        """Retire entries whose miss completed at or before *cycle*."""
        heap = self._heap
        outstanding = self._outstanding
        while heap and heap[0][0] <= cycle:
            completion, line = heapq.heappop(heap)
            entry = outstanding.get(line)
            if entry is not None and entry[0] == completion:
                del outstanding[line]

    def lookup(self, line_addr: int) -> Optional[int]:
        """Return the completion cycle if *line_addr* is outstanding."""
        entry = self._outstanding.get(line_addr)
        return entry[0] if entry is not None else None

    def payload(self, line_addr: int) -> Any:
        """Return the payload stored with an outstanding miss (or None)."""
        entry = self._outstanding.get(line_addr)
        return entry[1] if entry is not None else None

    @property
    def next_expiry(self) -> Optional[int]:
        """Earliest cycle at which an entry may free (lazy heap top)."""
        return self._heap[0][0] if self._heap else None

    def can_allocate(self) -> bool:
        return len(self._outstanding) < self.capacity

    def allocate(self, line_addr: int, completes_at: int,
                 payload: Any = None) -> None:
        """Track a new outstanding miss. Caller must check capacity first."""
        if line_addr in self._outstanding:
            raise ValueError(f"line {line_addr:#x} already outstanding")
        if not self.can_allocate():
            self.full_rejections += 1
            raise RuntimeError("MSHR file full")
        self._outstanding[line_addr] = (completes_at, payload)
        heapq.heappush(self._heap, (completes_at, line_addr))
        self.allocations += 1

    def merge(self, line_addr: int) -> int:
        """Merge with an outstanding miss; return its completion cycle."""
        completes = self._outstanding[line_addr][0]
        self.merges += 1
        return completes

    def reset_stats(self) -> None:
        self.merges = self.allocations = self.full_rejections = 0
