"""Set-associative cache timing model.

The cache stores only tags (this is a timing model; data values live in the
functional simulator). Lines carry a dirty bit (write-back policy) and a
prefetched bit used by the feedback-directed prefetcher to measure
prefetch accuracy.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..config import CacheConfig
from .replacement import make_policy


class CacheLine:
    """One tag-store entry."""

    __slots__ = ("tag", "valid", "dirty", "prefetched")

    def __init__(self) -> None:
        self.tag = -1
        self.valid = False
        self.dirty = False
        self.prefetched = False


class Cache:
    """A single cache level, addressed by 64B line address.

    All public methods take *line addresses* (byte address // line size);
    the hierarchy does the division once.
    """

    def __init__(self, config: CacheConfig, name: str = "cache",
                 policy: str = "lru", seed: int = 0) -> None:
        if config.num_sets <= 0 or config.num_sets & (config.num_sets - 1):
            raise ValueError(
                f"{name}: number of sets must be a positive power of two, "
                f"got {config.num_sets}")
        self.config = config
        self.name = name
        self.num_sets = config.num_sets
        self.ways = config.ways
        self.latency = config.latency
        self._set_mask = self.num_sets - 1
        # Tag store and replacement state are allocated lazily, per set,
        # on the first fill that touches the set: an untouched set is
        # indistinguishable from an all-invalid one, and small workloads
        # touch a tiny fraction of a large LLC — eager allocation was a
        # measurable slice of pipeline construction.  The per-set policy
        # seed (``seed + set_index``) is preserved exactly, so random
        # replacement behaves bit-identically to the eager layout.
        self._lines: Dict[int, List[CacheLine]] = {}
        self._policies: Dict[int, object] = {}
        self._policy_kind = policy
        self._seed = seed
        #: True when the most recent ``lookup`` hit a prefetched line; the
        #: hierarchy forwards this to the prefetcher's feedback loop.
        self.last_hit_prefetched = False
        # Statistics
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_evictions = 0
        self.prefetch_fills = 0
        self.useful_prefetches = 0

    def _find(self, line_addr: int):
        set_index = line_addr & self._set_mask
        lines = self._lines.get(set_index)
        if lines is not None:
            tag = line_addr
            for way, line in enumerate(lines):
                if line.valid and line.tag == tag:
                    return set_index, way, line
        return set_index, -1, None

    def set_lines(self, set_index: int) -> List[CacheLine]:
        """The tag-store lines of *set_index*, allocating on first touch.

        Only :meth:`fill` (and tests/verification poking at tag state)
        need the backing storage; lookups on a never-filled set miss
        without allocating it.
        """
        lines = self._lines.get(set_index)
        if lines is None:
            lines = self._lines[set_index] = \
                [CacheLine() for _ in range(self.ways)]
            self._policies[set_index] = make_policy(
                self._policy_kind, self.ways, self._seed + set_index)
        return lines

    def lookup(self, line_addr: int, update_stats: bool = True) -> bool:
        """Probe for *line_addr*; update LRU and hit/miss stats on True."""
        set_index, way, line = self._find(line_addr)
        self.last_hit_prefetched = False
        if update_stats:
            self.accesses += 1
        if line is None:
            if update_stats:
                self.misses += 1
            return False
        if update_stats:
            self.hits += 1
            if line.prefetched:
                self.useful_prefetches += 1
                self.last_hit_prefetched = True
                line.prefetched = False
        self._policies[set_index].on_access(way)
        return True

    def probe(self, line_addr: int) -> bool:
        """Check presence without disturbing LRU state or statistics."""
        _, _, line = self._find(line_addr)
        return line is not None

    def fill(self, line_addr: int, dirty: bool = False,
             prefetched: bool = False) -> Optional[Tuple[int, bool]]:
        """Insert *line_addr*; return ``(evicted_line, was_dirty)`` or None.

        Filling a line already present just updates its bits.
        """
        set_index, way, line = self._find(line_addr)
        if line is not None:
            line.dirty = line.dirty or dirty
            self._policies[set_index].on_access(way)
            return None
        lines = self.set_lines(set_index)
        policy = self._policies[set_index]
        victim_way = None
        for candidate, candidate_line in enumerate(lines):
            if not candidate_line.valid:
                victim_way = candidate
                break
        evicted = None
        if victim_way is None:
            victim_way = policy.victim()
            victim = lines[victim_way]
            self.evictions += 1
            if victim.dirty:
                self.dirty_evictions += 1
            evicted = (victim.tag, victim.dirty)
        new_line = lines[victim_way]
        new_line.tag = line_addr
        new_line.valid = True
        new_line.dirty = dirty
        new_line.prefetched = prefetched
        if prefetched:
            self.prefetch_fills += 1
        policy.on_access(victim_way)
        return evicted

    def mark_dirty(self, line_addr: int) -> bool:
        """Set the dirty bit if present; return whether the line was found."""
        _, _, line = self._find(line_addr)
        if line is None:
            return False
        line.dirty = True
        return True

    def invalidate(self, line_addr: int) -> bool:
        """Drop *line_addr* if present; return whether it was found."""
        return self.snoop_invalidate(line_addr) is not None

    def snoop_invalidate(self, line_addr: int) -> Optional[bool]:
        """Back-invalidate *line_addr* (inclusive-hierarchy snoop).

        Returns ``None`` when the line was not present, otherwise the
        line's dirty bit at the moment it was dropped — the caller owns
        the writeback decision (a dirty inner copy is newer than the
        outer level's and must not be silently discarded).
        """
        _, _, line = self._find(line_addr)
        if line is None:
            return None
        was_dirty = line.dirty
        line.valid = False
        line.tag = -1
        line.dirty = False
        line.prefetched = False
        return was_dirty

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset_stats(self) -> None:
        self.accesses = self.hits = self.misses = 0
        self.evictions = self.dirty_evictions = 0
        self.prefetch_fills = self.useful_prefetches = 0
