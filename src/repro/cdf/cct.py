"""Critical Count Tables (Sec. 3.2).

A small set-associative table, updated at retire time, that predicts which
static loads miss in the LLC (and, in a second instance, which static
branches are hard to predict). Each entry holds *two* saturating counters:

* a **strict** counter that needs sustained evidence before marking the
  instruction critical (fewer marks -> sparser chains -> larger effective
  window), and
* a **permissive** counter that marks sooner (better coverage).

At runtime CDF measures the fraction of retired uops marked critical and
selects the permissive counters when coverage is too low — the paper's
mechanism for handling the two benchmark families it identifies.
"""

from __future__ import annotations

from typing import Optional

from ..config import CDFConfig


class _CCTEntry:
    __slots__ = ("pc", "strict", "permissive", "lru")

    def __init__(self) -> None:
        self.pc = -1
        self.strict = 0
        self.permissive = 0
        self.lru = 0


class CriticalCountTable:
    """One Critical Count Table instance (loads or branches)."""

    def __init__(self, entries: int, ways: int,
                 strict_max: int, strict_threshold: int,
                 permissive_max: int, permissive_threshold: int,
                 increment: int = 1) -> None:
        if entries % ways:
            raise ValueError("entries must be a multiple of ways")
        self.num_sets = entries // ways
        self.ways = ways
        #: Counter step on a critical event. The branch table uses an
        #: asymmetric +2/-1 walk: a 50%-mispredicting branch (the hardest
        #: kind, and exactly the kind CDF wants) would never cross any
        #: threshold under a symmetric +1/-1 update.
        self.increment = increment
        self.strict_max = strict_max
        self.strict_threshold = strict_threshold
        self.permissive_max = permissive_max
        self.permissive_threshold = permissive_threshold
        self._sets = [[_CCTEntry() for _ in range(ways)]
                      for _ in range(self.num_sets)]
        self._clock = 0
        self.updates = 0
        self.evictions = 0

    def _find(self, pc: int) -> Optional[_CCTEntry]:
        for entry in self._sets[pc % self.num_sets]:
            if entry.pc == pc:
                return entry
        return None

    def update(self, pc: int, was_critical_event: bool) -> None:
        """Retire-time training: increment on LLC miss / mispredict,
        decrement otherwise. Allocates on first critical event only."""
        self._clock += 1
        self.updates += 1
        entry = self._find(pc)
        if entry is None:
            if not was_critical_event:
                return
            bucket = self._sets[pc % self.num_sets]
            entry = min(bucket, key=lambda e: (e.pc != -1, e.lru))
            if entry.pc != -1:
                self.evictions += 1
            entry.pc = pc
            entry.strict = 0
            entry.permissive = 0
        entry.lru = self._clock
        if was_critical_event:
            entry.strict = min(self.strict_max,
                               entry.strict + self.increment)
            entry.permissive = min(self.permissive_max,
                                   entry.permissive + self.increment)
        else:
            if entry.strict > 0:
                entry.strict -= 1
            if entry.permissive > 0:
                entry.permissive -= 1

    def is_critical(self, pc: int, permissive: bool = False) -> bool:
        """Predict criticality for *pc* under the selected threshold."""
        entry = self._find(pc)
        if entry is None:
            return False
        if permissive:
            return entry.permissive >= self.permissive_threshold
        return entry.strict >= self.strict_threshold

    def counters_for(self, pc: int):
        """Expose (strict, permissive) counter values, for tests/debug."""
        entry = self._find(pc)
        if entry is None:
            return None
        return entry.strict, entry.permissive


def make_load_cct(config: CDFConfig) -> CriticalCountTable:
    """The load Critical Count Table with Table 1 geometry."""
    return CriticalCountTable(
        entries=config.cct_entries, ways=config.cct_ways,
        strict_max=config.strict_counter_max,
        strict_threshold=config.strict_threshold,
        permissive_max=config.permissive_counter_max,
        permissive_threshold=config.permissive_threshold)


def make_branch_cct(config: CDFConfig) -> CriticalCountTable:
    """The hard-to-predict-branch table ('tracked similarly in a separate
    table' with different thresholds)."""
    return CriticalCountTable(
        entries=config.branch_table_entries, ways=config.branch_table_ways,
        strict_max=config.branch_counter_max,
        strict_threshold=config.branch_strict_threshold,
        permissive_max=config.branch_counter_max,
        permissive_threshold=config.branch_permissive_threshold,
        increment=config.branch_counter_increment)
