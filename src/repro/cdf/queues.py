"""CDF FIFOs: the Delayed Branch Queue and the Critical Map Queue.

* The **Delayed Branch Queue** (256 entries) carries the directions and
  targets of every branch the critical fetch engine predicted, so the
  non-critical stream replays the exact same control-flow path without
  touching the predictors again (Sec. 3.3).
* The **Critical Map Queue** (256 entries) carries the destination
  physical registers the critical rename stage allocated, so the regular
  RAT can be updated in program order when the non-critical stream
  replays critical uops (Sec. 3.4).

Both are program-order FIFOs, which makes partial flushes on
mispredictions/violations trivial (Sec. 3.6): drop every entry younger
than the flush point.
"""

from __future__ import annotations

from collections import deque
from typing import NamedTuple, Optional


class DBQEntry(NamedTuple):
    """One predicted branch recorded for the non-critical stream."""

    seq: int
    predicted_taken: bool
    mispredicted: bool
    is_critical: bool


class CMQEntry(NamedTuple):
    """One critical uop's rename record awaiting replay."""

    seq: int
    dst: Optional[int]


class _BoundedFifo:
    """Shared bounded-FIFO behaviour with program-order flush."""

    def __init__(self, capacity: int, name: str) -> None:
        if capacity <= 0:
            raise ValueError(f"{name}: capacity must be positive")
        self.capacity = capacity
        self.name = name
        self._q: deque = deque()
        self.pushes = 0
        self.pops = 0
        self.flushed_entries = 0

    def __len__(self) -> int:
        return len(self._q)

    @property
    def full(self) -> bool:
        return len(self._q) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._q

    def push(self, entry) -> None:
        if self.full:
            raise RuntimeError(f"{self.name} overflow")
        self._q.append(entry)
        self.pushes += 1

    def peek(self):
        return self._q[0] if self._q else None

    def pop(self):
        if not self._q:
            raise RuntimeError(f"{self.name} underflow")
        self.pops += 1
        return self._q.popleft()

    def flush_younger_than(self, seq: int) -> int:
        """Drop entries with entry.seq >= seq (program-order flush)."""
        q = self._q
        dropped = 0
        while q and q[-1].seq >= seq:
            q.pop()
            dropped += 1
        self.flushed_entries += dropped
        return dropped

    def clear(self) -> None:
        self.flushed_entries += len(self._q)
        self._q.clear()


class DelayedBranchQueue(_BoundedFifo):
    """FIFO of :class:`DBQEntry` (capacity 256 per Table 1)."""

    def __init__(self, capacity: int = 256) -> None:
        super().__init__(capacity, "DelayedBranchQueue")


class CriticalMapQueue(_BoundedFifo):
    """FIFO of :class:`CMQEntry` (capacity 256 per Table 1)."""

    def __init__(self, capacity: int = 256) -> None:
        super().__init__(capacity, "CriticalMapQueue")
