"""The Fill Buffer and the backwards dataflow walk (Sec. 3.2, Fig. 5-7).

The Fill Buffer records the last N retired uops. When full (and the 10k
retired-uop interval elapses), it is walked from youngest to oldest,
marking critical every uop in the dependence chain of any load or branch
the Critical Count Tables flagged — the Filtered-Runahead-style backward
slice construction, generalised to multiple roots.

Register dependences propagate through a needed-register set; memory
dependences propagate through address tags (a store becomes critical when
a younger critical load reads its address). The walk also produces a
per-basic-block bit mask of critical uop positions, the unit the Mask
Cache and Critical Uop Cache operate on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple


class FillBufferEntry:
    """One retired uop as recorded by the fill unit."""

    __slots__ = ("seq", "pc", "bb_start", "dst", "srcs", "mem_addr",
                 "is_load", "is_store", "is_branch", "root_critical")

    def __init__(self, seq: int, pc: int, bb_start: int,
                 dst: Optional[int], srcs: Tuple[int, ...],
                 mem_addr: Optional[int], is_load: bool, is_store: bool,
                 is_branch: bool, root_critical: bool) -> None:
        self.seq = seq
        self.pc = pc
        self.bb_start = bb_start
        self.dst = dst
        self.srcs = srcs
        self.mem_addr = mem_addr
        self.is_load = is_load
        self.is_store = is_store
        self.is_branch = is_branch
        self.root_critical = root_critical


class WalkResult:
    """Output of one backwards dataflow walk."""

    def __init__(self, critical_flags: List[bool],
                 bb_masks: Dict[int, int],
                 bb_ends_in_branch: Dict[int, bool],
                 total: int, marked: int) -> None:
        self.critical_flags = critical_flags
        self.bb_masks = bb_masks                # bb_start -> 64-bit mask
        self.bb_ends_in_branch = bb_ends_in_branch
        self.total = total
        self.marked = marked

    @property
    def critical_fraction(self) -> float:
        return self.marked / self.total if self.total else 0.0


#: Internal row layout: the walk only needs these nine fields, so the
#: buffer stores plain tuples — recording happens once per retired uop
#: (the hottest CDF/PRE hook) and a tuple literal is several times
#: cheaper than a ``FillBufferEntry`` construction.
_Row = Tuple[int, int, Optional[int], Tuple[int, ...], Optional[int],
             bool, bool, bool, bool]


class FillBuffer:
    """FIFO of the last ``capacity`` retired uops."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: List[_Row] = []
        self.walks = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def clear(self) -> None:
        self._entries = []

    def record(self, entry: FillBufferEntry) -> None:
        """Append one retired uop; oldest entries fall off the front."""
        entries = self._entries
        entries.append((entry.pc, entry.bb_start, entry.dst, entry.srcs,
                        entry.mem_addr, entry.is_load, entry.is_store,
                        entry.is_branch, entry.root_critical))
        if len(entries) > self.capacity:
            del entries[0:len(entries) - self.capacity]

    def record_uop(self, uop, bb_start: int, root_critical: bool) -> None:
        """Append one retired uop straight from its ``DynUop``.

        Fast path for the pipelines' per-retire hook: equivalent to
        building a :class:`FillBufferEntry` from *uop* and calling
        :meth:`record`, without the intermediate object.
        """
        entries = self._entries
        entries.append((uop.pc, bb_start,
                        uop.dst if uop.writes_reg else None, uop.srcs,
                        uop.mem_addr, uop.is_load, uop.is_store,
                        uop.is_branch, root_critical))
        if len(entries) > self.capacity:
            del entries[0:len(entries) - self.capacity]

    def walk(self, prior_masks: Optional[Dict[int, int]] = None) -> WalkResult:
        """Backwards dataflow walk over the buffered uops.

        ``prior_masks`` (from the Mask Cache) pre-marks uops that earlier
        walks found critical for the same basic block on other control
        paths, accumulating coverage exactly as the paper's shift-register
        mechanism does.
        """
        self.walks += 1
        entries = self._entries
        n = len(entries)
        critical = [False] * n
        needed_regs: Set[int] = set()
        needed_mem: Set[int] = set()
        prior_masks = prior_masks or {}

        # Pre-compute each uop's bit position within its basic block so
        # prior masks can pre-mark and new masks can be built.
        bit_pos = [row[0] - row[1] for row in entries]

        for i in range(n - 1, -1, -1):
            (_pc, bb_start, dst, srcs, mem_addr,
             is_load, is_store, _is_branch, mark) = entries[i]
            if not mark and dst is not None and dst in needed_regs:
                mark = True
            if not mark and is_store and mem_addr in needed_mem:
                mark = True
            if not mark:
                pos = bit_pos[i]
                if (prior_masks.get(bb_start, 0) >> pos) & 1:
                    mark = True
            if not mark:
                continue
            critical[i] = True
            if dst is not None:
                needed_regs.discard(dst)
            needed_regs.update(srcs)
            if is_load and mem_addr is not None:
                needed_mem.add(mem_addr)
            if is_store and mem_addr is not None:
                needed_mem.discard(mem_addr)

        bb_masks: Dict[int, int] = {}
        bb_ends_in_branch: Dict[int, bool] = {}
        for i, row in enumerate(entries):
            bb_start = row[1]
            bb_masks.setdefault(bb_start, 0)
            if critical[i]:
                bb_masks[bb_start] |= (1 << bit_pos[i])
            if row[7]:
                bb_ends_in_branch[bb_start] = True
        marked = sum(critical)
        return WalkResult(critical, bb_masks, bb_ends_in_branch, n, marked)
