"""The Criticality Driven Fetch pipeline (Sec. 3).

Extends the baseline OoO core with the full CDF machinery:

* retire-time training of the Critical Count Tables and the Fill Buffer;
* periodic backwards dataflow walks building Mask Cache masks and Critical
  Uop Cache traces (density-gated, fill-latency delayed);
* CDF mode entry on a Critical Uop Cache hit;
* a critical fetch engine that walks basic blocks through the uop cache,
  predicting every branch once (recording outcomes in the Delayed Branch
  Queue) and emitting only critical uops to the critical rename stage;
* a non-critical stream that fetches *all* uops from the I-cache, takes
  its control flow from the DBQ, renames non-critical uops normally, and
  replays the renames of critical uops via the Critical Map Queue;
* a dynamically partitioned backend (ROB/LQ/SQ sections, RS/PRF shares);
* program-order retirement across the two ROB sections;
* poison-bit dependence-violation detection with critical-stream flush.

Timestamps: the paper assigns skip-aware timestamps so the two streams
interleave correctly; the dynamic trace's sequence numbers serve that role
here exactly.
"""

from __future__ import annotations

import bisect
from collections import deque
from typing import Dict, Optional, Sequence

from ..config import SimConfig
from ..core.pipeline import BaselinePipeline
from ..core.rob import COMPLETE, READY, WAITING, RobEntry
from ..isa.dynuop import DynUop
from ..isa.program import Program
from .cct import make_branch_cct, make_load_cct
from .fill_buffer import FillBuffer
from .mask_cache import MaskCache
from .partition import PartitionController
from .queues import CMQEntry, CriticalMapQueue, DBQEntry, DelayedBranchQueue
from .uop_cache import CriticalUopCache

#: Basic blocks the critical fetch engine can traverse per cycle (one or
#: two trace-cache lines).
BBS_PER_CYCLE = 2

#: Capacity of the Critical Instruction Buffers between critical fetch and
#: critical rename (Fig. 4).
CRIT_FETCH_BUFFER_CAP = 24

#: Pipeline depth from the Critical Uop Cache to critical rename (decoded
#: uops skip decode).
CRIT_FETCH_LATENCY = 2


class CDFPipeline(BaselinePipeline):
    """Baseline core + Criticality Driven Fetch."""

    def __init__(self, trace: Sequence[DynUop], config: SimConfig,
                 program: Program, benchmark: str = "bench",
                 **kwargs) -> None:
        super().__init__(trace, config, benchmark, **kwargs)
        if not config.cdf.enabled:
            raise ValueError("CDFPipeline requires config.cdf.enabled")
        self.program = program
        cdf = config.cdf
        self.cdf_cfg = cdf
        # Static basic-block map (pc -> leader pc).
        self.bb_start = program.bb_start_table()

        # Criticality prediction and trace construction.
        self.cct_loads = make_load_cct(cdf)
        self.cct_branches = make_branch_cct(cdf)
        self.fill_buffer = FillBuffer(cdf.fill_buffer_entries)
        self.mask_cache = MaskCache(cdf.mask_cache_entries,
                                    cdf.mask_cache_ways)
        self.uop_cache = CriticalUopCache(cdf.uop_cache_entries,
                                          cdf.uop_cache_ways,
                                          cdf.uops_per_trace)
        self.use_permissive = False
        self._retired_since_fill = 0
        self._retired_since_mask_reset = 0
        self._interval_retired = 0
        self._interval_critical = 0

        # CDF mode and the critical fetch engine.
        self.cdf_mode = False
        self.crit_seq = 0
        self.mode_entry_seq = 0
        self.crit_stopped = False
        self.crit_stop_seq: Optional[int] = None
        self.crit_blocked_on: Optional[int] = None
        self.crit_resume_cycle = 0
        self.crit_fetch_buffer: deque = deque()
        self.critically_fetched = set()
        # Every seq renamed by the critical stream in the current CDF
        # session: their destinations are in the critical RAT, so they are
        # legitimate producers for later critical uops even after they
        # retire (cleared at mode entry).
        self._crit_session_seqs = set()

        # FIFOs.
        self.dbq = DelayedBranchQueue(cdf.delayed_branch_queue_entries)
        self.cmq = CriticalMapQueue(cdf.critical_map_queue_entries)

        # Partitioned backend. The baseline's `rob` deque becomes the
        # non-critical section; the critical section is separate.
        self.rob_crit: deque = deque()
        self.partitions = PartitionController(
            cdf, config.core.rob_size, config.core.lq_size,
            config.core.sq_size, config.core.rs_size)
        self.rs_crit_used = 0
        self.lq_crit_used = 0
        self.sq_crit_used = 0
        self.writers_crit = 0
        # critical-share -> non-critical PRF writer limit (see
        # _noncrit_prf_limit)
        self._prf_limit_memo: Dict[int, int] = {}

        # Replay / retirement ordering.
        self.replay_frontier = 0
        self.last_retired_seq = -1
        self._rename_stall_until = 0

        self._extra_stage = 1 if cdf.extra_rename_stage else 0

    def _mode_name(self) -> str:
        return "cdf"

    def obs_gauges(self, cycle: int):
        """Baseline gauges plus the CDF-specific time-series the paper's
        headline claims hinge on: the dynamic partition boundary, the
        critical-section occupancy, and the fetch-ahead distance (how far
        the critical stream runs ahead of the in-order fetch pointer)."""
        gauges = super().obs_gauges(cycle)
        gauges["rob_crit"] = len(self.rob_crit)
        gauges["crit_partition"] = self.partitions.rob.critical_size
        gauges["lq_crit"] = self.lq_crit_used
        gauges["sq_crit"] = self.sq_crit_used
        gauges["fetch_ahead"] = max(0, self.crit_seq - self.fetch_seq)
        gauges["cdf_mode"] = 1 if self.cdf_mode else 0
        return gauges

    # ================================================================ retire
    def _retire(self, cycle: int) -> None:
        budget = self.retire_width
        rob_crit = self.rob_crit
        rob_noncrit = self.rob
        if not rob_crit and not rob_noncrit:
            return
        inflight = self.inflight
        event_log = self.event_log
        on_retire = self._on_retire
        verifier = self.verifier
        retired_here = 0
        while budget:
            head_c = rob_crit[0] if rob_crit else None
            head_n = rob_noncrit[0] if rob_noncrit else None
            if head_c is None and head_n is None:
                break
            if head_n is None or (head_c is not None
                                  and head_c.seq < head_n.seq):
                entry = head_c
                from_critical = True
                # Every older uop must have been seen by the regular
                # rename stage (in-order RAT update), which implies all
                # older non-critical uops are dispatched and retired.
                if self.replay_frontier <= entry.seq:
                    break
            else:
                entry = head_n
                from_critical = False
            if entry.state != COMPLETE or entry.complete_cycle > cycle:
                break
            if from_critical:
                rob_crit.popleft()
                self.lq_crit_used -= entry.uop.is_load
                self.sq_crit_used -= entry.uop.is_store
                if entry.uop.writes_reg:
                    self.writers_crit -= 1
            else:
                rob_noncrit.popleft()
                self.lq_used -= entry.uop.is_load
                self.sq_used -= entry.uop.is_store
                if entry.uop.writes_reg:
                    self.writers_inflight -= 1
            del inflight[entry.seq]
            if entry.uop.is_store:
                self.mem.store_commit(cycle, entry.uop.mem_addr)
            self.last_retired_seq = entry.seq
            self.retired += 1
            self._retired_this_cycle += 1
            budget -= 1
            retired_here += 1
            if event_log is not None:
                event_log.append((cycle, "R", entry.seq))
            on_retire(entry, cycle)
            if verifier is not None:
                verifier.on_retire(entry, cycle)
        if retired_here:
            counters = self.counters
            counters["rob_reads"] += retired_here

    # ---------------------------------------------------------- CCT training
    def _on_retire(self, entry: RobEntry, cycle: int) -> None:
        uop = entry.uop
        cdf = self.cdf_cfg
        counters = self.counters
        root_critical = False
        if uop.is_load:
            self.cct_loads.update(uop.pc, entry.llc_miss)
            counters["cct_updates"] += 1
            root_critical = self.cct_loads.is_critical(
                uop.pc, self.use_permissive)
        elif uop.is_cond_branch:
            self.cct_branches.update(uop.pc, entry.mispredicted)
            counters["cct_updates"] += 1
            if cdf.mark_branches_critical:
                root_critical = self.cct_branches.is_critical(
                    uop.pc, self.use_permissive)
        elif cdf.mark_longlat_critical \
                and uop.exec_lat >= cdf.longlat_min_latency:
            # Generalised criticality (Sec. 6): long-latency arithmetic
            # roots chains too.
            root_critical = True
            counters["longlat_roots"] += 1
        self.fill_buffer.record_uop(uop, self.bb_start[uop.pc],
                                    root_critical)

        self._interval_retired += 1
        if entry.critical:
            self._interval_critical += 1
        self._retired_since_fill += 1
        self._retired_since_mask_reset += 1
        if self._retired_since_mask_reset >= cdf.mask_cache_reset_interval:
            self.mask_cache.reset()
            self._retired_since_mask_reset = 0
        if self._retired_since_fill >= cdf.fill_interval_uops \
                and self.fill_buffer.full:
            self._do_fill(cycle)

    def _do_fill(self, cycle: int) -> None:
        """Run the backwards dataflow walk and install traces."""
        cdf = self.cdf_cfg
        # Adapt strict/permissive selection to measured coverage.
        if self._interval_retired:
            fraction = self._interval_critical / self._interval_retired
            self.use_permissive = fraction < cdf.low_coverage_fraction
        self._interval_retired = 0
        self._interval_critical = 0

        result = self.fill_buffer.walk(self.mask_cache.snapshot_masks())
        self.counters.bump("fill_walks")
        self.counters.bump("fill_walk_uops", result.total)
        fraction = result.critical_fraction
        if fraction < cdf.min_critical_fraction \
                or fraction > cdf.max_critical_fraction:
            for bb in result.bb_masks:
                self.uop_cache.remove(bb)
                self.mask_cache.remove(bb)
            self.counters.bump("fill_rejected")
        else:
            valid_from = cycle + cdf.fill_latency_cycles
            for bb, mask in result.bb_masks.items():
                merged = self.mask_cache.accumulate(bb, mask)
                self.uop_cache.fill(
                    bb, merged,
                    result.bb_ends_in_branch.get(bb, False), valid_from)
            self.counters.bump("fill_applied")
        self._retired_since_fill = 0

    # ================================================================ fetch
    def _fetch(self, cycle: int) -> None:
        if not self.cdf_mode:
            self._maybe_enter_cdf(cycle)
        if not self.cdf_mode:
            super()._fetch(cycle)
            return
        self.counters["cdf_mode_cycles"] += 1
        self._critical_fetch(cycle)
        self._regular_fetch_cdf(cycle)
        self._maybe_exit_cdf(cycle)

    def _maybe_enter_cdf(self, cycle: int) -> None:
        if self.fetch_blocked_on is not None \
                or cycle < self.fetch_resume_cycle \
                or self.fetch_seq >= len(self.trace):
            return
        pc = self.trace[self.fetch_seq].pc
        entry = self.uop_cache.lookup(self.bb_start[pc], cycle)
        if entry is None or entry.mask == 0:
            return
        self.cdf_mode = True
        self.crit_seq = self.fetch_seq
        self.mode_entry_seq = self.fetch_seq
        self.crit_stopped = False
        self.crit_stop_seq = None
        self.crit_blocked_on = None
        self.crit_resume_cycle = cycle
        self._crit_session_seqs = set()
        self.partitions.on_mode_entry()
        self.counters.bump("cdf_mode_entries")

    def _stop_critical_fetch(self) -> None:
        self.crit_stopped = True
        self.crit_stop_seq = self.crit_seq
        self.crit_blocked_on = None

    def _critical_fetch(self, cycle: int) -> None:
        if self.crit_stopped or self.crit_blocked_on is not None \
                or cycle < self.crit_resume_cycle:
            return
        trace = self.trace
        total = len(trace)
        bb_start = self.bb_start
        buffer = self.crit_fetch_buffer
        counters = self.counters
        event_log = self.event_log
        ready_at = cycle + CRIT_FETCH_LATENCY
        emitted = 0
        bbs_left = BBS_PER_CYCLE
        while bbs_left and emitted < self.fetch_width:
            if self.crit_seq >= total:
                self._stop_critical_fetch()
                return
            bb = bb_start[trace[self.crit_seq].pc]
            entry = self.uop_cache.lookup(bb, cycle)
            if entry is None:
                self._stop_critical_fetch()
                counters["cdf_exit_uop_cache_miss"] += 1
                return
            mask = entry.mask
            counters["uop_cache_reads"] += 1
            # Traverse this basic-block instance.
            while self.crit_seq < total:
                uop = trace[self.crit_seq]
                if bb_start[uop.pc] != bb:
                    break   # flowed into the next block
                is_crit = (mask >> (uop.pc - bb)) & 1
                if uop.is_branch and self.dbq.full:
                    return  # stall: DBQ has no room for the prediction
                if is_crit and len(buffer) >= CRIT_FETCH_BUFFER_CAP:
                    return  # stall: critical instruction buffer full
                mispredicted = False
                if uop.is_branch:
                    counters["bpred_accesses"] += 1
                    outcome = self.branch_unit.predict_and_train(uop)
                    mispredicted = outcome.mispredicted
                    if mispredicted:
                        self._mispredicted_seqs.add(uop.seq)
                        self.mispredicted_branch_seqs.append(uop.seq)
                    self.dbq.push(DBQEntry(uop.seq, outcome.predicted_taken,
                                           mispredicted, is_crit))
                if is_crit:
                    buffer.append((ready_at, uop))
                    self.critically_fetched.add(uop.seq)
                    if event_log is not None:
                        event_log.append((cycle, "f", uop.seq))
                    counters["crit_fetch_uops"] += 1
                    emitted += 1
                self.crit_seq += 1
                if uop.is_branch:
                    if mispredicted:
                        # Wait for resolution: early if the branch is
                        # critical (fetched just now), late if it will
                        # only execute in the non-critical stream.
                        self.crit_blocked_on = uop.seq
                        counters[
                            "crit_fetch_blocked_on_critical_branch"
                            if is_crit else
                            "crit_fetch_blocked_on_noncritical_branch"] += 1
                        return
                    break   # basic block ends at its branch
                if emitted >= self.fetch_width:
                    return  # mid-block; resume here next cycle
            bbs_left -= 1

    def _regular_fetch_cdf(self, cycle: int) -> None:
        if self.fetch_blocked_on is not None \
                or cycle < self.fetch_resume_cycle:
            return
        trace = self.trace
        limit = self.crit_seq   # control flow known up to critical fetch
        budget = self.fetch_width
        decode = self.decode_latency
        if self.cdf_cfg.non_critical_uop_cache:
            # Design alternative (Sec. 3.3): decoded uops come from a
            # dedicated cache, widening non-critical fetch and skipping
            # the decoders.
            budget *= self.cdf_cfg.non_critical_fetch_boost
            decode = max(1, decode - 2)
            self.counters.bump("nc_uop_cache_reads")
        frontend_q = self.frontend_q
        frontend_cap = self.frontend_cap
        counters = self.counters
        fetched = 0
        ready_at = cycle + decode + self._extra_stage
        while budget and len(frontend_q) < frontend_cap \
                and self.fetch_seq < limit:
            uop = trace[self.fetch_seq]
            self._touch_icache(cycle, uop.pc)
            self.fetch_seq += 1
            frontend_q.append((ready_at, uop))
            fetched += 1
            budget -= 1
            if uop.is_branch:
                head = self.dbq.peek()
                if head is None or head.seq != uop.seq:
                    # Should not happen: every branch below crit_seq has a
                    # DBQ entry. Fall back to predicting locally.
                    counters["dbq_mismatches"] += 1
                    outcome = self.branch_unit.predict_and_train(uop)
                    mispredicted = outcome.mispredicted
                else:
                    self.dbq.pop()
                    counters["dbq_pops"] += 1
                    mispredicted = head.mispredicted
                if mispredicted:
                    self._block_fetch_on(uop.seq, cycle)
                    break
                if uop.taken:
                    break
        if fetched:
            counters["fetch_uops"] += fetched

    def _block_fetch_on(self, seq: int, cycle: int) -> None:
        """Stall regular fetch until branch *seq* resolves (it may already
        have, if the branch was critical and executed early)."""
        entry = self.inflight.get(seq)
        if entry is not None and not entry.flushed \
                and entry.state != COMPLETE:
            self.fetch_blocked_on = seq
            return
        if entry is not None:
            resume = entry.complete_cycle + self.redirect_penalty
        else:
            resume = cycle + 1   # resolved and retired long ago
        self.fetch_resume_cycle = max(self.fetch_resume_cycle, resume)

    def _maybe_exit_cdf(self, cycle: int) -> None:
        if not self.crit_stopped:
            return
        if self.fetch_seq < (self.crit_stop_seq or 0):
            return
        if self.crit_fetch_buffer:
            return
        self.cdf_mode = False
        self.counters.bump("cdf_mode_exits")
        if not self.dbq.empty:
            self.counters.bump("dbq_leftover_entries", len(self.dbq))
            self.dbq.clear()

    def _on_complete(self, entry: RobEntry, cycle: int) -> None:
        if entry.seq == self.crit_blocked_on:
            self.crit_blocked_on = None
            self.crit_resume_cycle = max(
                self.crit_resume_cycle,
                entry.complete_cycle + self.redirect_penalty)

    # ============================================================== dispatch
    def _dispatch(self, cycle: int) -> None:
        if cycle < self._rename_stall_until:
            return
        budget = self.rename_width
        self._dispatch_blocked = None
        partitions = self.partitions

        # Critical rename has priority (Sec. 3.5, Issue and Dispatch).
        crit_blocked: Optional[str] = None
        buffer = self.crit_fetch_buffer
        while budget and buffer and buffer[0][0] <= cycle:
            uop = buffer[0][1]
            crit_blocked = self._critical_block_reason(uop)
            if crit_blocked is not None:
                break
            buffer.popleft()
            self._allocate_critical(uop, cycle)
            budget -= 1

        # Regular rename: non-critical uops allocate, critical uops replay.
        frontend_q = self.frontend_q
        while budget and frontend_q and frontend_q[0][0] <= cycle:
            uop = frontend_q[0][1]
            seq = uop.seq
            if seq in self.critically_fetched:
                head = self.cmq.peek()
                if head is None or head.seq != seq:
                    # Critical stream has not renamed this uop yet.
                    self._dispatch_blocked = "cmq_wait"
                    break
                entry = self.inflight.get(seq)
                if entry is not None and entry.poisoned:
                    # Poison bit detected while replaying the rename: the
                    # uop stays at the head of the frontend queue and is
                    # re-dispatched as a regular uop after the flush.
                    self._violation_flush(cycle, seq)
                    return
                frontend_q.popleft()
                self.cmq.pop()
                self.critically_fetched.discard(seq)
                self.replay_frontier = seq + 1
                budget -= 1
                if self.event_log is not None:
                    self.event_log.append((cycle, "p", seq))
                self.counters["replayed_uops"] += 1
                continue
            reason = self._allocation_block_reason(uop)
            if reason is not None:
                self._dispatch_blocked = reason
                break
            frontend_q.popleft()
            self._allocate(uop, cycle)
            self.replay_frontier = seq + 1
            budget -= 1

        # Stall accounting drives the dynamic partitioning. Only stalls
        # observed while the machine is actually partitioned count: in
        # regular mode every stall is trivially 'non-critical' and would
        # bias the controller into shrinking the critical section the
        # moment CDF mode begins.
        partitioned = self.cdf_mode or bool(self.rob_crit)
        if crit_blocked in ("rob", "lq", "sq"):
            if partitioned:
                getattr(partitions, crit_blocked).note_stall(critical=True)
            self.counters[f"crit_dispatch_stall_{crit_blocked}_cycles"] += 1
        elif crit_blocked is not None:
            self.counters[f"crit_dispatch_stall_{crit_blocked}_cycles"] += 1
        blocked = self._dispatch_blocked
        if blocked in ("rob", "lq", "sq") and partitioned:
            getattr(partitions, blocked).note_stall(critical=False)
        if blocked is not None:
            self._account_stall(cycle, blocked, 1)
        if not self.cdf_cfg.dynamic_partitioning:
            return
        if self.cdf_mode:
            if crit_blocked or blocked:
                partitions.rebalance_all(
                    rob_occupancy=len(self.rob_crit),
                    lq_occupancy=self.lq_crit_used,
                    sq_occupancy=self.sq_crit_used)
        elif not self.rob_crit:
            partitions.decay_all()

    def _allocation_block_reason(self, uop: DynUop) -> Optional[str]:
        # Physical limits first: a rebalance (or CDF-mode entry) can move
        # the partition boundary past the *other* section's current
        # occupancy — the section then drains down to its new bound, but
        # until it does, this section's nominal headroom is not backed by
        # free physical entries.  Allocation needs both.  The physical
        # checks are _physical_block_reason inlined (same order): this is
        # the hottest CDF dispatch predicate, evaluated once per
        # frontend-queue head per cycle.
        if len(self.rob) + len(self.rob_crit) >= self.rob_size:
            return "rob"
        if self.rs_used + self.rs_crit_used >= self.rs_size:
            return "rs"
        if uop.is_load and self.lq_used + self.lq_crit_used >= self.lq_size:
            return "lq"
        if uop.is_store \
                and self.sq_used + self.sq_crit_used >= self.sq_size:
            return "sq"
        if uop.writes_reg and self.writers_inflight + self.writers_crit \
                >= self.prf_writers_limit:
            return "prf"
        partitions = self.partitions
        if len(self.rob) >= partitions.rob.noncritical_size:
            return "rob"
        rs_noncrit = self.rs_size - (self.partitions.rs_critical_size
                                     if (self.cdf_mode or self.rob_crit)
                                     else 0)
        if self.rs_used >= rs_noncrit:
            return "rs"
        if uop.is_load and self.lq_used >= partitions.lq.noncritical_size:
            return "lq"
        if uop.is_store and self.sq_used >= partitions.sq.noncritical_size:
            return "sq"
        if uop.writes_reg and self.writers_inflight >= \
                self._noncrit_prf_limit():
            return "prf"
        return None

    def _physical_block_reason(self, uop: DynUop) -> Optional[str]:
        """Both ROB sections together must fit the physical structures."""
        if len(self.rob) + len(self.rob_crit) >= self.rob_size:
            return "rob"
        if self.rs_used + self.rs_crit_used >= self.rs_size:
            return "rs"
        if uop.is_load and self.lq_used + self.lq_crit_used >= self.lq_size:
            return "lq"
        if uop.is_store \
                and self.sq_used + self.sq_crit_used >= self.sq_size:
            return "sq"
        if uop.writes_reg and self.writers_inflight + self.writers_crit \
                >= self.prf_writers_limit:
            return "prf"
        return None

    def _noncrit_prf_limit(self) -> int:
        share = self.partitions.rob.critical_size \
            if (self.cdf_mode or self.rob_crit) else 0
        limit = self._prf_limit_memo.get(share)
        if limit is None:
            # prf_writers_limit and rob.total are fixed at construction,
            # so the limit is a pure function of the current critical
            # share — memoized because rebalances visit few distinct
            # shares while dispatch asks every cycle.
            crit_share = self.prf_writers_limit * share \
                // max(1, self.partitions.rob.total)
            limit = max(8, self.prf_writers_limit - crit_share)
            self._prf_limit_memo[share] = limit
        return limit

    def _critical_block_reason(self, uop: DynUop) -> Optional[str]:
        reason = self._physical_block_reason(uop)
        if reason is not None:
            return reason
        partitions = self.partitions
        if self.replay_frontier < self.mode_entry_seq:
            # The critical RAT is copied 'after the last regular mode
            # instruction has been renamed' (Sec. 3.4): critical rename
            # waits until the regular stream has renamed everything that
            # was in flight when CDF mode began.
            return "rat_copy"
        if len(self.rob_crit) >= partitions.rob.critical_size:
            return "rob"
        if self.rs_crit_used >= partitions.rs_critical_size:
            return "rs"
        if uop.is_load and self.lq_crit_used >= partitions.lq.critical_size:
            return "lq"
        if uop.is_store and self.sq_crit_used >= partitions.sq.critical_size:
            return "sq"
        if uop.writes_reg and self.writers_crit >= \
                max(8, self.prf_writers_limit - self._noncrit_prf_limit()):
            return "prf"
        if self.cmq.full:
            return "cmq"
        return None

    def _allocate_critical(self, uop: DynUop, cycle: int) -> RobEntry:
        entry = RobEntry(uop, critical=True)
        if uop.seq in self._mispredicted_seqs:
            entry.mispredicted = True
            self._mispredicted_seqs.discard(uop.seq)
        inflight = self.inflight
        entry_seq = self.mode_entry_seq
        session = self._crit_session_seqs
        pending = 0
        for dep in uop.src_deps:
            if dep >= entry_seq and dep not in session:
                # The producer was not marked critical (unseen control
                # path in the mask), so its value is not in the critical
                # RAT: the critical uop executes with a stale value — a
                # register dependence violation (Sec. 3.6), detected by
                # the poison bit when the rename is replayed.
                entry.poisoned = True
                self.counters["poisoned_register_sources"] += 1
                continue
            producer = inflight.get(dep)
            if producer is not None and not producer.flushed \
                    and producer.state != COMPLETE:
                producer.add_waiter(entry)
                pending += 1
        if uop.is_load and uop.store_dep >= 0:
            store_dep = uop.store_dep
            if store_dep >= entry_seq and store_dep not in session:
                # Memory dependence violation: the forwarding store was
                # not marked critical (Sec. 3.5, Memory Disambiguation).
                entry.poisoned = True
                self.counters["poisoned_memory_sources"] += 1
            else:
                store = inflight.get(store_dep)
                if store is not None and not store.flushed:
                    entry.forwarded = True
                    if store.state != COMPLETE:
                        store.add_waiter(entry)
                        pending += 1
        entry.pending = pending
        if pending == 0:
            entry.state = READY
            self._push_ready(entry)
        if self.conservative_mem and uop.is_store:
            bisect.insort(self._unissued_stores, uop.seq)
        self.rob_crit.append(entry)
        inflight[uop.seq] = entry
        self.rs_crit_used += 1
        self.lq_crit_used += uop.is_load
        self.sq_crit_used += uop.is_store
        if uop.writes_reg:
            self.writers_crit += 1
        self.cmq.push(CMQEntry(uop.seq, uop.dst))
        self._crit_session_seqs.add(uop.seq)
        if self.event_log is not None:
            self.event_log.append((cycle, "d", uop.seq))
        counters = self.counters
        counters["crit_rename_uops"] += 1
        counters["rob_writes"] += 1
        if self.verifier is not None:
            self.verifier.on_dispatch(entry, cycle, critical=True)
        return entry

    # -------------------------------------------------------------- flush
    def _violation_flush(self, cycle: int, seq: int) -> None:
        """Dependence violation detected at replay of *seq*: flush all
        critical uops at/after it and fall back to regular execution."""
        self.counters.bump("dependence_violations")
        rob_crit = self.rob_crit
        flushed = 0
        while rob_crit and rob_crit[-1].seq >= seq:
            entry = rob_crit.pop()
            entry.flushed = True
            del self.inflight[entry.seq]
            if entry.state in (WAITING, READY):   # RS entry still held
                self.rs_crit_used -= 1
            self.lq_crit_used -= entry.uop.is_load
            self.sq_crit_used -= entry.uop.is_store
            if entry.uop.writes_reg:
                self.writers_crit -= 1
            self.critically_fetched.discard(entry.seq)
            if self.conservative_mem and entry.uop.is_store \
                    and entry.state in (WAITING, READY):
                self._unissued_stores.remove(entry.seq)
            flushed += 1
        self.counters.bump("violation_flushed_uops", flushed)
        self.cmq.flush_younger_than(seq)
        # Critical fetch ends; remaining non-critical uops drain, then the
        # frontend exits CDF mode (the DBQ entries it produced are for
        # correct-path branches and stay valid).
        self._stop_critical_fetch()
        for leftover in list(self.critically_fetched):
            if leftover >= seq:
                self.critically_fetched.discard(leftover)
        self.crit_fetch_buffer = deque(
            (ready, uop) for ready, uop in self.crit_fetch_buffer
            if uop.seq < seq)
        self._rename_stall_until = cycle + self.cdf_cfg.violation_flush_penalty

    # -------------------------------------------------------------- issue
    def _complete_at(self, entry: RobEntry, cycle: int,
                     completion: int) -> None:
        if entry.critical:
            # Undo the baseline's shared-RS decrement and apply it to the
            # critical share instead.
            self.rs_crit_used -= 1
            self.rs_used += 1
        super()._complete_at(entry, cycle, completion)

    # -------------------------------------------------------------- wakeups
    def next_wakeups(self, cycle: int):
        """CDF's contribution to the unified wakeup candidate set.

        Per-cycle bookkeeping (partition stall counters and rebalance
        hysteresis, dual-stream scheduling, crit-fetch-buffer decode
        timers) matters while any CDF structure is live, and those
        steps are *stateful per invocation* (``decay_all`` moves the
        partition boundary one step per call), so the engine must not
        jump spans: contribute ``cycle + 1`` for exactly those phases.
        Out of CDF mode with the critical structures drained, the
        machine is a baseline core and the base candidate set covers
        every wakeup source.
        """
        if self.cdf_mode or self.crit_fetch_buffer or self.rob_crit:
            return (cycle + 1,)
        return ()
