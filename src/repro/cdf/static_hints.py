"""Compiler-assisted CDF: statically generated chain hints.

The paper's future work (Sec. 6): 'While compilers cannot identify
critical instructions and find the optimal level of loop unrolling
statically, they can be used to augment CDF by statically generating a
set of possible chains that CDF can then choose to fetch and execute at
runtime. This can help reduce the hardware overhead and complexity of
CDF significantly.'

This module implements that flow as a profile-guided 'compiler pass':

1. :func:`profile_chains` runs a short profiling execution on the
   baseline core, observes which loads missed the LLC and which branches
   mispredicted, and slices their backward dependence chains over the
   dynamic trace — the software analogue of the Fill Buffer walk.
2. The result is a :class:`StaticChainHints` artifact (per-basic-block
   critical masks) that can be saved to / loaded from a JSON file, like
   a compiler would emit alongside the binary.
3. :func:`preload_hints` installs the hinted traces into a CDF pipeline's
   Critical Uop Cache and Mask Cache *before* simulation starts, letting
   CDF mode engage without waiting for the first 10k-instruction
   hardware training interval. The hardware CCT/Fill Buffer then refine
   the hints at runtime exactly as before.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..config import SimConfig
from ..core.pipeline import BaselinePipeline
from ..isa.dynuop import DynUop
from ..isa.program import Program
from ..stats import mark_critical_chains


@dataclass
class StaticChainHints:
    """Per-basic-block critical-uop masks, as a compiler would emit."""

    bb_masks: Dict[int, int] = field(default_factory=dict)
    bb_ends_in_branch: Dict[int, bool] = field(default_factory=dict)
    #: Fraction of profiled uops marked critical (compiler diagnostics).
    critical_fraction: float = 0.0

    def __len__(self) -> int:
        return len(self.bb_masks)

    # -- artifact I/O -----------------------------------------------------
    def save(self, path: str) -> None:
        payload = {
            "version": 1,
            "critical_fraction": self.critical_fraction,
            "blocks": [
                {
                    "bb_start": bb,
                    "mask": format(mask, "x"),
                    "ends_in_branch": self.bb_ends_in_branch.get(bb, False),
                }
                for bb, mask in sorted(self.bb_masks.items())
            ],
        }
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=1)

    @classmethod
    def load(cls, path: str) -> "StaticChainHints":
        with open(path) as handle:
            payload = json.load(handle)
        if payload.get("version") != 1:
            raise ValueError(f"{path}: unsupported hint file version")
        hints = cls(critical_fraction=payload.get("critical_fraction", 0.0))
        for block in payload["blocks"]:
            bb = int(block["bb_start"])
            hints.bb_masks[bb] = int(block["mask"], 16)
            if block["ends_in_branch"]:
                hints.bb_ends_in_branch[bb] = True
        return hints


def profile_chains(program: Program, trace: Sequence[DynUop],
                   profile_uops: Optional[int] = None,
                   config: Optional[SimConfig] = None,
                   include_branches: bool = True) -> StaticChainHints:
    """Profile-guided chain generation (the 'compiler pass').

    Runs the baseline core over a prefix of the trace, collects the
    observed critical roots, slices their chains over the true dataflow,
    and folds the marks into per-basic-block masks.
    """
    profile_trace = list(trace[:profile_uops]) if profile_uops else trace
    pipeline = BaselinePipeline(profile_trace,
                                config or SimConfig.baseline(),
                                benchmark="profile")
    pipeline.run()
    roots: List[int] = list(pipeline.llc_miss_load_seqs)
    if include_branches:
        roots.extend(pipeline.mispredicted_branch_seqs)
    critical = mark_critical_chains(profile_trace, roots)

    hints = StaticChainHints()
    marked = 0
    for uop in profile_trace:
        bb = program.basic_block_start(uop.pc)
        hints.bb_masks.setdefault(bb, 0)
        if uop.seq in critical:
            hints.bb_masks[bb] |= 1 << (uop.pc - bb)
            marked += 1
        if uop.is_branch:
            hints.bb_ends_in_branch[bb] = True
    hints.critical_fraction = marked / len(profile_trace) \
        if profile_trace else 0.0
    return hints


def preload_hints(pipeline, hints: StaticChainHints,
                  respect_density_gates: bool = True) -> int:
    """Install *hints* into a CDF pipeline before it runs.

    Returns the number of basic blocks installed. The pipeline's own
    density gates still apply (a compiler emitting everything-critical
    would be as useless to CDF as hardware overmarking); pass
    ``respect_density_gates=False`` to force installation.
    """
    cdf = pipeline.cdf_cfg
    if respect_density_gates and (
            hints.critical_fraction < cdf.min_critical_fraction
            or hints.critical_fraction > cdf.max_critical_fraction):
        pipeline.counters.bump("static_hints_rejected")
        return 0
    installed = 0
    for bb, mask in hints.bb_masks.items():
        merged = pipeline.mask_cache.accumulate(bb, mask)
        pipeline.uop_cache.fill(
            bb, merged, hints.bb_ends_in_branch.get(bb, False),
            valid_from=0)
        installed += 1
    pipeline.counters.bump("static_hint_blocks", installed)
    return installed
