"""Dynamic partitioning of window resources (Sec. 3.5).

Each partitioned structure (ROB, LQ, SQ) is split into a critical and a
non-critical section. Counters track full-window-stall cycles caused by
each section; when one section's stalls exceed the other's by the
threshold (4 cycles), its share grows by the configured step (8 entries
for ROB/RS, 2 for LQ/SQ). The RS and PRF critical shares follow the ROB
partition, as in the paper.
"""

from __future__ import annotations

from ..config import CDFConfig


class PartitionedResource:
    """One structure's critical/non-critical split."""

    def __init__(self, name: str, total: int, critical_size: int,
                 step: int, min_critical: int, min_noncritical: int) -> None:
        if critical_size + min_noncritical > total:
            critical_size = total - min_noncritical
        self.name = name
        self.total = total
        self.step = step
        self.min_critical = min_critical
        self.min_noncritical = min_noncritical
        self.critical_size = max(min_critical, critical_size)
        self.critical_stall_cycles = 0
        self.noncritical_stall_cycles = 0
        self.grows = 0
        self.shrinks = 0

    @property
    def noncritical_size(self) -> int:
        return self.total - self.critical_size

    def note_stall(self, critical: bool, weight: int = 1) -> None:
        if critical:
            self.critical_stall_cycles += weight
        else:
            self.noncritical_stall_cycles += weight

    def rebalance(self, threshold: int,
                  critical_occupancy: int = None) -> int:
        """Apply one partition adjustment if the stall imbalance exceeds
        *threshold*; returns the signed change to the critical size.

        When *critical_occupancy* is given, a well-utilised critical
        section (>= 3/4 full) is never shrunk: non-critical pressure
        while the critical stream is also using its space must not steal
        the parallelism CDF exists to extract (Sec. 3.5's goal of
        'maximizing the amount of parallelism that can be extracted from
        critical instructions').
        """
        diff = self.critical_stall_cycles - self.noncritical_stall_cycles
        change = 0
        if diff >= threshold:
            new_size = min(self.total - self.min_noncritical,
                           self.critical_size + self.step)
            change = new_size - self.critical_size
            if change:
                self.grows += 1
        elif diff <= -threshold:
            if critical_occupancy is not None \
                    and critical_occupancy * 4 >= self.critical_size * 3:
                # Utilisation guard: reset the counters, keep the split.
                self.critical_stall_cycles = 0
                self.noncritical_stall_cycles = 0
                return 0
            new_size = max(self.min_critical, self.critical_size - self.step)
            change = new_size - self.critical_size
            if change:
                self.shrinks += 1
        if change:
            self.critical_size += change
            self.critical_stall_cycles = 0
            self.noncritical_stall_cycles = 0
        return change

    def decay_toward_noncritical(self, floor: int = 0) -> None:
        """Gradually release the critical section after CDF mode exits.

        Out of CDF mode the critical section can shrink all the way to
        zero ('benchmarks that do not do well in CDF mode default to
        regular execution'), so *floor* defaults to 0.
        """
        if self.critical_size > floor:
            self.critical_size = max(floor, self.critical_size - self.step)

    def ensure_minimum(self, size: int) -> None:
        """Grow the critical section to at least *size* (CDF mode entry)."""
        self.critical_size = max(self.critical_size,
                                 min(size, self.total - self.min_noncritical))


class PartitionController:
    """Coordinates the partitioned structures for one CDF pipeline."""

    def __init__(self, config: CDFConfig, rob_size: int,
                 lq_size: int, sq_size: int, rs_size: int) -> None:
        self.config = config
        initial_rob = int(rob_size * config.initial_critical_rob_fraction)
        self.rob = PartitionedResource(
            "rob", rob_size, initial_rob, config.rob_partition_step,
            min_critical=config.rob_partition_step,
            min_noncritical=config.min_noncrit_rob)
        self.lq = PartitionedResource(
            "lq", lq_size, lq_size // 2, config.lsq_partition_step,
            min_critical=config.lsq_partition_step,
            min_noncritical=max(4, lq_size // 8))
        self.sq = PartitionedResource(
            "sq", sq_size, sq_size // 2, config.lsq_partition_step,
            min_critical=config.lsq_partition_step,
            min_noncritical=max(4, sq_size // 8))
        self._rs_size = rs_size

    @property
    def rs_critical_size(self) -> int:
        """RS critical share scales with the ROB partition (Sec. 3.5)."""
        return max(4, self._rs_size * self.rob.critical_size
                   // max(1, self.rob.total))

    def rebalance_all(self, rob_occupancy: int = None,
                      lq_occupancy: int = None,
                      sq_occupancy: int = None) -> None:
        threshold = self.config.stall_cycle_threshold
        self.rob.rebalance(threshold, rob_occupancy)
        self.lq.rebalance(threshold, lq_occupancy)
        self.sq.rebalance(threshold, sq_occupancy)

    def decay_all(self) -> None:
        for resource in (self.rob, self.lq, self.sq):
            resource.decay_toward_noncritical()

    def on_mode_entry(self) -> None:
        """Make sure each critical section has a workable minimum size."""
        self.rob.ensure_minimum(
            int(self.rob.total * self.config.initial_critical_rob_fraction))
        self.lq.ensure_minimum(self.lq.total // 2)
        self.sq.ensure_minimum(self.sq.total // 2)
