"""The Mask Cache (Sec. 3.2).

Per basic block, a bit mask with a 1 for every uop position that has
been marked critical on *any* previously observed control-flow path.
(Hardware stores 64-bit masks, with blocks longer than 64 uops using
multiple entries; we keep one arbitrary-width mask per block and charge
capacity accordingly.) The
fill unit ORs each walk's fresh marks into the stored mask, so the set of
critical uops for a block accumulates across paths — the mechanism that
makes register dependence violations rare. Masks are periodically reset
(every 200k instructions) to drop stale paths.
"""

from __future__ import annotations

from typing import Dict, Optional


class _MaskEntry:
    __slots__ = ("bb_start", "mask", "lru")

    def __init__(self) -> None:
        self.bb_start = -1
        self.mask = 0
        self.lru = 0


class MaskCache:
    """Set-associative bb_start -> 64-bit critical mask store."""

    def __init__(self, entries: int = 512, ways: int = 4) -> None:
        if entries % ways:
            raise ValueError("entries must be a multiple of ways")
        self.num_sets = entries // ways
        self.ways = ways
        self._sets = [[_MaskEntry() for _ in range(ways)]
                      for _ in range(self.num_sets)]
        self._clock = 0
        self.resets = 0
        self.evictions = 0

    def _find(self, bb_start: int) -> Optional[_MaskEntry]:
        for entry in self._sets[bb_start % self.num_sets]:
            if entry.bb_start == bb_start:
                return entry
        return None

    def lookup(self, bb_start: int) -> Optional[int]:
        """Return the accumulated mask for a block, or None."""
        self._clock += 1
        entry = self._find(bb_start)
        if entry is None:
            return None
        entry.lru = self._clock
        return entry.mask

    def accumulate(self, bb_start: int, mask: int) -> int:
        """OR *mask* into the stored mask; returns the merged mask."""
        self._clock += 1
        entry = self._find(bb_start)
        if entry is None:
            bucket = self._sets[bb_start % self.num_sets]
            entry = min(bucket, key=lambda e: (e.bb_start != -1, e.lru))
            if entry.bb_start != -1:
                self.evictions += 1
            entry.bb_start = bb_start
            entry.mask = 0
        entry.lru = self._clock
        entry.mask |= mask
        return entry.mask

    def remove(self, bb_start: int) -> bool:
        """Drop a block (density-gate rejection); returns found."""
        entry = self._find(bb_start)
        if entry is None:
            return False
        entry.bb_start = -1
        entry.mask = 0
        return True

    def reset(self) -> None:
        """Periodic full reset (every 200k retired instructions)."""
        self.resets += 1
        for bucket in self._sets:
            for entry in bucket:
                entry.bb_start = -1
                entry.mask = 0

    def snapshot_masks(self) -> Dict[int, int]:
        """All valid (bb_start -> mask) pairs; feeds the fill-buffer walk."""
        result: Dict[int, int] = {}
        for bucket in self._sets:
            for entry in bucket:
                if entry.bb_start != -1:
                    result[entry.bb_start] = entry.mask
        return result
