"""The Critical Uop Cache (Sec. 3.2, Fig. 7).

Stores, per basic block, the trace of critical (decoded) uops with the
information the critical fetch engine needs to chain blocks: the critical
mask, whether the block ends in a branch (predict it) and, implicitly, the
fall-through/next-block address. Traces hold 8 uops per entry; a block
with more critical uops occupies multiple entries, which we account for as
extra capacity weight when choosing victims.

Entries written by a fill-unit walk only become visible after the fill
latency (~1200 cycles, Sec. 3.2) — the pipeline passes the current cycle
to :meth:`lookup`.
"""

from __future__ import annotations

from typing import Optional


class UopCacheEntry:
    """One basic block's critical-uop trace."""

    __slots__ = ("bb_start", "mask", "ends_in_branch", "n_critical",
                 "lines", "valid_from", "lru")

    def __init__(self) -> None:
        self.bb_start = -1
        self.mask = 0
        self.ends_in_branch = False
        self.n_critical = 0
        self.lines = 1          # trace-cache lines consumed (8 uops each)
        self.valid_from = 0     # cycle at which the fill becomes visible
        self.lru = 0


class CriticalUopCache:
    """Set-associative bb_start -> critical trace store."""

    def __init__(self, entries: int = 288, ways: int = 4,
                 uops_per_trace: int = 8) -> None:
        if ways <= 0 or entries < ways:
            raise ValueError("bad uop-cache geometry")
        self.num_sets = max(1, entries // ways)
        self.ways = ways
        self.uops_per_trace = uops_per_trace
        self._sets = [[UopCacheEntry() for _ in range(ways)]
                      for _ in range(self.num_sets)]
        self._clock = 0
        self.lookups = 0
        self.hits = 0
        self.fills = 0
        self.evictions = 0

    def _find(self, bb_start: int) -> Optional[UopCacheEntry]:
        for entry in self._sets[bb_start % self.num_sets]:
            if entry.bb_start == bb_start:
                return entry
        return None

    def lookup(self, bb_start: int, cycle: int) -> Optional[UopCacheEntry]:
        """Return the trace for a block if present *and* fill-visible."""
        self.lookups += 1
        self._clock += 1
        entry = self._find(bb_start)
        if entry is None or cycle < entry.valid_from:
            return None
        entry.lru = self._clock
        self.hits += 1
        return entry

    def fill(self, bb_start: int, mask: int, ends_in_branch: bool,
             valid_from: int) -> UopCacheEntry:
        """Install or refresh a block's trace."""
        self._clock += 1
        self.fills += 1
        entry = self._find(bb_start)
        fresh = entry is None
        if fresh:
            bucket = self._sets[bb_start % self.num_sets]
            # Prefer invalid ways, then LRU.
            entry = min(bucket, key=lambda e: (e.bb_start != -1, e.lru))
            if entry.bb_start != -1:
                self.evictions += 1
            entry.bb_start = bb_start
            # A brand-new trace only becomes fetchable after the fill
            # latency has elapsed.
            entry.valid_from = valid_from
        # Refreshing an existing trace updates it in place; the previous
        # trace remains readable meanwhile, so visibility is unchanged.
        entry.mask = mask
        entry.n_critical = bin(entry.mask).count("1")
        entry.lines = max(1, -(-entry.n_critical // self.uops_per_trace))
        entry.ends_in_branch = ends_in_branch
        entry.lru = self._clock
        return entry

    def remove(self, bb_start: int) -> bool:
        """Drop a block (density-gate rejection); returns found."""
        entry = self._find(bb_start)
        if entry is None:
            return False
        entry.bb_start = -1
        entry.mask = 0
        return True

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0
