"""Criticality Driven Fetch: the paper's primary contribution."""

from .cct import CriticalCountTable, make_branch_cct, make_load_cct
from .cdf_pipeline import CDFPipeline
from .fill_buffer import FillBuffer, FillBufferEntry, WalkResult
from .mask_cache import MaskCache
from .partition import PartitionController, PartitionedResource
from .queues import CMQEntry, CriticalMapQueue, DBQEntry, DelayedBranchQueue
from .uop_cache import CriticalUopCache, UopCacheEntry

__all__ = [
    "CriticalCountTable",
    "make_branch_cct",
    "make_load_cct",
    "CDFPipeline",
    "FillBuffer",
    "FillBufferEntry",
    "WalkResult",
    "MaskCache",
    "PartitionController",
    "PartitionedResource",
    "CMQEntry",
    "CriticalMapQueue",
    "DBQEntry",
    "DelayedBranchQueue",
    "CriticalUopCache",
    "UopCacheEntry",
]

from .static_hints import (  # noqa: E402
    StaticChainHints,
    preload_hints,
    profile_chains,
)

__all__ += ["StaticChainHints", "preload_hints", "profile_chains"]
