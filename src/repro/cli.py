"""Command-line interface: run benchmarks and regenerate paper figures.

Installed as ``repro-sim`` (or ``python -m repro``):

    repro-sim list
    repro-sim run astar --mode cdf --scale 0.5
    repro-sim compare astar mcf --scale 0.5
    repro-sim figure fig13 --scale 0.6 --jobs 4
    repro-sim figures --quick --check-baseline
    repro-sim figures --full --fig fig13-cdf-uplift
    repro-sim figures --quick --out dashboard/
    repro-sim report --scale 0.6 --output report.md
    repro-sim report --benchmark astar --mode cdf --output astar.md
    repro-sim trace --benchmark astar --mode cdf --out trace.json
    repro-sim cache stats
    repro-sim sweep --knob memory_speed
    repro-sim sweep --knob mshrs --screen --measure-recall --out screen.json
    repro-sim submit sweeps astar mcf --modes baseline cdf --repeat-seeds 3
    repro-sim serve sweeps --once --jobs 4
    repro-sim serve sweeps --once --jobs 4 --fault-seed 7 --kills 2
    repro-sim status sweeps
    repro-sim drain sweeps --jobs 4
    repro-sim perf [--smoke] [--baseline benchmarks/perf_baseline.json]
    repro-sim disasm bzip
    repro-sim lint [paths...] [--format json] [--baseline FILE]
    repro-sim lint --docs
    repro-sim verify --fuzz 50 --seed 0
    repro-sim verify --bench astar --scale 0.2

Simulation commands accept ``--jobs N`` (or ``REPRO_JOBS``) to fan out
across worker processes and ``--no-cache`` to bypass the persistent
result cache under ``REPRO_CACHE_DIR`` (see docs/harness.md). Engine
accounting (jobs run, cache hits, wall-clock) is printed to stderr so
figure text on stdout stays byte-identical across serial, parallel, and
warm-cache runs.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .config import SimConfig
from .harness import (
    Job,
    ResultCache,
    configure,
    get_engine,
)
from .harness import (
    ablation_critical_branches,
    build_report,
    ablation_partitioning,
    ablation_thresholds,
    config_for_mode,
    fig01_rob_distribution,
    fig13_speedup,
    fig14_mlp,
    fig15_traffic,
    fig16_energy,
    fig17_scaling,
    format_ablation_branches,
    format_ablation_partitioning,
    format_ablation_thresholds,
    format_fig01,
    format_fig13,
    format_fig14,
    format_fig15,
    format_fig16,
    format_fig17,
    load_workload,
    table1_text,
)
from .harness.service import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_HEARTBEAT_TIMEOUT,
    DEFAULT_MAX_ATTEMPTS,
)
from .harness.tables import render_table
from .workloads import DEFAULT_SEED, SUITE, suite_names

#: figure name -> (driver, formatter, needs_scale)
FIGURES = {
    "table1": (lambda **kw: table1_text(), lambda text: text),
    "fig1": (fig01_rob_distribution, format_fig01),
    "fig13": (fig13_speedup, format_fig13),
    "fig14": (fig14_mlp, format_fig14),
    "fig15": (fig15_traffic, format_fig15),
    "fig16": (fig16_energy, format_fig16),
    "fig17": (fig17_scaling, format_fig17),
    "ablation-branches": (ablation_critical_branches,
                          format_ablation_branches),
    "ablation-partitioning": (
        lambda **kw: ablation_partitioning(
            names=("astar", "milc", "bzip", "nab", "mcf", "lbm"), **kw),
        format_ablation_partitioning),
    "ablation-thresholds": (
        lambda **kw: ablation_thresholds(
            names=("astar", "milc", "nab", "bzip", "soplex", "lbm"), **kw),
        format_ablation_thresholds),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="Criticality Driven Fetch (MICRO 2021) reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    # Engine options shared by every simulating subcommand.
    engine_opts = argparse.ArgumentParser(add_help=False)
    engine_opts.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (default: $REPRO_JOBS or 1)")
    engine_opts.add_argument(
        "--no-cache", action="store_true",
        help="bypass the persistent result cache ($REPRO_CACHE_DIR)")

    sub.add_parser("list", help="list the benchmark suite")

    run = sub.add_parser("run", help="run one benchmark under one core",
                         parents=[engine_opts])
    run.add_argument("benchmark", choices=suite_names())
    run.add_argument("--mode", choices=("baseline", "cdf", "pre"),
                     default="cdf")
    run.add_argument("--scale", type=float, default=0.5)
    run.add_argument("--seed", type=int, default=DEFAULT_SEED)
    run.add_argument("--rob", type=int, default=None,
                     help="override ROB size (scales RS/LQ/SQ with it)")
    run.add_argument("--no-prefetch", action="store_true")
    run.add_argument("--counters", action="store_true",
                     help="dump all event counters")

    compare = sub.add_parser("compare",
                             help="run benchmarks under all three cores",
                             parents=[engine_opts])
    compare.add_argument("benchmarks", nargs="+", choices=suite_names())
    compare.add_argument("--scale", type=float, default=0.5)
    compare.add_argument("--seed", type=int, default=DEFAULT_SEED)

    figure = sub.add_parser("figure", help="regenerate a paper figure",
                            parents=[engine_opts])
    figure.add_argument("name", choices=sorted(FIGURES))
    figure.add_argument("--scale", type=float, default=0.5)

    figures = sub.add_parser(
        "figures",
        help="run the paper-parity claim registry: every headline "
             "figure/table with a match/within-tolerance/diverged "
             "verdict (see docs/PAPER_VS_CODE.md)",
        parents=[engine_opts])
    profile = figures.add_mutually_exclusive_group()
    profile.add_argument(
        "--quick", action="store_true",
        help="CI profile: 6-kernel subset at scale 0.3 (default)")
    profile.add_argument(
        "--full", action="store_true",
        help="paper-faithful profile: 18 kernels at scale 1.0")
    figures.add_argument(
        "--fig", action="append", default=None, metavar="ID",
        help="run one claim (repeatable); see --list for ids")
    figures.add_argument("--list", action="store_true",
                         help="list the claim registry and exit")
    figures.add_argument("--seed", type=int, default=DEFAULT_SEED)
    figures.add_argument(
        "--out", default=None, metavar="DIR",
        help="write the HTML dashboard into DIR")
    figures.add_argument(
        "--serve", action="store_true",
        help="serve the dashboard over HTTP instead of writing it")
    figures.add_argument("--port", type=int, default=8437,
                         help="port for --serve (default 8437)")
    figures.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="pinned-values JSON (default "
             "benchmarks/figures_baseline.json)")
    figures.add_argument(
        "--check-baseline", action="store_true",
        help="diff values/verdicts against the pinned baseline; any "
             "drift exits nonzero (quick profile only)")
    figures.add_argument(
        "--write-baseline", action="store_true",
        help="re-pin the baseline from this run's values")
    figures.add_argument(
        "--sync-doc", action="store_true",
        help="regenerate the claim-map block in docs/PAPER_VS_CODE.md "
             "from the registry and exit (no simulations)")
    figures.add_argument(
        "--no-bench", action="store_true",
        help="skip appending this run to BENCH_figures.json")

    disasm = sub.add_parser("disasm", help="print a kernel's assembly")
    disasm.add_argument("benchmark", choices=suite_names())

    report = sub.add_parser(
        "report",
        help="regenerate the full evaluation as Markdown, or (with "
             "--benchmark) render a single-run telemetry report",
        parents=[engine_opts])
    report.add_argument("--scale", type=float, default=0.5)
    report.add_argument("--output", default=None,
                        help="write to a file instead of stdout")
    report.add_argument("--only", nargs="*", default=None,
                        help="limit to figure keys (fig13, fig17, ...)")
    report.add_argument(
        "--benchmark", choices=suite_names(), default=None,
        help="render a single-run obs report (sparklines, stall "
             "anatomy, memory-latency attribution) instead of the "
             "full evaluation; see docs/observability.md")
    report.add_argument("--mode", choices=("baseline", "cdf", "pre"),
                        default="cdf",
                        help="core for --benchmark (default cdf)")
    report.add_argument("--seed", type=int, default=DEFAULT_SEED)
    report.add_argument(
        "--obs-level", type=int, choices=(1, 2), default=2,
        help="telemetry level for --benchmark (default 2: includes "
             "per-uop lifecycle events for the fetch-ahead histogram)")
    report.add_argument(
        "--no-baseline", action="store_true",
        help="with --benchmark: skip the baseline comparison run")
    report.add_argument(
        "--html", action="store_true",
        help="with --benchmark: emit a self-contained HTML page")

    trace = sub.add_parser(
        "trace",
        help="run one benchmark with full telemetry and export a "
             "Chrome-trace JSON (chrome://tracing / Perfetto); see "
             "docs/observability.md")
    trace.add_argument("--benchmark", choices=suite_names(),
                       required=True)
    trace.add_argument("--mode", choices=("baseline", "cdf", "pre"),
                       default="cdf")
    trace.add_argument("--scale", type=float, default=0.5)
    trace.add_argument("--seed", type=int, default=DEFAULT_SEED)
    trace.add_argument("--out", default="trace.json", metavar="PATH",
                       help="output path (default trace.json)")
    trace.add_argument(
        "--obs-level", type=int, choices=(1, 2), default=2,
        help="1: counter tracks only; 2 (default): adds per-uop "
             "slices and async memory-request slices")
    trace.add_argument(
        "--max-uop-slices", type=int, default=None, metavar="N",
        help="cap on per-uop timeline slices in the export")

    cache = sub.add_parser(
        "cache",
        help="inspect or clear the persistent result + trace caches")
    cache.add_argument("action", choices=("stats", "clear"))

    sweep_cmd = sub.add_parser(
        "sweep",
        help="sweep one config knob across values; --screen ranks the "
             "grid with the analytic fast tier first and simulates "
             "only the promoted points (see docs/analytic.md)",
        parents=[engine_opts])
    sweep_cmd.add_argument(
        "--knob", required=True, choices=sorted(sweep_knob_names()),
        help="config knob to sweep")
    sweep_cmd.add_argument(
        "--values", nargs="+", default=None, metavar="V",
        help="sweep values (default: the pinned QUICK grid for the knob)")
    sweep_cmd.add_argument(
        "--benchmarks", nargs="+", choices=suite_names(), default=None,
        metavar="NAME",
        help="kernels to run at each point (default: pinned QUICK trio)")
    sweep_cmd.add_argument(
        "--modes", nargs="+", choices=("baseline", "cdf", "pre"),
        default=None, metavar="MODE",
        help="cores to run at each point (default: baseline cdf)")
    sweep_cmd.add_argument("--scale", type=float, default=None,
                           help="workload scale (default: QUICK 0.15)")
    sweep_cmd.add_argument("--seed", type=int, default=DEFAULT_SEED)
    sweep_cmd.add_argument(
        "--screen", action="store_true",
        help="two-tier mode: score every value analytically, simulate "
             "only the top-K / within-epsilon points")
    sweep_cmd.add_argument(
        "--top-k", type=int, default=3, metavar="K",
        help="promoted-set size floor with --screen (default 3)")
    sweep_cmd.add_argument(
        "--epsilon", type=float, default=0.05, metavar="FRAC",
        help="also promote values scoring within FRAC of the best "
             "(default 0.05)")
    sweep_cmd.add_argument(
        "--measure-recall", action="store_true",
        help="with --screen: also simulate the pruned values and "
             "report whether the true best was promoted")
    sweep_cmd.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the screening report as JSON")

    # Sweep-service options shared by serve and drain.
    service_opts = argparse.ArgumentParser(add_help=False)
    service_opts.add_argument(
        "directory",
        help="service directory (journal, queue, results, report)")
    service_opts.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes (default: $REPRO_JOBS or 1)")
    service_opts.add_argument(
        "--batch-size", type=int, default=DEFAULT_BATCH_SIZE,
        metavar="N", help="jobs per dispatched batch "
        f"(default {DEFAULT_BATCH_SIZE})")
    service_opts.add_argument(
        "--heartbeat-timeout", type=float,
        default=DEFAULT_HEARTBEAT_TIMEOUT, metavar="SECONDS",
        help="stalled-worker detection threshold "
        f"(default {DEFAULT_HEARTBEAT_TIMEOUT:g}s)")
    service_opts.add_argument(
        "--max-attempts", type=int, default=DEFAULT_MAX_ATTEMPTS,
        metavar="N", help="per-job retry budget "
        f"(default {DEFAULT_MAX_ATTEMPTS})")
    service_opts.add_argument(
        "--no-cache", action="store_true",
        help="bypass the persistent result cache (disables warm resume)")

    serve = sub.add_parser(
        "serve",
        help="run the durable fault-tolerant sweep service on a "
             "directory (see docs/harness.md)",
        parents=[service_opts])
    serve.add_argument(
        "--once", action="store_true",
        help="drain the queue and exit instead of watching the inbox")
    serve.add_argument(
        "--fault-seed", type=int, default=0, metavar="SEED",
        help="seed for the deterministic fault-injection schedule")
    serve.add_argument(
        "--kills", type=int, default=0, metavar="K",
        help="inject K worker kills (chaos testing)")
    serve.add_argument(
        "--stalls", type=int, default=0, metavar="K",
        help="inject K worker heartbeat stalls")
    serve.add_argument(
        "--drops", type=int, default=0, metavar="K",
        help="inject K dropped result writes")
    serve.add_argument(
        "--corrupt-journal", type=int, default=0, metavar="K",
        help="corrupt K journal records on disk after their fsync")

    sub.add_parser(
        "drain",
        help="drain a service directory's queue to completion and "
             "print the recovery report",
        parents=[service_opts])

    submit = sub.add_parser(
        "submit",
        help="submit jobs to a sweep service's inbox (the service "
             "may be started before or after)")
    submit.add_argument(
        "directory",
        help="service directory (journal, queue, results, report)")
    submit.add_argument("benchmarks", nargs="+", choices=suite_names())
    submit.add_argument(
        "--modes", nargs="+", choices=("baseline", "cdf", "pre"),
        default=["cdf"], metavar="MODE",
        help="cores to run each benchmark under (default: cdf)")
    submit.add_argument("--scale", type=float, default=0.5)
    submit.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="base seed (repeats use SEED, SEED+1, ...)")
    submit.add_argument(
        "--repeat-seeds", type=int, default=1, metavar="N",
        help="submit each point under N consecutive seeds")

    status = sub.add_parser(
        "status",
        help="print a read-only snapshot of a sweep service directory")
    status.add_argument(
        "directory",
        help="service directory (journal, queue, results, report)")

    perf = sub.add_parser(
        "perf",
        help="time the pinned perf micro-suite and write BENCH_perf.json "
             "(see docs/performance.md)")
    perf.add_argument("--smoke", action="store_true",
                      help="smaller scale and fewer reps (CI smoke job)")
    perf.add_argument("--reps", type=int, default=None, metavar="N",
                      help="timing repetitions per phase (best-of-N)")
    perf.add_argument("--output", default=None, metavar="PATH",
                      help=f"report path (default ./{perf_default_report()})")
    perf.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="committed ratio-floor JSON to enforce (cross-machine); "
             "regressions beyond --tolerance exit nonzero")
    perf.add_argument(
        "--tolerance", type=float, default=None, metavar="FRAC",
        help="regression band as a fraction (default 0.30)")
    perf.add_argument(
        "--profile", action="store_true",
        help="cProfile one warm sweep instead of timing: per-stage "
             "hotspot table, written to BENCH_profile.json (numbers "
             "are not comparable to the regression columns)")
    perf.add_argument(
        "--top", type=int, default=15, metavar="N",
        help="hotspot rows to keep with --profile (default 15)")
    perf.add_argument("--quiet", action="store_true",
                      help="suppress phase progress on stderr")

    verify = sub.add_parser(
        "verify",
        help="run pipelines under the differential oracle and invariant "
             "checker (fuzz programs by default, --bench for suite "
             "kernels); see docs/verification.md")
    verify.add_argument(
        "--fuzz", type=int, default=20, metavar="N",
        help="number of fuzz cases; case i uses seed SEED+i (default 20)")
    verify.add_argument(
        "--seed", type=int, default=0,
        help="base fuzz seed; replay one failure with --fuzz 1 --seed S")
    verify.add_argument(
        "--modes", nargs="+", choices=("baseline", "cdf", "pre"),
        default=None, metavar="MODE",
        help="pipelines to verify (default: all three)")
    verify.add_argument(
        "--level", type=int, choices=(1, 2, 3), default=2,
        help="verify_level: 1 events+oracle, 2 +cycle sweeps/periodic "
             "scans (default), 3 scans every cycle")
    verify.add_argument(
        "--bench", choices=suite_names(), default=None,
        help="verify a suite kernel instead of fuzz programs")
    verify.add_argument("--scale", type=float, default=0.2,
                        help="workload scale with --bench (default 0.2)")
    verify.add_argument("--fail-fast", action="store_true",
                        help="stop the campaign at the first failure")
    verify.add_argument("--quiet", action="store_true",
                        help="suppress per-case progress on stderr")

    # The lint subcommand owns its argument parsing (see
    # repro.analysis.runner); main() dispatches to it before the parse
    # below, so this stub only exists for `repro-sim --help` and for the
    # unknown-command error message.
    lint = sub.add_parser(
        "lint", add_help=False,
        help="run simlint (determinism/config/counter static analysis)")
    lint.add_argument("rest", nargs=argparse.REMAINDER)

    return parser


def _make_config(args) -> SimConfig:
    config = config_for_mode(args.mode)
    if args.rob is not None:
        config.core = config.core.scaled(args.rob)
    if args.no_prefetch:
        config.prefetcher.enabled = False
    return config


def cmd_list(_args) -> int:
    rows = []
    for name in suite_names():
        workload = SUITE[name](scale=0.02)
        rows.append((name, workload.description))
    print(render_table("benchmark suite (memory-intensive SPEC-like "
                       "kernels)", ("name", "behaviour"), rows))
    return 0


def cmd_run(args) -> int:
    config = _make_config(args)
    [result] = get_engine().run([
        Job(args.benchmark, args.mode, scale=args.scale, seed=args.seed,
            config=config)])
    print(result.summary())
    print(f"  energy: {result.energy_nj / 1000:.1f} uJ   "
          f"stall cycles: {result.full_window_stall_cycles}")
    if args.mode == "cdf":
        counters = result.counters
        print(f"  cdf: {counters['cdf_mode_entries']} entries, "
              f"{counters['cdf_mode_cycles']} mode cycles, "
              f"{counters['crit_fetch_uops']} critical fetches, "
              f"{counters['dependence_violations']} violations")
    if args.mode == "pre":
        counters = result.counters
        print(f"  pre: {counters['runahead_intervals']} intervals, "
              f"{counters['runahead_prefetches']} prefetches, "
              f"{counters['runahead_wrong_address']} wrong addresses")
    if args.counters:
        for key in sorted(result.counters):
            print(f"  {key:44s} {result.counters[key]}")
    return 0


def cmd_compare(args) -> int:
    from .harness import run_comparison
    by_name = run_comparison(args.benchmarks, scale=args.scale,
                             seed=args.seed)
    for name in args.benchmarks:
        results = by_name[name]
        base = results["baseline"]
        rows = [(mode, f"{r.ipc:.3f}", f"{r.speedup_over(base):.3f}x",
                 f"{r.mlp:.2f}", r.total_traffic,
                 f"{r.energy_nj / 1000:.1f} uJ")
                for mode, r in results.items()]
        print(render_table(name, ("core", "IPC", "speedup", "MLP",
                                  "DRAM xfers", "energy"), rows))
        print()
    return 0


def cmd_figure(args) -> int:
    driver, formatter = FIGURES[args.name]
    if args.name == "table1":
        print(formatter(driver()))
        return 0
    data = driver(scale=args.scale)
    print(formatter(data))
    return 0


def cmd_figures(args) -> int:
    from .harness import figures as figmod

    if args.list:
        print(figmod.describe_registry())
        return 0
    if args.sync_doc:
        changed = figmod.sync_claim_map()
        state = "updated" if changed else "already in sync"
        print(f"{figmod.DEFAULT_CLAIM_DOC}: claim map {state}")
        return 0

    mode = "full" if args.full else "quick"
    baseline_path = args.baseline or figmod.DEFAULT_BASELINE

    def progress(line):
        print(f"... {line}", file=sys.stderr)

    results = figmod.run_figures(mode, fig_ids=args.fig,
                                 seed=args.seed, progress=progress)
    print(figmod.format_figures(results, mode))
    record = figmod.bench_record(results, mode, seed=args.seed)

    partial = bool(args.fig)
    history = figmod.load_history()
    if not partial and not args.no_bench:
        history = figmod.append_history(record)
        print(f"run appended to {figmod.DEFAULT_BENCH_REPORT} "
              f"({len(history)} records)")

    if args.out or args.serve:
        from .harness.figdash import (
            render_dashboard,
            serve_dashboard,
            write_dashboard,
        )
        if args.out:
            path = write_dashboard(results, args.out, history=history,
                                   mode=mode)
            print(f"dashboard written to {path}")
        if args.serve:
            serve_dashboard(render_dashboard(results, history=history,
                                             mode=mode), port=args.port)

    failures = 0
    if args.write_baseline:
        if partial or mode != "quick":
            print("--write-baseline needs a full-registry --quick run "
                  "(pinned values cover every claim)", file=sys.stderr)
            return 2
        figmod.write_baseline(record, baseline_path)
        print(f"baseline pinned to {baseline_path}")
    elif args.check_baseline:
        baseline = figmod.load_baseline(baseline_path)
        if baseline is None:
            print(f"no baseline at {baseline_path} (pin one with "
                  "--write-baseline)", file=sys.stderr)
            return 2
        if partial:
            # A subset run checks only the claims it ran.
            baseline = dict(baseline)
            baseline["claims"] = {
                fig_id: claim
                for fig_id, claim in baseline.get("claims", {}).items()
                if fig_id in record["claims"]}
        drifts = figmod.check_baseline(record, baseline)
        for drift in drifts:
            print(f"FIGURES DRIFT {drift}")
        if not drifts:
            print(f"all claims match the pinned baseline "
                  f"({baseline_path})")
        failures = len(drifts)

    diverged = figmod.summarize(results)[figmod.DIVERGED]
    if diverged:
        print(f"{diverged} claim(s) diverged from the paper",
              file=sys.stderr)
    return 1 if (failures or diverged) else 0


def cmd_report(args) -> int:
    def progress(title):
        print(f"... {title}", file=sys.stderr)

    if args.benchmark:
        text = _single_run_report(args, progress)
    else:
        text = build_report(scale=args.scale, only=args.only,
                            progress=progress)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


def _single_run_report(args, progress) -> str:
    """Render a one-run telemetry report (``report --benchmark X``).

    Runs bypass the engine/result cache: an obs run must actually
    execute to collect its telemetry payload, and caching obs payloads
    for ad-hoc report invocations would bloat the result cache.
    """
    from .harness import run_benchmark
    from .obs import render_run_report

    progress(f"{args.benchmark} [{args.mode}] scale={args.scale} "
             f"obs_level={args.obs_level}")
    result = run_benchmark(args.benchmark, args.mode, scale=args.scale,
                           seed=args.seed, obs_level=args.obs_level)
    baseline = None
    if args.mode != "baseline" and not args.no_baseline:
        progress(f"{args.benchmark} [baseline] scale={args.scale} "
                 "(comparison run)")
        baseline = run_benchmark(args.benchmark, "baseline",
                                 scale=args.scale, seed=args.seed)
    return render_run_report(
        result, baseline=baseline, fmt="html" if args.html else "md",
        provenance=_provenance(args.benchmark, args.mode, args.scale,
                               args.seed, obs_level=args.obs_level))


def _provenance(benchmark: str, mode: str, scale: float,
                seed: int, **config_overrides) -> dict:
    """Attribution block for rendered artifacts (reports, traces): the
    config fingerprint plus the code-version salt pin a snapshot to an
    exact simulated configuration and tree state."""
    from .harness import code_salt
    config = config_for_mode(mode, **config_overrides)
    return {
        "benchmark": benchmark,
        "mode": mode,
        "scale": scale,
        "seed": seed,
        "config": config.fingerprint(),
        "code": code_salt(),
    }


def cmd_trace(args) -> int:
    from .harness import run_benchmark
    from .obs import write_chrome_trace

    print(f"... {args.benchmark} [{args.mode}] scale={args.scale} "
          f"obs_level={args.obs_level}", file=sys.stderr)
    result = run_benchmark(args.benchmark, args.mode, scale=args.scale,
                           seed=args.seed, obs_level=args.obs_level)
    kwargs = {}
    if args.max_uop_slices is not None:
        kwargs["max_uop_slices"] = args.max_uop_slices
    trace = write_chrome_trace(
        result.obs, args.out,
        label=f"{args.benchmark}/{args.mode}",
        provenance=_provenance(args.benchmark, args.mode, args.scale,
                               args.seed, obs_level=args.obs_level),
        **kwargs)
    print(f"{len(trace['traceEvents'])} trace events written to "
          f"{args.out} (open in chrome://tracing or "
          f"https://ui.perfetto.dev)")
    return 0


def cmd_disasm(args) -> int:
    workload = load_workload(args.benchmark, 0.02)
    print(f"; {workload.name}: {workload.description}")
    print(workload.program.disassemble())
    return 0


def cmd_cache(args) -> int:
    from .harness import get_trace_store
    cache = ResultCache()
    store = get_trace_store()
    if args.action == "stats":
        stats = cache.stats()
        print(render_table(
            "result cache",
            ("property", "value"),
            [("directory", stats["root"]),
             ("entries", stats["entries"]),
             ("size", f"{stats['bytes'] / 1024:.1f} KiB")]))
        tstats = store.stats()
        print(render_table(
            "trace cache",
            ("property", "value"),
            [("directory", tstats["root"]),
             ("entries", tstats["entries"]),
             ("size", f"{tstats['bytes'] / 1024:.1f} KiB")]))
        return 0
    removed = cache.clear()
    print(f"removed {removed} cached result"
          f"{'s' if removed != 1 else ''} from {cache.root}")
    removed_traces = store.clear()
    print(f"removed {removed_traces} compiled trace"
          f"{'s' if removed_traces != 1 else ''} from {store.root}")
    return 0


def _build_service(args, faults=None):
    from .harness.engine import default_jobs, stderr_progress
    from .harness.service import SweepService

    workers = default_jobs() if args.jobs is None else args.jobs
    return SweepService(
        args.directory, workers=workers, batch_size=args.batch_size,
        heartbeat_timeout=args.heartbeat_timeout,
        max_attempts=args.max_attempts, faults=faults,
        use_cache=not args.no_cache, progress=stderr_progress)


def _finish_service(service) -> int:
    print(service.report.summary(), file=sys.stderr)
    print(f"recovery report: {service.paths.report}")
    failed = service.failed_keys()
    for key in failed:
        print(f"FAILED {key}: retry budget exhausted", file=sys.stderr)
    return 1 if failed else 0


def cmd_serve(args) -> int:
    from .harness.engine import default_jobs
    from .harness.faults import FaultSchedule

    faults = None
    if args.kills or args.stalls or args.drops or args.corrupt_journal:
        workers = default_jobs() if args.jobs is None else args.jobs
        faults = FaultSchedule.seeded(
            args.fault_seed, workers=workers, kills=args.kills,
            stalls=args.stalls, drops=args.drops,
            corrupt_journal=args.corrupt_journal)
        print(f"... injecting: {faults.describe()}", file=sys.stderr)
    service = _build_service(args, faults=faults)
    if args.once:
        service.drain()
    else:
        print(f"... serving {args.directory} "
              f"(^C to stop)", file=sys.stderr)
        service.serve_forever()
    return _finish_service(service)


def cmd_drain(args) -> int:
    service = _build_service(args)
    service.drain()
    return _finish_service(service)


def cmd_submit(args) -> int:
    from .harness.service import submit_to_inbox

    jobs = [Job(benchmark, mode, scale=args.scale, seed=args.seed + rep)
            for benchmark in args.benchmarks
            for mode in args.modes
            for rep in range(args.repeat_seeds)]
    keys = submit_to_inbox(args.directory, jobs)
    print(f"submitted {len(keys)} job(s) to {args.directory}/inbox")
    return 0


def cmd_status(args) -> int:
    from .harness.service import service_status

    status = service_status(args.directory)
    jobs = status["jobs"]
    print(render_table(
        f"sweep service: {status['directory']}",
        ("state", "jobs"),
        [(state, jobs.get(state, 0))
         for state in ("pending", "running", "done", "failed")]
        + [("inbox", status["inbox"])]))
    if status["workers"]:
        print(render_table(
            "workers (last written heartbeat)",
            ("worker", "beat", "jobs done", "current"),
            [(worker, hb.get("beat", "?"), hb.get("jobs_done", "?"),
              (hb.get("current") or "idle")[:16])
             for worker, hb in sorted(status["workers"].items())]))
    report = status["report"]
    if report:
        recovery = report.get("recovery", {})
        totals = report.get("jobs", {})
        print(f"last run: {totals.get('completed', 0)}/"
              f"{totals.get('submitted', 0)} jobs, "
              f"{recovery.get('worker_deaths', 0)} worker deaths, "
              f"{recovery.get('requeues', 0)} requeues, "
              f"{recovery.get('journal_replays', 0)} journal replays")
    return 0


def sweep_knob_names() -> List[str]:
    from .harness.sweep import KNOBS
    return list(KNOBS)


def _parse_sweep_value(text: str):
    """Sweep values arrive as strings; knobs want int or float."""
    try:
        return int(text)
    except ValueError:
        return float(text)


def cmd_sweep(args) -> int:
    from .harness.sweep import (
        KNOBS,
        QUICK_SCREEN_MODES,
        QUICK_SCREEN_NAMES,
        QUICK_SCREEN_SCALE,
        QUICK_SCREEN_SWEEPS,
        geomean_speedups,
        screened_sweep,
        sweep,
    )

    knob = KNOBS[args.knob]
    values = ([_parse_sweep_value(value) for value in args.values]
              if args.values else list(QUICK_SCREEN_SWEEPS[args.knob]))
    names = tuple(args.benchmarks or QUICK_SCREEN_NAMES)
    modes = tuple(args.modes or QUICK_SCREEN_MODES)
    scale = QUICK_SCREEN_SCALE if args.scale is None else args.scale

    if not args.screen:
        results = sweep(knob, values, names, modes=modes, scale=scale,
                        seed=args.seed)
        speedups = geomean_speedups(results)
        over = [mode for mode in modes if mode != "baseline"]
        rows = [(repr(value),
                 *(f"{speedups[value][mode]:.3f}x" for mode in over))
                for value in values]
        print(render_table(f"sweep: {args.knob} ({len(values)} values, "
                           f"geomean speedup over baseline)",
                           ("value", *over), rows))
        return 0

    report = screened_sweep(knob, values, names, modes=modes,
                            scale=scale, seed=args.seed,
                            top_k=args.top_k, epsilon=args.epsilon,
                            measure_recall=args.measure_recall)
    rows = []
    for value in sorted(values, key=lambda v: report.scores[v],
                        reverse=True):
        if value in report.results:
            from .harness.sweep import _sim_score
            status = "promoted"
            sim = f"{_sim_score(report.results[value]):.3f}"
        else:
            status, sim = "pruned", "—"
        rows.append((repr(value), f"{report.scores[value]:.3f}",
                     status, sim))
    print(render_table(
        f"screened sweep: {args.knob} ({len(report.promoted)}/"
        f"{len(values)} promoted)",
        ("value", "analytic IPC", "tier", "simulated IPC"), rows))
    print(f"best (simulated, promoted set): "
          f"{report.best_promoted()!r}")
    if report.recall is not None:
        print(f"recall: {report.recall:.1f} "
              f"(true best {report.true_best!r} "
              f"{'promoted' if report.recall == 1.0 else 'MISSED'})")
    if args.out:
        import json
        with open(args.out, "w") as handle:
            json.dump(report.to_dict(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        print(f"screening report written to {args.out}")
    return 0 if report.recall in (None, 1.0) else 1


def perf_default_report() -> str:
    from .harness.perfbench import DEFAULT_REPORT
    return DEFAULT_REPORT


def cmd_perf(args) -> int:
    import json

    from .harness.perfbench import (
        DEFAULT_TOLERANCE,
        compare_ratios,
        compare_timings,
        run_perfbench,
    )

    def progress(line: str) -> None:
        if not args.quiet:
            print(f"... {line}", file=sys.stderr)

    if args.profile:
        from .harness.perfbench import PROFILE_REPORT, run_profile
        output = args.output or PROFILE_REPORT
        report = run_profile(smoke=args.smoke, top=args.top,
                             progress=progress)
        with open(output, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        stage_rows = [(row["stage"], str(row["calls"]),
                       f"{row['tottime_s']:.3f} s",
                       f"{row['cumtime_s']:.3f} s")
                      for row in report["stages"]]
        print(render_table("cycle-loop stages (profiled warm sweep)",
                           ("stage", "calls", "tottime", "cumtime"),
                           stage_rows))
        hot_rows = [(row["where"], str(row["calls"]),
                     f"{row['tottime_s']:.3f} s")
                    for row in report["hotspots"]]
        print(render_table(f"top {len(hot_rows)} hotspots by tottime",
                           ("function", "calls", "tottime"), hot_rows))
        print(f"profile written to {output}")
        return 0

    output = args.output or perf_default_report()
    tolerance = DEFAULT_TOLERANCE if args.tolerance is None else args.tolerance

    previous = None
    try:
        with open(output) as handle:
            previous = json.load(handle)
    except (OSError, ValueError):
        previous = None

    report = run_perfbench(smoke=args.smoke, reps=args.reps,
                           progress=progress)
    with open(output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    timings = report["timings"]
    derived = report["derived"]
    rows = [(metric, f"{timings[metric]:.3f} s"
             if timings[metric] is not None else "n/a")
            for metric in sorted(timings)]
    rows += [(metric, f"{derived[metric]:.3f}x")
             for metric in sorted(derived)]
    print(render_table("perf micro-suite"
                       + (" (smoke)" if args.smoke else ""),
                       ("metric", "value"), rows))
    print(f"report written to {output}")

    failures = []
    if previous is not None:
        failures += [f"vs previous run: {line}"
                     for line in compare_timings(report, previous,
                                                 tolerance)]
    if args.baseline:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
        failures += [f"vs {args.baseline}: {line}"
                     for line in compare_ratios(report, baseline,
                                                tolerance)]
    for line in failures:
        print(f"PERF REGRESSION {line}")
    if not failures and (previous is not None or args.baseline):
        print("no regressions beyond the "
              f"{tolerance * 100:.0f}% tolerance band")
    return 1 if failures else 0


def cmd_verify(args) -> int:
    from .verify import MODES, VerificationError, run_fuzz_campaign

    modes = tuple(args.modes) if args.modes else MODES

    def progress(line: str) -> None:
        if not args.quiet:
            print(f"... {line}", file=sys.stderr)

    if args.bench:
        # Suite kernel under full verification: run_benchmark attaches
        # the oracle + checker via config.verify_level (bypassing the
        # engine/result cache — a verification run must actually run).
        from .harness import run_benchmark
        for mode in modes:
            config = config_for_mode(mode)
            config.verify_level = args.level
            progress(f"{args.bench} [{mode}] scale={args.scale} "
                     f"level={args.level}")
            try:
                result = run_benchmark(args.bench, mode,
                                       scale=args.scale, config=config)
            except VerificationError as err:
                print(err)
                return 1
            print(f"{args.bench} [{mode}]: ok — "
                  f"{result.counters['verify_retired_uops']} retired "
                  f"uops cross-checked, IPC {result.ipc:.3f}")
        return 0

    try:
        report = run_fuzz_campaign(args.fuzz, seed=args.seed, modes=modes,
                                   verify_level=args.level,
                                   fail_fast=args.fail_fast,
                                   progress=progress)
    except VerificationError as err:   # --fail-fast re-raises
        print(err)
        return 1
    print(report.summary())
    return 0 if report.passed else 1


#: Subcommands that simulate (and therefore configure/report the engine).
_SIMULATING = ("run", "compare", "figure", "figures", "report", "sweep")


def main(argv: Optional[List[str]] = None) -> int:
    raw = list(sys.argv[1:] if argv is None else argv)
    if raw and raw[0] == "lint":
        if "--docs" in raw[1:]:
            # The docs checker (links, CLI examples, module paths)
            # lives in the harness layer; see docs/analysis.md.
            from .harness.docscheck import main as docs_main
            rest = [arg for arg in raw[1:] if arg != "--docs"]
            return docs_main(rest)
        # simlint has its own option surface; hand it the rest verbatim.
        from .analysis import main as lint_main
        return lint_main(raw[1:])
    args = build_parser().parse_args(raw)
    if args.command in _SIMULATING:
        # Rebuild the default engine from the environment plus any
        # --jobs/--no-cache overrides; stats start at zero so the
        # summary below covers exactly this invocation.
        configure(jobs=args.jobs,
                  use_cache=False if args.no_cache else None)
    handlers = {
        "list": cmd_list,
        "run": cmd_run,
        "compare": cmd_compare,
        "figure": cmd_figure,
        "figures": cmd_figures,
        "disasm": cmd_disasm,
        "report": cmd_report,
        "trace": cmd_trace,
        "cache": cmd_cache,
        "sweep": cmd_sweep,
        "serve": cmd_serve,
        "drain": cmd_drain,
        "submit": cmd_submit,
        "status": cmd_status,
        "perf": cmd_perf,
        "verify": cmd_verify,
    }
    code = handlers[args.command](args)
    if args.command in _SIMULATING:
        # stderr, so stdout figure text stays byte-identical across
        # serial / parallel / warm-cache runs.
        print(get_engine().summary(), file=sys.stderr)
    return code


if __name__ == "__main__":
    sys.exit(main())
