"""The single event schema shared by every obs consumer.

Two event families flow out of a simulation:

* **Uop lifecycle events** — ``(cycle, kind, seq)`` tuples, the exact
  schema the pipelines' ``event_log`` has always used (the ASCII
  timeline, the Chrome-trace exporter, and the run report all consume
  the same stream now).  ``kind`` is a single character from
  :data:`EVENT_KINDS`.
* **Memory request events** — :class:`MemEvent` records with issue and
  completion cycles, the line address, the level that serviced the
  request, the traffic source, and whether the request merged with an
  in-flight miss.  These come from the
  :meth:`repro.memory.MemoryHierarchy` request paths and become async
  slices in the Chrome trace and the latency-attribution table in the
  run report.

Both families are plain tuples so they serialize to JSON losslessly and
cheaply (``SimResult.obs`` rides through the engine's result cache).
"""

from __future__ import annotations

from typing import (Dict, Iterable, List, NamedTuple, Optional, Sequence,
                    Tuple)

#: Uop lifecycle event characters -> meaning.  Uppercase is the regular
#: stream; lowercase marks the CDF critical stream.
EVENT_KINDS: Dict[str, str] = {
    "F": "fetch",
    "D": "dispatch/rename",
    "I": "issue",
    "C": "complete",
    "R": "retire",
    "f": "critical fetch (CDF uop cache)",
    "d": "critical rename (CDF)",
    "p": "rename replay (CDF re-sync)",
}

#: One uop lifecycle event: (cycle, kind, seq).
UopEvent = Tuple[int, str, int]


class MemEvent(NamedTuple):
    """One memory request, from issue to data arrival."""

    issue: int          # cycle the request entered the hierarchy
    completion: int     # cycle the data arrives
    line: int           # 64B line address
    level: str          # 'l1' | 'llc' | 'dram'
    source: str         # 'demand' | 'prefetch' | 'runahead' | 'ifetch'
    merged: bool        # satisfied by an in-flight miss (MSHR merge)

    @property
    def latency(self) -> int:
        return self.completion - self.issue


def group_uop_events(events: Iterable[UopEvent], first_seq: int,
                     last_seq: int) -> Dict[int, List[Tuple[int, str]]]:
    """Group lifecycle events by seq within ``[first_seq, last_seq]``.

    This is the grouping primitive the ASCII timeline and the
    Chrome-trace uop track share.
    """
    per_seq: Dict[int, List[Tuple[int, str]]] = {}
    for cycle, kind, seq in events:
        if first_seq <= seq <= last_seq:
            per_seq.setdefault(seq, []).append((cycle, kind))
    return per_seq


def uop_lifetimes(events: Iterable[UopEvent],
                  first_seq: int = 0,
                  last_seq: Optional[int] = None,
                  ) -> Dict[int, Dict[str, int]]:
    """Collapse lifecycle events into per-uop stage timestamps.

    Returns ``{seq: {"F": cycle, "D": cycle, ...}}`` keeping the first
    occurrence of each kind (a replayed uop keeps its original fetch).
    """
    if last_seq is None:
        last_seq = 1 << 62
    lifetimes: Dict[int, Dict[str, int]] = {}
    for cycle, kind, seq in events:
        if not first_seq <= seq <= last_seq:
            continue
        stages = lifetimes.setdefault(seq, {})
        if kind not in stages:
            stages[kind] = cycle
    return lifetimes


def mem_events_from_rows(rows: Iterable[Sequence]) -> List[MemEvent]:
    """Rebuild :class:`MemEvent` records from their JSON list form."""
    return [MemEvent(int(r[0]), int(r[1]), int(r[2]), str(r[3]),
                     str(r[4]), bool(r[5])) for r in rows]
