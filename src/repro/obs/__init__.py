"""Observability layer: cycle-level telemetry behind ``SimConfig.obs_level``.

``repro.obs`` mirrors the ``verify_level`` contract (docs/verification.md):

* **level 0** (default): off.  The package is never imported, pipelines
  carry a single ``observer is None`` comparison per hook site, and
  results are bit-identical to a build without the subsystem (pinned by
  ``tests/memory/test_hierarchy_fingerprints.py`` and the trace-smoke CI
  job).
* **level 1**: sampled counter time-series and structure-occupancy
  gauges (ROB/RS/LQ/SQ, frontend queue, MSHR fill, in-flight DRAM, CDF
  partition boundary and fetch-ahead distance, PRE runahead state) every
  ``SimConfig.obs_sample_interval`` cycles, plus aggregate per-request
  memory-latency attribution.
* **level 2**: level 1 plus full per-uop lifecycle events (the
  ``event_log`` schema: ``(cycle, kind_char, seq)``) and individual
  memory-request records (issue -> completion, serviced level, merge
  chains).

The collected payload rides ``SimResult.obs`` through the harness (and
therefore through the engine's persistent result cache), and feeds three
consumers: the Chrome-trace exporter (:func:`export_chrome_trace`,
``repro-sim trace``), the run-report renderer
(:func:`render_run_report`, ``repro-sim report --benchmark``), and the
ASCII timeline (:mod:`repro.harness.timeline`), which all share the one
event schema defined in :mod:`repro.obs.events`.

See docs/observability.md for the guide.
"""

from .chrometrace import (
    export_chrome_trace,
    export_gauge_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from .collector import ObsCollector
from .events import (
    EVENT_KINDS,
    MemEvent,
    UopEvent,
    group_uop_events,
    uop_lifetimes,
)
from .runreport import render_run_report

__all__ = [
    "EVENT_KINDS",
    "MemEvent",
    "ObsCollector",
    "UopEvent",
    "export_chrome_trace",
    "export_gauge_trace",
    "group_uop_events",
    "render_run_report",
    "uop_lifetimes",
    "validate_chrome_trace",
    "write_chrome_trace",
]
