"""The ObsCollector: binds to a pipeline and records telemetry.

Attachment mirrors :class:`repro.verify.PipelineVerifier`: the harness
constructs a collector when ``SimConfig.obs_level > 0`` and calls
``pipeline.attach_observer(collector)``, which invokes :meth:`bind`.
Binding wires three existing hook surfaces — no new per-uop hook sites
exist in the pipelines:

* the run loop's ``observer.on_cycle_end(cycle)`` call (one ``is not
  None`` comparison per simulated cycle at level 0);
* the pipelines' ``event_log`` (level 2 points it at the collector's
  uop-event list, reusing the timeline's plumbing verbatim);
* ``MemoryHierarchy.obs`` (every request path reports issue/completion/
  level/source/merge through :meth:`on_mem_request`).

Determinism: the collector only *reads* pipeline state.  Gauge sampling
is driven by the simulated cycle (``cycle // interval`` buckets), so the
sample grid is identical across hosts and processes; all payload dicts
are built with sorted, static keys.  The one deliberate exception to
"only reads" is installing ``event_log`` at level 2 — the event log was
always observational (stage code appends to it but never reads it), so
results other than the obs payload itself stay bit-identical.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .events import MemEvent, UopEvent

#: Default cap on individually-recorded memory events (level 2); beyond
#: this the collector keeps aggregating but stops recording rows.
DEFAULT_MAX_MEM_EVENTS = 200_000
#: Default cap on recorded uop lifecycle events (level 2).
DEFAULT_MAX_UOP_EVENTS = 1_000_000


class _BoundedEventLog(list):
    """A list that silently stops growing past *cap* (counts drops).

    The pipelines append lifecycle tuples unconditionally once
    ``event_log`` is set; at production trace lengths an unbounded list
    would dominate memory.  Dropped counts are reported in the payload
    so truncation is never silent in the output.
    """

    def __init__(self, cap: int) -> None:
        super().__init__()
        self.cap = cap
        self.dropped = 0

    def append(self, item) -> None:  # type: ignore[override]
        if len(self) < self.cap:
            super().append(item)
        else:
            self.dropped += 1


class ObsCollector:
    """Collects telemetry from one pipeline run at ``obs_level >= 1``."""

    def __init__(self, level: int, sample_interval: int = 128,
                 max_mem_events: int = DEFAULT_MAX_MEM_EVENTS,
                 max_uop_events: int = DEFAULT_MAX_UOP_EVENTS) -> None:
        if level < 1:
            raise ValueError("ObsCollector requires obs_level >= 1; "
                             "level 0 must not construct a collector")
        self.level = level
        self.interval = max(1, sample_interval)
        self.max_mem_events = max_mem_events
        self.max_uop_events = max_uop_events
        self.pipeline = None
        # Gauge time-series: columnar dict-of-lists with a stable schema
        # fixed at the first sample (pipeline.obs_gauges() keys).
        self.samples: Dict[str, List[int]] = {}
        self._sample_columns: Optional[List[str]] = None
        self._next_sample_bucket = 0
        # Memory-latency attribution, always aggregated at level >= 1:
        # "level/source" -> [requests, total_latency, merges].
        self.mem_totals: Dict[str, List[int]] = {}
        # Individual records, level 2 only.
        self.mem_events: List[MemEvent] = []
        self.dropped_mem_events = 0
        self.uop_events: Optional[_BoundedEventLog] = None

    # ------------------------------------------------------------- binding
    def bind(self, pipeline) -> "ObsCollector":
        """Wire this collector into *pipeline*; returns self."""
        self.pipeline = pipeline
        pipeline.mem.obs = self
        if self.level >= 2:
            log = _BoundedEventLog(self.max_uop_events)
            if pipeline.event_log:
                log.extend(pipeline.event_log)
            pipeline.event_log = log
            self.uop_events = log
        return self

    # ------------------------------------------------------------- hooks
    def on_cycle_end(self, cycle: int) -> None:
        """Called by the run loop every simulated cycle.

        Sampling buckets are ``cycle // interval`` so that idle-skip
        jumps in the cycle loop cannot shift the grid: the first cycle
        simulated at-or-after each bucket boundary produces the sample.
        """
        bucket = cycle // self.interval
        if bucket >= self._next_sample_bucket:
            self._next_sample_bucket = bucket + 1
            self._sample(cycle)

    def _sample(self, cycle: int) -> None:
        gauges = self.pipeline.obs_gauges(cycle)
        columns = self._sample_columns
        if columns is None:
            columns = sorted(gauges)
            self._sample_columns = columns
            self.samples = {name: [] for name in columns}
        samples = self.samples
        for name in columns:
            samples[name].append(gauges[name])

    def on_mem_request(self, issue: int, completion: int, line: int,
                       level: str, source: str, merged: bool) -> None:
        """Request-level latency attribution from the memory hierarchy."""
        key = level + "/" + source
        totals = self.mem_totals.get(key)
        if totals is None:
            totals = [0, 0, 0]
            self.mem_totals[key] = totals
        totals[0] += 1
        totals[1] += completion - issue
        totals[2] += merged
        if self.level >= 2:
            if len(self.mem_events) < self.max_mem_events:
                self.mem_events.append(
                    MemEvent(issue, completion, line, level, source,
                             bool(merged)))
            else:
                self.dropped_mem_events += 1

    def on_run_end(self, cycle: int) -> None:
        """Final sample at the last simulated cycle, plus obs counters."""
        self._sample(cycle)
        counters = self.pipeline.counters
        counters["obs_samples"] = self._sample_count()
        counters["obs_mem_events"] = sum(
            t[0] for t in self.mem_totals.values())
        counters["obs_uop_events"] = (
            len(self.uop_events) + self.uop_events.dropped
            if self.uop_events is not None else 0)

    # ------------------------------------------------------------- payload
    def _sample_count(self) -> int:
        if not self.samples:
            return 0
        return len(next(iter(self.samples.values())))

    def payload(self) -> dict:
        """The JSON-able obs payload stored on ``SimResult.obs``."""
        data: dict = {
            "level": self.level,
            "sample_interval": self.interval,
            "samples": {name: list(values)
                        for name, values in sorted(self.samples.items())},
            "mem_latency": {key: {"requests": t[0],
                                  "total_latency": t[1],
                                  "merges": t[2]}
                            for key, t in sorted(self.mem_totals.items())},
        }
        if self.level >= 2:
            data["mem_events"] = [list(e) for e in self.mem_events]
            data["dropped_mem_events"] = self.dropped_mem_events
            log = self.uop_events
            data["uop_events"] = [list(e) for e in log] if log else []
            data["dropped_uop_events"] = log.dropped if log else 0
        return data
