"""Self-contained run reports (markdown or HTML) from an obs payload.

``repro-sim report --benchmark X --mode cdf`` renders one simulation's
telemetry as a document a human can read without any tooling:

* headline metrics (IPC, MLP, cycles, DRAM traffic, energy);
* unicode sparklines of the sampled time-series (IPC per interval,
  ROB/RS occupancy, in-flight DRAM, CDF partition boundary and
  fetch-ahead distance) — the "when does CDF pull misses forward"
  view the end-of-run scalars cannot show;
* the dispatch-stall anatomy table (``dispatch_stall_*_cycles``);
* memory-request latency attribution by level/source (from the obs
  aggregates);
* with ``--baseline``: a CDF-vs-baseline comparison block including a
  fetch-ahead histogram.

Everything is plain text/markdown; the HTML form wraps the same content
so the file is self-contained (no external assets).
"""

from __future__ import annotations

import html as _html
from typing import Dict, List, Optional, Sequence

SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Render *values* as a unicode sparkline of at most *width* chars."""
    values = list(values)
    if not values:
        return "(no samples)"
    if len(values) > width:
        # Average into *width* buckets (deterministic integer split).
        bucketed = []
        n = len(values)
        for b in range(width):
            lo = b * n // width
            hi = max(lo + 1, (b + 1) * n // width)
            chunk = values[lo:hi]
            bucketed.append(sum(chunk) / len(chunk))
        values = bucketed
    low = min(values)
    high = max(values)
    span = high - low
    if span == 0:
        return SPARK_CHARS[0] * len(values)
    chars = []
    top = len(SPARK_CHARS) - 1
    for value in values:
        index = int((value - low) / span * top + 0.5)
        chars.append(SPARK_CHARS[index])
    return "".join(chars)


def histogram(values: Sequence[float], bins: int = 10,
              bar_width: int = 40) -> List[str]:
    """ASCII histogram lines for *values*."""
    values = list(values)
    if not values:
        return ["(no samples)"]
    low = min(values)
    high = max(values)
    if high == low:
        high = low + 1
    counts = [0] * bins
    span = high - low
    for value in values:
        index = min(bins - 1, int((value - low) / span * bins))
        counts[index] += 1
    peak = max(counts)
    lines = []
    for b, count in enumerate(counts):
        lo = low + span * b / bins
        hi = low + span * (b + 1) / bins
        bar = "#" * (count * bar_width // peak if peak else 0)
        lines.append(f"  [{lo:8.1f}, {hi:8.1f})  {count:>7d} {bar}")
    return lines


def _ipc_series(samples: Dict[str, List[int]]) -> List[float]:
    """Per-interval IPC derived from the cumulative 'retired' gauge."""
    retired = samples.get("retired", [])
    cycles = samples.get("cycle", [])
    series: List[float] = []
    for i in range(1, len(retired)):
        dc = cycles[i] - cycles[i - 1]
        series.append((retired[i] - retired[i - 1]) / dc if dc else 0.0)
    return series


#: Gauges worth a sparkline row, in display order, with labels.
_SPARK_GAUGES = [
    ("rob", "ROB occupancy"),
    ("rob_crit", "ROB critical section"),
    ("crit_partition", "CDF partition boundary"),
    ("fetch_ahead", "fetch-ahead distance"),
    ("rs", "RS occupancy"),
    ("lq", "LQ occupancy"),
    ("sq", "SQ occupancy"),
    ("frontend", "frontend queue"),
    ("l1d_mshr", "L1D MSHRs in flight"),
    ("llc_mshr", "in-flight DRAM (LLC MSHRs)"),
    ("runahead", "runahead active"),
]


def render_run_report(result, baseline=None, fmt: str = "md",
                      provenance: Optional[Dict] = None) -> str:
    """Render *result* (a ``SimResult`` with ``.obs``) as md or html.

    ``provenance`` (config fingerprint, code-version salt, run
    parameters) is appended as a footer so a saved report is
    attributable to the exact configuration and tree that produced it.
    """
    if fmt not in ("md", "html"):
        raise ValueError(f"unknown report format: {fmt!r}")
    obs = result.obs or {}
    samples = obs.get("samples", {})
    lines: List[str] = []
    out = lines.append

    out(f"# Run report: {result.benchmark} / {result.mode}")
    out("")
    out(f"- **cycles**: {result.cycles:,}")
    out(f"- **retired uops**: {result.retired_uops:,}")
    out(f"- **IPC**: {result.ipc:.3f}")
    out(f"- **MLP**: {result.mlp:.2f}")
    out(f"- **DRAM traffic**: {result.total_traffic:,} lines")
    if result.energy_nj:
        out(f"- **energy**: {result.energy_nj:,.0f} nJ")
    if baseline is not None:
        out(f"- **speedup over baseline**: "
            f"{result.speedup_over(baseline):.3f}x  "
            f"(baseline IPC {baseline.ipc:.3f})")
        out(f"- **traffic ratio**: {result.traffic_ratio(baseline):.3f}x, "
            f"MLP ratio: {result.mlp_ratio(baseline):.3f}x")
    out("")

    if samples:
        interval = obs.get("sample_interval", "?")
        out(f"## Time series ({len(samples.get('cycle', []))} samples, "
            f"every {interval} cycles)")
        out("")
        out("```")
        ipc = _ipc_series(samples)
        if ipc:
            out(f"{'IPC per interval':<28}{sparkline(ipc)}  "
                f"min={min(ipc):.2f} max={max(ipc):.2f}")
        for key, label in _SPARK_GAUGES:
            series = samples.get(key)
            if not series:
                continue
            out(f"{label:<28}{sparkline(series)}  "
                f"min={min(series)} max={max(series)}")
        out("```")
        out("")
    else:
        out("_No sampled time-series (run with `obs_level >= 1`)._")
        out("")

    # ---------------------------------------------------- stall anatomy
    stall_rows = sorted(
        (key, value) for key, value in result.counters.items()
        if key.startswith("dispatch_stall_") and key.endswith("_cycles"))
    out("## Stall anatomy")
    out("")
    if stall_rows:
        total = result.cycles or 1
        out("| resource | stall cycles | % of cycles |")
        out("|---|---:|---:|")
        for key, value in stall_rows:
            resource = key[len("dispatch_stall_"):-len("_cycles")]
            out(f"| {resource} | {value:,} | {100.0 * value / total:.1f}% |")
    else:
        out("_No dispatch stalls recorded._")
    out("")

    # ------------------------------------------------ latency attribution
    mem_latency = obs.get("mem_latency", {})
    out("## Memory-request latency attribution")
    out("")
    if mem_latency:
        out("| level/source | requests | merged | mean latency (cycles) |")
        out("|---|---:|---:|---:|")
        for key in sorted(mem_latency):
            row = mem_latency[key]
            requests = row.get("requests", 0)
            mean = (row.get("total_latency", 0) / requests
                    if requests else 0.0)
            out(f"| {key} | {requests:,} | {row.get('merges', 0):,} "
                f"| {mean:.1f} |")
    else:
        out("_No memory-request aggregates (run with `obs_level >= 1`)._")
    out("")

    # ---------------------------------------------- fetch-ahead histogram
    fetch_ahead = samples.get("fetch_ahead")
    if fetch_ahead:
        out("## Fetch-ahead distance (critical stream vs regular fetch)")
        out("")
        out("How far ahead of the in-order fetch pointer the CDF critical")
        out("stream runs, in trace uops, sampled over time:")
        out("")
        out("```")
        for line in histogram(fetch_ahead):
            out(line)
        out("```")
        base_samples = (baseline.obs or {}).get("samples", {}) \
            if baseline is not None else {}
        if baseline is not None and not base_samples.get("fetch_ahead"):
            out("")
            out("_Baseline has no critical stream (fetch-ahead is "
                "identically 0)._")
        out("")

    if provenance:
        out("---")
        out("")
        bits = [f"{key} `{provenance[key]}`"
                for key in ("config", "code") if key in provenance]
        run = " ".join(str(provenance[key])
                       for key in ("benchmark", "mode", "scale", "seed")
                       if key in provenance)
        out(f"_Provenance: {run} — " + ", ".join(bits) + "._")
        out("")

    if fmt == "html":
        body = _html.escape("\n".join(lines))
        return ("<!DOCTYPE html><html><head><meta charset=\"utf-8\">"
                f"<title>{_html.escape(result.benchmark)} "
                f"{_html.escape(result.mode)} run report</title>"
                "<style>body{font-family:monospace;white-space:pre-wrap;"
                "max-width:100ch;margin:2em auto;}</style></head>"
                f"<body>{body}</body></html>")
    return "\n".join(lines)
