"""Chrome-trace (Perfetto-loadable) JSON export of an obs payload.

Produces the JSON Object Format of the Trace Event specification — a
top-level object with a ``traceEvents`` list — which both
``chrome://tracing`` and https://ui.perfetto.dev load directly:

* one **counter track** (``"ph": "C"``) per occupancy gauge (ROB, RS,
  LQ/SQ, MSHR fill, CDF partition boundary, fetch-ahead distance, ...),
  emitted from the level-1 sampled time-series;
* **async slices** (``"ph": "b"`` / ``"ph": "e"``) for individual memory
  requests (level 2), one timeline row per traffic class, so overlapping
  DRAM requests — the MLP the paper is about — render as stacked
  in-flight spans; merged requests carry ``"merged": true`` args;
* **complete slices** (``"ph": "X"``) for the first uop lifecycles
  (level 2, capped), dispatch -> retire, with per-stage timestamps in
  ``args``.

Timestamps: the trace clock is *cycles* reported in the spec's
microsecond field (1 cycle == 1 us), which keeps Perfetto's zooming and
duration labels readable; a clock note is stored in ``otherData``.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .events import mem_events_from_rows, uop_lifetimes

#: Cap on uop lifecycle slices in the trace (browsers choke far earlier
#: than the collector's event cap).
DEFAULT_MAX_UOP_SLICES = 5_000

_PID = 1


def _meta(name: str, tid: int, track: str) -> dict:
    return {"ph": "M", "name": "thread_name", "pid": _PID, "tid": tid,
            "args": {"name": track}}


def export_chrome_trace(obs: dict, label: str = "repro-sim",
                        max_uop_slices: int = DEFAULT_MAX_UOP_SLICES,
                        provenance: Optional[dict] = None) -> dict:
    """Convert an ``SimResult.obs`` payload into a Chrome-trace object.

    ``provenance`` (config fingerprint, code-version salt, run
    parameters) is stored under ``otherData`` so a saved trace is
    attributable to the exact configuration and tree that produced it.
    """
    events: List[dict] = [
        {"ph": "M", "name": "process_name", "pid": _PID, "tid": 0,
         "args": {"name": label}},
    ]
    # ---------------------------------------------------- counter tracks
    samples: Dict[str, List[int]] = obs.get("samples", {})
    interval = int(obs.get("sample_interval", 1))
    cycles = samples.get("cycle", [])
    for name in sorted(samples):
        if name == "cycle":
            continue
        series = samples[name]
        for cycle, value in zip(cycles, series):
            events.append({"ph": "C", "name": name, "pid": _PID,
                           "ts": cycle, "args": {name: value}})
    # ---------------------------------------------------- memory slices
    tids: Dict[str, int] = {}
    next_tid = 2
    for index, event in enumerate(
            mem_events_from_rows(obs.get("mem_events", []))):
        track = f"mem {event.level}/{event.source}"
        tid = tids.get(track)
        if tid is None:
            tid = next_tid
            next_tid += 1
            tids[track] = tid
            events.append(_meta(track, tid, track))
        ident = f"mem{index}"
        args = {"line": event.line, "latency": event.latency,
                "merged": event.merged}
        name = event.level + "/" + event.source
        events.append({"ph": "b", "cat": "mem", "id": ident, "name": name,
                       "pid": _PID, "tid": tid, "ts": event.issue,
                       "args": args})
        events.append({"ph": "e", "cat": "mem", "id": ident, "name": name,
                       "pid": _PID, "tid": tid,
                       "ts": max(event.completion, event.issue)})
    # ---------------------------------------------------- uop lifecycles
    uop_events = obs.get("uop_events", [])
    if uop_events:
        tid = 1
        events.append(_meta("uops", tid, "uops (dispatch->retire)"))
        lifetimes = uop_lifetimes(uop_events)
        emitted = 0
        for seq in sorted(lifetimes):
            stages = lifetimes[seq]
            start = stages.get("D", stages.get("F"))
            end = stages.get("R", stages.get("C"))
            if start is None or end is None:
                continue
            events.append({"ph": "X", "cat": "uop", "name": f"uop {seq}",
                           "pid": _PID, "tid": tid, "ts": start,
                           "dur": max(1, end - start),
                           "args": {k: v for k, v in sorted(stages.items())}})
            emitted += 1
            if emitted >= max_uop_slices:
                break
    other = {
        "clock": "1 trace us == 1 core cycle",
        "label": label,
        "obs_level": obs.get("level"),
        "sample_interval": interval,
    }
    if provenance:
        other["provenance"] = dict(provenance)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def validate_chrome_trace(trace: dict) -> List[str]:
    """Schema-check a Chrome-trace object; returns a list of problems.

    An empty list means the object satisfies the subset of the Trace
    Event Format that Perfetto requires to load it: a ``traceEvents``
    list whose entries carry a valid ``ph``, string ``name``, integer
    ``pid``/``tid`` where applicable, numeric ``ts`` for timed events,
    and matched begin/end pairs per async id.
    """
    problems: List[str] = []
    if not isinstance(trace, dict):
        return ["top level is not an object"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    open_async: Dict[str, int] = {}
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in ("B", "E", "X", "I", "C", "M", "b", "e", "n", "s",
                      "t", "f"):
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: missing/non-string name")
        if ph != "M":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)):
                problems.append(f"{where}: missing/non-numeric ts")
        if ph == "X" and not isinstance(event.get("dur"), (int, float)):
            problems.append(f"{where}: X event without numeric dur")
        if ph in ("b", "e"):
            if "id" not in event or "cat" not in event:
                problems.append(f"{where}: async event without id/cat")
            else:
                key = f"{event['cat']}:{event['id']}"
                if ph == "b":
                    open_async[key] = open_async.get(key, 0) + 1
                else:
                    count = open_async.get(key, 0)
                    if count <= 0:
                        problems.append(
                            f"{where}: 'e' with no matching 'b' ({key})")
                    else:
                        open_async[key] = count - 1
    for key, count in sorted(open_async.items()):
        if count:
            problems.append(f"unclosed async slice {key} (depth {count})")
    return problems


def write_chrome_trace(obs: dict, path: str, label: str = "repro-sim",
                       max_uop_slices: int = DEFAULT_MAX_UOP_SLICES,
                       provenance: Optional[dict] = None) -> dict:
    """Export, validate, and write a trace; returns the trace object."""
    trace = export_chrome_trace(obs, label=label,
                                max_uop_slices=max_uop_slices,
                                provenance=provenance)
    problems = validate_chrome_trace(trace)
    if problems:
        raise ValueError("generated trace failed self-validation: "
                         + "; ".join(problems[:5]))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, separators=(",", ":"))
    return trace


def export_gauge_trace(samples: List[dict], tick_key: str = "tick",
                       label: str = "repro-sim",
                       otherData: Optional[dict] = None) -> dict:
    """Counter-track-only Chrome trace from generic gauge samples.

    ``samples`` is a list of flat dicts each carrying a ``tick_key``
    timestamp plus numeric gauge values — exactly the shape of the
    sweep service's queue-depth samples in ``recovery_report.json``
    (pending/running/done/workers_alive per service tick), but any
    sampled time-series works. Complements :func:`export_chrome_trace`,
    which is bound to the richer ``SimResult.obs`` payload schema.
    """
    events: List[dict] = [
        {"ph": "M", "name": "process_name", "pid": _PID, "tid": 0,
         "args": {"name": label}},
    ]
    for sample in samples:
        ts = sample.get(tick_key, 0)
        for name in sorted(sample):
            if name == tick_key:
                continue
            value = sample[name]
            if isinstance(value, (int, float)):
                events.append({"ph": "C", "name": name, "pid": _PID,
                               "ts": ts, "args": {name: value}})
    trace = {"traceEvents": events,
             "displayTimeUnit": "ms",
             "otherData": dict(otherData or {})}
    trace["otherData"].setdefault("clock", f"1 {tick_key} == 1 us")
    return trace
