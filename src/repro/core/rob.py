"""Reorder-buffer entry and state machine.

Entries move WAITING -> READY -> ISSUED -> COMPLETE and retire in program
order. ``waiters`` implements the RS wakeup network: consumers register on
their producers and are woken (pending decremented) at writeback.
"""

from __future__ import annotations

from typing import List, Optional

from ..isa.dynuop import DynUop

# Entry states.
WAITING = 0    # operands outstanding
READY = 1      # all operands available, eligible for issue
ISSUED = 2     # executing
COMPLETE = 3   # result written back


class RobEntry:
    """One in-flight uop with its scheduling state."""

    __slots__ = ("uop", "seq", "state", "pending", "waiters",
                 "complete_cycle", "issue_cycle", "critical", "forwarded",
                 "llc_miss", "mispredicted", "flushed", "poisoned")

    def __init__(self, uop: DynUop, critical: bool = False) -> None:
        self.uop = uop
        self.seq = uop.seq
        self.state = WAITING
        self.pending = 0
        self.waiters: Optional[List["RobEntry"]] = None
        self.complete_cycle = -1
        self.issue_cycle = -1
        self.critical = critical
        self.forwarded = False       # load satisfied by store forwarding
        self.llc_miss = False        # load went to DRAM (trains the CCT)
        self.mispredicted = False    # branch the frontend got wrong
        self.flushed = False         # squashed (CDF dependence violation)
        self.poisoned = False        # executed with a stale input (CDF)

    def add_waiter(self, entry: "RobEntry") -> None:
        if self.waiters is None:
            self.waiters = []
        self.waiters.append(entry)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = {WAITING: "WAIT", READY: "RDY", ISSUED: "EXE",
                 COMPLETE: "DONE"}
        return f"<RobEntry #{self.seq} {names[self.state]}>"
