"""Out-of-order core timing models."""

from .pipeline import BaselinePipeline, UOPS_PER_ICACHE_LINE
from .rob import COMPLETE, ISSUED, READY, WAITING, RobEntry

__all__ = [
    "BaselinePipeline",
    "UOPS_PER_ICACHE_LINE",
    "RobEntry",
    "WAITING",
    "READY",
    "ISSUED",
    "COMPLETE",
]
