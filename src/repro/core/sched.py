"""Event-driven cycle scheduling support (the unified wakeup set).

The run loop in :mod:`repro.core.pipeline` is event-driven: between
ticks it computes the earliest cycle at which *any* wakeup source could
make work appear and jumps the clock there in O(1), regardless of span
length.  The candidate set is:

* **completion events** — the top of the completion-event heap
  (``pipeline.events``), where every issued uop's writeback is
  scheduled;
* **MSHR expiries** — the earliest in-flight miss fill at either MSHR
  level, consulted while rejected loads are waiting to retry;
* **frontend-queue head readiness** — the decode-latency timestamp of
  the oldest fetched uop, consulted while dispatch is unblocked;
* **fetch resume** — redirect penalties and BTB bubbles park fetch
  until ``fetch_resume_cycle``, consulted while fetch has trace left
  and frontend-queue room;
* **the wakeup heap** (``pipeline.wakeups``) — unconditional timers
  pushed by :meth:`~repro.core.pipeline.BaselinePipeline._schedule_wakeup`;
* **subclass candidates** — whatever
  :meth:`~repro.core.pipeline.BaselinePipeline.next_wakeups` yields.

The first four sources are *validity-gated*: their timers only matter
while the gating machine state holds (a parked fetch timer is dead once
fetch blocks on a mispredicted branch), so they are consulted as gated
scalars rather than parked in the heap — an entry that outlived its gate
would wake the machine on a cycle the gated computation provably skips,
and the tick set is observable state (occupancy gauges are sampled per
ticked cycle, CDF partition decay steps once per dispatch invocation).
The heap and the ``next_wakeups()`` hook carry everything else; the
contract for subclasses is documented in docs/architecture.md.

Scheduler telemetry lives in :class:`SchedulerStats` — a plain-slots
accumulator, *deliberately not* the pipeline's ``Counters`` bag: every
``counters`` key feeds ``SimResult.fingerprint()``, and scheduler
activity (how many stages were skipped, how many wakeups coalesced)
describes the engine, not the machine.  The stats materialise into a
registry-validated ``Counters`` via :meth:`SchedulerStats.to_counters`
for reports and tests.
"""

from __future__ import annotations

from ..stats import Counters

__all__ = ["SCHED_COUNTER_KEYS", "SchedulerStats"]

#: Counter keys the scheduler telemetry materialises (all declared in
#: ``repro.stats.registry``).
SCHED_COUNTER_KEYS = (
    "sched_events_scheduled",
    "sched_wakeups_scheduled",
    "sched_wakeups_coalesced",
    "sched_stage_skips",
    "sched_idle_jumps",
    "sched_subclass_wakeups",
)


class SchedulerStats:
    """Engine-side telemetry for the event-driven run loop.

    Kept separate from the simulated machine's counters so that the
    fingerprint contract (every ``Counters`` key is part of
    ``SimResult``) is untouched by engine bookkeeping.
    """

    __slots__ = ("events_scheduled", "wakeups_scheduled",
                 "wakeups_coalesced", "stage_skips", "idle_jumps",
                 "subclass_wakeups")

    def __init__(self) -> None:
        #: completion events pushed into the completion-event heap
        self.events_scheduled = 0
        #: timers pushed into the unified wakeup heap
        self.wakeups_scheduled = 0
        #: same-cycle completions broadcast in one writeback invocation
        #: beyond the first (N events due the same cycle coalesce into
        #: one wakeup broadcast, counted as N-1 coalesced)
        self.wakeups_coalesced = 0
        #: stage invocations skipped because the stage provably had no
        #: work this cycle
        self.stage_skips = 0
        #: idle spans jumped in O(1) (each jump covers >= 1 cycle,
        #: accounted in the machine's ``idle_skipped_cycles``)
        self.idle_jumps = 0
        #: wakeup candidates contributed by ``next_wakeups()`` overrides
        self.subclass_wakeups = 0

    def to_counters(self) -> Counters:
        """Materialise the telemetry as registry-validated counters."""
        counters = Counters()
        counters.bump("sched_events_scheduled", self.events_scheduled)
        counters.bump("sched_wakeups_scheduled", self.wakeups_scheduled)
        counters.bump("sched_wakeups_coalesced", self.wakeups_coalesced)
        counters.bump("sched_stage_skips", self.stage_skips)
        counters.bump("sched_idle_jumps", self.idle_jumps)
        counters.bump("sched_subclass_wakeups", self.subclass_wakeups)
        return counters
