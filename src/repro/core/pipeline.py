"""Cycle-level baseline out-of-order pipeline.

Trace-driven replay of the functional uop stream under the structural
constraints of Table 1: fetch (branch predictor / BTB / RAS, taken-branch
fetch breaks, misprediction fetch gating), a decode pipeline, rename with
PRF accounting, ROB / RS / LQ / SQ occupancy, wakeup-select issue with load
and store ports, memory access through the cache hierarchy + stream
prefetcher + DRAM, store-to-load forwarding, and in-order retirement.

The stage methods are deliberately small and overridable: the CDF and PRE
pipelines subclass this model and replace/extend fetch, dispatch, and
retire behaviour.
"""

from __future__ import annotations

import bisect
import heapq
from collections import deque
from typing import Dict, List, Optional, Sequence

from ..config import SimConfig
from ..frontend import BranchUnit
from ..isa.dynuop import DynUop
from ..isa.ports import UOPS_PER_ICACHE_LINE
from ..memory import MemoryHierarchy
from ..stats import Counters, MLPTracker, RobStallProfiler, SimResult
from .rob import COMPLETE, ISSUED, READY, WAITING, RobEntry
from .sched import SchedulerStats

__all__ = ["BaselinePipeline", "UOPS_PER_ICACHE_LINE"]


class BaselinePipeline:
    """The paper's baseline: aggressive OoO core with stream prefetching."""

    def __init__(self, trace: Sequence[DynUop], config: SimConfig,
                 benchmark: str = "bench",
                 profile_rob_stalls: bool = False) -> None:
        self.trace = trace
        self.config = config
        self.benchmark = benchmark
        core = config.core
        self.fetch_width = core.fetch_width
        self.rename_width = core.rename_width
        self.issue_width = core.issue_width
        self.retire_width = core.retire_width
        self.decode_latency = core.decode_latency
        self.redirect_penalty = core.mispredict_redirect_penalty
        self.rob_size = core.rob_size
        self.rs_size = core.rs_size
        self.lq_size = core.lq_size
        self.sq_size = core.sq_size
        self.prf_writers_limit = max(8, core.num_phys_regs - 32)
        self.load_ports = core.num_load_ports
        self.store_ports = core.num_store_ports
        self.alu_ports = core.num_alu_ports
        self.fp_ports = core.num_fp_ports
        self.muldiv_ports = core.num_muldiv_ports
        self.conservative_mem = core.memory_disambiguation == "conservative"
        if core.memory_disambiguation not in ("oracle", "conservative"):
            raise ValueError(
                f"unknown memory_disambiguation: "
                f"{core.memory_disambiguation!r}")
        self.l1d_latency = config.l1d.latency

        # Hook elision: resolve once whether a subclass actually overrides
        # each per-uop hook.  The base-class hooks are no-ops, so skipping
        # the call entirely is behaviour-neutral; it saves one Python call
        # per renamed/retired/completed uop in the modes that leave a hook
        # at its default (the baseline leaves all of them).
        cls = type(self)
        self._use_is_critical = (
            cls._is_critical is not BaselinePipeline._is_critical)
        self._use_on_dispatch = (
            cls._on_dispatch is not BaselinePipeline._on_dispatch)
        self._use_on_retire = (
            cls._on_retire is not BaselinePipeline._on_retire)
        self._use_on_complete = (
            cls._on_complete is not BaselinePipeline._on_complete)
        self._use_note_branch = (
            cls._note_branch_outcome
            is not BaselinePipeline._note_branch_outcome)
        self._use_next_wakeups = (
            cls.next_wakeups is not BaselinePipeline.next_wakeups)
        # Stage-skip eligibility, resolved once like the hooks above: the
        # event-driven run loop may skip a stage invocation only when the
        # *base* implementation's no-work precondition holds, so a
        # subclass that overrides a stage opts that stage out of
        # skipping (its override may have work the base predicate cannot
        # see — e.g. the CDF fetch stage's mode-entry probe).
        self._can_skip_retire = cls._retire is BaselinePipeline._retire
        self._can_skip_dispatch = (
            cls._dispatch is BaselinePipeline._dispatch)
        self._can_skip_fetch = cls._fetch is BaselinePipeline._fetch

        self.mlp_tracker = MLPTracker()
        self.mem = MemoryHierarchy(config, mlp_tracker=self.mlp_tracker)
        self.branch_unit = BranchUnit()
        self.counters = Counters()
        self.profiler: Optional[RobStallProfiler] = (
            RobStallProfiler(len(trace)) if profile_rob_stalls else None)
        #: Optional per-uop event log for the timeline viewer: when set to
        #: a list, stages append (cycle, event_char, seq) tuples. Events:
        #: F fetch, D dispatch, I issue, C complete, R retire (CDF adds
        #: f/d critical fetch/dispatch and p rename replay).
        self.event_log: Optional[list] = None
        #: Optional :class:`repro.verify.PipelineVerifier`. Attach through
        #: :meth:`attach_verifier`; when None (verify_level 0) every hook
        #: site costs one attribute comparison and nothing else.
        self.verifier = None
        #: Optional :class:`repro.obs.ObsCollector`. Attach through
        #: :meth:`attach_observer`; when None (obs_level 0, the default)
        #: the run loop pays one comparison per cycle and nothing else —
        #: the same elision contract as the verifier.
        self.observer = None

        # Frontend state.
        self.fetch_seq = 0
        self.fetch_resume_cycle = 0
        self.fetch_blocked_on: Optional[int] = None
        self.frontend_q: deque = deque()
        self.frontend_cap = self.fetch_width * (self.decode_latency + 2)
        self._mispredicted_seqs = set()
        self._last_ifetch_line = -1

        # Backend state.
        self.rob: deque = deque()
        self.inflight: Dict[int, RobEntry] = {}
        self.ready_q: List = []          # heap of (seq, tiebreak, entry)
        self.retry_loads: List[RobEntry] = []
        self.events: List = []           # heap of (cycle, tiebreak, entry)
        #: Unified wakeup heap: bare cycle numbers pushed through
        #: :meth:`_schedule_wakeup` for timers that stay valid
        #: unconditionally (see repro.core.sched for the source
        #: taxonomy and why validity-gated timers are consulted as
        #: gated scalars in :meth:`_next_cycle` instead).
        self.wakeups: List[int] = []
        self.sched_stats = SchedulerStats()
        self._tiebreak = 0
        self.rs_used = 0
        self.lq_used = 0
        self.sq_used = 0
        self.writers_inflight = 0
        # Sorted seqs of dispatched-but-unissued stores (conservative
        # memory disambiguation holds loads behind these).
        self._unissued_stores: List[int] = []

        self.cycle = 0
        self.retired = 0
        self._dispatch_blocked: Optional[str] = None
        self._retired_this_cycle = 0

        # Records for post-hoc analysis (Fig. 1): which loads missed the
        # LLC and which branches were mispredicted.
        self.llc_miss_load_seqs: List[int] = []
        self.mispredicted_branch_seqs: List[int] = []

    # ------------------------------------------------------------------ hooks
    def _is_critical(self, uop: DynUop) -> bool:
        """Criticality marking hook; the baseline marks nothing."""
        return False

    def _on_dispatch(self, entry: RobEntry, cycle: int) -> None:
        """Subclass hook after an entry is allocated."""

    def _on_retire(self, entry: RobEntry, cycle: int) -> None:
        """Subclass hook after an entry retires."""

    def _on_stall_cycles(self, cycle: int, reason: str, weight: int) -> None:
        """Subclass hook for dispatch-stall accounting."""

    def _note_branch_outcome(self, uop: DynUop, outcome) -> None:
        """Subclass hook: a branch was predicted at fetch time."""

    def next_wakeups(self, cycle: int):
        """Subclass hook: extra wakeup-cycle candidates for the engine.

        Called from :meth:`_next_cycle` whenever the engine considers
        jumping an idle span.  Return an iterable of candidate cycles
        (each ``> cycle``); the engine folds them into the unified
        candidate set alongside completions, MSHR expiries, frontend
        readiness, fetch resume, and the wakeup heap.  A subclass whose
        bookkeeping must run every cycle while some structure is live
        (the CDF dual-stream machinery) contributes ``cycle + 1`` for
        exactly those phases, which pins per-cycle ticking without
        overriding the scheduler itself.  The base pipeline has no
        extra sources.
        """
        return ()

    def _schedule_wakeup(self, when: int) -> None:
        """Push an unconditional timer into the unified wakeup heap.

        For wakeups that stay meaningful no matter how the machine
        state evolves (subclass timers that are not gated on a
        condition the engine already tracks).  ``when`` must derive
        from the current cycle — simlint's TIME001 checks every
        timestamp entering this heap, exactly as for the completion
        event queue.
        """
        heapq.heappush(self.wakeups, when)
        self.sched_stats.wakeups_scheduled += 1

    def attach_verifier(self, verifier):
        """Bind *verifier* (a :class:`repro.verify.PipelineVerifier`) to
        this pipeline and enable the verification hooks; returns it."""
        self.verifier = verifier.bind(self)
        return verifier

    def attach_observer(self, collector):
        """Bind *collector* (a :class:`repro.obs.ObsCollector`) to this
        pipeline and enable the telemetry hooks; returns it."""
        self.observer = collector.bind(self)
        return collector

    def obs_gauges(self, cycle: int) -> Dict[str, int]:
        """Structure-occupancy gauges for one obs sample.

        Subclasses extend the dict with their mode-specific structures
        (the CDF partition boundary, PRE's runahead state).  Key order
        does not matter — the collector fixes a sorted column schema at
        the first sample — but the key *set* must be stable across one
        run.
        """
        mem = self.mem
        return {
            "cycle": cycle,
            "retired": self.retired,
            "rob": len(self.rob),
            "rs": self.rs_used,
            "lq": self.lq_used,
            "sq": self.sq_used,
            "frontend": len(self.frontend_q),
            "l1d_mshr": len(mem.l1d_mshrs),
            "llc_mshr": len(mem.llc_mshrs),
            "dram_reads": mem.dram.total_reads,
        }

    # ------------------------------------------------------------------ run
    def run(self) -> SimResult:
        """Event-driven run loop.

        Each iteration is one *ticked* cycle.  A stage is invoked only
        when its no-work precondition fails (the precondition mirrors
        the stage's own early-return test, so skipping is provably
        behaviour-neutral; overridden stages opt out — see ``__init__``),
        and between ticks :meth:`_next_cycle` jumps idle spans in O(1)
        over the unified wakeup candidate set.  The set of ticked
        cycles, every counter, and the idle/stall attribution are
        bit-identical to the naive reference loop
        (:meth:`run_reference`); the equivalence property test and the
        pinned suite fingerprints enforce that.
        """
        total = len(self.trace)
        warmup = self.config.stats_warmup_uops
        warm_snap = None
        verifier = self.verifier
        observer = self.observer
        max_cycles = self.config.max_cycles
        # Bind the stage methods once: the cycle loop is the hottest loop
        # in the repository and the per-cycle attribute lookups add up.
        # Subclass overrides are resolved here (no stage is ever rebound
        # mid-run), so the binding is behaviour-neutral.
        writeback = self._writeback
        retire = self._retire
        issue = self._issue
        dispatch = self._dispatch
        fetch = self._fetch
        next_cycle = self._next_cycle
        can_skip_retire = self._can_skip_retire
        can_skip_dispatch = self._can_skip_dispatch
        can_skip_fetch = self._can_skip_fetch
        # These containers are mutated in place but never rebound (only
        # ``retry_loads`` is reassigned, so it is re-read each cycle).
        events = self.events
        frontend_q = self.frontend_q
        rob = self.rob
        ready_q = self.ready_q
        frontend_cap = self.frontend_cap
        trace_len = total
        # Scheduler telemetry accumulates in a local and is flushed once
        # after the loop: the engine's own bookkeeping must not tax the
        # engine.
        stage_skips = 0
        cycle = 0
        while self.retired < total:
            if cycle >= max_cycles:
                raise RuntimeError(
                    f"simulation exceeded max_cycles={self.config.max_cycles}")
            self._retired_this_cycle = 0
            # Writeback: only when a completion event is due.
            if events and events[0][0] <= cycle:
                writeback(cycle)
            else:
                stage_skips += 1
            # Retire: only when the ROB head has completed and is due.
            if can_skip_retire:
                if rob:
                    head = rob[0]
                    if head.state == COMPLETE \
                            and head.complete_cycle <= cycle:
                        retire(cycle)
                    else:
                        stage_skips += 1
                else:
                    stage_skips += 1
            else:
                retire(cycle)
            # Issue: only when something is ready or retrying.
            if ready_q or self.retry_loads:
                issue(cycle)
            else:
                stage_skips += 1
            # Dispatch: only when the frontend head is decode-ready; the
            # skipped call would have cleared the blocked marker first.
            if can_skip_dispatch:
                if frontend_q and frontend_q[0][0] <= cycle:
                    dispatch(cycle)
                else:
                    self._dispatch_blocked = None
                    stage_skips += 1
            else:
                dispatch(cycle)
            # Fetch: only when unblocked, resumed, with trace left and
            # frontend-queue room.
            if can_skip_fetch:
                if (self.fetch_blocked_on is None
                        and cycle >= self.fetch_resume_cycle
                        and self.fetch_seq < trace_len
                        and len(frontend_q) < frontend_cap):
                    fetch(cycle)
                else:
                    stage_skips += 1
            else:
                fetch(cycle)
            if verifier is not None:
                verifier.on_cycle_end(cycle)
            if observer is not None:
                observer.on_cycle_end(cycle)
            if warm_snap is None and warmup and self.retired >= warmup:
                warm_snap = self._snapshot(cycle)
            cycle = next_cycle(cycle)
        self.cycle = cycle
        self.sched_stats.stage_skips += stage_skips
        if verifier is not None:
            verifier.on_run_end()
        if observer is not None:
            observer.on_run_end(cycle)
        return self._build_result(cycle, warm_snap)

    def run_reference(self) -> SimResult:
        """Naive tick-every-cycle reference loop (the equivalence oracle).

        Invokes every stage on every active cycle — no skip predicates,
        no wakeup targeting — and steps through idle spans one cycle at
        a time instead of jumping.  Span accounting (the batched
        ``idle_skipped_cycles`` / dispatch-stall weights that feed the
        fingerprint, and the weight-batched ``_on_stall_cycles`` hook
        semantics) is the simulator's committed behaviour, shared with
        the event engine via :meth:`_next_cycle`, so the results are
        bit-identical; the equivalence property test compares the two
        loops fingerprint-for-fingerprint.  Retained for that test and
        for the perfbench ``sweep_naive_s`` column.
        """
        total = len(self.trace)
        warmup = self.config.stats_warmup_uops
        warm_snap = None
        verifier = self.verifier
        observer = self.observer
        max_cycles = self.config.max_cycles
        writeback = self._writeback
        retire = self._retire
        issue = self._issue
        dispatch = self._dispatch
        fetch = self._fetch
        next_cycle = self._next_cycle
        cycle = 0
        while self.retired < total:
            if cycle >= max_cycles:
                raise RuntimeError(
                    f"simulation exceeded max_cycles={self.config.max_cycles}")
            self._retired_this_cycle = 0
            writeback(cycle)
            retire(cycle)
            issue(cycle)
            dispatch(cycle)
            fetch(cycle)
            if verifier is not None:
                verifier.on_cycle_end(cycle)
            if observer is not None:
                observer.on_cycle_end(cycle)
            if warm_snap is None and warmup and self.retired >= warmup:
                warm_snap = self._snapshot(cycle)
            target = next_cycle(cycle)
            cycle += 1
            while cycle < target:
                # Provably-idle cycle inside the accounted span: tick
                # the clock without stage work (the stages' own
                # early-return tests all hold until *target*).
                cycle += 1
        self.cycle = cycle
        if verifier is not None:
            verifier.on_run_end()
        if observer is not None:
            observer.on_run_end(cycle)
        return self._build_result(cycle, warm_snap)

    # ------------------------------------------------------------------ stages
    #
    # The stage bodies below localize hot attribute/method lookups
    # (``heapq.heappop``, ``self.counters``, ``self.event_log``) into
    # function locals and batch per-event counter increments into one
    # dict subscript per stage call.  Both are purely mechanical: the
    # order of state updates, the set of counter keys written, and every
    # counter total are bit-identical to the straightforward form (the
    # serial-vs-parallel and fingerprint tests pin this down).  Counter
    # subscripts use statically-declared keys, which simlint's STAT001
    # checks exactly like ``bump`` arguments; see docs/performance.md.
    def _writeback(self, cycle: int) -> None:
        events = self.events
        if not events or events[0][0] > cycle:
            return
        event_log = self.event_log
        heappop = heapq.heappop
        heappush = heapq.heappush
        ready_q = self.ready_q
        on_complete = self._on_complete if self._use_on_complete else None
        completed = 0
        while events and events[0][0] <= cycle:
            entry = heappop(events)[2]
            if entry.flushed:
                continue
            entry.state = COMPLETE
            if event_log is not None:
                event_log.append((entry.complete_cycle, "C", entry.seq))
            completed += 1
            waiters = entry.waiters
            if waiters:
                for waiter in waiters:
                    waiter.pending -= 1
                    if (waiter.pending == 0 and waiter.state == WAITING
                            and not waiter.flushed):
                        waiter.state = READY
                        # _push_ready, inlined (one call per wakeup).
                        # self._tiebreak stays authoritative because the
                        # on_complete hook below may push entries too.
                        tiebreak = self._tiebreak + 1
                        self._tiebreak = tiebreak
                        heappush(ready_q, (waiter.seq, tiebreak, waiter))
                entry.waiters = None
            if entry.seq == self.fetch_blocked_on:
                self.fetch_blocked_on = None
                self.fetch_resume_cycle = max(
                    self.fetch_resume_cycle,
                    entry.complete_cycle + self.redirect_penalty)
            if on_complete is not None:
                on_complete(entry, cycle)
        if completed:
            counters = self.counters
            counters["wakeup_broadcasts"] += completed
            if completed > 1:
                # N completions due the same cycle drain in this single
                # invocation: one coalesced broadcast instead of N.
                self.sched_stats.wakeups_coalesced += completed - 1

    def _on_complete(self, entry: RobEntry, cycle: int) -> None:
        """Subclass hook at writeback (CDF unblocks critical fetch here)."""

    def _push_ready(self, entry: RobEntry) -> None:
        self._tiebreak += 1
        heapq.heappush(self.ready_q, (entry.seq, self._tiebreak, entry))

    def _retire(self, cycle: int) -> None:
        rob = self.rob
        if not rob:
            return
        budget = self.retire_width
        inflight = self.inflight
        event_log = self.event_log
        on_retire = self._on_retire if self._use_on_retire else None
        verifier = self.verifier
        retired_here = 0
        # ``self.retired``/``_retired_this_cycle`` stay per-entry: the
        # ``_on_retire`` hooks (CDF's fill-buffer walk interval, PRE's
        # training) read them mid-loop, so only the counter is batched.
        while budget and rob:
            entry = rob[0]
            if entry.state != COMPLETE or entry.complete_cycle > cycle:
                break
            rob.popleft()
            del inflight[entry.seq]
            uop = entry.uop
            if uop.is_load:
                self.lq_used -= 1
            elif uop.is_store:
                self.sq_used -= 1
                self.mem.store_commit(cycle, uop.mem_addr)
            if uop.writes_reg:
                self.writers_inflight -= 1
            self.retired += 1
            self._retired_this_cycle += 1
            budget -= 1
            retired_here += 1
            if event_log is not None:
                event_log.append((cycle, "R", entry.seq))
            if on_retire is not None:
                on_retire(entry, cycle)
            if verifier is not None:
                verifier.on_retire(entry, cycle)
        if retired_here:
            counters = self.counters
            counters["rob_reads"] += retired_here

    def _issue(self, cycle: int) -> None:
        budget = self.issue_width
        loads_left = self.load_ports
        stores_left = self.store_ports
        # Scalar port counters (not a dict): most issued uops are ALU ops
        # and the per-uop dict hash/getitem/setitem shows up in profiles.
        alu_left = self.alu_ports
        fp_left = self.fp_ports
        muldiv_left = self.muldiv_ports

        # MSHR-full rejections are retried oldest-first. A couple of failed
        # probes per cycle is enough to learn the MSHRs are still full;
        # further attempts this cycle are pointless bus/port churn.
        failed_probes = 0
        if self.retry_loads:
            still_waiting = []
            for position, entry in enumerate(self.retry_loads):
                if entry.flushed:
                    continue
                if budget == 0 or loads_left == 0 or failed_probes >= 2:
                    still_waiting.extend(self.retry_loads[position:])
                    break
                if self._issue_load(entry, cycle):
                    budget -= 1
                    loads_left -= 1
                else:
                    failed_probes += 1
                    still_waiting.append(entry)
            self.retry_loads = still_waiting

        deferred = []
        defer = deferred.append
        ready_q = self.ready_q
        heappop = heapq.heappop
        counters = self.counters
        conservative_mem = self.conservative_mem
        unissued_stores = self._unissued_stores
        while ready_q and budget:
            item = heappop(ready_q)
            entry = item[2]
            if entry.state != READY or entry.flushed:
                continue
            uop = entry.uop
            if uop.is_load:
                if conservative_mem and unissued_stores \
                        and unissued_stores[0] < entry.seq:
                    # An older store has not computed its address yet.
                    defer(item)
                    counters["loads_held_by_stores"] += 1
                    continue
                if loads_left == 0:
                    defer(item)
                    continue
                if failed_probes >= 2 and not entry.forwarded:
                    self.retry_loads.append(entry)
                    continue
                if self._issue_load(entry, cycle):
                    loads_left -= 1
                    budget -= 1
                else:
                    failed_probes += 1
                    self.retry_loads.append(entry)
                    budget -= 1    # the slot was consumed by the attempt
                continue
            if uop.is_store:
                if stores_left == 0:
                    defer(item)
                    continue
                stores_left -= 1
            else:
                # Loads/stores were handled above, so exec_class here is
                # exactly one of 'alu' / 'fp' / 'muldiv'.
                unit = uop.exec_class
                if unit == "alu":
                    if alu_left == 0:
                        defer(item)
                        continue
                    alu_left -= 1
                elif unit == "fp":
                    if fp_left == 0:
                        defer(item)
                        continue
                    fp_left -= 1
                else:
                    if muldiv_left == 0:
                        defer(item)
                        continue
                    muldiv_left -= 1
            self._complete_at(entry, cycle, cycle + uop.exec_lat)
            budget -= 1
        for item in deferred:
            heapq.heappush(ready_q, item)

    def _issue_load(self, entry: RobEntry, cycle: int) -> bool:
        """Issue one load to the memory system; False if MSHRs rejected it."""
        uop = entry.uop
        counters = self.counters
        counters["sq_searches"] += 1
        if entry.forwarded:
            completion = cycle + self.l1d_latency
            counters["store_forwards"] += 1
            self._complete_at(entry, cycle, completion)
            return True
        result = self.mem.load(cycle, uop.mem_addr,
                               source=self._load_source(entry))
        if result is None:
            return False
        if result.llc_miss:
            entry.llc_miss = True
            self.llc_miss_load_seqs.append(entry.seq)
            counters["llc_miss_loads"] += 1
        self._complete_at(entry, cycle, result.completion)
        return True

    def _load_source(self, entry: RobEntry) -> str:
        return "demand"

    def _complete_at(self, entry: RobEntry, cycle: int, completion: int) -> None:
        if self.verifier is not None:
            self.verifier.on_issue(entry, cycle)
        entry.state = ISSUED
        entry.issue_cycle = cycle
        entry.complete_cycle = max(completion, cycle + 1)
        self.rs_used -= 1
        uop = entry.uop
        counters = self.counters
        counters["prf_reads"] += len(uop.srcs)
        if uop.writes_reg:
            counters["prf_writes"] += 1
        if uop.is_store:
            counters["lq_searches"] += 1
            if self.conservative_mem:
                self._unissued_stores.remove(entry.seq)
        self._tiebreak += 1
        if self.event_log is not None:
            self.event_log.append((cycle, "I", entry.seq))
        self.sched_stats.events_scheduled += 1
        heapq.heappush(self.events,
                       (entry.complete_cycle, self._tiebreak, entry))

    # ------------------------------------------------------------------ dispatch
    def _dispatch(self, cycle: int) -> None:
        budget = self.rename_width
        self._dispatch_blocked = None
        frontend_q = self.frontend_q
        while budget and frontend_q:
            head = frontend_q[0]
            if head[0] > cycle:
                break
            uop = head[1]
            reason = self._allocation_block_reason(uop)
            if reason is not None:
                self._dispatch_blocked = reason
                break
            frontend_q.popleft()
            self._allocate(uop, cycle)
            budget -= 1
        if self._dispatch_blocked is not None:
            self._account_stall(cycle, self._dispatch_blocked, 1)

    def _allocation_block_reason(self, uop: DynUop) -> Optional[str]:
        if len(self.rob) >= self.rob_size:
            return "rob"
        if self.rs_used >= self.rs_size:
            return "rs"
        if uop.is_load and self.lq_used >= self.lq_size:
            return "lq"
        if uop.is_store and self.sq_used >= self.sq_size:
            return "sq"
        if uop.writes_reg and self.writers_inflight >= self.prf_writers_limit:
            return "prf"
        return None

    def _allocate(self, uop: DynUop, cycle: int) -> RobEntry:
        entry = RobEntry(
            uop,
            critical=self._is_critical(uop) if self._use_is_critical
            else False)
        if uop.seq in self._mispredicted_seqs:
            entry.mispredicted = True
            self._mispredicted_seqs.discard(uop.seq)
        # Dependency wiring (the former _wire_dependencies helper, inlined
        # here — its only call site — to drop one call per renamed uop):
        # register *entry* on each in-flight producer, count pending ones.
        inflight = self.inflight
        pending = 0
        for dep in uop.src_deps:
            producer = inflight.get(dep)
            if producer is not None and producer.state != COMPLETE \
                    and not producer.flushed:
                producer.add_waiter(entry)
                pending += 1
        if uop.is_load and uop.store_dep >= 0:
            store = inflight.get(uop.store_dep)
            if store is not None and not store.flushed:
                entry.forwarded = True
                if store.state != COMPLETE:
                    store.add_waiter(entry)
                    pending += 1
        entry.pending = pending
        if pending == 0:
            entry.state = READY
            # _push_ready, inlined.
            tiebreak = self._tiebreak + 1
            self._tiebreak = tiebreak
            heapq.heappush(self.ready_q, (entry.seq, tiebreak, entry))
        if self.conservative_mem and uop.is_store:
            bisect.insort(self._unissued_stores, uop.seq)
        self.rob.append(entry)
        inflight[uop.seq] = entry
        self.rs_used += 1
        if uop.is_load:
            self.lq_used += 1
        elif uop.is_store:
            self.sq_used += 1
        if uop.writes_reg:
            self.writers_inflight += 1
        counters = self.counters
        counters["rename_uops"] += 1
        counters["rob_writes"] += 1
        if self.event_log is not None:
            self.event_log.append((cycle, "D", uop.seq))
        if self._use_on_dispatch:
            self._on_dispatch(entry, cycle)
        if self.verifier is not None:
            self.verifier.on_dispatch(entry, cycle, critical=False)
        return entry

    # ------------------------------------------------------------------ stalls
    def _account_stall(self, cycle: int, reason: str, weight: int) -> None:
        counters = self.counters
        if reason == "rob":
            counters["full_window_stall_cycles"] += weight
            if self.rob:
                head = self.rob[0]
                if head.uop.is_load and head.llc_miss and head.state == ISSUED:
                    counters["stall_head_llc_miss_cycles"] += weight
                if self.profiler is not None:
                    self.profiler.on_stall_cycle(head.seq, self.rob[-1].seq,
                                                 weight)
        counters[f"dispatch_stall_{reason}_cycles"] += weight
        self._on_stall_cycles(cycle, reason, weight)

    # ------------------------------------------------------------------ fetch
    def _fetch(self, cycle: int) -> None:
        if self.fetch_blocked_on is not None or cycle < self.fetch_resume_cycle:
            return
        trace = self.trace
        total = len(trace)
        if self.fetch_seq >= total:
            return
        budget = self.fetch_width
        frontend_q = self.frontend_q
        frontend_cap = self.frontend_cap
        event_log = self.event_log
        counters = self.counters
        fetch_seq = self.fetch_seq
        note_branch = (self._note_branch_outcome if self._use_note_branch
                       else None)
        ifetch = self.mem.ifetch
        last_line = self._last_ifetch_line
        fetched = 0
        ready_at = cycle + self.decode_latency
        while budget and len(frontend_q) < frontend_cap \
                and fetch_seq < total:
            uop = trace[fetch_seq]
            # _touch_icache, inlined (one call per fetched uop).
            line = uop.pc // UOPS_PER_ICACHE_LINE
            if line != last_line:
                ifetch(cycle, line)
                last_line = line
            fetch_seq += 1
            frontend_q.append((ready_at, uop))
            if event_log is not None:
                event_log.append((cycle, "F", uop.seq))
            fetched += 1
            budget -= 1
            if uop.is_branch:
                counters["bpred_accesses"] += 1
                outcome = self.branch_unit.predict_and_train(uop)
                if note_branch is not None:
                    note_branch(uop, outcome)
                if outcome.mispredicted:
                    self._mispredicted_seqs.add(uop.seq)
                    self.mispredicted_branch_seqs.append(uop.seq)
                    self.fetch_blocked_on = uop.seq
                    break
                if outcome.btb_miss:
                    self.fetch_resume_cycle = cycle + 2   # one bubble
                    break
                if uop.taken:
                    break   # taken branches end the fetch group
        self.fetch_seq = fetch_seq
        self._last_ifetch_line = last_line
        if fetched:
            counters["fetch_uops"] += fetched

    def _touch_icache(self, cycle: int, pc: int) -> None:
        line = pc // UOPS_PER_ICACHE_LINE
        if line != self._last_ifetch_line:
            self.mem.ifetch(cycle, line)
            self._last_ifetch_line = line

    # ------------------------------------------------------------------ advance
    def _next_cycle(self, cycle: int) -> int:
        """The event scheduler: earliest cycle at which work can appear.

        Folds the unified wakeup candidate set (see repro.core.sched)
        into a running min and jumps idle spans in O(1).  The jump
        *coverage* (which cycles are skipped, and by how much) is part
        of the simulator's observable behaviour — skipped spans are
        counted in ``idle_skipped_cycles`` and weighted into the
        dispatch-stall breakdown, both of which feed
        ``SimResult.fingerprint()`` — so every candidate keeps its
        validity gate: a timer whose gating state died (fetch blocked
        after a resume timer was set) must not wake the machine on a
        cycle the gated form provably skips.  Subclasses extend the
        candidate set through :meth:`next_wakeups` or the wakeup heap
        instead of overriding this method.
        """
        next_cycle = cycle + 1
        if self.ready_q or self._retired_this_cycle:
            return next_cycle
        # Subclass candidates first: a hook that pins per-cycle ticking
        # (CDF while its structures are live) yields ``cycle + 1``, and
        # no other candidate can be earlier — short-circuit before the
        # scalar sources are even computed.  Folding the hook first is
        # order-neutral: the result is the min over the whole set.
        hook_target = -1
        if self._use_next_wakeups:
            subclass_wakeups = 0
            for wake in self.next_wakeups(cycle):
                subclass_wakeups += 1
                if wake > cycle and (hook_target < 0 or wake < hook_target):
                    hook_target = wake
            if subclass_wakeups:
                self.sched_stats.subclass_wakeups += subclass_wakeups
            if 0 <= hook_target <= next_cycle:
                return next_cycle
        # Can anything dispatch next cycle?
        frontend_q = self.frontend_q
        dispatch_blocked = self._dispatch_blocked
        head_ready = frontend_q[0][0] if frontend_q else -1
        dispatch_possible = head_ready >= 0 and dispatch_blocked is None
        if dispatch_possible and head_ready <= next_cycle:
            return next_cycle
        # Can fetch do anything next cycle?
        fetch_possible = (self.fetch_blocked_on is None
                          and self.fetch_seq < len(self.trace)
                          and len(frontend_q) < self.frontend_cap)
        fetch_resume = self.fetch_resume_cycle
        if fetch_possible and fetch_resume <= next_cycle:
            return next_cycle
        # Idle until the next wakeup (running min; no candidate list).
        target = hook_target
        events = self.events
        if events:
            due = events[0][0]
            if target < 0 or due < target:
                target = due
        if self.retry_loads:
            # Rejected loads can only succeed once an MSHR frees (or a
            # same-line fill completes, which is an event above).
            mem = self.mem
            for expiry in (mem.l1d_mshrs.next_expiry,
                           mem.llc_mshrs.next_expiry):
                if expiry is not None and (target < 0 or expiry < target):
                    target = expiry
        if dispatch_possible and (target < 0 or head_ready < target):
            target = head_ready
        if fetch_possible and (target < 0 or fetch_resume < target):
            target = fetch_resume
        wakeups = self.wakeups
        if wakeups:
            # Unconditional timers: drop entries that already fired
            # (lazy deletion), then the heap top joins the candidates.
            heappop = heapq.heappop
            while wakeups and wakeups[0] <= cycle:
                heappop(wakeups)
            if wakeups and (target < 0 or wakeups[0] < target):
                target = wakeups[0]
        if target <= next_cycle:        # includes 'no candidates' (-1)
            return next_cycle
        skipped = target - next_cycle
        if dispatch_blocked is not None:
            self._account_stall(cycle, dispatch_blocked, skipped)
        self.counters["idle_skipped_cycles"] += skipped
        self.sched_stats.idle_jumps += 1
        return target

    # ------------------------------------------------------------------ results
    def _external_counts(self) -> Dict[str, int]:
        mem = self.mem
        return {
            "l1i_accesses": mem.l1i.accesses,
            "l1d_accesses": mem.l1d.accesses,
            "llc_accesses": mem.llc.accesses,
            "dram_reads": mem.dram.total_reads,
            "dram_writes": mem.dram.total_writes,
            "bpred_lookups": self.branch_unit.branches_seen,
            "btb_lookups": self.branch_unit.btb.lookups,
            "prefetches": mem.prefetches_issued,
        }

    def _snapshot(self, cycle: int) -> dict:
        return {
            "cycle": cycle,
            "retired": self.retired,
            "counters": self.counters.snapshot(),
            "dram_reads": dict(self.mem.dram.reads),
            "dram_writes": dict(self.mem.dram.writes),
            "mlp": self.mlp_tracker.snapshot(),
            "external": self._external_counts(),
        }

    def _build_result(self, end_cycle: int, warm_snap: Optional[dict]) -> SimResult:
        counters = Counters(self.counters)
        external = self._external_counts()
        if warm_snap is not None:
            counters = counters.delta(warm_snap["counters"])
            cycles = end_cycle - warm_snap["cycle"]
            retired = self.retired - warm_snap["retired"]
            dram_reads = {k: v - warm_snap["dram_reads"].get(k, 0)
                          for k, v in self.mem.dram.reads.items()}
            dram_writes = {k: v - warm_snap["dram_writes"].get(k, 0)
                           for k, v in self.mem.dram.writes.items()}
            mlp = self.mlp_tracker.delta_mlp(warm_snap["mlp"])
            for key, value in external.items():
                counters[key] = value - warm_snap["external"].get(key, 0)
        else:
            cycles = end_cycle
            retired = self.retired
            dram_reads = dict(self.mem.dram.reads)
            dram_writes = dict(self.mem.dram.writes)
            mlp = self.mlp_tracker.mlp
            for key, value in external.items():
                counters[key] = value
        counters["branch_mispredicts"] = self.branch_unit.mispredicts
        return SimResult(
            benchmark=self.benchmark,
            mode=self._mode_name(),
            cycles=cycles,
            retired_uops=retired,
            mlp=mlp,
            dram_reads=dram_reads,
            dram_writes=dram_writes,
            full_window_stall_cycles=counters["full_window_stall_cycles"],
            counters=counters,
        )

    def _mode_name(self) -> str:
        return "baseline"
