"""Cycle-level baseline out-of-order pipeline.

Trace-driven replay of the functional uop stream under the structural
constraints of Table 1: fetch (branch predictor / BTB / RAS, taken-branch
fetch breaks, misprediction fetch gating), a decode pipeline, rename with
PRF accounting, ROB / RS / LQ / SQ occupancy, wakeup-select issue with load
and store ports, memory access through the cache hierarchy + stream
prefetcher + DRAM, store-to-load forwarding, and in-order retirement.

The stage methods are deliberately small and overridable: the CDF and PRE
pipelines subclass this model and replace/extend fetch, dispatch, and
retire behaviour.
"""

from __future__ import annotations

import bisect
import heapq
from collections import deque
from typing import Dict, List, Optional, Sequence

from ..config import SimConfig
from ..frontend import BranchUnit
from ..isa.dynuop import DynUop
from ..memory import MemoryHierarchy
from ..stats import Counters, MLPTracker, RobStallProfiler, SimResult
from .rob import COMPLETE, ISSUED, READY, WAITING, RobEntry

#: Instructions per 64B I-cache line (4-byte encoding).
UOPS_PER_ICACHE_LINE = 16


class BaselinePipeline:
    """The paper's baseline: aggressive OoO core with stream prefetching."""

    def __init__(self, trace: Sequence[DynUop], config: SimConfig,
                 benchmark: str = "bench",
                 profile_rob_stalls: bool = False) -> None:
        self.trace = trace
        self.config = config
        self.benchmark = benchmark
        core = config.core
        self.fetch_width = core.fetch_width
        self.rename_width = core.rename_width
        self.issue_width = core.issue_width
        self.retire_width = core.retire_width
        self.decode_latency = core.decode_latency
        self.redirect_penalty = core.mispredict_redirect_penalty
        self.rob_size = core.rob_size
        self.rs_size = core.rs_size
        self.lq_size = core.lq_size
        self.sq_size = core.sq_size
        self.prf_writers_limit = max(8, core.num_phys_regs - 32)
        self.load_ports = core.num_load_ports
        self.store_ports = core.num_store_ports
        self.alu_ports = core.num_alu_ports
        self.fp_ports = core.num_fp_ports
        self.muldiv_ports = core.num_muldiv_ports
        self.conservative_mem = core.memory_disambiguation == "conservative"
        if core.memory_disambiguation not in ("oracle", "conservative"):
            raise ValueError(
                f"unknown memory_disambiguation: "
                f"{core.memory_disambiguation!r}")

        self.mlp_tracker = MLPTracker()
        self.mem = MemoryHierarchy(config, mlp_tracker=self.mlp_tracker)
        self.branch_unit = BranchUnit()
        self.counters = Counters()
        self.profiler: Optional[RobStallProfiler] = (
            RobStallProfiler(len(trace)) if profile_rob_stalls else None)
        #: Optional per-uop event log for the timeline viewer: when set to
        #: a list, stages append (cycle, event_char, seq) tuples. Events:
        #: F fetch, D dispatch, I issue, C complete, R retire (CDF adds
        #: f/d critical fetch/dispatch and p rename replay).
        self.event_log: Optional[list] = None
        #: Optional :class:`repro.verify.PipelineVerifier`. Attach through
        #: :meth:`attach_verifier`; when None (verify_level 0) every hook
        #: site costs one attribute comparison and nothing else.
        self.verifier = None

        # Frontend state.
        self.fetch_seq = 0
        self.fetch_resume_cycle = 0
        self.fetch_blocked_on: Optional[int] = None
        self.frontend_q: deque = deque()
        self.frontend_cap = self.fetch_width * (self.decode_latency + 2)
        self._mispredicted_seqs = set()
        self._last_ifetch_line = -1

        # Backend state.
        self.rob: deque = deque()
        self.inflight: Dict[int, RobEntry] = {}
        self.ready_q: List = []          # heap of (seq, tiebreak, entry)
        self.retry_loads: List[RobEntry] = []
        self.events: List = []           # heap of (cycle, tiebreak, entry)
        self._tiebreak = 0
        self.rs_used = 0
        self.lq_used = 0
        self.sq_used = 0
        self.writers_inflight = 0
        # Sorted seqs of dispatched-but-unissued stores (conservative
        # memory disambiguation holds loads behind these).
        self._unissued_stores: List[int] = []

        self.cycle = 0
        self.retired = 0
        self._dispatch_blocked: Optional[str] = None
        self._retired_this_cycle = 0

        # Records for post-hoc analysis (Fig. 1): which loads missed the
        # LLC and which branches were mispredicted.
        self.llc_miss_load_seqs: List[int] = []
        self.mispredicted_branch_seqs: List[int] = []

    # ------------------------------------------------------------------ hooks
    def _is_critical(self, uop: DynUop) -> bool:
        """Criticality marking hook; the baseline marks nothing."""
        return False

    def _on_dispatch(self, entry: RobEntry, cycle: int) -> None:
        """Subclass hook after an entry is allocated."""

    def _on_retire(self, entry: RobEntry, cycle: int) -> None:
        """Subclass hook after an entry retires."""

    def _on_stall_cycles(self, cycle: int, reason: str, weight: int) -> None:
        """Subclass hook for dispatch-stall accounting."""

    def _note_branch_outcome(self, uop: DynUop, outcome) -> None:
        """Subclass hook: a branch was predicted at fetch time."""

    def attach_verifier(self, verifier):
        """Bind *verifier* (a :class:`repro.verify.PipelineVerifier`) to
        this pipeline and enable the verification hooks; returns it."""
        self.verifier = verifier.bind(self)
        return verifier

    # ------------------------------------------------------------------ run
    def run(self) -> SimResult:
        total = len(self.trace)
        warmup = self.config.stats_warmup_uops
        warm_snap = None
        verifier = self.verifier
        cycle = 0
        while self.retired < total:
            if cycle >= self.config.max_cycles:
                raise RuntimeError(
                    f"simulation exceeded max_cycles={self.config.max_cycles}")
            self._retired_this_cycle = 0
            self._writeback(cycle)
            self._retire(cycle)
            self._issue(cycle)
            self._dispatch(cycle)
            self._fetch(cycle)
            if verifier is not None:
                verifier.on_cycle_end(cycle)
            if warm_snap is None and warmup and self.retired >= warmup:
                warm_snap = self._snapshot(cycle)
            cycle = self._advance(cycle)
        self.cycle = cycle
        if verifier is not None:
            verifier.on_run_end()
        return self._build_result(cycle, warm_snap)

    # ------------------------------------------------------------------ stages
    def _writeback(self, cycle: int) -> None:
        events = self.events
        while events and events[0][0] <= cycle:
            _, _, entry = heapq.heappop(events)
            if entry.flushed:
                continue
            entry.state = COMPLETE
            if self.event_log is not None:
                self.event_log.append((entry.complete_cycle, "C",
                                       entry.seq))
            self.counters.bump("wakeup_broadcasts")
            waiters = entry.waiters
            if waiters:
                for waiter in waiters:
                    waiter.pending -= 1
                    if (waiter.pending == 0 and waiter.state == WAITING
                            and not waiter.flushed):
                        waiter.state = READY
                        self._push_ready(waiter)
                entry.waiters = None
            if entry.seq == self.fetch_blocked_on:
                self.fetch_blocked_on = None
                self.fetch_resume_cycle = max(
                    self.fetch_resume_cycle,
                    entry.complete_cycle + self.redirect_penalty)
            self._on_complete(entry, cycle)

    def _on_complete(self, entry: RobEntry, cycle: int) -> None:
        """Subclass hook at writeback (CDF unblocks critical fetch here)."""

    def _push_ready(self, entry: RobEntry) -> None:
        self._tiebreak += 1
        heapq.heappush(self.ready_q, (entry.seq, self._tiebreak, entry))

    def _retire(self, cycle: int) -> None:
        rob = self.rob
        budget = self.retire_width
        while budget and rob:
            entry = rob[0]
            if entry.state != COMPLETE or entry.complete_cycle > cycle:
                break
            rob.popleft()
            del self.inflight[entry.seq]
            uop = entry.uop
            if uop.is_load:
                self.lq_used -= 1
            elif uop.is_store:
                self.sq_used -= 1
                self.mem.store_commit(cycle, uop.mem_addr)
            if uop.writes_reg:
                self.writers_inflight -= 1
            self.retired += 1
            self._retired_this_cycle += 1
            budget -= 1
            self.counters.bump("rob_reads")
            if self.event_log is not None:
                self.event_log.append((cycle, "R", entry.seq))
            self._on_retire(entry, cycle)
            if self.verifier is not None:
                self.verifier.on_retire(entry, cycle)

    def _issue(self, cycle: int) -> None:
        budget = self.issue_width
        loads_left = self.load_ports
        stores_left = self.store_ports
        ports_left = {"alu": self.alu_ports, "fp": self.fp_ports,
                      "muldiv": self.muldiv_ports}

        # MSHR-full rejections are retried oldest-first. A couple of failed
        # probes per cycle is enough to learn the MSHRs are still full;
        # further attempts this cycle are pointless bus/port churn.
        failed_probes = 0
        if self.retry_loads:
            still_waiting = []
            for position, entry in enumerate(self.retry_loads):
                if entry.flushed:
                    continue
                if budget == 0 or loads_left == 0 or failed_probes >= 2:
                    still_waiting.extend(self.retry_loads[position:])
                    break
                if self._issue_load(entry, cycle):
                    budget -= 1
                    loads_left -= 1
                else:
                    failed_probes += 1
                    still_waiting.append(entry)
            self.retry_loads = still_waiting

        deferred = []
        ready_q = self.ready_q
        while ready_q and budget:
            item = heapq.heappop(ready_q)
            entry = item[2]
            if entry.state != READY or entry.flushed:
                continue
            uop = entry.uop
            if uop.is_load:
                if self.conservative_mem and self._unissued_stores \
                        and self._unissued_stores[0] < entry.seq:
                    # An older store has not computed its address yet.
                    deferred.append(item)
                    self.counters.bump("loads_held_by_stores")
                    continue
                if loads_left == 0:
                    deferred.append(item)
                    continue
                if failed_probes >= 2 and not entry.forwarded:
                    self.retry_loads.append(entry)
                    continue
                if self._issue_load(entry, cycle):
                    loads_left -= 1
                    budget -= 1
                else:
                    failed_probes += 1
                    self.retry_loads.append(entry)
                    budget -= 1    # the slot was consumed by the attempt
                continue
            if uop.is_store:
                if stores_left == 0:
                    deferred.append(item)
                    continue
                stores_left -= 1
            else:
                unit = uop.exec_class
                if ports_left[unit] == 0:
                    deferred.append(item)
                    continue
                ports_left[unit] -= 1
            self._complete_at(entry, cycle, cycle + uop.exec_lat)
            budget -= 1
        for item in deferred:
            heapq.heappush(ready_q, item)

    def _issue_load(self, entry: RobEntry, cycle: int) -> bool:
        """Issue one load to the memory system; False if MSHRs rejected it."""
        uop = entry.uop
        self.counters.bump("sq_searches")
        if entry.forwarded:
            completion = cycle + self.config.l1d.latency
            self.counters.bump("store_forwards")
            self._complete_at(entry, cycle, completion)
            return True
        result = self.mem.load(cycle, uop.mem_addr,
                               source=self._load_source(entry))
        if result is None:
            return False
        if result.llc_miss:
            entry.llc_miss = True
            self.llc_miss_load_seqs.append(entry.seq)
            self.counters.bump("llc_miss_loads")
        self._complete_at(entry, cycle, result.completion)
        return True

    def _load_source(self, entry: RobEntry) -> str:
        return "demand"

    def _complete_at(self, entry: RobEntry, cycle: int, completion: int) -> None:
        if self.verifier is not None:
            self.verifier.on_issue(entry, cycle)
        entry.state = ISSUED
        entry.issue_cycle = cycle
        entry.complete_cycle = max(completion, cycle + 1)
        self.rs_used -= 1
        uop = entry.uop
        self.counters.bump("prf_reads", len(uop.srcs))
        if uop.writes_reg:
            self.counters.bump("prf_writes")
        if uop.is_store:
            self.counters.bump("lq_searches")
            if self.conservative_mem:
                self._unissued_stores.remove(entry.seq)
        self._tiebreak += 1
        if self.event_log is not None:
            self.event_log.append((cycle, "I", entry.seq))
        heapq.heappush(self.events,
                       (entry.complete_cycle, self._tiebreak, entry))

    # ------------------------------------------------------------------ dispatch
    def _dispatch(self, cycle: int) -> None:
        budget = self.rename_width
        self._dispatch_blocked = None
        frontend_q = self.frontend_q
        while budget and frontend_q and frontend_q[0][0] <= cycle:
            uop = frontend_q[0][1]
            reason = self._allocation_block_reason(uop)
            if reason is not None:
                self._dispatch_blocked = reason
                break
            frontend_q.popleft()
            self._allocate(uop, cycle)
            budget -= 1
        if self._dispatch_blocked is not None:
            self._account_stall(cycle, self._dispatch_blocked, 1)

    def _allocation_block_reason(self, uop: DynUop) -> Optional[str]:
        if len(self.rob) >= self.rob_size:
            return "rob"
        if self.rs_used >= self.rs_size:
            return "rs"
        if uop.is_load and self.lq_used >= self.lq_size:
            return "lq"
        if uop.is_store and self.sq_used >= self.sq_size:
            return "sq"
        if uop.writes_reg and self.writers_inflight >= self.prf_writers_limit:
            return "prf"
        return None

    def _wire_dependencies(self, entry: RobEntry) -> int:
        """Register *entry* on its in-flight producers; return pending count."""
        uop = entry.uop
        inflight = self.inflight
        pending = 0
        for dep in uop.src_deps:
            producer = inflight.get(dep)
            if producer is not None and producer.state != COMPLETE \
                    and not producer.flushed:
                producer.add_waiter(entry)
                pending += 1
        if uop.is_load and uop.store_dep >= 0:
            store = inflight.get(uop.store_dep)
            if store is not None and not store.flushed:
                entry.forwarded = True
                if store.state != COMPLETE:
                    store.add_waiter(entry)
                    pending += 1
        return pending

    def _allocate(self, uop: DynUop, cycle: int) -> RobEntry:
        entry = RobEntry(uop, critical=self._is_critical(uop))
        if uop.seq in self._mispredicted_seqs:
            entry.mispredicted = True
            self._mispredicted_seqs.discard(uop.seq)
        pending = self._wire_dependencies(entry)
        entry.pending = pending
        if pending == 0:
            entry.state = READY
            self._push_ready(entry)
        if self.conservative_mem and uop.is_store:
            bisect.insort(self._unissued_stores, uop.seq)
        self.rob.append(entry)
        self.inflight[uop.seq] = entry
        self.rs_used += 1
        if uop.is_load:
            self.lq_used += 1
        elif uop.is_store:
            self.sq_used += 1
        if uop.writes_reg:
            self.writers_inflight += 1
        self.counters.bump("rename_uops")
        self.counters.bump("rob_writes")
        if self.event_log is not None:
            self.event_log.append((cycle, "D", uop.seq))
        self._on_dispatch(entry, cycle)
        if self.verifier is not None:
            self.verifier.on_dispatch(entry, cycle, critical=False)
        return entry

    # ------------------------------------------------------------------ stalls
    def _account_stall(self, cycle: int, reason: str, weight: int) -> None:
        if reason == "rob":
            self.counters.bump("full_window_stall_cycles", weight)
            if self.rob:
                head = self.rob[0]
                if head.uop.is_load and head.llc_miss and head.state == ISSUED:
                    self.counters.bump("stall_head_llc_miss_cycles", weight)
                if self.profiler is not None:
                    self.profiler.on_stall_cycle(head.seq, self.rob[-1].seq,
                                                 weight)
        self.counters.bump(f"dispatch_stall_{reason}_cycles", weight)
        self._on_stall_cycles(cycle, reason, weight)

    # ------------------------------------------------------------------ fetch
    def _fetch(self, cycle: int) -> None:
        if self.fetch_blocked_on is not None or cycle < self.fetch_resume_cycle:
            return
        trace = self.trace
        total = len(trace)
        if self.fetch_seq >= total:
            return
        budget = self.fetch_width
        frontend_q = self.frontend_q
        ready_at = cycle + self.decode_latency
        while budget and len(frontend_q) < self.frontend_cap \
                and self.fetch_seq < total:
            uop = trace[self.fetch_seq]
            self._touch_icache(cycle, uop.pc)
            self.fetch_seq += 1
            frontend_q.append((ready_at, uop))
            if self.event_log is not None:
                self.event_log.append((cycle, "F", uop.seq))
            self.counters.bump("fetch_uops")
            budget -= 1
            if uop.is_branch:
                self.counters.bump("bpred_accesses")
                outcome = self.branch_unit.predict_and_train(uop)
                self._note_branch_outcome(uop, outcome)
                if outcome.mispredicted:
                    self._mispredicted_seqs.add(uop.seq)
                    self.mispredicted_branch_seqs.append(uop.seq)
                    self.fetch_blocked_on = uop.seq
                    break
                if outcome.btb_miss:
                    self.fetch_resume_cycle = cycle + 2   # one bubble
                    break
                if uop.taken:
                    break   # taken branches end the fetch group

    def _touch_icache(self, cycle: int, pc: int) -> None:
        line = pc // UOPS_PER_ICACHE_LINE
        if line != self._last_ifetch_line:
            self.mem.ifetch(cycle, line)
            self._last_ifetch_line = line

    # ------------------------------------------------------------------ advance
    def _advance(self, cycle: int) -> int:
        """Advance time; skip idle stretches when provably nothing happens."""
        next_cycle = cycle + 1
        if self.ready_q or self._retired_this_cycle:
            return next_cycle
        # Can anything dispatch next cycle?
        frontend_q = self.frontend_q
        if frontend_q and frontend_q[0][0] <= next_cycle \
                and self._dispatch_blocked is None:
            return next_cycle
        # Can fetch do anything next cycle?
        fetch_possible = (self.fetch_blocked_on is None
                          and self.fetch_seq < len(self.trace)
                          and len(frontend_q) < self.frontend_cap)
        if fetch_possible and self.fetch_resume_cycle <= next_cycle:
            return next_cycle
        # Idle until the next event.
        candidates = []
        if self.events:
            candidates.append(self.events[0][0])
        if self.retry_loads:
            # Rejected loads can only succeed once an MSHR frees (or a
            # same-line fill completes, which is an event above).
            for expiry in (self.mem.l1d_mshrs.next_expiry,
                           self.mem.llc_mshrs.next_expiry):
                if expiry is not None:
                    candidates.append(expiry)
        if frontend_q and self._dispatch_blocked is None:
            candidates.append(frontend_q[0][0])
        if fetch_possible:
            candidates.append(self.fetch_resume_cycle)
        if not candidates:
            return next_cycle
        target = min(candidates)
        if target <= next_cycle:
            return next_cycle
        skipped = target - next_cycle
        if self._dispatch_blocked is not None:
            self._account_stall(cycle, self._dispatch_blocked, skipped)
        self.counters.bump("idle_skipped_cycles", skipped)
        return target

    # ------------------------------------------------------------------ results
    def _external_counts(self) -> Dict[str, int]:
        mem = self.mem
        return {
            "l1i_accesses": mem.l1i.accesses,
            "l1d_accesses": mem.l1d.accesses,
            "llc_accesses": mem.llc.accesses,
            "dram_reads": mem.dram.total_reads,
            "dram_writes": mem.dram.total_writes,
            "bpred_lookups": self.branch_unit.branches_seen,
            "btb_lookups": self.branch_unit.btb.lookups,
            "prefetches": mem.prefetches_issued,
        }

    def _snapshot(self, cycle: int) -> dict:
        return {
            "cycle": cycle,
            "retired": self.retired,
            "counters": self.counters.snapshot(),
            "dram_reads": dict(self.mem.dram.reads),
            "dram_writes": dict(self.mem.dram.writes),
            "mlp": self.mlp_tracker.snapshot(),
            "external": self._external_counts(),
        }

    def _build_result(self, end_cycle: int, warm_snap: Optional[dict]) -> SimResult:
        counters = Counters(self.counters)
        external = self._external_counts()
        if warm_snap is not None:
            counters = counters.delta(warm_snap["counters"])
            cycles = end_cycle - warm_snap["cycle"]
            retired = self.retired - warm_snap["retired"]
            dram_reads = {k: v - warm_snap["dram_reads"].get(k, 0)
                          for k, v in self.mem.dram.reads.items()}
            dram_writes = {k: v - warm_snap["dram_writes"].get(k, 0)
                           for k, v in self.mem.dram.writes.items()}
            mlp = self.mlp_tracker.delta_mlp(warm_snap["mlp"])
            for key, value in external.items():
                counters[key] = value - warm_snap["external"].get(key, 0)
        else:
            cycles = end_cycle
            retired = self.retired
            dram_reads = dict(self.mem.dram.reads)
            dram_writes = dict(self.mem.dram.writes)
            mlp = self.mlp_tracker.mlp
            for key, value in external.items():
                counters[key] = value
        counters["branch_mispredicts"] = self.branch_unit.mispredicts
        return SimResult(
            benchmark=self.benchmark,
            mode=self._mode_name(),
            cycles=cycles,
            retired_uops=retired,
            mlp=mlp,
            dram_reads=dram_reads,
            dram_writes=dram_writes,
            full_window_stall_cycles=counters["full_window_stall_cycles"],
            counters=counters,
        )

    def _mode_name(self) -> str:
        return "baseline"
