"""Stalling Slice Table for Precise Runahead.

PRE (Naithani et al., HPCA 2020) tracks the loads that cause full-window
stalls; their backward slices are what runahead mode executes. Per the
paper's fair-comparison methodology (Sec. 4.1), our PRE uses the same
chain-construction infrastructure as CDF, with the SST providing the
roots: only loads observed blocking the ROB head on an LLC miss.
"""

from __future__ import annotations

from collections import OrderedDict


class StallingSliceTable:
    """Bounded set of static load pcs that caused full-window stalls."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: OrderedDict = OrderedDict()
        self.insertions = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, pc: int) -> bool:
        return pc in self._entries

    def add(self, pc: int) -> None:
        """Record a stalling load; FIFO eviction when full."""
        if pc in self._entries:
            self._entries.move_to_end(pc)
            return
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        self._entries[pc] = True
        self.insertions += 1

    def pcs(self):
        return list(self._entries)
