"""Precise Runahead (PRE) pipeline — the paper's comparator (Sec. 4.1).

PRE enters runahead mode on a full-window stall whose ROB head is a load
waiting on main memory. During the stall it executes the stored dependence
chains of *future* stalling loads using free reservation stations and
physical registers (hence small enter/exit overhead), issuing their memory
accesses as prefetches. Runahead work is speculative and discarded; its
two costs, which the paper's Figs. 14-16 quantify, are modelled:

* **duplicate execution** — every chain uop executed in runahead is
  re-executed by the normal pipeline later (energy);
* **stale chains** — chains whose inputs depend on in-flight misses
  produce wrong addresses with ``stale_chain_fraction`` probability,
  generating useless DRAM traffic and cache pollution; and chains that
  feed on a runahead load that cannot return within the stall window are
  skipped (no MLP from dependent chains).

Per the paper's methodology, chain construction reuses the CDF fill
infrastructure with the Stalling Slice Table providing the roots: only
loads that actually caused full-window stalls are marked.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Sequence

from ..config import SimConfig
from ..core.pipeline import BaselinePipeline
from ..core.rob import ISSUED, RobEntry
from ..cdf.fill_buffer import FillBuffer
from ..cdf.mask_cache import MaskCache
from ..cdf.uop_cache import CriticalUopCache
from ..isa.dynuop import DynUop
from ..isa.program import Program
from .sst import StallingSliceTable

#: Wrong-address runahead accesses are displaced by up to this many lines.
_WRONG_ADDR_SPREAD = 1 << 18


class PREPipeline(BaselinePipeline):
    """Baseline core + Precise Runahead."""

    def __init__(self, trace: Sequence[DynUop], config: SimConfig,
                 program: Program, benchmark: str = "bench",
                 **kwargs) -> None:
        super().__init__(trace, config, benchmark, **kwargs)
        if not config.pre.enabled:
            raise ValueError("PREPipeline requires config.pre.enabled")
        self.pre_cfg = config.pre
        cdf = config.cdf   # geometry shared with the CDF infrastructure
        self.program = program
        self.bb_start = program.bb_start_table()
        self.sst = StallingSliceTable()
        self.fill_buffer = FillBuffer(cdf.fill_buffer_entries)
        self.mask_cache = MaskCache(cdf.mask_cache_entries,
                                    cdf.mask_cache_ways)
        self.uop_cache = CriticalUopCache(cdf.uop_cache_entries,
                                          cdf.uop_cache_ways,
                                          cdf.uops_per_trace)
        self._retired_since_fill = 0
        self._retired_since_mask_reset = 0
        self._rng = random.Random(config.seed)

        self.in_runahead = False
        self.ra_ptr = 0
        # Traversal budget in *trace* uops: runahead walks the instruction
        # stream at fetch width during the stall, so chains further away
        # than stall_cycles x fetch_width are unreachable (paper Sec. 2.4
        # point (c)).
        self._ra_traversal_budget = 0.0
        self._ra_budget_uops = 0.0
        # Per-interval chain dataflow state. Runahead chains execute with
        # the register values available at stall time: a chain value that
        # transitively depends on an in-flight miss, on a future uop the
        # chain does not include, or on a runahead load that cannot return
        # within the stall window is *stale* — the source of PRE's wrong
        # addresses and extra traffic (paper Sec. 2.4 point (d)).
        self._ra_tainted: set = set()
        self._ra_value_ready: Dict[int, int] = {}
        self._ra_memo: Dict[int, Optional[int]] = {}
        # Stale chains already issued once: the engine filters known-bad
        # chains instead of spraying a new wrong address every interval.
        self._ra_wrong_issued: set = set()
        # Runahead fetch follows branch *predictions*: beyond a branch the
        # predictor would get wrong, chains are off-path (paper Sec. 2.4
        # point (b)). Per-PC mispredict rates observed at fetch drive a
        # seeded coin per traversed conditional branch.
        self._branch_stats: Dict[int, list] = {}
        self._ra_wrongpath = False

    def _mode_name(self) -> str:
        return "pre"

    def obs_gauges(self, cycle: int):
        """Baseline gauges plus runahead state (active interval flag and
        cumulative runahead prefetches) for stall-anatomy traces."""
        gauges = super().obs_gauges(cycle)
        gauges["runahead"] = 1 if self.in_runahead else 0
        gauges["runahead_prefetches"] = \
            self.counters["runahead_prefetches"]
        return gauges

    def _note_branch_outcome(self, uop: DynUop, outcome) -> None:
        if not uop.is_cond_branch:
            return
        stats = self._branch_stats.get(uop.pc)
        if stats is None:
            stats = [0, 0]
            self._branch_stats[uop.pc] = stats
        stats[0] += 1
        if outcome.mispredicted:
            stats[1] += 1

    def _mispredict_rate(self, pc: int) -> float:
        stats = self._branch_stats.get(pc)
        if not stats or stats[0] < 8:
            return 0.0
        return stats[1] / stats[0]

    # -------------------------------------------------------- slice training
    def _on_retire(self, entry: RobEntry, cycle: int) -> None:
        uop = entry.uop
        cdf = self.config.cdf
        root_critical = uop.is_load and uop.pc in self.sst
        self.fill_buffer.record_uop(uop, self.bb_start[uop.pc],
                                    root_critical)
        self._retired_since_fill += 1
        self._retired_since_mask_reset += 1
        if self._retired_since_mask_reset >= cdf.mask_cache_reset_interval:
            self.mask_cache.reset()
            self._retired_since_mask_reset = 0
        if self._retired_since_fill >= cdf.fill_interval_uops \
                and self.fill_buffer.full:
            self._do_fill(cycle)
        if self.in_runahead:
            # Retirement means the stalling head drained: interval over.
            self._end_runahead()

    def _do_fill(self, cycle: int) -> None:
        cdf = self.config.cdf
        result = self.fill_buffer.walk(self.mask_cache.snapshot_masks())
        self.counters.bump("fill_walks")
        self.counters.bump("fill_walk_uops", result.total)
        valid_from = cycle + cdf.fill_latency_cycles
        for bb, mask in result.bb_masks.items():
            merged = self.mask_cache.accumulate(bb, mask)
            self.uop_cache.fill(bb, merged,
                                result.bb_ends_in_branch.get(bb, False),
                                valid_from)
        self.counters.bump("fill_applied")
        self._retired_since_fill = 0

    # ------------------------------------------------------------- runahead
    def _on_stall_cycles(self, cycle: int, reason: str, weight: int) -> None:
        if reason != "rob" or not self.rob:
            return
        head = self.rob[0]
        if not (head.uop.is_load and head.llc_miss
                and head.state == ISSUED):
            return
        self.sst.add(head.uop.pc)
        if not self.in_runahead:
            self.in_runahead = True
            self.counters.bump("runahead_intervals")
            # Each interval re-executes chains from the stall point with
            # the registers available *now* (PRE restarts runahead from
            # scratch; already-prefetched lines are found in the cache).
            self.ra_ptr = self.fetch_seq
            self._ra_tainted = set()
            self._ra_value_ready = {}
            self._ra_memo = {}
            self._ra_wrongpath = False
            weight = max(0, weight - self.pre_cfg.enter_exit_overhead)
        self._ra_budget_uops += weight * self.pre_cfg.chain_issue_width
        self._ra_traversal_budget += weight * self.fetch_width
        self._runahead_walk(cycle, head.complete_cycle)

    def _end_runahead(self) -> None:
        self.in_runahead = False
        self._ra_budget_uops = 0.0
        self._ra_traversal_budget = 0.0

    def _runahead_walk(self, cycle: int, stall_end: int) -> None:
        """Execute future stalling-slice chains during the stall window."""
        trace = self.trace
        total = len(trace)
        bb_start = self.bb_start
        max_ptr = self.fetch_seq + self.pre_cfg.max_runahead_distance
        current_entry = None
        current_bb = -1
        while self._ra_budget_uops >= 1.0 \
                and self._ra_traversal_budget >= 1.0 \
                and self.ra_ptr < total and self.ra_ptr < max_ptr:
            uop = trace[self.ra_ptr]
            self.ra_ptr += 1
            self._ra_traversal_budget -= 1.0
            bb = bb_start[uop.pc]
            if bb != current_bb:
                current_bb = bb
                current_entry = self.uop_cache.lookup(bb, cycle)
                if current_entry is None:
                    # Without a stored trace the runahead engine cannot
                    # compute the next fetch address: the chain ends here.
                    self.ra_ptr -= 1
                    self.counters.bump("runahead_stopped_uncached_bb")
                    return
                self.counters["uop_cache_reads"] += 1
            if uop.is_cond_branch and not self._ra_wrongpath:
                # The engine predicts every branch it crosses; a branch
                # the predictor gets wrong puts the rest of this interval
                # on the wrong path (Sec. 2.4 point (b)).
                if self._rng.random() < self._mispredict_rate(uop.pc):
                    self._ra_wrongpath = True
                    self.counters.bump("runahead_wrongpath_intervals")
            if not (current_entry.mask >> (uop.pc - bb)) & 1:
                continue
            self._ra_budget_uops -= 1.0
            self.counters["runahead_uops"] += 1
            self._runahead_execute(cycle, uop, stall_end)

    def _chain_inputs(self, uop: DynUop, cycle: int, stall_end: int):
        """Resolve a chain uop's inputs; returns (tainted, ready_cycle).

        A chain input is *stale* (tainting the whole chain) when it comes
        from an earlier tainted chain uop, from a future uop the chain
        does not include, from an in-flight miss that will not return
        within the stall window, or (for loads) from a store that has not
        executed.
        """
        tainted = False
        ready = cycle
        if uop.is_load and uop.store_dep >= 0 \
                and uop.store_dep >= self.fetch_seq:
            tainted = True   # forwarding store not executed yet
        for dep in uop.src_deps:
            if dep in self._ra_tainted:
                return True, ready
            produced_at = self._ra_value_ready.get(dep)
            if produced_at is not None:
                if produced_at >= stall_end:
                    return True, ready  # arrives after runahead ends
                ready = max(ready, produced_at)
                continue
            if dep >= self.fetch_seq:
                # Future uop outside the stored chain: unavailable.
                return True, ready
            available_at = self._inflight_available(dep, cycle, stall_end,
                                                    self._ra_memo, 0)
            if available_at is None:
                return True, ready
            ready = max(ready, available_at)
        return tainted, ready

    def _inflight_available(self, seq: int, cycle: int, stall_end: int,
                            memo: Dict[int, Optional[int]],
                            depth: int) -> Optional[int]:
        """When will in-flight value *seq* be readable by a runahead
        chain? None if it cannot arrive within the stall window.

        Walks the in-flight dependence graph transitively (memoised per
        interval): an un-issued ALU op behind a pending miss is just as
        stale as the miss itself.
        """
        if seq in memo:
            return memo[seq]
        if depth > 400:
            memo[seq] = None
            return None
        entry = self.inflight.get(seq)
        if entry is None:
            memo[seq] = cycle          # retired: value architectural
            return cycle
        uop = entry.uop
        if entry.complete_cycle >= 0:  # issued: completion known
            result = None if (uop.is_load
                              and entry.complete_cycle >= stall_end) \
                else max(cycle, entry.complete_cycle)
            memo[seq] = result
            return result
        # Not issued yet: availability follows its own inputs.
        worst = cycle
        for dep in uop.src_deps:
            sub = self._inflight_available(dep, cycle, stall_end, memo,
                                           depth + 1)
            if sub is None:
                memo[seq] = None
                return None
            worst = max(worst, sub)
        if uop.is_load:
            # Unknown hit/miss: assume it needs a memory round trip.
            worst += self.config.llc.latency + self.mem.dram.t_cl
        else:
            worst += uop.exec_lat + 1
        result = None if worst >= stall_end else worst
        memo[seq] = result
        return result

    def _runahead_execute(self, cycle: int, uop: DynUop,
                          stall_end: int) -> None:
        """Execute one chain uop with stall-time register values."""
        if self._ra_wrongpath:
            # Off-path execution: register state is garbage; loads go to
            # wrong addresses (pollution + traffic), nothing is useful.
            self._ra_tainted.add(uop.seq)
            if uop.is_load and uop.seq not in self._ra_wrong_issued \
                    and self._rng.random() < self.pre_cfg.stale_chain_fraction:
                self._ra_wrong_issued.add(uop.seq)
                self._issue_runahead_access(cycle, uop, wrong=True)
            return
        tainted, ready = self._chain_inputs(uop, cycle, stall_end)
        if not uop.is_load:
            if tainted:
                self._ra_tainted.add(uop.seq)
            elif uop.writes_reg:
                self._ra_value_ready[uop.seq] = ready + 1
            return
        if tainted:
            self._ra_tainted.add(uop.seq)
            # A stale address chain either issues a wrong access (extra
            # traffic, cache pollution: paper Sec. 2.4 point (d)) or is
            # squashed by the engine; each dynamic chain is only ever
            # issued wrongly once.
            if uop.seq not in self._ra_wrong_issued \
                    and self._rng.random() < self.pre_cfg.stale_chain_fraction:
                self._ra_wrong_issued.add(uop.seq)
                self._issue_runahead_access(cycle, uop, wrong=True)
            else:
                self.counters.bump("runahead_chain_truncated")
            return
        completion = self._issue_runahead_access(ready, uop, wrong=False)
        if completion is not None:
            self._ra_value_ready[uop.seq] = completion
        else:
            self._ra_tainted.add(uop.seq)

    def _issue_runahead_access(self, cycle: int, uop: DynUop,
                               wrong: bool) -> Optional[int]:
        """Send one runahead access to memory; returns its completion."""
        # Leave headroom in the LLC MSHRs for demand misses: runahead is
        # speculative and must not starve the stalling window.
        free_mshrs = (self.mem.llc_mshrs.capacity
                      - len(self.mem.llc_mshrs))
        if free_mshrs <= self.pre_cfg.reserved_llc_mshrs:
            self.counters.bump("runahead_mshr_rejected")
            return None
        addr = uop.mem_addr
        if wrong:
            line = self.mem.line_of(addr)
            line = abs(line + self._rng.randrange(
                -_WRONG_ADDR_SPREAD, _WRONG_ADDR_SPREAD)) or 1
            addr = line * self.mem.line_bytes
            self.counters.bump("runahead_wrong_address")
        result = self.mem.load(cycle, addr, source="runahead")
        if result is None:
            self.counters.bump("runahead_mshr_rejected")
            return None
        self.counters.bump("runahead_prefetches")
        return result.completion
