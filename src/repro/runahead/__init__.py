"""Precise Runahead: the paper's state-of-the-art comparator."""

from .pre_pipeline import PREPipeline
from .sst import StallingSliceTable

__all__ = ["PREPipeline", "StallingSliceTable"]
