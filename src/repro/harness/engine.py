"""Parallel experiment engine with a persistent on-disk result cache.

Every figure, ablation, and sweep in this repository reduces to a flat
list of independent simulation points — ``(benchmark, mode, scale, seed,
config)`` tuples — which makes the whole evaluation embarrassingly
parallel. This module is the single execution layer those drivers share:

* **Job model** — :class:`Job` names one simulation point. ``kind``
  selects the executor: ``"sim"`` runs ``run_benchmark`` and yields a
  :class:`~repro.stats.SimResult`; ``"rob_profile"`` runs the Fig. 1
  ROB-stall profile and yields a float-carrying dict. New kinds register
  in :data:`JOB_KINDS` with an executor plus JSON encode/decode hooks.

* **Parallel execution** — :class:`Engine` runs cache misses through a
  ``concurrent.futures.ProcessPoolExecutor``. Worker count comes from
  the constructor, the ``REPRO_JOBS`` environment variable, or defaults
  to 1 (serial). Results are reassembled in submission order, so
  parallel and serial runs return bit-identical result lists; each job
  carries its own explicit seed so placement on workers cannot perturb
  the simulated outcome.

* **Persistent cache** — :class:`ResultCache` memoizes every completed
  job under ``$REPRO_CACHE_DIR`` (default ``~/.cache/repro-sim``). The
  key is the SHA-256 of the job's identity: kind, benchmark, mode,
  scale, seed, the *canonical JSON* of its ``SimConfig``
  (:meth:`repro.config.SimConfig.fingerprint`), and a code-version salt
  hashed from the package's own source files — editing the simulator
  automatically invalidates stale entries. Entries are written
  atomically (temp file + ``os.replace``), so an interrupted sweep never
  leaves a torn entry, and unreadable/corrupt entries are discarded and
  recomputed rather than crashed on.

* **Resumability** — because every job is keyed independently,
  re-running a partially completed sweep re-executes only the missing
  points; everything already on disk is a cache hit.

* **Observability** — :class:`EngineStats` counts jobs, cache hits,
  executions, and wall/sim time; ``Engine.summary()`` renders the line
  the CLI prints to stderr after ``repro-sim figure``/``report`` runs.
  Telemetry payloads compose with the cache for free: a job whose
  config sets ``obs_level > 0`` carries its collected payload on
  ``SimResult.obs`` through the JSON round-trip, and because the cache
  key includes the config's canonical JSON, obs-enabled runs never
  collide with level-0 entries (see docs/observability.md).

See docs/harness.md for the guide and cache-key anatomy.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..config import SimConfig
from ..stats import SimResult
from ..workloads import DEFAULT_SEED

#: Environment variable controlling worker-process count (default: 1).
JOBS_ENV = "REPRO_JOBS"
#: Environment variable overriding the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"
#: Set to a non-empty value to disable the on-disk cache entirely.
NO_CACHE_ENV = "REPRO_NO_CACHE"
#: Point at a service directory to route the default engine through the
#: durable sweep service (:mod:`repro.harness.service`) instead of a
#: one-shot process pool. Lives here (not in service.py) so the engine
#: factory can consult it without importing the service eagerly.
SERVICE_DIR_ENV = "REPRO_SERVICE_DIR"

#: Bump to invalidate every cache entry regardless of code content.
ENGINE_CACHE_VERSION = "1"

_code_salt_cache: Optional[str] = None


def code_salt() -> str:
    """Digest of the package's own source files.

    Folded into every cache key so that editing the simulator (which may
    change any result) silently invalidates the whole cache instead of
    serving stale numbers.
    """
    global _code_salt_cache  # simlint: disable=CONC001 pure digest of on-disk code, identical in every process
    if _code_salt_cache is None:
        root = pathlib.Path(__file__).resolve().parent.parent
        digest = hashlib.sha256(ENGINE_CACHE_VERSION.encode())
        for path in sorted(root.rglob("*.py")):
            digest.update(path.relative_to(root).as_posix().encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
        _code_salt_cache = digest.hexdigest()[:16]
    return _code_salt_cache


# ---------------------------------------------------------------- job model
@dataclass
class Job:
    """One independent experiment point.

    A job's identity is fixed at construction: ``__post_init__`` freezes
    the attached config (:meth:`repro.config.SimConfig.freeze`), which
    both guards against accidental post-submission mutation and turns on
    the config's ``fingerprint()``/``canonical_json()`` memoization, so
    the engine's cache-key path canonicalizes each config's JSON once
    instead of once per ``cache.get``/``cache.put``.  The key itself is
    memoized per job for the same reason.
    """

    benchmark: str
    mode: str = "baseline"
    scale: float = 1.0
    seed: int = DEFAULT_SEED
    config: Optional[SimConfig] = None
    kind: str = "sim"

    def __post_init__(self) -> None:
        if self.config is not None:
            self.config.freeze()
        self._key_cache: Optional[str] = None

    def identity(self) -> dict:
        """The JSON-able dict that fully determines this job's result."""
        return {
            "kind": self.kind,
            "benchmark": self.benchmark,
            "mode": self.mode,
            "scale": repr(float(self.scale)),
            "seed": int(self.seed),
            "config": (None if self.config is None
                       else self.config.fingerprint()),
            "salt": code_salt(),
        }

    def key(self) -> str:
        """Content-addressed cache key (SHA-256 hex, memoized)."""
        if self._key_cache is None:
            blob = json.dumps(self.identity(), sort_keys=True,
                              separators=(",", ":"))
            self._key_cache = \
                hashlib.sha256(blob.encode("utf-8")).hexdigest()
        return self._key_cache

    def describe(self) -> str:
        tag = f"{self.benchmark}/{self.mode} @{self.scale:g}"
        if self.kind != "sim":
            tag += f" [{self.kind}]"
        if self.config is not None:
            tag += f" cfg:{self.config.fingerprint()[:8]}"
        return tag


def job_to_dict(job: Job) -> dict:
    """Full reconstruction payload for *job* (not just its identity):
    the sweep-service journal persists this so a restarted service can
    rebuild and re-dispatch jobs it has never seen in memory."""
    return {
        "kind": job.kind,
        "benchmark": job.benchmark,
        "mode": job.mode,
        "scale": float(job.scale),
        "seed": int(job.seed),
        "config": (None if job.config is None else job.config.to_dict()),
    }


def job_from_dict(data: dict) -> Job:
    """Inverse of :func:`job_to_dict`; round-trips the cache key."""
    config = data.get("config")
    return Job(
        benchmark=data["benchmark"],
        mode=data.get("mode", "baseline"),
        scale=float(data.get("scale", 1.0)),
        seed=int(data.get("seed", DEFAULT_SEED)),
        config=None if config is None else SimConfig.from_dict(config),
        kind=data.get("kind", "sim"),
    )


def _run_sim_job(job: Job) -> SimResult:
    from .runner import run_benchmark
    return run_benchmark(job.benchmark, job.mode, scale=job.scale,
                         seed=job.seed, config=job.config)


def _run_rob_profile_job(job: Job) -> dict:
    from .runner import rob_stall_profile
    fraction = rob_stall_profile(job.benchmark, scale=job.scale,
                                 seed=job.seed)
    return {"critical_fraction": fraction}


@dataclass(frozen=True)
class JobKind:
    """Executor plus JSON (de)serialization hooks for one job kind."""

    execute: Callable[[Job], object]
    encode: Callable[[object], object]
    decode: Callable[[object], object]


#: Registry of job kinds. ``encode``/``decode`` map between the result
#: object and its JSON-able cache payload.
JOB_KINDS: Dict[str, JobKind] = {
    "sim": JobKind(execute=_run_sim_job,
                   encode=lambda result: result.to_dict(),
                   decode=SimResult.from_dict),
    "rob_profile": JobKind(execute=_run_rob_profile_job,
                           encode=lambda result: dict(result),
                           decode=lambda payload: {
                               "critical_fraction":
                                   float(payload["critical_fraction"])}),
}


def _execute_job(job: Job):
    """Process-pool entry point: run one job, return (result, seconds)."""
    start = time.perf_counter()
    result = JOB_KINDS[job.kind].execute(job)
    return result, time.perf_counter() - start


# -------------------------------------------------------------------- cache
def default_cache_dir() -> pathlib.Path:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/repro-sim`` (honouring
    ``$XDG_CACHE_HOME``)."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return pathlib.Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = pathlib.Path(xdg).expanduser() if xdg \
        else pathlib.Path.home() / ".cache"
    return base / "repro-sim"


class ResultCache:
    """Content-addressed, crash-safe, JSON-on-disk result store.

    Layout: ``<root>/<key[:2]>/<key>.json``. Each entry carries the
    decoded payload plus the job identity that produced it, so entries
    are self-describing (``repro-sim cache stats`` and humans can audit
    them). Writes are atomic; reads treat any malformed entry as a miss
    and delete it.
    """

    def __init__(self, root: Optional[os.PathLike] = None):
        self.root = pathlib.Path(root).expanduser() if root is not None \
            else default_cache_dir()

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, job: Job):
        """Decoded result for *job*, or None on miss/corruption."""
        path = self.path_for(job.key())
        try:
            document = json.loads(path.read_text())
            if document["kind"] != job.kind:
                raise ValueError("kind mismatch")
            return JOB_KINDS[job.kind].decode(document["payload"])
        except FileNotFoundError:
            return None
        except Exception:
            # Truncated write, bad JSON, schema drift, ... — recompute.
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def put(self, job: Job, result) -> None:
        """Atomically persist *result* for *job* (best-effort)."""
        path = self.path_for(job.key())
        document = {
            "kind": job.kind,
            "job": job.identity(),
            "config": (None if job.config is None
                       else job.config.to_dict()),
            "payload": JOB_KINDS[job.kind].encode(result),
            "created": time.time(),
        }
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_name(path.name + f".tmp{os.getpid()}")
            tmp.write_text(json.dumps(document, sort_keys=True))
            os.replace(tmp, path)
        except OSError:
            pass                      # cache is advisory, never fatal

    def entries(self) -> List[pathlib.Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*/*.json"))

    def stats(self) -> dict:
        entries = self.entries()
        return {
            "root": str(self.root),
            "entries": len(entries),
            "bytes": sum(path.stat().st_size for path in entries),
        }

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


# ------------------------------------------------------------------- engine
@dataclass
class EngineStats:
    """Cumulative accounting across ``Engine.run`` calls."""

    total: int = 0                    # jobs submitted
    executed: int = 0                 # simulations actually run
    cache_hits: int = 0               # jobs served from disk
    wall_seconds: float = 0.0         # engine wall-clock across runs
    job_seconds: float = 0.0          # summed per-job simulation time

    def reset(self) -> None:
        self.total = 0
        self.executed = 0
        self.cache_hits = 0
        self.wall_seconds = 0.0
        self.job_seconds = 0.0


def default_jobs() -> int:
    """Worker count from ``$REPRO_JOBS`` (default 1 = serial)."""
    try:
        return max(1, int(os.environ.get(JOBS_ENV, "1")))
    except ValueError:
        return 1


class Engine:
    """Fan a list of :class:`Job` out over worker processes, memoized.

    Parameters
    ----------
    jobs:
        Worker-process count; ``None`` reads ``$REPRO_JOBS`` (default 1).
        With 1 worker everything runs in-process (no pool overhead, and
        the runner's in-process workload cache is shared across modes).
    use_cache:
        Disable to force re-simulation (``--no-cache``); ``None`` reads
        ``$REPRO_NO_CACHE``.
    cache:
        A :class:`ResultCache`; defaults to one rooted at
        ``$REPRO_CACHE_DIR`` / ``~/.cache/repro-sim``.
    progress:
        Optional callable receiving one human-readable line per
        completed job (the CLI points this at stderr).
    """

    def __init__(self, jobs: Optional[int] = None,
                 use_cache: Optional[bool] = None,
                 cache: Optional[ResultCache] = None,
                 progress: Optional[Callable[[str], None]] = None):
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))
        if use_cache is None:
            use_cache = not os.environ.get(NO_CACHE_ENV)
        self.use_cache = bool(use_cache)
        self.cache = cache if cache is not None else ResultCache()
        self.progress = progress
        self.stats = EngineStats()

    # ------------------------------------------------------------- running
    def _report(self, done: int, total: int, job: Job, verb: str,
                seconds: Optional[float] = None) -> None:
        if self.progress is None:
            return
        line = f"[{done}/{total}] {verb:9s} {job.describe()}"
        if seconds is not None:
            line += f" ({seconds:.2f}s)"
        self.progress(line)

    def run(self, jobs: Sequence[Job]) -> List:
        """Execute *jobs*; returns results in submission order.

        Cache hits are filled in first; the remaining misses run either
        in-process (1 worker) or on a process pool. Every freshly
        computed result is written to the cache before ``run`` returns,
        so an interrupted sweep resumes from its last completed job.
        """
        jobs = list(jobs)
        start = time.perf_counter()
        results: List = [None] * len(jobs)
        misses: List[int] = []
        done = 0
        for index, job in enumerate(jobs):
            cached = self.cache.get(job) if self.use_cache else None
            if cached is not None:
                results[index] = cached
                self.stats.cache_hits += 1
                done += 1
                self._report(done, len(jobs), job, "cache-hit")
            else:
                misses.append(index)

        if misses and self.jobs > 1 and len(misses) > 1:
            self._prewarm_workloads([jobs[index] for index in misses])
            workers = min(self.jobs, len(misses))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {pool.submit(_execute_job, jobs[index]): index
                           for index in misses}
                for future in as_completed(futures):
                    index = futures[future]
                    result, seconds = future.result()
                    results[index] = result
                    self._finish_miss(jobs[index], result, seconds)
                    done += 1
                    self._report(done, len(jobs), jobs[index], "ran",
                                 seconds)
        else:
            for index in misses:
                result, seconds = _execute_job(jobs[index])
                results[index] = result
                self._finish_miss(jobs[index], result, seconds)
                done += 1
                self._report(done, len(jobs), jobs[index], "ran", seconds)

        self.stats.total += len(jobs)
        self.stats.wall_seconds += time.perf_counter() - start
        return results

    @staticmethod
    def _prewarm_workloads(jobs: Sequence[Job]) -> None:
        """Build each unique workload trace once in the parent before the
        pool forks, so workers inherit them copy-on-write instead of each
        re-running the functional simulation (on ``fork`` platforms; a
        harmless warm-up elsewhere). This keeps the one-trace-per-
        benchmark sharing the serial path gets from the runner's
        in-process cache."""
        from .runner import load_workload
        # dict.fromkeys, not a set: dedup in first-seen order so the
        # prewarm sequence is independent of PYTHONHASHSEED (DET002).
        for key in dict.fromkeys(
                (job.benchmark, job.scale, job.seed) for job in jobs):
            load_workload(*key).trace()

    def _finish_miss(self, job: Job, result, seconds: float) -> None:
        self.stats.executed += 1
        self.stats.job_seconds += seconds
        if self.use_cache:
            self.cache.put(job, result)

    # ------------------------------------------------------------ reporting
    def summary(self) -> str:
        """One line: jobs, cache hits, executions, wall/sim time."""
        stats = self.stats
        return (f"engine: {stats.total} jobs, {stats.cache_hits} cache "
                f"hits, {stats.executed} simulated, "
                f"{stats.wall_seconds:.1f}s wall "
                f"({stats.job_seconds:.1f}s sim, {self.jobs} worker"
                f"{'s' if self.jobs != 1 else ''})")


# --------------------------------------------------- screening front-end
class ScreeningEngine:
    """Two-tier front end: analytic scores first, full sim on demand.

    Wraps a full engine (pool or service — whatever
    :func:`_engine_from_environment` yields, so ``$REPRO_SERVICE_DIR``
    durability composes) and adds the analytical fast tier from
    :mod:`repro.analytic`: :meth:`predict` scores a :class:`Job` in
    microseconds against a memoized per-workload
    :class:`~repro.analytic.profile.TraceProfile`, and :meth:`run`
    delegates to the wrapped engine for the points a caller decides to
    simulate.  Promotion policy (top-K / within-epsilon over sweep
    values) lives in :func:`repro.harness.sweep.screened_sweep`; this
    class only provides the two tiers plus screening counters.
    """

    def __init__(self, full_engine=None,
                 counters: Optional["Counters"] = None):
        from ..analytic import AnalyticModel
        from ..stats import Counters
        self.full = full_engine if full_engine is not None \
            else _engine_from_environment()
        self.model = AnalyticModel()
        self.counters = counters if counters is not None else Counters()
        self._profiles: Dict[tuple, object] = {}

    # -------------------------------------------------- analytic tier
    def profile_for(self, benchmark: str, scale: float = 1.0,
                    seed: int = DEFAULT_SEED):
        """The (memoized) :class:`TraceProfile` for one workload point."""
        from ..analytic import TraceProfile
        from .runner import load_workload
        key = (benchmark, float(scale), int(seed))
        profile = self._profiles.get(key)
        if profile is None:
            workload = load_workload(benchmark, scale, seed)
            profile = TraceProfile.from_trace(workload.trace(),
                                              name=benchmark)
            self._profiles[key] = profile
            self.counters.bump("screen_profiles_built")
        return profile

    def predict(self, job: Job):
        """Analytic prediction for *job* (an ``AnalyticPrediction``)."""
        if job.kind != "sim":
            raise ValueError(
                f"screening only scores 'sim' jobs, not {job.kind!r}")
        profile = self.profile_for(job.benchmark, job.scale, job.seed)
        config = job.config
        if config is None:
            from .runner import config_for_mode
            config = config_for_mode(job.mode)
        self.counters.bump("screen_configs_scored")
        return self.model.predict(profile, config)

    def predict_ipc(self, job: Job) -> float:
        """Predicted IPC for *job* (the screening tier's score)."""
        return self.predict(job).ipc

    # ------------------------------------------------------ full tier
    def run(self, jobs: Sequence[Job]) -> List:
        """Full-simulation tier: delegate to the wrapped engine."""
        return self.full.run(jobs)

    def summary(self) -> str:
        scored = self.counters["screen_configs_scored"]
        profiles = self.counters["screen_profiles_built"]
        promoted = self.counters["screen_configs_promoted"]
        pruned = self.counters["screen_configs_pruned"]
        return (f"screen: {scored} configs scored ({profiles} profiles), "
                f"{promoted} promoted, {pruned} pruned; "
                + self.full.summary())


# --------------------------------------------------------- default engine
_default_engine: Optional[Engine] = None


def _engine_from_environment(jobs=None, use_cache=None, cache=None,
                             progress=None):
    """Build the right engine flavor: a durable ``ServiceEngine`` when
    ``$REPRO_SERVICE_DIR`` is set, the classic pool engine otherwise.
    The service import is lazy to keep the dependency one-directional
    (service.py imports this module at top level)."""
    if os.environ.get(SERVICE_DIR_ENV):
        from .service import ServiceEngine
        return ServiceEngine(jobs=jobs, use_cache=use_cache,
                             cache=cache, progress=progress)
    return Engine(jobs=jobs, use_cache=use_cache, cache=cache,
                  progress=progress)


def get_engine() -> Engine:
    """The process-wide default engine (created lazily from the
    environment); all harness drivers run through it unless handed an
    explicit engine."""
    global _default_engine
    if _default_engine is None:
        _default_engine = _engine_from_environment()
    return _default_engine


def configure(jobs: Optional[int] = None,
              use_cache: Optional[bool] = None,
              cache_dir: Optional[os.PathLike] = None,
              progress: Optional[Callable[[str], None]] = None) -> Engine:
    """Rebuild the default engine (fresh stats) with the given settings;
    unspecified settings fall back to the environment. Returns it."""
    global _default_engine
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    _default_engine = _engine_from_environment(
        jobs=jobs, use_cache=use_cache, cache=cache, progress=progress)
    return _default_engine


def run_jobs(jobs: Sequence[Job]) -> List:
    """Convenience: run *jobs* on the default engine."""
    return get_engine().run(jobs)


def stderr_progress(line: str) -> None:
    """Progress sink used by the CLI."""
    print(line, file=sys.stderr)
