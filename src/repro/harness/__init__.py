"""Experiment harness: runners, the parallel experiment engine, sweeps,
and figure drivers. See docs/harness.md for the engine guide."""

from .runner import (
    MODES,
    config_for_mode,
    geomean,
    load_workload,
    make_pipeline,
    rob_stall_profile,
    run_benchmark,
    run_comparison,
    speedups,
)

__all__ = [
    "MODES",
    "config_for_mode",
    "geomean",
    "load_workload",
    "make_pipeline",
    "rob_stall_profile",
    "run_benchmark",
    "run_comparison",
    "speedups",
]

from .engine import (  # noqa: E402
    Engine,
    EngineStats,
    Job,
    ResultCache,
    code_salt,
    configure,
    default_cache_dir,
    default_jobs,
    get_engine,
    run_jobs,
)

__all__ += [
    "Engine",
    "EngineStats",
    "Job",
    "ResultCache",
    "code_salt",
    "configure",
    "default_cache_dir",
    "default_jobs",
    "get_engine",
    "run_jobs",
]

from .journal import (  # noqa: E402
    Journal,
    JournalReplay,
    read_checkpoint,
    replay_journal,
    write_checkpoint,
)
from .faults import (  # noqa: E402
    FaultSchedule,
    FaultSpec,
    WorkerFaultInjector,
)
from .service import (  # noqa: E402
    RecoveryReport,
    ServiceEngine,
    SweepService,
    service_status,
    submit_to_inbox,
)

__all__ += [
    "Journal",
    "JournalReplay",
    "read_checkpoint",
    "replay_journal",
    "write_checkpoint",
    "FaultSchedule",
    "FaultSpec",
    "WorkerFaultInjector",
    "RecoveryReport",
    "ServiceEngine",
    "SweepService",
    "service_status",
    "submit_to_inbox",
]

from .tracestore import (  # noqa: E402
    TraceStore,
    get_trace_store,
    reset_trace_store,
    trace_salt,
    trace_store_enabled,
)

__all__ += [
    "TraceStore",
    "get_trace_store",
    "reset_trace_store",
    "trace_salt",
    "trace_store_enabled",
]

from .perfbench import (  # noqa: E402
    PERF_SUITE,
    compare_ratios,
    compare_timings,
    run_perfbench,
)

__all__ += [
    "PERF_SUITE",
    "compare_ratios",
    "compare_timings",
    "run_perfbench",
]

from .experiments import (  # noqa: E402
    ablation_critical_branches,
    ablation_partitioning,
    ablation_thresholds,
    fig01_rob_distribution,
    fig13_speedup,
    fig14_mlp,
    fig15_traffic,
    fig16_energy,
    fig17_scaling,
    format_ablation_branches,
    format_ablation_partitioning,
    format_ablation_thresholds,
    format_fig01,
    format_fig13,
    format_fig14,
    format_fig15,
    format_fig16,
    format_fig17,
    get_comparison,
    table1_text,
)
from .tables import percent, ratio, render_table  # noqa: E402

__all__ += [
    "ablation_critical_branches",
    "ablation_partitioning",
    "ablation_thresholds",
    "fig01_rob_distribution",
    "fig13_speedup",
    "fig14_mlp",
    "fig15_traffic",
    "fig16_energy",
    "fig17_scaling",
    "format_ablation_branches",
    "format_ablation_partitioning",
    "format_ablation_thresholds",
    "format_fig01",
    "format_fig13",
    "format_fig14",
    "format_fig15",
    "format_fig16",
    "format_fig17",
    "get_comparison",
    "table1_text",
    "percent",
    "ratio",
    "render_table",
]

from .sweep import (  # noqa: E402
    geomean_speedups,
    llc_size_knob,
    memory_speed_knob,
    mshr_knob,
    sweep,
)

__all__ += [
    "geomean_speedups",
    "llc_size_knob",
    "memory_speed_knob",
    "mshr_knob",
    "sweep",
]

from .report import build_report  # noqa: E402

__all__ += ["build_report"]

from .figures import (  # noqa: E402
    REGISTRY,
    ClaimResult,
    FigureSpec,
    append_history,
    bench_record,
    check_baseline,
    describe_registry,
    format_figures,
    load_baseline,
    load_history,
    render_claim_map,
    run_claim,
    run_figures,
    sync_claim_map,
    write_baseline,
)
from .figdash import render_dashboard, write_dashboard  # noqa: E402
from .docscheck import check_docs  # noqa: E402

__all__ += [
    "REGISTRY",
    "ClaimResult",
    "FigureSpec",
    "append_history",
    "bench_record",
    "check_baseline",
    "check_docs",
    "describe_registry",
    "format_figures",
    "load_baseline",
    "load_history",
    "render_claim_map",
    "render_dashboard",
    "run_claim",
    "run_figures",
    "sync_claim_map",
    "write_baseline",
    "write_dashboard",
]

from .timeline import (  # noqa: E402
    collect_events,
    first_seq_at_pc,
    render_timeline,
)

__all__ += ["collect_events", "first_seq_at_pc", "render_timeline"]
