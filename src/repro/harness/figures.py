"""Paper-parity figure registry and reproduction pipeline.

This module is the public face of the reproduction: a declarative
registry of every headline claim in the paper (one :class:`FigureSpec`
per claim), plus the machinery to run them all with one command —
``repro-sim figures`` — and answer "do we match the paper?" with a
per-claim verdict.

Each spec names the paper figure/table it comes from, the claim in
prose, the paper's number, a metric extractor over the existing figure
drivers (:mod:`repro.harness.experiments`), and a tolerance band, in
two execution profiles:

**QUICK**
    CI-sized: a 6-kernel subset at workload scale 0.3.  Every claim
    runs end-to-end through the engine/result cache in ~15 s cold and
    well under a second warm.  QUICK values are pinned in
    ``benchmarks/figures_baseline.json`` — they are deterministic, so
    CI diffs them exactly and any drift is a model change that must be
    acknowledged with ``--write-baseline``.

**FULL**
    Paper-faithful: the whole 18-kernel suite at scale 1.0 (the
    EXPERIMENTS.md configuration).  Minutes cold, seconds warm.

Verdicts:

``match``
    |measured - paper| within the claim's ``match_tol`` (or at/above
    the threshold for directional ``min``/``max`` claims).
``within-tolerance``
    Inside the wider ``tolerance`` band: the claim reproduces
    directionally but the magnitude differs (usually a scale artifact —
    see the known-divergence table in docs/PAPER_VS_CODE.md).
``diverged``
    Outside the band.  CI fails on any unacknowledged divergence.
``planned``
    Registered but not yet implemented (forward-looking claims from
    PAPERS.md).  Listed in every run so they are never silently
    omitted.

Run history is appended to ``BENCH_figures.json`` (one record per
invocation, newest last) so per-PR trends render as sparklines on the
dashboard (:mod:`repro.harness.figdash`).  ``docs/PAPER_VS_CODE.md``
embeds a generated claim-map table between markers that
``repro-sim figures --sync-doc`` rewrites from this registry, so the
document can never drift from what the code actually runs.

This module is on simlint's DET003 wall-clock allowlist: the history
records it appends are timestamped; simulation results never depend on
the clock.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..stats.metrics import MetricDomainError, geomean, mean, percent_delta
from ..workloads import DEFAULT_SEED, suite_names
from .engine import code_salt
from .tables import render_table

#: Stable schema version for BENCH_figures.json / figures_baseline.json
#: records (bump on any shape change).
SCHEMA_VERSION = 1

DEFAULT_BENCH_REPORT = "BENCH_figures.json"
DEFAULT_BASELINE = os.path.join("benchmarks", "figures_baseline.json")
DEFAULT_CLAIM_DOC = os.path.join("docs", "PAPER_VS_CODE.md")

#: Cap on retained history records in BENCH_figures.json.
HISTORY_KEEP = 100

MATCH = "match"
WITHIN = "within-tolerance"
DIVERGED = "diverged"
PLANNED = "planned"

#: QUICK profile: the perfbench 6-kernel subset at scale 0.3 — the
#: smallest configuration that reproduces the paper's *shape* (CDF
#: clearly ahead of PRE ahead of baseline).  Scales below ~0.25 leave
#: the CDF predictor tables undertrained and every uplift collapses
#: toward zero; do not shrink this without re-pinning the baseline.
QUICK_NAMES: Tuple[str, ...] = ("astar", "mcf", "milc", "bzip", "nab",
                                "lbm")
QUICK_SCALE = 0.3
FULL_SCALE = 1.0

#: Fig. 17's FULL profile runs a restricted kernel set (ROB sweeps
#: multiply job count); same subset as the `repro-sim report` section.
FULL_SCALING_NAMES: Tuple[str, ...] = ("astar", "milc", "nab", "lbm",
                                       "zeusmp", "sphinx")


@dataclass(frozen=True)
class Profile:
    """One execution configuration of a claim's metric."""
    names: Tuple[str, ...]
    scale: float
    rob_sizes: Tuple[int, ...] = ()


#: Analytic claims (Table 1 area) run no simulations at all.
ANALYTIC = Profile(names=(), scale=0.0)


@dataclass(frozen=True)
class FigureSpec:
    """One headline claim of the paper, declaratively.

    ``kind`` selects the verdict rule: ``"value"`` compares
    |measured - paper_value| against ``match_tol`` then ``tolerance``;
    ``"min"``/``"max"`` are directional — measured at/above (below)
    ``paper_value`` is a match, within ``tolerance`` of it is
    within-tolerance.  Units of ``paper_value``/``match_tol``/
    ``tolerance`` are the claim's ``unit``.
    """
    fig_id: str
    paper_ref: str
    claim: str
    unit: str
    paper_value: float
    kind: str = "value"          # "value" | "min" | "max"
    match_tol: float = 0.0
    tolerance: float = 0.0
    runner: str = ""             # key into RUNNERS
    quick: Optional[Profile] = None
    full: Optional[Profile] = None
    status: str = "implemented"  # "implemented" | "planned"
    note: str = ""

    @property
    def command(self) -> str:
        """The exact CLI invocation that reproduces this claim at
        paper-faithful scale."""
        if self.status != "implemented":
            return "-"
        return f"repro-sim figures --full --fig {self.fig_id}"

    def profile(self, mode: str) -> Profile:
        if mode == "quick":
            profile = self.quick
        elif mode == "full":
            profile = self.full
        else:
            raise ValueError(f"unknown figures mode: {mode!r}")
        if profile is None:
            raise ValueError(f"{self.fig_id} has no {mode} profile")
        return profile

    def paper_text(self) -> str:
        """The paper's number, formatted for display."""
        if self.kind == "min":
            return f">= {format_value(self.unit, self.paper_value)}"
        if self.kind == "max":
            return f"<= {format_value(self.unit, self.paper_value)}"
        return format_value(self.unit, self.paper_value)


def format_value(unit: str, value: float) -> str:
    """Render a metric value in its claim's unit."""
    if unit == "%":
        return f"{value:+.2f}%"
    if unit == "pp":
        return f"{value:+.2f}pp"
    if unit == "x":
        return f"{value:.3f}x"
    if unit == "% of ROB":
        return f"{value:.1f}%"
    return f"{value:.3f}"


# --------------------------------------------------------------- metrics
# Every runner maps (profile, seed) -> a scalar in the spec's unit.
# They all go through the drivers in repro.harness.experiments, so the
# engine fans the simulations out across workers, the persistent result
# cache memoizes them across invocations, and the Fig. 13-16 + ablation
# claims share one in-process comparison per (names, scale, seed).

def _claim_geomean(values) -> float:
    """Geomean with the figure-extractor contract.

    :func:`repro.stats.metrics.geomean` raises
    :class:`~repro.stats.metrics.MetricDomainError` on empty or
    non-positive input; for an extractor that means the claim's kernel
    list filtered to nothing (or a run produced a zero metric), which
    the registry reports as the sentinel value 0.0 — a guaranteed
    ``diverged`` verdict — rather than crashing the whole registry run.
    """
    try:
        return geomean(values)
    except MetricDomainError:
        return 0.0


def _comparison_geomeans(profile: Profile, seed: int) -> Dict[str, float]:
    """Geomean CDF/PRE ratios for speedup, MLP, traffic, and energy."""
    from .experiments import get_comparison
    from .runner import speedups
    results = get_comparison(profile.names, profile.scale, seed)
    out: Dict[str, float] = {}
    for mode in ("cdf", "pre"):
        out[f"speedup_{mode}"] = _claim_geomean(
            speedups(results, mode).values())
        for metric, method in (("mlp", "mlp_ratio"),
                               ("traffic", "traffic_ratio"),
                               ("energy", "energy_ratio")):
            out[f"{metric}_{mode}"] = _claim_geomean(
                getattr(by_mode[mode], method)(by_mode["baseline"])
                for by_mode in results.values())
    return out


def _run_fig1(profile: Profile, seed: int) -> float:
    from .experiments import fig01_rob_distribution
    fractions = fig01_rob_distribution(profile.names, profile.scale, seed)
    stalling = [f for f in fractions.values() if f > 0]
    return 100.0 * mean(stalling)


def _run_fig13_cdf(profile: Profile, seed: int) -> float:
    return percent_delta(_comparison_geomeans(profile, seed)["speedup_cdf"])


def _run_fig13_pre(profile: Profile, seed: int) -> float:
    return percent_delta(_comparison_geomeans(profile, seed)["speedup_pre"])


def _run_fig13_margin(profile: Profile, seed: int) -> float:
    data = _comparison_geomeans(profile, seed)
    return (percent_delta(data["speedup_cdf"])
            - percent_delta(data["speedup_pre"]))


def _run_fig14_cdf(profile: Profile, seed: int) -> float:
    return _comparison_geomeans(profile, seed)["mlp_cdf"]


def _run_fig14_pre_excess(profile: Profile, seed: int) -> float:
    data = _comparison_geomeans(profile, seed)
    return data["mlp_pre"] - data["mlp_cdf"]


def _run_fig15_cdf(profile: Profile, seed: int) -> float:
    return percent_delta(_comparison_geomeans(profile, seed)["traffic_cdf"])


def _run_fig15_pre_vs_cdf(profile: Profile, seed: int) -> float:
    data = _comparison_geomeans(profile, seed)
    return percent_delta(data["traffic_pre"] / data["traffic_cdf"])


def _run_fig16_cdf(profile: Profile, seed: int) -> float:
    return percent_delta(_comparison_geomeans(profile, seed)["energy_cdf"])


def _run_fig16_pre(profile: Profile, seed: int) -> float:
    return percent_delta(_comparison_geomeans(profile, seed)["energy_pre"])


def _run_fig16_cdf_vs_pre(profile: Profile, seed: int) -> float:
    data = _comparison_geomeans(profile, seed)
    return percent_delta(data["energy_cdf"] / data["energy_pre"])


def _run_fig17(profile: Profile, seed: int) -> float:
    from .experiments import fig17_scaling
    data = fig17_scaling(rob_sizes=profile.rob_sizes, names=profile.names,
                         scale=profile.scale, seed=seed)
    return data["ipc"][(352, "cdf")] / data["ipc"][(512, "baseline")]


def _run_ablation_drop(profile: Profile, seed: int) -> float:
    from .experiments import ablation_critical_branches
    data = ablation_critical_branches(profile.names, profile.scale, seed)
    return (percent_delta(data["geomean"]["with"])
            - percent_delta(data["geomean"]["without"]))


def _run_table1_area(profile: Profile, seed: int) -> float:
    from ..energy import EnergyModel
    from .runner import config_for_mode
    return 100.0 * EnergyModel(config_for_mode("cdf")).cdf_area_overhead()


RUNNERS: Dict[str, Callable[[Profile, int], float]] = {
    "fig1_critical_fraction": _run_fig1,
    "fig13_cdf_uplift": _run_fig13_cdf,
    "fig13_pre_uplift": _run_fig13_pre,
    "fig13_cdf_margin": _run_fig13_margin,
    "fig14_cdf_mlp": _run_fig14_cdf,
    "fig14_pre_excess": _run_fig14_pre_excess,
    "fig15_cdf_traffic": _run_fig15_cdf,
    "fig15_pre_vs_cdf": _run_fig15_pre_vs_cdf,
    "fig16_cdf_energy": _run_fig16_cdf,
    "fig16_pre_energy": _run_fig16_pre,
    "fig16_cdf_vs_pre": _run_fig16_cdf_vs_pre,
    "fig17_scaling": _run_fig17,
    "ablation_branches_drop": _run_ablation_drop,
    "table1_area": _run_table1_area,
}


# -------------------------------------------------------------- registry
def _quick() -> Profile:
    return Profile(QUICK_NAMES, QUICK_SCALE)


def _full() -> Profile:
    return Profile(tuple(suite_names()), FULL_SCALE)


REGISTRY: Tuple[FigureSpec, ...] = (
    FigureSpec(
        fig_id="fig1-critical-fraction",
        paper_ref="Fig. 1",
        claim="During full-window stalls, critical uops occupy only "
              "10-40% of the baseline ROB for most benchmarks — the "
              "window is mostly non-critical work.",
        unit="% of ROB", paper_value=25.0, kind="value",
        match_tol=15.0, tolerance=20.0,
        runner="fig1_critical_fraction", quick=_quick(), full=_full(),
        note="Paper reports a per-benchmark range; we compare the mean "
             "over stalling benchmarks against the band's midpoint."),
    FigureSpec(
        fig_id="fig13-cdf-uplift",
        paper_ref="Fig. 13",
        claim="CDF improves geomean IPC by 6.1% over the baseline "
              "core.",
        unit="%", paper_value=6.1, kind="value",
        match_tol=2.0, tolerance=6.0,
        runner="fig13_cdf_uplift", quick=_quick(), full=_full()),
    FigureSpec(
        fig_id="fig13-pre-uplift",
        paper_ref="Fig. 13",
        claim="PRE (precise runahead) improves geomean IPC by 2.6%.",
        unit="%", paper_value=2.6, kind="value",
        match_tol=2.0, tolerance=6.0,
        runner="fig13_pre_uplift", quick=_quick(), full=_full()),
    FigureSpec(
        fig_id="fig13-cdf-beats-pre",
        paper_ref="Fig. 13",
        claim="CDF outperforms PRE (positive geomean IPC margin).",
        unit="pp", paper_value=0.0, kind="min", tolerance=1.0,
        runner="fig13_cdf_margin", quick=_quick(), full=_full()),
    FigureSpec(
        fig_id="fig14-cdf-mlp",
        paper_ref="Fig. 14",
        claim="CDF raises memory-level parallelism over the baseline "
              "by overlapping critical-load misses.",
        unit="x", paper_value=1.0, kind="min", tolerance=0.05,
        runner="fig14_cdf_mlp", quick=_quick(), full=_full()),
    FigureSpec(
        fig_id="fig14-pre-mlp-excess",
        paper_ref="Fig. 14",
        claim="PRE's MLP exceeds CDF's — runahead prefetches "
              "wrong-chain loads that raise MLP without helping "
              "performance.",
        unit="x", paper_value=0.0, kind="min", tolerance=0.05,
        runner="fig14_pre_excess", quick=_quick(), full=_full()),
    FigureSpec(
        fig_id="fig15-cdf-traffic",
        paper_ref="Fig. 15",
        claim="CDF adds essentially no DRAM traffic over the baseline "
              "(it only reorders demand fetches).",
        unit="%", paper_value=0.0, kind="value",
        match_tol=2.0, tolerance=5.0,
        runner="fig15_cdf_traffic", quick=_quick(), full=_full()),
    FigureSpec(
        fig_id="fig15-cdf-saves-vs-pre",
        paper_ref="Fig. 15",
        claim="PRE generates ~4% more DRAM traffic than CDF "
              "(speculative runahead fetches).",
        unit="%", paper_value=4.0, kind="min", tolerance=4.0,
        runner="fig15_pre_vs_cdf", quick=_quick(), full=_full(),
        note="QUICK undershoots: at scale 0.3 PRE's runahead intervals "
             "are short, so its excess traffic is smaller."),
    FigureSpec(
        fig_id="fig16-cdf-energy",
        paper_ref="Fig. 16",
        claim="CDF reduces energy by 3.5% versus the baseline (fewer "
              "stall cycles at near-identical traffic).",
        unit="%", paper_value=-3.5, kind="value",
        match_tol=1.5, tolerance=4.0,
        runner="fig16_cdf_energy", quick=_quick(), full=_full()),
    FigureSpec(
        fig_id="fig16-pre-energy",
        paper_ref="Fig. 16",
        claim="PRE increases energy by 3.7% (runahead re-execution "
              "plus extra traffic).",
        unit="%", paper_value=3.7, kind="value",
        match_tol=1.5, tolerance=6.0,
        runner="fig16_pre_energy", quick=_quick(), full=_full(),
        note="QUICK undershoots (can even go slightly negative): PRE's "
             "energy overhead needs long stalls to accumulate."),
    FigureSpec(
        fig_id="fig16-cdf-saves-vs-pre",
        paper_ref="Fig. 16",
        claim="CDF consumes ~7.2% less energy than PRE.",
        unit="%", paper_value=-7.2, kind="value",
        match_tol=2.0, tolerance=6.0,
        runner="fig16_cdf_vs_pre", quick=_quick(), full=_full(),
        note="Derived from the two Fig. 16 geomeans (CDF/PRE energy "
             "ratio)."),
    FigureSpec(
        fig_id="fig17-area-scaling",
        paper_ref="Fig. 17",
        claim="CDF on the 352-entry core outperforms a 45%-larger "
              "(512-entry) baseline — scaling the window is a worse "
              "deal than fetching critically.",
        unit="x", paper_value=1.0, kind="min", tolerance=0.08,
        runner="fig17_scaling",
        quick=Profile(QUICK_NAMES, QUICK_SCALE, (352, 512)),
        full=Profile(FULL_SCALING_NAMES, FULL_SCALE, (352, 512)),
        note="QUICK sits barely above 1.0: short runs under-train the "
             "CDF tables while the larger window helps immediately."),
    FigureSpec(
        fig_id="ablation-branches-drop",
        paper_ref="Sec. 4.2",
        claim="Disabling critical-branch marking drops the geomean "
              "CDF speedup (paper: 6.1% -> 3.8%, a 2.3pp drop).",
        unit="pp", paper_value=2.3, kind="value",
        match_tol=1.0, tolerance=2.5,
        runner="ablation_branches_drop", quick=_quick(), full=_full(),
        note="QUICK undershoots the drop: short runs under-train the "
             "branch criticality tables in both arms."),
    FigureSpec(
        fig_id="table1-area",
        paper_ref="Table 1",
        claim="CDF's structures (CCT, mask cache, critical uop cache, "
              "FIFOs) add 3.2% area over the baseline core.",
        unit="%", paper_value=3.2, kind="value",
        match_tol=0.3, tolerance=1.0,
        runner="table1_area", quick=ANALYTIC, full=ANALYTIC,
        note="Analytic (energy/area model); runs no simulations."),
    FigureSpec(
        fig_id="cgooo-energy",
        paper_ref="PAPERS.md: CG-OoO",
        claim="Energy comparison against a CG-OoO-style clustered "
              "core (block-level criticality vs uop-level CDF).",
        unit="%", paper_value=0.0, status="planned",
        note="Needs a clustered-backend energy model; tracked as "
             "future work in ROADMAP.md."),
    FigureSpec(
        fig_id="multicore-criticality",
        paper_ref="PAPERS.md: Criticality Aware Multiprocessors",
        claim="CDF under shared-LLC multicore contention "
              "(criticality-aware arbitration between cores).",
        unit="%", paper_value=0.0, status="planned",
        note="Single-core simulator today; needs a shared-LLC "
             "multicore harness."),
)

_BY_ID: Dict[str, FigureSpec] = {spec.fig_id: spec for spec in REGISTRY}


def get_spec(fig_id: str) -> FigureSpec:
    try:
        return _BY_ID[fig_id]
    except KeyError:
        known = ", ".join(sorted(_BY_ID))
        raise ValueError(
            f"unknown figure claim {fig_id!r}; known: {known}") from None


def implemented_specs() -> List[FigureSpec]:
    return [spec for spec in REGISTRY if spec.status == "implemented"]


# -------------------------------------------------------------- verdicts
def verdict(spec: FigureSpec, value: Optional[float]) -> str:
    """Classify a measured *value* against *spec*'s bands."""
    if spec.status != "implemented" or value is None:
        return PLANNED
    if spec.kind == "min":
        if value >= spec.paper_value:
            return MATCH
        if value >= spec.paper_value - spec.tolerance:
            return WITHIN
        return DIVERGED
    if spec.kind == "max":
        if value <= spec.paper_value:
            return MATCH
        if value <= spec.paper_value + spec.tolerance:
            return WITHIN
        return DIVERGED
    delta = abs(value - spec.paper_value)
    if delta <= spec.match_tol:
        return MATCH
    if delta <= spec.tolerance:
        return WITHIN
    return DIVERGED


@dataclass(frozen=True)
class ClaimResult:
    """One claim's measured value and verdict under one profile."""
    fig_id: str
    mode: str
    value: Optional[float]
    verdict: str
    scale: float
    names: Tuple[str, ...]

    @property
    def spec(self) -> FigureSpec:
        return get_spec(self.fig_id)

    def to_dict(self) -> dict:
        return {
            "value": (None if self.value is None
                      else round(self.value, 6)),
            "verdict": self.verdict,
            "scale": self.scale,
            "names": list(self.names),
        }


# ------------------------------------------------------------- execution
def run_claim(spec: FigureSpec, mode: str,
              seed: int = DEFAULT_SEED) -> ClaimResult:
    """Run one claim's metric under its *mode* profile."""
    if spec.status != "implemented":
        return ClaimResult(spec.fig_id, mode, None, PLANNED, 0.0, ())
    profile = spec.profile(mode)
    value = RUNNERS[spec.runner](profile, seed)
    return ClaimResult(spec.fig_id, mode, value, verdict(spec, value),
                       profile.scale, profile.names)


def run_figures(mode: str = "quick",
                fig_ids: Optional[Sequence[str]] = None,
                seed: int = DEFAULT_SEED,
                progress: Optional[Callable[[str], None]] = None,
                ) -> List[ClaimResult]:
    """Run the registry (or a ``fig_ids`` subset) and return one
    :class:`ClaimResult` per claim — planned claims included, so
    nothing is ever silently skipped."""
    if fig_ids:
        specs = [get_spec(fig_id) for fig_id in fig_ids]
    else:
        specs = list(REGISTRY)
    results = []
    for spec in specs:
        if progress is not None and spec.status == "implemented":
            profile = spec.profile(mode)
            what = (f"{spec.fig_id} [{mode}] scale={profile.scale} "
                    f"({len(profile.names)} kernels)"
                    if profile.names else f"{spec.fig_id} (analytic)")
            progress(what)
        results.append(run_claim(spec, mode, seed=seed))
    return results


def summarize(results: Sequence[ClaimResult]) -> Dict[str, int]:
    counts = {MATCH: 0, WITHIN: 0, DIVERGED: 0, PLANNED: 0}
    for result in results:
        counts[result.verdict] += 1
    return counts


def format_figures(results: Sequence[ClaimResult],
                   mode: str = "quick") -> str:
    """Render the per-claim verdict table the CLI prints."""
    rows = []
    for result in results:
        spec = result.spec
        measured = ("-" if result.value is None
                    else format_value(spec.unit, result.value))
        rows.append((spec.fig_id, spec.paper_ref, spec.paper_text(),
                     measured, result.verdict))
    counts = summarize(results)
    footer = ("TOTAL", "", "", "",
              f"{counts[MATCH]} match / {counts[WITHIN]} within / "
              f"{counts[DIVERGED]} diverged / {counts[PLANNED]} planned")
    return render_table(
        f"Paper parity — {mode.upper()} profile "
        f"(see docs/PAPER_VS_CODE.md)",
        ("claim", "paper ref", "paper", "measured", "verdict"),
        rows, footer)


def describe_registry() -> str:
    """The ``--list`` view: every claim with its profiles and bands."""
    rows = []
    for spec in REGISTRY:
        if spec.status != "implemented":
            rows.append((spec.fig_id, spec.paper_ref, spec.paper_text(),
                         "planned", "-"))
            continue
        quick = spec.profile("quick")
        shape = (f"{len(quick.names)} kernels @ {quick.scale}"
                 if quick.names else "analytic")
        band = (f"tol {format_value(spec.unit, spec.tolerance)}"
                if spec.kind != "value" else
                f"match +/-{spec.match_tol:g}, tol +/-{spec.tolerance:g}")
        rows.append((spec.fig_id, spec.paper_ref, spec.paper_text(),
                     shape, band))
    return render_table(
        "figure claim registry (quick profile shown; --full runs the "
        "18-kernel suite at scale 1.0)",
        ("claim", "paper ref", "paper", "quick profile", "band"), rows)


# ----------------------------------------------------- history + baseline
def bench_record(results: Sequence[ClaimResult], mode: str,
                 seed: int = DEFAULT_SEED) -> dict:
    """One BENCH_figures.json history record for this invocation."""
    return {
        "schema": SCHEMA_VERSION,
        "mode": mode,
        "seed": seed,
        "generated_unix": int(time.time()),
        "code": code_salt(),
        "summary": summarize(results),
        "claims": {result.fig_id: result.to_dict()
                   for result in results},
    }


def load_history(path: str = DEFAULT_BENCH_REPORT) -> List[dict]:
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return []
    if not isinstance(data, dict) or data.get("schema") != SCHEMA_VERSION:
        return []
    history = data.get("history", [])
    return history if isinstance(history, list) else []


def append_history(record: dict, path: str = DEFAULT_BENCH_REPORT,
                   keep: int = HISTORY_KEEP) -> List[dict]:
    """Append *record* to the bench file (newest last, capped)."""
    history = load_history(path)
    history.append(record)
    history = history[-keep:]
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"schema": SCHEMA_VERSION, "history": history},
                  handle, indent=2, sort_keys=True)
        handle.write("\n")
    return history


def baseline_record(record: dict) -> dict:
    """The pinned-baseline view of a bench record: values + verdicts
    only (timestamps and code salts are volatile by design)."""
    return {
        "schema": record["schema"],
        "mode": record["mode"],
        "seed": record["seed"],
        "claims": {
            fig_id: {"value": claim["value"], "verdict": claim["verdict"]}
            for fig_id, claim in record["claims"].items()
        },
    }


def write_baseline(record: dict, path: str = DEFAULT_BASELINE) -> dict:
    pinned = baseline_record(record)
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(pinned, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return pinned


def load_baseline(path: str = DEFAULT_BASELINE) -> Optional[dict]:
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def check_baseline(record: dict, baseline: dict) -> List[str]:
    """Diff a bench record against the pinned baseline.

    QUICK values are deterministic (fixed seed, engine-cached, no
    wall-clock in any metric), so the comparison is exact on the
    6-decimal rounded values; any drift means the model changed and the
    baseline must be re-pinned deliberately (``--write-baseline``).
    Returns human-readable drift lines; empty means clean.
    """
    problems: List[str] = []
    if baseline.get("schema") != record.get("schema"):
        return [f"baseline schema {baseline.get('schema')!r} != "
                f"current {record.get('schema')!r} — re-pin"]
    for key in ("mode", "seed"):
        if baseline.get(key) != record.get(key):
            return [f"baseline {key} {baseline.get(key)!r} != current "
                    f"{record.get(key)!r} — not comparable"]
    pinned = baseline.get("claims", {})
    current = record.get("claims", {})
    for fig_id in sorted(set(pinned) | set(current)):
        then = pinned.get(fig_id)
        now = current.get(fig_id)
        if then is None:
            problems.append(f"{fig_id}: not in baseline (new claim — "
                            "re-pin with --write-baseline)")
            continue
        if now is None:
            problems.append(f"{fig_id}: in baseline but not in this run")
            continue
        if then.get("verdict") != now.get("verdict"):
            problems.append(
                f"{fig_id}: verdict {then.get('verdict')} -> "
                f"{now.get('verdict')}")
        if then.get("value") != now.get("value"):
            problems.append(
                f"{fig_id}: value {then.get('value')} -> "
                f"{now.get('value')}")
    return problems


# ------------------------------------------------------------- claim map
GENERATED_BEGIN = ("<!-- BEGIN GENERATED: claim-map "
                   "(repro-sim figures --sync-doc) -->")
GENERATED_END = "<!-- END GENERATED: claim-map -->"


def render_claim_map() -> str:
    """The generated markdown table embedded in docs/PAPER_VS_CODE.md.

    One row per registered claim — including ``planned`` ones — with
    the paper reference, the paper's number, the verdict gate, and the
    exact command that reproduces it.  Regenerated by
    ``repro-sim figures --sync-doc``; hand edits inside the markers are
    overwritten.
    """
    lines = [
        "| claim | paper | paper value | verdict gate | status "
        "| reproduce |",
        "|---|---|---|---|---|---|",
    ]
    for spec in REGISTRY:
        if spec.status != "implemented":
            gate = "-"
            status = "planned"
            command = "-"
        else:
            if spec.kind == "value":
                gate = (f"match ±{spec.match_tol:g}, "
                        f"tolerance ±{spec.tolerance:g} {spec.unit}")
            else:
                bound = ">=" if spec.kind == "min" else "<="
                gate = (f"match {bound} {spec.paper_value:g}, "
                        f"tolerance {spec.tolerance:g} {spec.unit}")
            status = "implemented"
            command = f"`{spec.command}`"
        lines.append(
            f"| `{spec.fig_id}` | {spec.paper_ref} | {spec.paper_text()} "
            f"| {gate} | {status} | {command} |")
    return "\n".join(lines)


def sync_claim_map(path: str = DEFAULT_CLAIM_DOC) -> bool:
    """Rewrite the generated block in *path*; returns True if the file
    changed.  Raises if the markers are missing (the hand-annotated
    document owns everything outside them)."""
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    begin = text.find(GENERATED_BEGIN)
    end = text.find(GENERATED_END)
    if begin < 0 or end < 0 or end < begin:
        raise ValueError(f"{path} is missing the claim-map markers "
                         f"({GENERATED_BEGIN!r} ... {GENERATED_END!r})")
    head = text[:begin + len(GENERATED_BEGIN)]
    tail = text[end:]
    updated = head + "\n" + render_claim_map() + "\n" + tail
    if updated == text:
        return False
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(updated)
    return True
