"""Fault injection for the sweep service — characterize, don't just survive.

FRACTAL-style chaos layer for :mod:`repro.harness.service`: every fault
a sweep can experience is a first-class, *seeded, deterministic* event,
so a chaos run is exactly replayable and the service's recovery report
can be checked against the injected schedule fault-for-fault.

Fault kinds (``FaultSpec.kind``):

``kill_worker``
    The worker process dies (``os._exit``) around its ``at_job``-th job.
    ``phase`` picks the crash window: ``"before"`` (job never starts),
    ``"after_compute"`` (work wasted, nothing written — the pure
    redundant-work case), or ``"torn_write"`` (dies mid result write,
    leaving a truncated result file *and* a truncated cache entry — the
    adversarial case for the content-addressed stores).

``stall_heartbeat``
    The worker hangs: it stops processing and stops beating. The
    supervisor must detect the stale heartbeat, kill it, and requeue.

``drop_result``
    The worker "completes" a job but its result write is silently lost
    (write-to-dead-disk model). The batch-completion reconciliation
    must notice the hole and requeue exactly that job.

``corrupt_journal``
    Service-side: the ``record``-th journal append is byte-flipped on
    disk after its fsync. In-memory state is unaffected; the *next*
    replay must quarantine the record and still converge.

Worker-side faults target a worker **slot** and fire only in the slot's
first incarnation (a respawned replacement is healthy), so a schedule
of k kills causes exactly k deaths. Triggers count jobs started by the
process — never wall-clock — so schedules are machine-independent.

:meth:`FaultSchedule.seeded` places faults with a ``random.Random(seed)``
stream; the same seed, worker count, and counts give the same schedule
on every machine. See docs/harness.md#fault-injection-knobs.
"""

from __future__ import annotations

import os
import random
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = [
    "FaultSpec",
    "FaultSchedule",
    "WorkerFaultInjector",
    "JournalFaultInjector",
    "KIND_KILL",
    "KIND_STALL",
    "KIND_DROP",
    "KIND_CORRUPT_JOURNAL",
    "KILL_PHASES",
]

KIND_KILL = "kill_worker"
KIND_STALL = "stall_heartbeat"
KIND_DROP = "drop_result"
KIND_CORRUPT_JOURNAL = "corrupt_journal"

#: Crash windows for ``kill_worker``, in increasing adversarialness.
KILL_PHASES = ("before", "after_compute", "torn_write")

#: Exit status used for injected worker deaths (mirrors SIGKILL's 137).
KILL_EXIT_STATUS = 137


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault. Workers are addressed by slot index."""

    kind: str
    worker: int = -1          # worker slot (worker-side kinds)
    at_job: int = 0           # 0-based ordinal of the triggering job
    phase: str = "before"     # kill_worker crash window
    record: int = -1          # corrupt_journal: 1-based append ordinal

    def to_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultSpec":
        return cls(**{key: data[key] for key in
                      ("kind", "worker", "at_job", "phase", "record")
                      if key in data})

    def describe(self) -> str:
        if self.kind == KIND_CORRUPT_JOURNAL:
            return f"{self.kind}@record{self.record}"
        return f"{self.kind}@w{self.worker}/job{self.at_job}" + (
            f"/{self.phase}" if self.kind == KIND_KILL else "")


@dataclass
class FaultSchedule:
    """A replayable set of faults for one sweep."""

    specs: List[FaultSpec] = field(default_factory=list)
    seed: Optional[int] = None

    @classmethod
    def seeded(cls, seed: int, workers: int, kills: int = 0,
               stalls: int = 0, drops: int = 0,
               corrupt_journal: int = 0, max_job: int = 6,
               phases: Sequence[str] = KILL_PHASES) -> "FaultSchedule":
        """Place faults deterministically from *seed*.

        At most one worker-side fault lands per slot (a dead worker
        cannot also stall), so ``kills + stalls + drops`` must not
        exceed ``workers``. Journal corruptions target the service and
        have no such bound.
        """
        if kills + stalls + drops > workers:
            raise ValueError(
                f"{kills}+{stalls}+{drops} worker faults > "
                f"{workers} worker slots")
        rng = random.Random(seed)
        slots = list(range(workers))
        rng.shuffle(slots)
        specs: List[FaultSpec] = []
        for _ in range(kills):
            specs.append(FaultSpec(
                KIND_KILL, worker=slots.pop(), at_job=rng.randrange(max_job),
                phase=rng.choice(list(phases))))
        for _ in range(stalls):
            specs.append(FaultSpec(
                KIND_STALL, worker=slots.pop(),
                at_job=rng.randrange(max_job)))
        for _ in range(drops):
            specs.append(FaultSpec(
                KIND_DROP, worker=slots.pop(),
                at_job=rng.randrange(max_job)))
        for _ in range(corrupt_journal):
            # Early records exist for any non-trivial sweep: every job
            # contributes a submit record before anything else happens.
            specs.append(FaultSpec(
                KIND_CORRUPT_JOURNAL, record=1 + rng.randrange(
                    max(1, 2 * max_job))))
        return cls(specs=specs, seed=seed)

    # ------------------------------------------------------------ queries
    def for_worker(self, slot: int) -> List[FaultSpec]:
        return [spec for spec in self.specs
                if spec.worker == slot
                and spec.kind in (KIND_KILL, KIND_STALL, KIND_DROP)]

    def journal_records(self) -> List[int]:
        return sorted(spec.record for spec in self.specs
                      if spec.kind == KIND_CORRUPT_JOURNAL)

    def count(self, kind: str) -> int:
        return sum(1 for spec in self.specs if spec.kind == kind)

    # ------------------------------------------------------ serialization
    def to_dict(self) -> Dict:
        return {"seed": self.seed,
                "specs": [spec.to_dict() for spec in self.specs]}

    @classmethod
    def from_dict(cls, data: Dict) -> "FaultSchedule":
        return cls(seed=data.get("seed"),
                   specs=[FaultSpec.from_dict(item)
                          for item in data.get("specs", [])])

    def summary(self) -> Dict[str, int]:
        return {kind: self.count(kind)
                for kind in (KIND_KILL, KIND_STALL, KIND_DROP,
                             KIND_CORRUPT_JOURNAL)}

    def describe(self) -> str:
        if not self.specs:
            return "no faults"
        return ", ".join(spec.describe() for spec in self.specs)


# ---------------------------------------------------------------- workers
class WorkerFaultInjector:
    """Worker-side trigger evaluation.

    The worker consults the injector at two points per job: when the
    job is picked up (``on_job_start``) and after compute, before any
    write (``on_job_computed``). Returned actions are strings the
    worker loop acts on; ``None`` means proceed normally.
    """

    def __init__(self, specs: Sequence[FaultSpec]):
        self.specs = list(specs)
        self.jobs_started = 0

    def _matching(self, ordinal: int) -> Optional[FaultSpec]:
        for spec in self.specs:
            if spec.at_job == ordinal:
                return spec
        return None

    def on_job_start(self) -> Optional[str]:
        """Called as the worker picks up its next job; returns
        ``"kill"`` or ``"stall"`` for pre-compute faults."""
        ordinal = self.jobs_started
        self.jobs_started += 1
        spec = self._matching(ordinal)
        if spec is None:
            return None
        if spec.kind == KIND_KILL and spec.phase == "before":
            return "kill"
        if spec.kind == KIND_STALL:
            return "stall"
        return None

    def on_job_computed(self) -> Optional[str]:
        """Called after compute, before the result write; returns
        ``"kill"``, ``"torn_write"`` or ``"drop_result"``."""
        spec = self._matching(self.jobs_started - 1)
        if spec is None:
            return None
        if spec.kind == KIND_KILL:
            if spec.phase == "after_compute":
                return "kill"
            if spec.phase == "torn_write":
                return "torn_write"
        if spec.kind == KIND_DROP:
            return "drop_result"
        return None

    @staticmethod
    def die() -> None:
        """Injected death: no cleanup, no atexit, no flushing — the
        closest a cooperating process gets to SIGKILL."""
        os._exit(KILL_EXIT_STATUS)


# ---------------------------------------------------------------- journal
class JournalFaultInjector:
    """Service-side: corrupt the Nth journal append in place.

    Installed as ``Journal.post_append``; flips bytes in the middle of
    the just-fsynced line so the record's checksum no longer verifies.
    The in-memory service state is untouched — only a later replay
    observes the damage, which is exactly the bit-rot/partial-sector
    model the journal's checksums exist for.
    """

    def __init__(self, records: Sequence[int]):
        self.records = set(int(r) for r in records)
        self.corrupted = 0

    def __call__(self, journal, seq: int, offset: int,
                 length: int) -> None:
        if journal.appended not in self.records:
            return
        handle = journal._file()
        handle.flush()
        with open(journal.path, "r+b") as patch:
            patch.seek(offset + max(1, length // 2))
            patch.write(b"\xde\xad")
            patch.flush()
            os.fsync(patch.fileno())
        self.corrupted += 1
