"""Persistent compiled-trace cache.

Every simulation replays the same dynamic uop trace, but before this
module existed the trace only lived in a per-process dict: each engine
worker process (and every fresh CLI invocation) re-ran the functional
model to rebuild it, the single largest fixed cost of a sweep.  Real
trace-driven simulators (Scarab, uiCA) sidestep this by *compiling* the
trace once and shipping the compiled artifact; this module does the
same with a content-addressed on-disk store, mirroring the PR 1 result
cache design:

* **Content addressing** — an entry's key is the SHA-256 of its
  identity: workload ``(name, scale, seed)`` plus :func:`trace_salt`, a
  digest of the binary trace format version and every source file that
  can change what the functional model emits (``repro/isa`` and
  ``repro/workloads``).  Editing a kernel or the ISA silently
  invalidates its traces; editing the *timing* models does not, so
  traces survive most simulator work.

* **Serialization** — entries are the exact
  :func:`repro.isa.traceio.dumps_trace` byte form (binary, compact,
  byte-stable), written atomically (temp file + ``os.replace``).

* **Corruption safety** — a truncated, malformed, or
  version-incompatible entry is treated as a miss, deleted, and
  regenerated; the store is advisory and never fatal.

* **Layout** — ``<root>/<key[:2]>/<key>.trace`` under
  ``$REPRO_CACHE_DIR/traces`` (default ``~/.cache/repro-sim/traces``).
  Set ``REPRO_NO_TRACE_CACHE`` to a non-empty value to disable the
  store entirely (every run rebuilds functionally, like before).

:func:`repro.harness.runner.load_workload` consults the process-wide
default store, so engine workers deserialize the compiled trace instead
of re-running :class:`~repro.isa.functional.FunctionalMachine`.  See
docs/performance.md.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from typing import List, Optional

from ..isa.dynuop import DynUop
from ..isa import traceio

#: Set to a non-empty value to disable the persistent trace store.
NO_TRACE_CACHE_ENV = "REPRO_NO_TRACE_CACHE"

#: Bump to invalidate every stored trace regardless of code content.
TRACE_STORE_VERSION = "1"

_trace_salt_cache: Optional[str] = None


def trace_salt() -> str:
    """Digest of everything that determines a workload's dynamic trace.

    Folds in the trace-format version and the source of ``repro.isa``
    (functional model, ISA, serialization) and ``repro.workloads``
    (kernel generators).  Timing-model edits leave the salt unchanged —
    compiled traces deliberately outlive them.
    """
    global _trace_salt_cache  # simlint: disable=CONC001 pure digest of on-disk code, identical in every process
    if _trace_salt_cache is None:
        root = pathlib.Path(__file__).resolve().parent.parent
        digest = hashlib.sha256(
            f"{TRACE_STORE_VERSION}:{traceio.VERSION}".encode())
        for package in ("isa", "workloads"):
            for path in sorted((root / package).rglob("*.py")):
                digest.update(path.relative_to(root).as_posix().encode())
                digest.update(b"\0")
                digest.update(path.read_bytes())
        _trace_salt_cache = digest.hexdigest()[:16]
    return _trace_salt_cache


class TraceStore:
    """Content-addressed, crash-safe, on-disk store of compiled traces."""

    def __init__(self, root: Optional[os.PathLike] = None):
        if root is None:
            from .engine import default_cache_dir
            root = default_cache_dir() / "traces"
        self.root = pathlib.Path(root).expanduser()
        #: Per-process accounting (read by ``repro-sim perf`` and tests).
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------- keys
    @staticmethod
    def identity(name: str, scale: float, seed: int) -> dict:
        """The JSON-able dict that fully determines a stored trace."""
        return {
            "name": name,
            "scale": repr(float(scale)),
            "seed": int(seed),
            "salt": trace_salt(),
        }

    def key(self, name: str, scale: float, seed: int) -> str:
        """Content-addressed store key (SHA-256 hex)."""
        blob = json.dumps(self.identity(name, scale, seed),
                          sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.trace"

    # ------------------------------------------------------------ access
    def get(self, name: str, scale: float,
            seed: int) -> Optional[List[DynUop]]:
        """Deserialized trace, or None on miss/corruption (corrupt
        entries are deleted so the regenerated trace replaces them)."""
        path = self.path_for(self.key(name, scale, seed))
        try:
            data = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        try:
            trace = traceio.loads_trace(data, context=str(path))
        except traceio.TraceFormatError:
            # Truncated write, format drift, bit rot, ... — regenerate.
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return trace

    def put(self, name: str, scale: float, seed: int,
            trace: List[DynUop]) -> None:
        """Atomically persist *trace* (best-effort; never fatal)."""
        path = self.path_for(self.key(name, scale, seed))
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_name(path.name + f".tmp{os.getpid()}")
            tmp.write_bytes(traceio.dumps_trace(trace))
            os.replace(tmp, path)
        except OSError:
            pass                      # the store is advisory

    # --------------------------------------------------------- inventory
    def entries(self) -> List[pathlib.Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*/*.trace"))

    def stats(self) -> dict:
        entries = self.entries()
        return {
            "root": str(self.root),
            "entries": len(entries),
            "bytes": sum(path.stat().st_size for path in entries),
        }

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


# ------------------------------------------------------- default store
_default_store: Optional[TraceStore] = None


def trace_store_enabled() -> bool:
    """False when ``REPRO_NO_TRACE_CACHE`` is set to a non-empty value."""
    return not os.environ.get(NO_TRACE_CACHE_ENV)


def get_trace_store() -> TraceStore:
    """The process-wide default trace store.

    Re-rooted automatically whenever ``$REPRO_CACHE_DIR`` changes, so
    tests that repoint the cache directory get a matching store.
    """
    global _default_store  # simlint: disable=CONC001 store handle derived only from $REPRO_CACHE_DIR
    from .engine import default_cache_dir
    root = default_cache_dir() / "traces"
    if _default_store is None or _default_store.root != root:
        _default_store = TraceStore(root)
    return _default_store


def reset_trace_store() -> None:
    """Drop the default store (fresh hit/miss accounting)."""
    global _default_store
    _default_store = None
