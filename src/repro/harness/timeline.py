"""ASCII pipeline-timeline rendering on the obs event schema.

Turn a per-uop lifecycle event stream into a waterfall diagram (one row
per dynamic uop, one column per cycle) — the clearest way to *see*
Criticality Driven Fetch working: critical uops ('f'/'d') jump far ahead
of the non-critical stream and their loads issue long before their
program-order neighbours.

The event schema is :mod:`repro.obs.events` — ``(cycle, kind, seq)``
tuples with kinds from :data:`repro.obs.EVENT_KINDS` — which is exactly
what the pipelines' ``event_log`` emits and what
:class:`repro.obs.ObsCollector` records at obs_level 2, so the renderer
accepts either a raw event list (``pipeline.event_log``) or a collected
obs payload (``result.obs``); the Chrome-trace exporter and the run
report consume the same stream.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

#: Backwards-compatible alias for the shared schema's event tuple
#: (:data:`repro.obs.events.UopEvent`).  The schema module itself is
#: imported lazily inside the functions below: ``repro.harness`` pulls
#: this module in at import time, and the obs_level-0 contract
#: (docs/observability.md) promises ``repro.obs`` is never imported
#: unless telemetry is actually consumed.
Event = Tuple[int, str, int]


def _as_event_list(events: Union[Sequence[Event], dict, None]
                   ) -> Sequence[Event]:
    """Accept a raw event_log list or an ``SimResult.obs`` payload."""
    if events is None:
        return []
    if isinstance(events, dict):
        return events.get("uop_events", [])
    return events


def collect_events(event_log, first_seq: int, last_seq: int):
    """Group events by seq within [first_seq, last_seq].

    Thin wrapper over :func:`repro.obs.events.group_uop_events` kept for
    the established harness API; also accepts an obs payload dict.
    """
    from ..obs.events import group_uop_events
    return group_uop_events(_as_event_list(event_log), first_seq,
                            last_seq)


def render_timeline(event_log, trace,
                    first_seq: int, last_seq: int,
                    max_width: int = 110,
                    describe=None) -> str:
    """Render a waterfall for uops [first_seq, last_seq].

    ``event_log`` is a lifecycle event stream: a pipeline's
    ``event_log`` list or a collected ``result.obs`` payload (obs_level
    2).  ``describe(uop) -> str`` customises the row label (defaults to
    a short disassembly-ish tag).
    """
    per_seq = collect_events(event_log, first_seq, last_seq)
    if not per_seq:
        return ("(no events in range - did you set pipeline.event_log "
                "or run with obs_level=2?)")
    start_cycle = min(cycle for events in per_seq.values()
                      for cycle, _ in events)
    end_cycle = max(cycle for events in per_seq.values()
                    for cycle, _ in events)
    # Compress time if the window is wider than max_width columns.
    span = end_cycle - start_cycle + 1
    step = max(1, -(-span // max_width))
    columns = -(-span // step)

    def column(cycle: int) -> int:
        return (cycle - start_cycle) // step

    label_width = 26
    lines: List[str] = []
    header = (f"cycles {start_cycle}..{end_cycle}"
              + (f"  (1 column = {step} cycles)" if step > 1 else ""))
    lines.append(header)
    for seq in range(first_seq, last_seq + 1):
        events = sorted(per_seq.get(seq, []))
        row = [" "] * columns
        issue_col = complete_col = None
        for cycle, kind in events:
            col = column(cycle)
            if kind == "I":
                issue_col = col
            if kind == "C":
                complete_col = col
            row[col] = kind
        if issue_col is not None and complete_col is not None:
            for col in range(issue_col + 1, complete_col):
                if row[col] == " ":
                    row[col] = "="
        uop = trace[seq]
        if describe is not None:
            label = describe(uop)
        else:
            kind_tag = ("LD" if uop.is_load else "ST" if uop.is_store
                        else "BR" if uop.is_branch else "  ")
            label = f"#{seq} pc={uop.pc:<4d} {kind_tag}"
        lines.append(f"{label:<{label_width}}|{''.join(row)}|")
    lines.append("legend: F/f fetch  D/d rename  I issue  = exec  "
                 "C complete  p replay  R retire  (lowercase = critical "
                 "stream)")
    return "\n".join(lines)


def first_seq_at_pc(trace, pc: int, occurrence: int = 0) -> Optional[int]:
    """Find the seq of the n-th dynamic instance of static *pc*."""
    seen = 0
    for uop in trace:
        if uop.pc == pc:
            if seen == occurrence:
                return uop.seq
            seen += 1
    return None
