"""ASCII pipeline-timeline rendering.

Turn a pipeline's optional ``event_log`` into a per-uop waterfall diagram
(one row per dynamic uop, one column per cycle) — the clearest way to
*see* Criticality Driven Fetch working: critical uops ('f'/'d') jump far
ahead of the non-critical stream and their loads issue long before their
program-order neighbours.

Event characters: F fetch, D dispatch/rename, I issue, C complete,
R retire; CDF adds f (critical fetch), d (critical rename) and
p (rename replay). Between issue and completion the row is filled with
'=' (execution in flight).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

Event = Tuple[int, str, int]


def collect_events(event_log: Iterable[Event], first_seq: int,
                   last_seq: int):
    """Group events by seq within [first_seq, last_seq]."""
    per_seq = {}
    for cycle, kind, seq in event_log:
        if first_seq <= seq <= last_seq:
            per_seq.setdefault(seq, []).append((cycle, kind))
    return per_seq


def render_timeline(event_log: Sequence[Event], trace,
                    first_seq: int, last_seq: int,
                    max_width: int = 110,
                    describe=None) -> str:
    """Render a waterfall for uops [first_seq, last_seq].

    ``describe(uop) -> str`` customises the row label (defaults to a
    short disassembly-ish tag).
    """
    per_seq = collect_events(event_log, first_seq, last_seq)
    if not per_seq:
        return "(no events in range - did you set pipeline.event_log?)"
    start_cycle = min(cycle for events in per_seq.values()
                      for cycle, _ in events)
    end_cycle = max(cycle for events in per_seq.values()
                    for cycle, _ in events)
    # Compress time if the window is wider than max_width columns.
    span = end_cycle - start_cycle + 1
    step = max(1, -(-span // max_width))
    columns = -(-span // step)

    def column(cycle: int) -> int:
        return (cycle - start_cycle) // step

    label_width = 26
    lines: List[str] = []
    header = (f"cycles {start_cycle}..{end_cycle}"
              + (f"  (1 column = {step} cycles)" if step > 1 else ""))
    lines.append(header)
    for seq in range(first_seq, last_seq + 1):
        events = sorted(per_seq.get(seq, []))
        row = [" "] * columns
        issue_col = complete_col = None
        for cycle, kind in events:
            col = column(cycle)
            if kind == "I":
                issue_col = col
            if kind == "C":
                complete_col = col
            row[col] = kind
        if issue_col is not None and complete_col is not None:
            for col in range(issue_col + 1, complete_col):
                if row[col] == " ":
                    row[col] = "="
        uop = trace[seq]
        if describe is not None:
            label = describe(uop)
        else:
            kind_tag = ("LD" if uop.is_load else "ST" if uop.is_store
                        else "BR" if uop.is_branch else "  ")
            label = f"#{seq} pc={uop.pc:<4d} {kind_tag}"
        lines.append(f"{label:<{label_width}}|{''.join(row)}|")
    lines.append("legend: F/f fetch  D/d rename  I issue  = exec  "
                 "C complete  p replay  R retire  (lowercase = critical "
                 "stream)")
    return "\n".join(lines)


def first_seq_at_pc(trace, pc: int, occurrence: int = 0) -> Optional[int]:
    """Find the seq of the n-th dynamic instance of static *pc*."""
    seen = 0
    for uop in trace:
        if uop.pc == pc:
            if seen == occurrence:
                return uop.seq
            seen += 1
    return None
