"""ASCII rendering of experiment results in the paper's figure format."""

from __future__ import annotations

from typing import Iterable, Sequence


def render_table(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence], footer: Sequence = None) -> str:
    """Simple fixed-width table with a title rule."""
    rows = [tuple(str(c) for c in row) for row in rows]
    if footer is not None:
        footer = tuple(str(c) for c in footer)
    widths = [len(h) for h in headers]
    for row in rows + ([footer] if footer else []):
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(row):
        return "  ".join(cell.rjust(widths[i]) if i else cell.ljust(widths[i])
                         for i, cell in enumerate(row))

    rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
    lines = [title, rule, fmt(tuple(headers)), rule]
    lines.extend(fmt(row) for row in rows)
    if footer:
        lines.append(rule)
        lines.append(fmt(footer))
    lines.append(rule)
    return "\n".join(lines)


def percent(value: float, signed: bool = True) -> str:
    """Format a ratio as a percentage delta string."""
    delta = (value - 1.0) * 100.0
    return f"{delta:+.1f}%" if signed else f"{delta:.1f}%"


def ratio(value: float) -> str:
    return f"{value:.3f}"
