"""Fault-tolerant sweep service: durable queue, supervised workers.

PR 1's :class:`~repro.harness.engine.Engine` fans a job list over one
``ProcessPoolExecutor`` and forgets everything when the process exits.
This module is the long-running form ROADMAP item 1 asks for: an
event-driven service whose whole state machine is recoverable from
disk, whose workers are supervised and replaceable, and whose failure
behavior is *characterized* — every retry, requeue, and missed
heartbeat is attributed and reported, FRACTAL-style.

Architecture (all file-based; clients talk to the service through its
directory, no sockets):

* **Durable queue** — every submit/dispatch/done/requeue transition is
  appended to a checksummed journal (:mod:`repro.harness.journal`) and
  periodically folded into an atomic checkpoint. Jobs are
  content-addressed by the same :meth:`Job.key` the PR 1 result cache
  uses, so a restarted service resumes warm: completed jobs are served
  from the cache with zero recomputation, in-flight jobs are requeued.

* **Supervisor** — spawns worker processes (one dispatch directory and
  heartbeat file each), batches job dispatch, and watches both process
  liveness and heartbeat progress. A dead or hung worker is replaced
  and its incomplete batch is requeued against a per-job retry budget.

* **Workers** — pull batch files, execute jobs through the engine's
  ``JOB_KINDS`` registry, write results atomically (result file + the
  shared :class:`ResultCache`), and acknowledge batches with a
  completion marker the service reconciles against actual result
  files — which is how silently dropped writes are caught. Workers
  exit when their parent disappears, so a SIGKILLed service leaves no
  zombie fleet behind.

* **Fault injection** — a seeded :class:`FaultSchedule`
  (:mod:`repro.harness.faults`) can kill workers at chosen jobs, hang
  their heartbeats, drop or tear their result writes, and corrupt
  journal records; the :class:`RecoveryReport` counts what actually
  happened so chaos tests assert recovery *exactly* matches the
  schedule.

``ServiceEngine`` adapts the service to the engine interface
(``run(jobs) -> results``), and setting ``$REPRO_SERVICE_DIR`` routes
the default engine — and therefore every figure/sweep driver — through
a service instead of a process pool. See docs/harness.md#the-sweep-service.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import pathlib
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..stats import Counters
from .engine import (
    JOB_KINDS,
    NO_CACHE_ENV,
    SERVICE_DIR_ENV,
    EngineStats,
    Job,
    ResultCache,
    _execute_job,
    default_jobs,
    job_from_dict,
    job_to_dict,
)
from .faults import FaultSchedule, FaultSpec, JournalFaultInjector, \
    WorkerFaultInjector
from .journal import Journal, read_checkpoint, replay_journal, \
    write_checkpoint

__all__ = [
    "SweepService",
    "ServiceEngine",
    "RecoveryReport",
    "submit_to_inbox",
    "service_status",
    "worker_main",
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_MAX_ATTEMPTS",
    "REPORT_NAME",
]

DEFAULT_BATCH_SIZE = 4
DEFAULT_MAX_ATTEMPTS = 4
DEFAULT_HEARTBEAT_TIMEOUT = 5.0
DEFAULT_POLL = 0.05
#: Journal appends between checkpoints.
DEFAULT_CHECKPOINT_EVERY = 64
#: Service-loop ticks between queue-depth gauge samples.
GAUGE_EVERY_TICKS = 10
GAUGE_CAP = 2_000
REPORT_NAME = "recovery_report.json"

_JOB_STATES = ("pending", "running", "done", "failed")


# ------------------------------------------------------------ directories
class ServicePaths:
    """Layout of a service directory (the whole client protocol)."""

    def __init__(self, root: os.PathLike):
        self.root = pathlib.Path(root).expanduser()
        self.journal = self.root / "journal.jsonl"
        self.checkpoint = self.root / "checkpoint.json"
        self.inbox = self.root / "inbox"
        self.results = self.root / "results"
        self.dispatch = self.root / "dispatch"
        self.heartbeats = self.root / "hb"
        self.stop_flag = self.root / "stop"
        self.report = self.root / REPORT_NAME

    def ensure(self) -> None:
        for directory in (self.root, self.inbox, self.results,
                          self.dispatch, self.heartbeats):
            directory.mkdir(parents=True, exist_ok=True)

    def worker_dir(self, worker_id: str) -> pathlib.Path:
        return self.dispatch / worker_id


def _atomic_write_json(path: pathlib.Path, document: Dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + f".tmp{os.getpid()}")
    with open(tmp, "w") as handle:
        json.dump(document, handle, sort_keys=True)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def _read_json(path: pathlib.Path) -> Optional[Dict]:
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return None


# ------------------------------------------------------------------ events
@dataclass(frozen=True)
class Submitted:
    key: str
    job: Dict


@dataclass(frozen=True)
class ResultReady:
    key: str
    document: Dict


@dataclass(frozen=True)
class BatchDone:
    worker: str
    batch: int
    completed: List[str]


@dataclass(frozen=True)
class WorkerDied:
    worker: str
    slot: int
    exitcode: Optional[int]


@dataclass(frozen=True)
class HeartbeatStalled:
    worker: str
    slot: int
    stalled_seconds: float


# ------------------------------------------------------------------ client
def submit_to_inbox(directory: os.PathLike,
                    jobs: Sequence[Job]) -> List[str]:
    """Client side of submission: drop job files into ``inbox/``.

    Each file is written atomically and named by the job's cache key,
    so resubmitting is idempotent. Returns the keys in job order.
    """
    paths = ServicePaths(directory)
    paths.ensure()
    keys = []
    for job in jobs:
        key = job.key()
        keys.append(key)
        _atomic_write_json(paths.inbox / f"{key}.json",
                           {"key": key, "job": job_to_dict(job)})
    return keys


def service_status(directory: os.PathLike) -> Dict:
    """Read-only snapshot of a service directory (for ``repro-sim
    status``): folded queue counts, worker heartbeats, report if any.

    Never repairs or rewrites anything — safe to run concurrently with
    a live service.
    """
    paths = ServicePaths(directory)
    state: Dict[str, Dict] = {}
    checkpoint = read_checkpoint(paths.checkpoint)
    seq = 0
    if checkpoint:
        state.update(checkpoint.get("jobs", {}))
        seq = int(checkpoint.get("seq", 0))
    for record in replay_journal(paths.journal, repair=False).records:
        if record.get("n", 0) > seq:
            _fold_record(state, record)
    counts = {status: 0 for status in _JOB_STATES}
    for entry in state.values():
        counts[entry["status"]] = counts.get(entry["status"], 0) + 1
    inbox = sorted(paths.inbox.glob("*.json")) \
        if paths.inbox.is_dir() else []
    heartbeats = {}
    if paths.heartbeats.is_dir():
        for hb_path in sorted(paths.heartbeats.glob("*.json")):
            document = _read_json(hb_path)
            if document:
                heartbeats[document.get("worker", hb_path.stem)] = \
                    document
    return {
        "directory": str(paths.root),
        "jobs": counts,
        "inbox": len(inbox),
        "workers": heartbeats,
        "report": _read_json(paths.report),
    }


def _fold_record(state: Dict[str, Dict], record: Dict) -> None:
    """Apply one journal record to the folded job-state map.

    Records are idempotent: folding a duplicate or a stale transition
    (e.g. a second ``done`` after a requeue raced a late result) leaves
    a consistent state, which is what makes quarantining corrupt
    records safe.
    """
    kind = record.get("type")
    key = record.get("key")
    if kind == "submit" and key:
        if key not in state:
            state[key] = {"job": record.get("job"), "status": "pending",
                          "attempts": 0, "worker": None,
                          "source": None, "fp": None}
    elif key not in state:
        return
    elif kind == "dispatch":
        entry = state[key]
        if entry["status"] == "pending":
            entry["status"] = "running"
            entry["worker"] = record.get("worker")
            entry["attempts"] = int(entry.get("attempts", 0)) + 1
    elif kind == "done":
        entry = state[key]
        if entry["status"] != "done":
            entry["status"] = "done"
            entry["source"] = record.get("source")
            entry["fp"] = record.get("fp")
            entry["worker"] = record.get("worker", entry.get("worker"))
    elif kind == "requeue":
        entry = state[key]
        if entry["status"] == "running":
            entry["status"] = "pending"
            entry["worker"] = None
    elif kind == "failed":
        entry = state[key]
        if entry["status"] != "done":
            entry["status"] = "failed"


# ---------------------------------------------------------------- report
@dataclass
class RecoveryReport:
    """What happened to a sweep, fault by fault (EngineStats' sibling).

    ``counters`` carries the ``service_*`` keys registered in
    :mod:`repro.stats.registry`; the scalar fields are derived views
    the CLI table and CI assertions read directly.
    """

    jobs_submitted: int = 0
    jobs_completed: int = 0
    jobs_executed: int = 0            # fresh simulations, either side
    jobs_from_cache: int = 0          # service- or worker-side hits
    jobs_failed: int = 0
    worker_deaths: int = 0
    heartbeats_missed: int = 0
    results_dropped: int = 0          # holes found by reconciliation
    requeues: int = 0                 # jobs returned to pending
    retries: int = 0                  # re-dispatches past attempt 1
    redundant_results: int = 0        # late results for done jobs
    journal_replays: int = 0
    journal_corrupt_records: int = 0
    checkpoints: int = 0
    batches_dispatched: int = 0
    wall_seconds: float = 0.0
    wall_job_seconds: float = 0.0     # summed worker-side compute time
    mean_time_to_requeue_s: float = 0.0
    max_time_to_requeue_s: float = 0.0
    faults_injected: Dict[str, int] = field(default_factory=dict)
    gauges: List[Dict] = field(default_factory=list)
    gauges_dropped: int = 0

    def to_dict(self) -> Dict:
        return {
            "schema": 1,
            "jobs": {
                "submitted": self.jobs_submitted,
                "completed": self.jobs_completed,
                "executed": self.jobs_executed,
                "from_cache": self.jobs_from_cache,
                "failed": self.jobs_failed,
            },
            "recovery": {
                "worker_deaths": self.worker_deaths,
                "heartbeats_missed": self.heartbeats_missed,
                "results_dropped": self.results_dropped,
                "requeues": self.requeues,
                "retries": self.retries,
                "redundant_results": self.redundant_results,
                "journal_replays": self.journal_replays,
                "journal_corrupt_records": self.journal_corrupt_records,
                "mean_time_to_requeue_s": self.mean_time_to_requeue_s,
                "max_time_to_requeue_s": self.max_time_to_requeue_s,
            },
            "service": {
                "checkpoints": self.checkpoints,
                "batches_dispatched": self.batches_dispatched,
                "wall_seconds": self.wall_seconds,
            },
            "faults_injected": dict(self.faults_injected),
            "gauges": list(self.gauges),
            "gauges_dropped": self.gauges_dropped,
        }

    def summary(self) -> str:
        return (f"service: {self.jobs_completed}/{self.jobs_submitted} "
                f"jobs ({self.jobs_executed} executed, "
                f"{self.jobs_from_cache} cache), "
                f"{self.worker_deaths} worker deaths, "
                f"{self.heartbeats_missed} stalls, "
                f"{self.requeues} requeues, {self.retries} retries, "
                f"{self.wall_seconds:.1f}s wall")


# ---------------------------------------------------------------- workers
def worker_main(worker_id: str, root: str, cache_dir: Optional[str],
                use_cache: bool, fault_specs: List[Dict],
                parent_pid: int, poll: float) -> None:
    """Worker-process entry point: pull batches, run jobs, ack.

    The worker is a pure function of the batches it is handed (plus the
    shared content-addressed caches): it holds no cross-job state, and
    every observable write — result file, cache entry, completion
    marker — is atomic. It exits when the stop flag appears, or
    immediately when its parent dies (``getppid`` changes), so a
    SIGKILLed service cannot leak a working fleet.
    """
    paths = ServicePaths(root)
    my_dir = paths.worker_dir(worker_id)
    hb_path = paths.heartbeats / f"{worker_id}.json"
    injector = WorkerFaultInjector(
        [FaultSpec.from_dict(item) for item in fault_specs])
    cache = ResultCache(cache_dir) if use_cache else None
    beat = 0
    jobs_done = 0
    idle_polls = 0
    hb_idle_every = max(1, int(0.5 / poll))

    def heartbeat(current: Optional[str]) -> None:
        _atomic_write_json(hb_path, {
            "worker": worker_id, "beat": beat, "jobs_done": jobs_done,
            "current": current})

    heartbeat(None)
    while True:
        if os.getppid() != parent_pid:
            os._exit(0)                      # orphaned: service is gone
        batch_path = _next_batch(my_dir)
        if batch_path is None:
            if paths.stop_flag.exists():
                os._exit(0)
            idle_polls += 1
            if idle_polls % hb_idle_every == 0:
                beat += 1
                heartbeat(None)
            time.sleep(poll)
            continue
        batch = _read_json(batch_path)
        if batch is None:                    # torn dispatch: let the
            time.sleep(poll)                 # service notice and requeue
            continue
        completed: List[str] = []
        for item in batch["jobs"]:
            key = item["key"]
            action = injector.on_job_start()
            if action == "kill":
                injector.die()
            if action == "stall":
                while True:                  # simulated hang: no beats,
                    time.sleep(poll)         # no progress, no exit
            job = job_from_dict(item["job"])
            result = cache.get(job) if cache is not None else None
            executed = result is None
            if executed:
                result, seconds = _execute_job(job)
            else:
                seconds = 0.0
            encoded = JOB_KINDS[job.kind].encode(result)
            document = {"key": key, "kind": job.kind,
                        "worker": worker_id, "executed": executed,
                        "seconds": seconds, "payload": encoded}
            action = injector.on_job_computed()
            if action == "torn_write":
                _torn_writes(paths, cache, job, key, document)
                injector.die()
            if action == "kill":
                injector.die()
            if action != "drop_result":
                if executed and cache is not None:
                    cache.put(job, result)
                _atomic_write_json(paths.results / f"{key}.json",
                                   document)
            completed.append(key)            # worker *believes* it wrote
            jobs_done += 1
            beat += 1
            heartbeat(key)
        _atomic_write_json(
            batch_path.with_suffix(".done"),
            {"batch": batch["batch"], "completed": completed})
        try:
            batch_path.unlink()
        except OSError:
            pass


def _next_batch(worker_dir: pathlib.Path) -> Optional[pathlib.Path]:
    if not worker_dir.is_dir():
        return None
    batches = sorted(worker_dir.glob("batch-*.json"))
    return batches[0] if batches else None


def _torn_writes(paths: ServicePaths, cache: Optional[ResultCache],
                 job: Job, key: str, document: Dict) -> None:
    """The ``torn_write`` crash window: half-written result file and
    half-written cache entry, as a crash mid-write would leave on a
    filesystem without atomic-rename durability. Both stores must
    detect and recover from exactly this."""
    blob = json.dumps(document, sort_keys=True)
    torn = blob[: len(blob) // 2]
    (paths.results / f"{key}.json").write_text(torn)
    if cache is not None:
        entry = cache.path_for(job.key())
        entry.parent.mkdir(parents=True, exist_ok=True)
        entry.write_text(torn)


# ---------------------------------------------------------------- service
class _WorkerHandle:
    """Supervisor-side view of one worker process."""

    def __init__(self, slot: int, incarnation: int,
                 process: multiprocessing.Process):
        self.slot = slot
        self.incarnation = incarnation
        self.process = process
        self.worker_id = f"w{slot}.{incarnation}"
        self.batch: Optional[int] = None      # outstanding batch id
        self.batch_keys: List[str] = []
        self.last_beat: int = -1
        self.last_progress: float = time.monotonic()


class SweepService:
    """The long-running sweep service (see module docstring).

    Parameters
    ----------
    directory:
        Service directory: journal, checkpoint, inbox, per-worker
        dispatch queues, heartbeats, results, recovery report.
    workers:
        Worker-process count; ``None`` reads ``$REPRO_JOBS``.
    batch_size:
        Jobs dispatched per batch file (amortizes scheduling and keeps
        the requeue blast radius of one death bounded).
    heartbeat_timeout:
        Seconds without observable worker progress (while a batch is
        outstanding) before the supervisor declares a stall, kills the
        worker, and requeues its batch.
    max_attempts:
        Per-job retry budget; a job dispatched this many times without
        completing is marked failed instead of requeued.
    faults:
        Optional :class:`FaultSchedule` for chaos runs.
    use_cache:
        Route results through the shared content-addressed
        :class:`ResultCache` (warm restarts require it).
    progress:
        Optional callable receiving one line per notable event.
    """

    def __init__(self, directory: os.PathLike,
                 workers: Optional[int] = None,
                 batch_size: int = DEFAULT_BATCH_SIZE,
                 heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                 poll: float = DEFAULT_POLL,
                 checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
                 faults: Optional[FaultSchedule] = None,
                 use_cache: bool = True,
                 cache: Optional[ResultCache] = None,
                 progress: Optional[Callable[[str], None]] = None):
        self.paths = ServicePaths(directory)
        self.paths.ensure()
        self.workers = default_jobs() if workers is None \
            else max(1, int(workers))
        self.batch_size = max(1, int(batch_size))
        self.heartbeat_timeout = float(heartbeat_timeout)
        self.max_attempts = max(1, int(max_attempts))
        self.poll = float(poll)
        self.checkpoint_every = max(1, int(checkpoint_every))
        self.faults = faults or FaultSchedule()
        self.use_cache = bool(use_cache)
        self.cache = cache if cache is not None else ResultCache()
        self.progress = progress
        self.counters = Counters()
        self.report = RecoveryReport(
            faults_injected=self.faults.summary())
        self._state: Dict[str, Dict] = {}
        self._results: Dict[str, object] = {}
        self._handles: List[_WorkerHandle] = []
        self._next_batch_id = 1
        self._requeue_latencies: List[float] = []
        self._ticks = 0
        self._appends_since_checkpoint = 0
        self._recover()
        self.journal = Journal(self.paths.journal,
                               next_seq=self._recovered_seq + 1)
        records = self.faults.journal_records()
        if records:
            self.journal.post_append = JournalFaultInjector(records)

    # ------------------------------------------------------------ recovery
    def _recover(self) -> None:
        """Fold checkpoint + journal into memory; requeue in-flight
        jobs; verify done jobs are actually recoverable."""
        checkpoint = read_checkpoint(self.paths.checkpoint)
        seq = 0
        if checkpoint:
            self._state = dict(checkpoint.get("jobs", {}))
            seq = int(checkpoint.get("seq", 0))
            self._next_batch_id = int(checkpoint.get("next_batch", 1))
        replay = replay_journal(self.paths.journal)
        for record in replay.records:
            if record.get("n", 0) > seq:
                _fold_record(self._state, record)
        self._recovered_seq = max(seq, replay.next_seq - 1)
        if checkpoint or replay.records or replay.corrupt_records \
                or replay.torn_tail:
            self.counters.bump("service_journal_replays")
        corrupt = replay.corrupt_records + (1 if replay.torn_tail else 0)
        self.report.journal_corrupt_records += corrupt
        # Fold results any previous incarnation's workers left behind.
        self._scan_results(journal=False)
        for key, entry in self._state.items():
            if entry["status"] == "running":
                # The service died with this job in flight.
                entry["status"] = "pending"
                entry["worker"] = None
            elif entry["status"] == "done" and key not in self._results:
                # Recoverable only through the cache; otherwise redo.
                cached = self.cache.get(_job_of(entry)) \
                    if self.use_cache else None
                if cached is None:
                    entry["status"] = "pending"
                    entry["source"] = None
                else:
                    # Warm resume: completed in a previous incarnation,
                    # served with zero recomputation.
                    self._results[key] = cached
                    self.counters.bump("service_jobs_completed")
                    self.counters.bump("service_cache_hits")
                    self.report.jobs_completed += 1
                    self.report.jobs_from_cache += 1
        self._clean_runtime_dirs()

    def _clean_runtime_dirs(self) -> None:
        for stale in self.paths.dispatch.glob("w*/batch-*"):
            try:
                stale.unlink()
            except OSError:
                pass
        for stale in self.paths.heartbeats.glob("*.json"):
            try:
                stale.unlink()
            except OSError:
                pass
        try:
            self.paths.stop_flag.unlink()
        except OSError:
            pass

    # ---------------------------------------------------------- submission
    def submit_jobs(self, jobs: Sequence[Job]) -> List[str]:
        """Submit *jobs* directly (in-process client); returns keys."""
        keys = []
        for job in jobs:
            keys.append(self._submit(job.key(), job_to_dict(job)))
        return keys

    def _submit(self, key: str, job_dict: Dict) -> str:
        if key not in self._state:
            self.journal.append("submit", key=key, job=job_dict)
            _fold_record(self._state, {"type": "submit", "key": key,
                                       "job": job_dict})
            self.counters.bump("service_jobs_submitted")
            self._note_append()
        return key

    def _scan_inbox(self) -> List[Submitted]:
        events = []
        for path in sorted(self.paths.inbox.glob("*.json")):
            document = _read_json(path)
            if document and "key" in document and "job" in document:
                events.append(Submitted(document["key"],
                                        document["job"]))
            try:
                path.unlink()
            except OSError:
                continue
        return events

    # ------------------------------------------------------------- events
    def _scan_results(self, journal: bool = True) -> List[ResultReady]:
        events = []
        for path in sorted(self.paths.results.glob("*.json")):
            document = _read_json(path)
            if document is None:
                # Torn result write (crash window): quarantine by
                # deletion — the job is still pending/running and will
                # be recomputed; nothing is lost but wasted work.
                try:
                    path.unlink()
                except OSError:
                    pass
                continue
            event = ResultReady(document["key"], document)
            events.append(event)
            self._handle_result(event, journal=journal)
            try:
                path.unlink()
            except OSError:
                pass
        return events

    def _handle_result(self, event: ResultReady,
                       journal: bool = True) -> None:
        entry = self._state.get(event.key)
        if entry is None:
            return                             # result for unknown job
        if entry["status"] == "done":
            self.counters.bump("service_redundant_results")
            return
        document = event.document
        kind = document.get("kind", "sim")
        try:
            result = JOB_KINDS[kind].decode(document["payload"])
        except Exception:
            return                             # undecodable: recompute
        self._results[event.key] = result
        source = "worker" if document.get("executed") else "cache"
        fingerprint = getattr(result, "fingerprint", None)
        fp = fingerprint() if callable(fingerprint) else None
        if journal:
            self.journal.append("done", key=event.key, source=source,
                                worker=document.get("worker"), fp=fp)
            self._note_append()
        _fold_record(self._state, {"type": "done", "key": event.key,
                                   "source": source, "fp": fp,
                                   "worker": document.get("worker")})
        self.counters.bump("service_jobs_completed")
        if document.get("executed"):
            self.counters.bump("service_jobs_executed")
            self.report.jobs_executed += 1
            self.report.wall_job_seconds += \
                float(document.get("seconds", 0.0))
        else:
            self.counters.bump("service_cache_hits")
            self.report.jobs_from_cache += 1
        self.report.jobs_completed += 1
        if self.progress is not None and entry.get("attempts", 0) > 1:
            self.progress(f"recovered {event.key[:12]} on attempt "
                          f"{entry['attempts']}")

    def _scan_batch_markers(self) -> List[BatchDone]:
        """Reconcile completion markers against actual results: a key
        the worker believes it completed but whose result never arrived
        is a dropped write — requeue exactly that job."""
        events = []
        for handle in self._handles:
            worker_dir = self.paths.worker_dir(handle.worker_id)
            for marker in sorted(worker_dir.glob("batch-*.done")):
                document = _read_json(marker)
                if document is None:
                    continue
                event = BatchDone(handle.worker_id,
                                  int(document.get("batch", -1)),
                                  list(document.get("completed", [])))
                events.append(event)
                self._handle_batch_done(handle, event)
                try:
                    marker.unlink()
                except OSError:
                    pass
        return events

    def _handle_batch_done(self, handle: _WorkerHandle,
                           event: BatchDone) -> None:
        if handle.batch != event.batch:
            return                              # stale marker
        # The worker wrote results strictly before this marker, but
        # both may have landed since this tick's result scan — rescan
        # so only genuinely missing results count as dropped writes.
        self._scan_results()
        for key in handle.batch_keys:
            entry = self._state.get(key)
            if entry is None or entry["status"] != "running" \
                    or entry.get("worker") != handle.worker_id:
                continue
            self.counters.bump("service_results_dropped")
            self.report.results_dropped += 1
            self._requeue(key, "result-dropped")
        handle.batch = None
        handle.batch_keys = []
        handle.last_progress = time.monotonic()

    # --------------------------------------------------------- supervision
    def _spawn(self, slot: int, incarnation: int) -> _WorkerHandle:
        worker_id = f"w{slot}.{incarnation}"
        self.paths.worker_dir(worker_id).mkdir(parents=True,
                                               exist_ok=True)
        specs = [spec.to_dict() for spec in self.faults.for_worker(slot)
                 ] if incarnation == 0 else []
        process = multiprocessing.Process(
            target=worker_main,
            kwargs={"worker_id": worker_id,
                    "root": str(self.paths.root),
                    "cache_dir": str(self.cache.root),
                    "use_cache": self.use_cache,
                    "fault_specs": specs,
                    "parent_pid": os.getpid(),
                    "poll": self.poll},
            daemon=True, name=f"repro-sweep-{worker_id}")
        process.start()
        handle = _WorkerHandle(slot, incarnation, process)
        if self.progress is not None:
            self.progress(f"worker {worker_id} up (pid {process.pid})")
        return handle

    def _start_workers(self) -> None:
        if not self._handles:
            self._handles = [self._spawn(slot, 0)
                             for slot in range(self.workers)]

    def _stop_workers(self) -> None:
        self.paths.stop_flag.write_text("stop\n")
        deadline = time.monotonic() + max(1.0, 40 * self.poll)
        for handle in self._handles:
            handle.process.join(max(0.0,
                                    deadline - time.monotonic()))
        for handle in self._handles:
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(1.0)
        self._handles = []

    def _poll_supervision(self) -> List[object]:
        """Liveness + heartbeat progress for every worker slot."""
        events: List[object] = []
        now = time.monotonic()
        for index, handle in enumerate(self._handles):
            beat = self._read_beat(handle)
            if beat != handle.last_beat:
                handle.last_beat = beat
                handle.last_progress = now
            if not handle.process.is_alive():
                event = WorkerDied(handle.worker_id, handle.slot,
                                   handle.process.exitcode)
                events.append(event)
                self._handle_worker_died(index, handle, now)
            elif handle.batch is not None and \
                    now - handle.last_progress > self.heartbeat_timeout:
                event = HeartbeatStalled(
                    handle.worker_id, handle.slot,
                    now - handle.last_progress)
                events.append(event)
                self.counters.bump("service_heartbeats_missed")
                self.report.heartbeats_missed += 1
                handle.process.kill()
                handle.process.join(1.0)
                self._handle_worker_died(index, handle, now,
                                         cause="heartbeat-stall")
        return events

    def _read_beat(self, handle: _WorkerHandle) -> int:
        document = _read_json(
            self.paths.heartbeats / f"{handle.worker_id}.json")
        return int(document.get("beat", -1)) if document else -1

    def _handle_worker_died(self, index: int, handle: _WorkerHandle,
                            now: float, cause: str = "worker-death"
                            ) -> None:
        if cause == "worker-death":
            self.counters.bump("service_worker_deaths")
            self.report.worker_deaths += 1
        if self.progress is not None:
            self.progress(f"worker {handle.worker_id} lost ({cause}), "
                          f"requeueing {len(handle.batch_keys)} job(s)")
        # Late results the worker wrote before dying are folded first,
        # so only genuinely incomplete jobs are requeued.
        self._scan_results()
        for key in handle.batch_keys:
            entry = self._state.get(key)
            if entry is not None and entry["status"] == "running" \
                    and entry.get("worker") == handle.worker_id:
                self._requeue(key, cause)
        self._requeue_latencies.append(now - handle.last_progress)
        self._handles[index] = self._spawn(handle.slot,
                                           handle.incarnation + 1)

    def _requeue(self, key: str, reason: str) -> None:
        entry = self._state[key]
        if entry.get("attempts", 0) >= self.max_attempts:
            self.journal.append("failed", key=key, reason=reason)
            _fold_record(self._state, {"type": "failed", "key": key})
            self.report.jobs_failed += 1
            self._note_append()
            return
        self.journal.append("requeue", key=key, reason=reason)
        _fold_record(self._state, {"type": "requeue", "key": key})
        self.counters.bump("service_requeues")
        self.report.requeues += 1
        self._note_append()

    # ------------------------------------------------------------ dispatch
    def _dispatch(self) -> None:
        pending = [key for key, entry in self._state.items()
                   if entry["status"] == "pending"]
        if not pending:
            return
        cursor = 0
        for handle in self._handles:
            if handle.batch is not None:
                continue
            batch_keys: List[str] = []
            while cursor < len(pending) and \
                    len(batch_keys) < self.batch_size:
                key = pending[cursor]
                cursor += 1
                if self._complete_from_cache(key):
                    continue
                batch_keys.append(key)
            if not batch_keys:
                continue
            batch_id = self._next_batch_id
            self._next_batch_id += 1
            for key in batch_keys:
                entry = self._state[key]
                self.journal.append("dispatch", key=key,
                                    worker=handle.worker_id,
                                    batch=batch_id)
                _fold_record(self._state,
                             {"type": "dispatch", "key": key,
                              "worker": handle.worker_id,
                              "batch": batch_id})
                self._note_append()
                if entry["attempts"] > 1:
                    self.counters.bump("service_retries")
                    self.report.retries += 1
            _atomic_write_json(
                self.paths.worker_dir(handle.worker_id)
                / f"batch-{batch_id:06d}.json",
                {"batch": batch_id,
                 "jobs": [{"key": key,
                           "job": self._state[key]["job"]}
                          for key in batch_keys]})
            handle.batch = batch_id
            handle.batch_keys = batch_keys
            handle.last_progress = time.monotonic()
            self.counters.bump("service_batches_dispatched")
            self.report.batches_dispatched += 1

    def _complete_from_cache(self, key: str) -> bool:
        """Serve a pending job from the result cache without dispatch
        (the warm-restart path: completed work is never redone)."""
        if not self.use_cache:
            return False
        entry = self._state[key]
        result = self.cache.get(_job_of(entry))
        if result is None:
            return False
        self._results[key] = result
        fingerprint = getattr(result, "fingerprint", None)
        fp = fingerprint() if callable(fingerprint) else None
        self.journal.append("done", key=key, source="cache", fp=fp)
        _fold_record(self._state, {"type": "done", "key": key,
                                   "source": "cache", "fp": fp})
        self.counters.bump("service_jobs_completed")
        self.counters.bump("service_cache_hits")
        self.report.jobs_completed += 1
        self.report.jobs_from_cache += 1
        self._note_append()
        return True

    # ---------------------------------------------------------- checkpoint
    def _note_append(self) -> None:
        self._appends_since_checkpoint += 1
        if self._appends_since_checkpoint >= self.checkpoint_every:
            self._checkpoint()

    def _checkpoint(self) -> None:
        write_checkpoint(self.paths.checkpoint, {
            "seq": self.journal.next_seq - 1,
            "next_batch": self._next_batch_id,
            "jobs": self._state,
        })
        self._appends_since_checkpoint = 0
        self.counters.bump("service_checkpoints")
        self.report.checkpoints += 1

    # -------------------------------------------------------------- gauges
    def _sample_gauges(self, force: bool = False) -> None:
        if self._ticks % GAUGE_EVERY_TICKS and not force:
            return
        if len(self.report.gauges) >= GAUGE_CAP:
            self.report.gauges_dropped += 1
            return
        counts = {status: 0 for status in _JOB_STATES}
        for entry in self._state.values():
            counts[entry["status"]] += 1
        self.report.gauges.append({
            "tick": self._ticks,
            "pending": counts["pending"],
            "running": counts["running"],
            "done": counts["done"],
            "failed": counts["failed"],
            "workers_alive": sum(
                1 for handle in self._handles
                if handle.process.is_alive()),
        })

    # ------------------------------------------------------------ main loop
    def _drained(self) -> bool:
        return not any(entry["status"] in ("pending", "running")
                       for entry in self._state.values())

    def _tick(self) -> bool:
        self._ticks += 1
        progressed = False
        for submitted in self._scan_inbox():
            self._submit(submitted.key, submitted.job)
            progressed = True
        progressed |= bool(self._scan_results())
        progressed |= bool(self._scan_batch_markers())
        progressed |= bool(self._poll_supervision())
        self._dispatch()
        self._sample_gauges()
        return progressed

    async def _run_async(self, once: bool) -> None:
        start = time.perf_counter()
        self._start_workers()
        try:
            while True:
                progressed = self._tick()
                if once and self._drained():
                    break
                await asyncio.sleep(0 if progressed else self.poll)
        finally:
            self._stop_workers()
            self.report.wall_seconds += time.perf_counter() - start
            self._finish()

    def _finish(self) -> None:
        self._checkpoint()
        if self._drained():
            # Clean drain: every job is folded into the checkpoint and
            # the caches, so the journal can be compacted away.
            self.journal.reset()
            self.journal.next_seq = 1
            write_checkpoint(self.paths.checkpoint, {
                "seq": 0, "next_batch": self._next_batch_id,
                "jobs": self._state})
        self.journal.close()
        self._finalize_report()
        _atomic_write_json(self.paths.report, self.report.to_dict())

    def _finalize_report(self) -> None:
        # Terminal queue-depth sample so even a sweep shorter than the
        # sampling interval reports its end state.
        self._sample_gauges(force=True)
        report = self.report
        counters = self.counters
        report.jobs_submitted = len(self._state)
        report.journal_replays = counters["service_journal_replays"]
        report.redundant_results = counters["service_redundant_results"]
        if self._requeue_latencies:
            report.mean_time_to_requeue_s = (
                sum(self._requeue_latencies)
                / len(self._requeue_latencies))
            report.max_time_to_requeue_s = max(self._requeue_latencies)

    # -------------------------------------------------------------- public
    def drain(self) -> Dict[str, object]:
        """Run until every submitted job is done or failed; returns
        ``{key: result}`` for completed jobs."""
        asyncio.run(self._run_async(once=True))
        # Results completed in a previous incarnation are fetched
        # lazily from the cache.
        for key, entry in self._state.items():
            if entry["status"] == "done" and key not in self._results:
                cached = self.cache.get(_job_of(entry))
                if cached is not None:
                    self._results[key] = cached
        return dict(self._results)

    def serve_forever(self) -> None:
        """Run until interrupted (``repro-sim serve`` without
        ``--once``); drains the queue and keeps watching the inbox."""
        try:
            asyncio.run(self._run_async(once=False))
        except KeyboardInterrupt:
            pass          # cleanup already ran in _run_async's finally

    def failed_keys(self) -> List[str]:
        return [key for key, entry in self._state.items()
                if entry["status"] == "failed"]


def _job_of(entry: Dict) -> Job:
    return job_from_dict(entry["job"])


# ----------------------------------------------------------- engine shim
class ServiceEngine:
    """Engine-interface adapter over :class:`SweepService`.

    Satisfies the same contract as :class:`repro.harness.engine.Engine`
    — ``run(jobs)`` returns results in submission order, ``stats``
    accumulates, ``summary()`` renders one line — so every figure and
    sweep driver can be pointed at a durable service by setting
    ``$REPRO_SERVICE_DIR`` (see :func:`repro.harness.engine.configure`).
    """

    def __init__(self, directory: Optional[os.PathLike] = None,
                 jobs: Optional[int] = None,
                 use_cache: Optional[bool] = None,
                 cache: Optional[ResultCache] = None,
                 progress: Optional[Callable[[str], None]] = None,
                 **service_options):
        if directory is None:
            directory = os.environ.get(SERVICE_DIR_ENV)
        if not directory:
            raise ValueError(
                f"ServiceEngine needs a directory (argument or "
                f"${SERVICE_DIR_ENV})")
        self.directory = pathlib.Path(directory)
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))
        if use_cache is None:
            use_cache = not os.environ.get(NO_CACHE_ENV)
        self.use_cache = bool(use_cache)
        self.cache = cache
        self.progress = progress
        self.service_options = dict(service_options)
        self.stats = EngineStats()
        self.last_report: Optional[RecoveryReport] = None

    def run(self, jobs: Sequence[Job]) -> List:
        jobs = list(jobs)
        service = SweepService(
            self.directory, workers=self.jobs,
            use_cache=self.use_cache,
            **({"cache": self.cache} if self.cache is not None else {}),
            progress=self.progress, **self.service_options)
        keys = service.submit_jobs(jobs)
        results = service.drain()
        self.last_report = service.report
        self.stats.total += len(jobs)
        self.stats.executed += service.report.jobs_executed
        self.stats.cache_hits += service.report.jobs_from_cache
        self.stats.wall_seconds += service.report.wall_seconds
        self.stats.job_seconds += service.report.wall_job_seconds
        missing = [key for key in keys if key not in results]
        if missing:
            raise RuntimeError(
                f"sweep service failed {len(missing)} job(s) after "
                f"{service.max_attempts} attempts each; see "
                f"{service.paths.report}")
        return [results[key] for key in keys]

    def summary(self) -> str:
        stats = self.stats
        line = (f"service-engine: {stats.total} jobs, "
                f"{stats.cache_hits} cache hits, "
                f"{stats.executed} simulated, "
                f"{stats.wall_seconds:.1f}s wall "
                f"({self.jobs} worker{'s' if self.jobs != 1 else ''}, "
                f"dir {self.directory})")
        if self.last_report is not None and (
                self.last_report.worker_deaths
                or self.last_report.heartbeats_missed
                or self.last_report.requeues):
            line += f" | {self.last_report.summary()}"
        return line
