"""Per-figure experiment drivers.

Each ``fig*``/``ablation*`` function regenerates one table or figure of
the paper's evaluation (see DESIGN.md Sec. 3) and returns a plain dict of
results; the matching ``format_*`` helper renders it the way the paper
reports it. The full-suite comparison runs are cached per (scale, seed)
so the Fig. 13-16 drivers share one set of simulations.

Every driver expands its work into engine jobs
(:mod:`repro.harness.engine`), so figures parallelize across
``REPRO_JOBS`` worker processes and completed points are memoized in the
persistent result cache — a warm-cache ``repro-sim figure fig13`` rerun
executes zero simulations.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..config import SimConfig
from ..energy import EnergyModel
from ..workloads import DEFAULT_SEED, suite_names
from .engine import Job, get_engine
from .runner import (
    config_for_mode,
    geomean,
    run_comparison,
    speedups,
)
from .tables import percent, render_table

_comparison_cache: Dict[Tuple, Dict] = {}


def get_comparison(names: Optional[Sequence[str]] = None, scale: float = 1.0,
                   seed: int = DEFAULT_SEED,
                   modes: Sequence[str] = ("baseline", "cdf", "pre")):
    """Cached full-suite comparison shared by the Fig. 13-16 drivers."""
    names = tuple(names or suite_names())
    key = (names, scale, seed, tuple(modes))
    if key not in _comparison_cache:
        _comparison_cache[key] = run_comparison(names, modes, scale, seed)
    return _comparison_cache[key]


# ------------------------------------------------------------------ Fig. 1
def fig01_rob_distribution(names: Optional[Sequence[str]] = None,
                           scale: float = 1.0,
                           seed: int = DEFAULT_SEED) -> Dict[str, float]:
    """Fraction of ROB slots holding *critical* uops during full-window
    stalls on the baseline core (paper Fig. 1: 10%-40% for most
    benchmarks, i.e. the window is mostly non-critical work)."""
    names = list(names or suite_names())
    jobs = [Job(name, "baseline", scale=scale, seed=seed,
                kind="rob_profile") for name in names]
    profiles = get_engine().run(jobs)
    return {name: profile["critical_fraction"]
            for name, profile in zip(names, profiles)}


def format_fig01(fractions: Dict[str, float]) -> str:
    rows = [(name, f"{100 * frac:.1f}%", f"{100 * (1 - frac):.1f}%")
            for name, frac in fractions.items()]
    with_stalls = [f for f in fractions.values() if f > 0]
    mean = sum(with_stalls) / len(with_stalls) if with_stalls else 0.0
    return render_table(
        "Fig. 1 — ROB contents during full-window stalls (baseline)",
        ("benchmark", "critical", "non-critical"), rows,
        footer=("mean(stalling)", f"{100 * mean:.1f}%",
                f"{100 * (1 - mean):.1f}%"))


# ----------------------------------------------------------------- Fig. 13
def fig13_speedup(names: Optional[Sequence[str]] = None, scale: float = 1.0,
                  seed: int = DEFAULT_SEED) -> Dict[str, Dict[str, float]]:
    """Percentage IPC improvement of CDF and PRE over the baseline."""
    results = get_comparison(names, scale, seed)
    return {
        "cdf": speedups(results, "cdf"),
        "pre": speedups(results, "pre"),
        "geomean": {
            "cdf": geomean(speedups(results, "cdf").values()),
            "pre": geomean(speedups(results, "pre").values()),
        },
    }


def format_fig13(data: Dict) -> str:
    rows = [(name, percent(data["cdf"][name]), percent(data["pre"][name]))
            for name in data["cdf"]]
    footer = ("GEOMEAN", percent(data["geomean"]["cdf"]),
              percent(data["geomean"]["pre"]))
    return render_table(
        "Fig. 13 — % IPC improvement over baseline (paper: CDF +6.1%, "
        "PRE +2.6%)", ("benchmark", "CDF", "PRE"), rows, footer)


# ----------------------------------------------------------------- Fig. 14
def fig14_mlp(names: Optional[Sequence[str]] = None, scale: float = 1.0,
              seed: int = DEFAULT_SEED) -> Dict[str, Dict[str, float]]:
    """MLP relative to the baseline core."""
    results = get_comparison(names, scale, seed)
    out = {"cdf": {}, "pre": {}}
    for name, by_mode in results.items():
        base = by_mode["baseline"]
        out["cdf"][name] = by_mode["cdf"].mlp_ratio(base)
        out["pre"][name] = by_mode["pre"].mlp_ratio(base)
    out["geomean"] = {
        "cdf": geomean(out["cdf"].values()),
        "pre": geomean(out["pre"].values()),
    }
    return out


def format_fig14(data: Dict) -> str:
    rows = [(name, f"{data['cdf'][name]:.2f}x", f"{data['pre'][name]:.2f}x")
            for name in data["cdf"]]
    footer = ("GEOMEAN", f"{data['geomean']['cdf']:.2f}x",
              f"{data['geomean']['pre']:.2f}x")
    return render_table(
        "Fig. 14 — MLP relative to baseline (PRE's rise includes "
        "wrong-chain loads that do not help performance)",
        ("benchmark", "CDF", "PRE"), rows, footer)


# ----------------------------------------------------------------- Fig. 15
def fig15_traffic(names: Optional[Sequence[str]] = None, scale: float = 1.0,
                  seed: int = DEFAULT_SEED) -> Dict[str, Dict[str, float]]:
    """Total DRAM traffic relative to the baseline."""
    results = get_comparison(names, scale, seed)
    out = {"cdf": {}, "pre": {}}
    for name, by_mode in results.items():
        base = by_mode["baseline"]
        out["cdf"][name] = by_mode["cdf"].traffic_ratio(base)
        out["pre"][name] = by_mode["pre"].traffic_ratio(base)
    out["geomean"] = {
        "cdf": geomean(out["cdf"].values()),
        "pre": geomean(out["pre"].values()),
    }
    return out


def format_fig15(data: Dict) -> str:
    rows = [(name, percent(data["cdf"][name]), percent(data["pre"][name]))
            for name in data["cdf"]]
    footer = ("GEOMEAN", percent(data["geomean"]["cdf"]),
              percent(data["geomean"]["pre"]))
    return render_table(
        "Fig. 15 — memory traffic vs baseline (paper: CDF ~= baseline, "
        "PRE ~4% above CDF)", ("benchmark", "CDF", "PRE"), rows, footer)


# ----------------------------------------------------------------- Fig. 16
def fig16_energy(names: Optional[Sequence[str]] = None, scale: float = 1.0,
                 seed: int = DEFAULT_SEED) -> Dict[str, Dict[str, float]]:
    """Energy relative to the baseline (paper: CDF -3.5%, PRE +3.7%)."""
    results = get_comparison(names, scale, seed)
    out = {"cdf": {}, "pre": {}}
    for name, by_mode in results.items():
        base = by_mode["baseline"]
        out["cdf"][name] = by_mode["cdf"].energy_ratio(base)
        out["pre"][name] = by_mode["pre"].energy_ratio(base)
    out["geomean"] = {
        "cdf": geomean(out["cdf"].values()),
        "pre": geomean(out["pre"].values()),
    }
    return out


def format_fig16(data: Dict) -> str:
    rows = [(name, percent(data["cdf"][name]), percent(data["pre"][name]))
            for name in data["cdf"]]
    footer = ("GEOMEAN", percent(data["geomean"]["cdf"]),
              percent(data["geomean"]["pre"]))
    return render_table(
        "Fig. 16 — energy vs baseline (paper: CDF -3.5%, PRE +3.7%)",
        ("benchmark", "CDF", "PRE"), rows, footer)


# ----------------------------------------------------------------- Fig. 17
def fig17_scaling(rob_sizes: Sequence[int] = (192, 256, 352, 512),
                  names: Optional[Sequence[str]] = None, scale: float = 1.0,
                  seed: int = DEFAULT_SEED) -> Dict:
    """IPC and energy of baseline vs CDF cores across ROB sizes, with the
    other window structures scaled proportionately (paper Fig. 17)."""
    names = list(names or suite_names())
    jobs = []
    for rob in rob_sizes:
        for mode in ("baseline", "cdf"):
            for name in names:
                config = config_for_mode(mode)
                config.core = config.core.scaled(rob)
                jobs.append(Job(name, mode, scale=scale, seed=seed,
                                config=config))
    flat = get_engine().run(jobs)
    data: Dict = {"rob_sizes": list(rob_sizes), "ipc": {}, "energy": {}}
    index = 0
    for rob in rob_sizes:
        for mode in ("baseline", "cdf"):
            results = flat[index:index + len(names)]
            index += len(names)
            data["ipc"][(rob, mode)] = geomean(
                [result.ipc for result in results])
            data["energy"][(rob, mode)] = geomean(
                [result.energy_nj for result in results])
    return data


def format_fig17(data: Dict) -> str:
    base_ipc = data["ipc"][(352, "baseline")]
    base_energy = data["energy"][(352, "baseline")]
    rows = []
    for rob in data["rob_sizes"]:
        rows.append((
            str(rob),
            f"{data['ipc'][(rob, 'baseline')] / base_ipc:.3f}",
            f"{data['ipc'][(rob, 'cdf')] / base_ipc:.3f}",
            f"{data['energy'][(rob, 'baseline')] / base_energy:.3f}",
            f"{data['energy'][(rob, 'cdf')] / base_energy:.3f}",
        ))
    return render_table(
        "Fig. 17 — scaling with ROB size (geomean, normalised to the "
        "352-entry baseline)",
        ("ROB", "base IPC", "CDF IPC", "base energy", "CDF energy"), rows)


# --------------------------------------------------------------- ablations
def ablation_critical_branches(names: Optional[Sequence[str]] = None,
                               scale: float = 1.0,
                               seed: int = DEFAULT_SEED) -> Dict:
    """Sec. 4.2: disabling critical-branch marking drops the geomean
    speedup (paper: 6.1% -> 3.8%)."""
    names = list(names or suite_names())
    results = get_comparison(names, scale, seed)
    with_branches = speedups(results, "cdf")
    jobs = []
    for name in names:
        config = config_for_mode("cdf")
        config.cdf.mark_branches_critical = False
        jobs.append(Job(name, "cdf", scale=scale, seed=seed,
                        config=config))
    without = {
        name: result.speedup_over(results[name]["baseline"])
        for name, result in zip(names, get_engine().run(jobs))
    }
    return {
        "with": with_branches,
        "without": without,
        "geomean": {
            "with": geomean(with_branches.values()),
            "without": geomean(without.values()),
        },
    }


def format_ablation_branches(data: Dict) -> str:
    rows = [(name, percent(data["with"][name]), percent(data["without"][name]))
            for name in data["with"]]
    footer = ("GEOMEAN", percent(data["geomean"]["with"]),
              percent(data["geomean"]["without"]))
    return render_table(
        "Ablation — critical branches (paper: +6.1% -> +3.8% without)",
        ("benchmark", "CDF", "CDF, no crit. branches"), rows, footer)


def ablation_partitioning(names: Sequence[str],
                          scale: float = 1.0,
                          seed: int = DEFAULT_SEED) -> Dict:
    """Sec. 3.5: dynamic vs static partitioning of the backend."""
    names = list(names)
    static_config = config_for_mode("cdf")
    static_config.cdf.dynamic_partitioning = False
    jobs = []
    for name in names:
        jobs.append(Job(name, "baseline", scale=scale, seed=seed))
        jobs.append(Job(name, "cdf", scale=scale, seed=seed))
        jobs.append(Job(name, "cdf", scale=scale, seed=seed,
                        config=static_config))
    flat = get_engine().run(jobs)
    out: Dict[str, Dict[str, float]] = {"dynamic": {}, "static": {}}
    for position, name in enumerate(names):
        base, dynamic, static = flat[3 * position:3 * position + 3]
        out["dynamic"][name] = dynamic.speedup_over(base)
        out["static"][name] = static.speedup_over(base)
    out["geomean"] = {
        "dynamic": geomean(out["dynamic"].values()),
        "static": geomean(out["static"].values()),
    }
    return out


def format_ablation_partitioning(data: Dict) -> str:
    rows = [(name, percent(data["dynamic"][name]),
             percent(data["static"][name])) for name in data["dynamic"]]
    footer = ("GEOMEAN", percent(data["geomean"]["dynamic"]),
              percent(data["geomean"]["static"]))
    return render_table(
        "Ablation — dynamic vs static backend partitioning (Sec. 3.5)",
        ("benchmark", "dynamic", "static"), rows, footer)


def ablation_thresholds(names: Sequence[str], scale: float = 1.0,
                        seed: int = DEFAULT_SEED) -> Dict:
    """Sec. 3.2: strict-only vs adaptive strict/permissive selection."""
    names = list(names)
    strict_config = config_for_mode("cdf")
    strict_config.cdf.low_coverage_fraction = 0.0   # never go permissive
    jobs = []
    for name in names:
        jobs.append(Job(name, "baseline", scale=scale, seed=seed))
        jobs.append(Job(name, "cdf", scale=scale, seed=seed))
        jobs.append(Job(name, "cdf", scale=scale, seed=seed,
                        config=strict_config))
    flat = get_engine().run(jobs)
    out: Dict[str, Dict[str, float]] = {"adaptive": {}, "strict_only": {}}
    for position, name in enumerate(names):
        base, adaptive, strict = flat[3 * position:3 * position + 3]
        out["adaptive"][name] = adaptive.speedup_over(base)
        out["strict_only"][name] = strict.speedup_over(base)
    out["geomean"] = {
        "adaptive": geomean(out["adaptive"].values()),
        "strict_only": geomean(out["strict_only"].values()),
    }
    return out


def format_ablation_thresholds(data: Dict) -> str:
    rows = [(name, percent(data["adaptive"][name]),
             percent(data["strict_only"][name]))
            for name in data["adaptive"]]
    footer = ("GEOMEAN", percent(data["geomean"]["adaptive"]),
              percent(data["geomean"]["strict_only"]))
    return render_table(
        "Ablation — adaptive strict/permissive CCT thresholds (Sec. 3.2)",
        ("benchmark", "adaptive", "strict only"), rows, footer)


# ------------------------------------------------------------------ Table 1
def table1_text() -> str:
    """Render the simulated configuration the way Table 1 lists it."""
    cfg = SimConfig.baseline()
    core = cfg.core
    model = EnergyModel(config_for_mode("cdf"))
    rows = [
        ("Core", f"{core.freq_ghz} GHz, {core.issue_width}-wide issue, "
                 "TAGE predictor"),
        ("", f"{core.rob_size} Entry ROB, {core.rs_size} Entry "
             "Reservation Station"),
        ("", f"{core.lq_size} Entry Load & {core.sq_size} Entry Store "
             "Queues"),
        ("Caches", f"{cfg.l1i.size_bytes // 1024}KB {cfg.l1i.ways}-way L1 "
                   f"I-cache & D-cache, {cfg.l1d.latency}-cycle access"),
        ("", f"{cfg.llc.size_bytes // (1024 * 1024)}MB {cfg.llc.ways}-way "
             f"LLC cache, {cfg.llc.latency}-cycle access, "
             f"{cfg.llc.line_bytes}B lines"),
        ("Prefetcher", f"Stream Prefetcher, {cfg.prefetcher.num_streams} "
                       "Streams (always on),"),
        ("", "Feedback Directed Prefetching to throttle prefetcher"),
        ("Memory", f"DDR4_2400R: {cfg.dram.ranks} rank, "
                   f"{cfg.dram.channels} channels"),
        ("", f"{cfg.dram.bank_groups} bank groups and "
             f"{cfg.dram.banks_per_group} banks per channel"),
        ("", f"tRP-tCL-tRCD: {cfg.dram.trp}-{cfg.dram.tcl}-"
             f"{cfg.dram.trcd}"),
        ("CDF Caches", "64B 2-way Critical Count Tables, 1-cycle access"),
        ("", "4KB 4-way Mask Cache, 1-cycle access"),
        ("", "18KB 4-way Critical Uop Cache, 1-cycle access, "
             "8 uops per entry"),
        ("CDF FIFOs", "1024-entry Fill Buffer"),
        ("", "256-entry Delayed Branch Queue"),
        ("", "256-entry Critical Map Queue"),
        ("CDF area", f"+{100 * model.cdf_area_overhead():.1f}% over the "
                     "baseline core structures (paper: +3.2%)"),
    ]
    return render_table("Table 1 — simulation parameters",
                        ("component", "value"), rows)
