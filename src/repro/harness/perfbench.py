"""Performance regression harness (``repro-sim perf``).

The simulator's wall-clock behaviour is a deliverable of this repository
(the cycle loop is pure Python; careless edits can double sweep times
without failing a single correctness test), so this module times a
**pinned micro-suite** and emits a stable JSON report — ``BENCH_perf.json``
at the repo root — that successive runs and CI compare against.

Methodology
-----------
All timings run in-process against a *private* trace store (a temp
directory), so the numbers are insensitive to whatever is in the user's
real ``$REPRO_CACHE_DIR``:

``functional_s``
    Best-of-reps wall time to functionally execute every suite workload
    with the trace store disabled — the cost the persistent trace cache
    removes.
``trace_load_s``
    Best-of-reps wall time to deserialize the same traces from the
    store — the cost that replaces it.
``sweep_cold_s``
    One full sweep of the suite against an empty store (functional
    execution + compile + simulate).
``sweep_warm_s``
    Best-of-reps full sweep with the store populated (deserialize +
    simulate).  This is the headline number: it is what an experiment
    sweep costs once traces are compiled.
``sweep_obs_s``
    Best-of-reps warm sweep with ``obs_level=1`` telemetry attached —
    the same work as ``sweep_warm_s`` plus gauge sampling and
    memory-latency attribution.  Guards the obs subsystem's
    "low-overhead" contract (docs/observability.md): the hooks are a
    single ``is not None`` test per site at level 0, and even level 1
    must stay cheap.

Absolute seconds are machine-dependent, so cross-machine comparisons
(CI) use the *derived ratios* — ``trace_compile_speedup``
(functional/trace-load), ``cold_over_warm``, and ``warm_over_obs``
(warm/obs-instrumented; ~1.0, drops when telemetry gets expensive) —
which track the architecture of the code rather than the speed of the
host.  Same-machine comparisons (a developer re-running
``repro-sim perf``) use the raw timings with a noise tolerance band.

This module is on simlint's DET003 wall-clock allowlist: measuring time
is its purpose; simulation results never depend on it.
"""

from __future__ import annotations

import json
import os
import platform
import shutil
import sys
import tempfile
import time
from typing import Callable, Dict, List, Optional, Tuple

from .engine import Engine, Job

#: Stable report schema version (bump on any shape change).
#: v2: added the obs-overhead column (``sweep_obs_s`` / ``warm_over_obs``).
SCHEMA_VERSION = 2

#: Default report filename, written to the current directory (the repo
#: root in CI and in the documented workflow).
DEFAULT_REPORT = "BENCH_perf.json"

#: The pinned micro-suite: one mode per workload, covering all three
#: pipeline models across six kernels.  Do not casually edit — timings
#: are only comparable across runs of the same suite.
PERF_SUITE: Tuple[Tuple[str, str], ...] = (
    ("astar", "baseline"),
    ("mcf", "cdf"),
    ("milc", "pre"),
    ("bzip", "baseline"),
    ("nab", "cdf"),
    ("lbm", "pre"),
)

PERF_SCALE = 0.3
SMOKE_SCALE = 0.15
DEFAULT_REPS = 3
SMOKE_REPS = 2

#: Same-machine tolerance band for raw timings (fractions, not percent).
DEFAULT_TOLERANCE = 0.30


def _clear_workload_cache() -> None:
    from . import runner
    runner._workload_cache.clear()


def _load_suite_traces(scale: float) -> float:
    """Wall time to materialise every suite workload's trace once."""
    from .runner import load_workload
    _clear_workload_cache()
    start = time.perf_counter()
    for name, _mode in PERF_SUITE:
        load_workload(name, scale).trace()
    return time.perf_counter() - start


def _sweep_once(jobs: List[Job]) -> float:
    """Wall time for one serial, cache-bypassing sweep of *jobs*."""
    _clear_workload_cache()
    engine = Engine(jobs=1, use_cache=False)
    start = time.perf_counter()
    engine.run(jobs)
    return time.perf_counter() - start


def run_perfbench(smoke: bool = False, reps: Optional[int] = None,
                  progress: Optional[Callable[[str], None]] = None) -> dict:
    """Run the micro-suite; returns the report dict (see module docs)."""
    from .tracestore import NO_TRACE_CACHE_ENV, reset_trace_store

    def note(line: str) -> None:
        if progress is not None:
            progress(line)

    scale = SMOKE_SCALE if smoke else PERF_SCALE
    if reps is None:
        reps = SMOKE_REPS if smoke else DEFAULT_REPS
    jobs = [Job(name, mode, scale=scale) for name, mode in PERF_SUITE]

    saved_cache_dir = os.environ.get("REPRO_CACHE_DIR")
    saved_no_trace = os.environ.get(NO_TRACE_CACHE_ENV)
    private_root = tempfile.mkdtemp(prefix="repro-perfbench-")
    os.environ["REPRO_CACHE_DIR"] = private_root
    os.environ.pop(NO_TRACE_CACHE_ENV, None)
    reset_trace_store()
    try:
        # Functional cost (store disabled): what the trace cache removes.
        os.environ[NO_TRACE_CACHE_ENV] = "1"
        note(f"functional execution x{reps} (store disabled)")
        functional_s = min(_load_suite_traces(scale) for _ in range(reps))
        os.environ.pop(NO_TRACE_CACHE_ENV, None)

        # Cold sweep populates the private store.
        note("cold sweep (functional + compile + simulate)")
        sweep_cold_s = _sweep_once(jobs)

        note(f"trace deserialization x{reps}")
        trace_load_s = min(_load_suite_traces(scale) for _ in range(reps))

        note(f"warm sweep x{reps} (deserialize + simulate)")
        sweep_warm_s = min(_sweep_once(jobs) for _ in range(reps))

        # Same warm sweep with level-1 telemetry attached: the obs
        # overhead column (docs/observability.md).
        from .runner import config_for_mode
        obs_jobs = [Job(name, mode, scale=scale,
                        config=config_for_mode(mode, obs_level=1))
                    for name, mode in PERF_SUITE]
        note(f"warm sweep x{reps} (obs_level=1 telemetry)")
        sweep_obs_s = min(_sweep_once(obs_jobs) for _ in range(reps))
    finally:
        if saved_cache_dir is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = saved_cache_dir
        if saved_no_trace is None:
            os.environ.pop(NO_TRACE_CACHE_ENV, None)
        else:
            os.environ[NO_TRACE_CACHE_ENV] = saved_no_trace
        reset_trace_store()
        shutil.rmtree(private_root, ignore_errors=True)

    return {
        "schema": SCHEMA_VERSION,
        "suite": [list(pair) for pair in PERF_SUITE],
        "scale": scale,
        "reps": reps,
        "smoke": smoke,
        "timings": {
            "functional_s": round(functional_s, 4),
            "trace_load_s": round(trace_load_s, 4),
            "sweep_cold_s": round(sweep_cold_s, 4),
            "sweep_warm_s": round(sweep_warm_s, 4),
            "sweep_obs_s": round(sweep_obs_s, 4),
        },
        "derived": {
            "trace_compile_speedup": round(
                functional_s / trace_load_s, 3) if trace_load_s else 0.0,
            "cold_over_warm": round(
                sweep_cold_s / sweep_warm_s, 3) if sweep_warm_s else 0.0,
            "warm_over_obs": round(
                sweep_warm_s / sweep_obs_s, 3) if sweep_obs_s else 0.0,
        },
        "env": {
            "python": platform.python_version(),
            "platform": sys.platform,
        },
    }


# --------------------------------------------------------------- compare
def compare_timings(current: dict, previous: dict,
                    tolerance: float = DEFAULT_TOLERANCE) -> List[str]:
    """Same-machine regression check on raw timings (lower is better).

    Returns human-readable regression lines; empty means within band.
    Only comparable runs are compared (same suite shape and scale).
    """
    if (previous.get("schema") != current.get("schema")
            or previous.get("suite") != current.get("suite")
            or previous.get("scale") != current.get("scale")):
        return []
    regressions = []
    prev_t: Dict[str, float] = previous.get("timings", {})
    for metric, now in current.get("timings", {}).items():
        then = prev_t.get(metric)
        if then and now > then * (1.0 + tolerance):
            regressions.append(
                f"{metric}: {now:.3f}s vs {then:.3f}s "
                f"(+{(now / then - 1.0) * 100:.0f}%, band "
                f"{tolerance * 100:.0f}%)")
    return regressions


def compare_ratios(current: dict, baseline: dict,
                   tolerance: float = DEFAULT_TOLERANCE) -> List[str]:
    """Cross-machine regression check on derived ratios (higher is
    better).  *baseline* maps ratio names to committed floor values."""
    regressions = []
    derived: Dict[str, float] = current.get("derived", {})
    for metric, floor in baseline.items():
        if not isinstance(floor, (int, float)):
            continue
        now = derived.get(metric)
        if now is not None and now < floor * (1.0 - tolerance):
            regressions.append(
                f"{metric}: {now:.3f} vs committed floor {floor:.3f} "
                f"(band {tolerance * 100:.0f}%)")
    return regressions
