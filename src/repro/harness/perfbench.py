"""Performance regression harness (``repro-sim perf``).

The simulator's wall-clock behaviour is a deliverable of this repository
(the cycle loop is pure Python; careless edits can double sweep times
without failing a single correctness test), so this module times a
**pinned micro-suite** and emits a stable JSON report — ``BENCH_perf.json``
at the repo root — that successive runs and CI compare against.

Methodology
-----------
All timings run in-process against a *private* trace store (a temp
directory), so the numbers are insensitive to whatever is in the user's
real ``$REPRO_CACHE_DIR``:

``functional_s``
    Best-of-reps wall time to functionally execute every suite workload
    with the trace store disabled — the cost the persistent trace cache
    removes.
``trace_load_s``
    Best-of-reps wall time to deserialize the same traces from the
    store — the cost that replaces it.
``sweep_cold_s``
    One full sweep of the suite against an empty store (functional
    execution + compile + simulate).
``sweep_warm_s``
    Best-of-reps full sweep with the store populated (deserialize +
    simulate).  This is the headline number: it is what an experiment
    sweep costs once traces are compiled.
``sweep_obs_s``
    Best-of-reps warm sweep with ``obs_level=1`` telemetry attached —
    the same work as ``sweep_warm_s`` plus gauge sampling and
    memory-latency attribution.  Guards the obs subsystem's
    "low-overhead" contract (docs/observability.md): the hooks are a
    single ``is not None`` test per site at level 0, and even level 1
    must stay cheap.
``sweep_event_s`` / ``sweep_naive_s``
    Simulation-only *CPU* time (traces pre-loaded, pipeline
    construction excluded) for the suite under the event-driven
    ``run()`` loop and the retained tick-every-cycle
    ``run_reference()`` loop.  The two are measured *interleaved*
    (event, naive, event, naive, ...) and in CPU rather than wall time
    so machine drift and background load cancel out of the ratio.
``trace_load_python_s`` / ``trace_load_numpy_s``
    Best-of-reps suite decode CPU time under each ``REPRO_ENGINE``
    variant, each measured in a fresh subprocess (the variant is
    resolved once per process; see :mod:`repro.engine_select`) after
    one untimed warm-up pass.  The numpy column is ``None`` when numpy
    is not installed.
``analytic_profile_s`` / ``analytic_per_config_s``
    The analytic screening tier (docs/analytic.md): best-of-reps CPU
    time to build every suite :class:`~repro.analytic.TraceProfile`,
    and the mean model-evaluation time per (kernel, config) point.

Absolute seconds are machine-dependent, so cross-machine comparisons
(CI) use the *derived ratios* — ``trace_compile_speedup``
(functional/trace-load), ``cold_over_warm``, ``warm_over_obs``
(warm/obs-instrumented; ~1.0, drops when telemetry gets expensive),
``event_engine_speedup`` (naive/event simulation time; drops
toward or below 1.0 if the event engine's scheduling bookkeeping ever
costs more than the cycles it skips), and ``screen_speedup``
(event-loop simulation time over the analytic tier's profile+score
time for the same suite; the screening tier's reason to exist — its
committed floor is 50x) — which track the architecture of
the code rather than the speed of the host.  Same-machine comparisons
(a developer re-running ``repro-sim perf``) use the raw timings with a
noise tolerance band.

This module is on simlint's DET003 wall-clock allowlist: measuring time
is its purpose; simulation results never depend on it.
"""

from __future__ import annotations

import importlib.util
import json
import os
import platform
import shutil
import subprocess
import sys
import tempfile
import time
from typing import Callable, Dict, List, Optional, Tuple

from .engine import Engine, Job

#: Stable report schema version (bump on any shape change).
#: v2: added the obs-overhead column (``sweep_obs_s`` / ``warm_over_obs``).
#: v3: event-engine columns (``sweep_event_s`` / ``sweep_naive_s`` /
#: ``event_engine_speedup``) and per-``REPRO_ENGINE`` decode timings.
#: v4: analytic fast-tier columns (``analytic_profile_s`` /
#: ``analytic_per_config_s`` / ``screen_speedup``); see docs/analytic.md.
SCHEMA_VERSION = 4

#: Default report filename, written to the current directory (the repo
#: root in CI and in the documented workflow).
DEFAULT_REPORT = "BENCH_perf.json"

#: Default report filename for ``repro-sim perf --profile``.
PROFILE_REPORT = "BENCH_profile.json"

#: Pipeline methods aggregated into the per-stage profile table.  These
#: are the cycle loop's direct constituents; everything else lands in
#: the flat hotspot list.
STAGE_METHODS: Tuple[str, ...] = (
    "run", "_next_cycle", "_fetch", "_dispatch", "_allocate",
    "_issue", "_issue_load", "_writeback", "_complete_at", "_retire",
)

#: The pinned micro-suite: one mode per workload, covering all three
#: pipeline models across six kernels.  Do not casually edit — timings
#: are only comparable across runs of the same suite.
PERF_SUITE: Tuple[Tuple[str, str], ...] = (
    ("astar", "baseline"),
    ("mcf", "cdf"),
    ("milc", "pre"),
    ("bzip", "baseline"),
    ("nab", "cdf"),
    ("lbm", "pre"),
)

PERF_SCALE = 0.3
SMOKE_SCALE = 0.15
DEFAULT_REPS = 3
SMOKE_REPS = 2

#: Same-machine tolerance band for raw timings (fractions, not percent).
DEFAULT_TOLERANCE = 0.30


def _clear_workload_cache() -> None:
    from . import runner
    runner._workload_cache.clear()


def _active_engine_variant() -> str:
    from ..engine_select import engine_variant
    return engine_variant()


def _load_suite_traces(scale: float) -> float:
    """Wall time to materialise every suite workload's trace once."""
    from .runner import load_workload
    _clear_workload_cache()
    start = time.perf_counter()
    for name, _mode in PERF_SUITE:
        load_workload(name, scale).trace()
    return time.perf_counter() - start


def _sweep_once(jobs: List[Job]) -> float:
    """Wall time for one serial, cache-bypassing sweep of *jobs*."""
    _clear_workload_cache()
    engine = Engine(jobs=1, use_cache=False)
    start = time.perf_counter()
    engine.run(jobs)
    return time.perf_counter() - start


def _sweep_direct(scale: float, method: str) -> float:
    """Simulation-only suite time: sum of one ``method`` call per job.

    Traces are materialised and the pipeline constructed *outside* the
    timed region, so ``run`` vs ``run_reference`` is an apples-to-apples
    comparison of the cycle loops alone.  Uses CPU time
    (``time.process_time``) rather than wall time: this column exists
    to compare two loops against *each other*, and CPU time keeps
    unrelated machine load out of the ratio.
    """
    from .runner import config_for_mode, load_workload, make_pipeline
    total = 0.0
    for name, mode in PERF_SUITE:
        workload = load_workload(name, scale)
        trace = workload.trace()
        config = config_for_mode(mode)
        config.stats_warmup_uops = workload.warmup_uops()
        pipeline = make_pipeline(mode, trace, config, workload)
        start = time.process_time()
        getattr(pipeline, method)()
        total += time.process_time() - start
    return total


def _event_vs_reference(scale: float,
                        reps: int) -> Tuple[float, float]:
    """``(sweep_event_s, sweep_naive_s)``: per-benchmark best-of-reps.

    The two loops run back-to-back per benchmark and the minimum is
    taken per ``(benchmark, loop)`` before summing — a much tighter
    estimator than best-of-suite-totals, since each benchmark's noise
    floor is found independently.
    """
    from .runner import config_for_mode, load_workload, make_pipeline
    best: Dict[Tuple[str, str], float] = {}
    for _ in range(reps):
        for name, mode in PERF_SUITE:
            workload = load_workload(name, scale)
            trace = workload.trace()
            for method in ("run", "run_reference"):
                config = config_for_mode(mode)
                config.stats_warmup_uops = workload.warmup_uops()
                pipeline = make_pipeline(mode, trace, config, workload)
                start = time.process_time()
                getattr(pipeline, method)()
                elapsed = time.process_time() - start
                key = (method, name)
                best[key] = min(best.get(key, elapsed), elapsed)
    event_s = sum(v for (m, _), v in best.items() if m == "run")
    naive_s = sum(v for (m, _), v in best.items() if m == "run_reference")
    return event_s, naive_s


def _analytic_timing(scale: float,
                     reps: int) -> Tuple[float, float, float]:
    """``(analytic_profile_s, analytic_suite_s, analytic_per_config_s)``.

    Times the analytic fast tier over the same suite the
    ``sweep_event_s`` column simulates: best-of-reps CPU time to build
    every :class:`~repro.analytic.TraceProfile` (traces pre-loaded, as
    in a warm screening sweep) and to score every ``(kernel, mode)``
    point.  ``analytic_suite_s`` — grid-amortized profile build plus
    one evaluation per point — is the screening tier's per-grid-point
    cost for the whole suite, and ``sweep_event_s / analytic_suite_s``
    is the committed ``screen_speedup`` ratio.  Model evaluations are microseconds, so
    the per-config column is measured over many repeated evaluations.
    """
    from ..analytic import AnalyticModel, TraceProfile
    from .runner import config_for_mode, load_workload
    from .sweep import QUICK_SCREEN_SWEEPS

    # A screening sweep builds each profile once and scores it at every
    # grid point, so the suite cost charges each profile 1/grid of its
    # build time — the pinned QUICK grids set the amortization.
    grid = min(len(values) for values in QUICK_SCREEN_SWEEPS.values())

    traces = {}
    for name, _mode in PERF_SUITE:
        traces[name] = load_workload(name, scale).trace()
    configs = [(name, config_for_mode(mode)) for name, mode in PERF_SUITE]
    model = AnalyticModel()
    evals_per_rep = 50

    profile_s = suite_eval_s = None
    for _ in range(reps):
        start = time.process_time()
        profiles = {name: TraceProfile.from_trace(trace, name=name)
                    for name, trace in traces.items()}
        elapsed = time.process_time() - start
        profile_s = elapsed if profile_s is None \
            else min(profile_s, elapsed)

        start = time.process_time()
        for _ in range(evals_per_rep):
            for name, config in configs:
                model.predict(profiles[name], config)
        elapsed = (time.process_time() - start) / evals_per_rep
        suite_eval_s = elapsed if suite_eval_s is None \
            else min(suite_eval_s, elapsed)

    per_config_s = suite_eval_s / len(PERF_SUITE)
    return profile_s, profile_s / grid + suite_eval_s, per_config_s


def _decode_variant_timing(variant: str, scale: float,
                           reps: int) -> Optional[float]:
    """Best-of-reps suite decode time under ``REPRO_ENGINE=variant``.

    Runs in a fresh subprocess because the engine variant is resolved
    once per process (:mod:`repro.engine_select`); the subprocess
    inherits the private trace store through the environment.  Returns
    ``None`` when the variant is unavailable (numpy not installed).
    """
    if variant == "numpy" and importlib.util.find_spec("numpy") is None:
        return None
    # CPU time, with one untimed warm-up pass: the first decode pays
    # one-time costs (numpy import, OS file cache) that would otherwise
    # pollute the python-vs-numpy comparison.
    script = (
        "import sys, time\n"
        "from repro.harness.perfbench import (PERF_SUITE,\n"
        "                                     _clear_workload_cache)\n"
        "from repro.harness.runner import load_workload\n"
        "reps, scale = int(sys.argv[1]), float(sys.argv[2])\n"
        "def once():\n"
        "    _clear_workload_cache()\n"
        "    start = time.process_time()\n"
        "    for name, _mode in PERF_SUITE:\n"
        "        load_workload(name, scale).trace()\n"
        "    return time.process_time() - start\n"
        "once()\n"
        "print(repr(min(once() for _ in range(reps))))\n")
    env = dict(os.environ)
    env["REPRO_ENGINE"] = variant
    # The child must find `repro` however the parent did (installed,
    # PYTHONPATH=src, or pytest's pyproject `pythonpath`, which does
    # not propagate to subprocesses) — pin our own package root.
    pkg_root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (pkg_root, env.get("PYTHONPATH")) if p)
    out = subprocess.run(
        [sys.executable, "-c", script, str(reps), str(scale)],
        env=env, capture_output=True, text=True, check=True)
    return float(out.stdout.strip().splitlines()[-1])


def run_perfbench(smoke: bool = False, reps: Optional[int] = None,
                  progress: Optional[Callable[[str], None]] = None) -> dict:
    """Run the micro-suite; returns the report dict (see module docs)."""
    from .tracestore import NO_TRACE_CACHE_ENV, reset_trace_store

    def note(line: str) -> None:
        if progress is not None:
            progress(line)

    scale = SMOKE_SCALE if smoke else PERF_SCALE
    if reps is None:
        reps = SMOKE_REPS if smoke else DEFAULT_REPS
    jobs = [Job(name, mode, scale=scale) for name, mode in PERF_SUITE]

    saved_cache_dir = os.environ.get("REPRO_CACHE_DIR")
    saved_no_trace = os.environ.get(NO_TRACE_CACHE_ENV)
    private_root = tempfile.mkdtemp(prefix="repro-perfbench-")
    os.environ["REPRO_CACHE_DIR"] = private_root
    os.environ.pop(NO_TRACE_CACHE_ENV, None)
    reset_trace_store()
    try:
        # Functional cost (store disabled): what the trace cache removes.
        os.environ[NO_TRACE_CACHE_ENV] = "1"
        note(f"functional execution x{reps} (store disabled)")
        functional_s = min(_load_suite_traces(scale) for _ in range(reps))
        os.environ.pop(NO_TRACE_CACHE_ENV, None)

        # Cold sweep populates the private store.
        note("cold sweep (functional + compile + simulate)")
        sweep_cold_s = _sweep_once(jobs)

        note(f"trace deserialization x{reps}")
        trace_load_s = min(_load_suite_traces(scale) for _ in range(reps))

        note(f"warm sweep x{reps} (deserialize + simulate)")
        sweep_warm_s = min(_sweep_once(jobs) for _ in range(reps))

        # Same warm sweep with level-1 telemetry attached: the obs
        # overhead column (docs/observability.md).
        from .runner import config_for_mode
        obs_jobs = [Job(name, mode, scale=scale,
                        config=config_for_mode(mode, obs_level=1))
                    for name, mode in PERF_SUITE]
        note(f"warm sweep x{reps} (obs_level=1 telemetry)")
        sweep_obs_s = min(_sweep_once(obs_jobs) for _ in range(reps))

        # Event engine vs the retained naive reference loop, interleaved
        # so machine drift cancels out of the ratio (simulation only).
        note(f"event vs reference loop x{reps} (interleaved, sim only)")
        sweep_event_s, sweep_naive_s = _event_vs_reference(scale, reps)

        # Analytic fast tier over the same suite (docs/analytic.md).
        note(f"analytic fast tier x{reps} (profiles + model evals)")
        analytic_profile_s, analytic_suite_s, analytic_per_config_s = \
            _analytic_timing(scale, reps)

        # Per-REPRO_ENGINE decode timing (fresh subprocess per variant).
        note("trace decode per engine variant (subprocesses)")
        trace_load_python_s = _decode_variant_timing("python", scale, reps)
        trace_load_numpy_s = _decode_variant_timing("numpy", scale, reps)
    finally:
        if saved_cache_dir is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = saved_cache_dir
        if saved_no_trace is None:
            os.environ.pop(NO_TRACE_CACHE_ENV, None)
        else:
            os.environ[NO_TRACE_CACHE_ENV] = saved_no_trace
        reset_trace_store()
        shutil.rmtree(private_root, ignore_errors=True)

    return {
        "schema": SCHEMA_VERSION,
        "suite": [list(pair) for pair in PERF_SUITE],
        "scale": scale,
        "reps": reps,
        "smoke": smoke,
        "timings": {
            "functional_s": round(functional_s, 4),
            "trace_load_s": round(trace_load_s, 4),
            "sweep_cold_s": round(sweep_cold_s, 4),
            "sweep_warm_s": round(sweep_warm_s, 4),
            "sweep_obs_s": round(sweep_obs_s, 4),
            "sweep_event_s": round(sweep_event_s, 4),
            "sweep_naive_s": round(sweep_naive_s, 4),
            "analytic_profile_s": round(analytic_profile_s, 4),
            "analytic_per_config_s": round(analytic_per_config_s, 6),
            "trace_load_python_s": (
                round(trace_load_python_s, 4)
                if trace_load_python_s is not None else None),
            "trace_load_numpy_s": (
                round(trace_load_numpy_s, 4)
                if trace_load_numpy_s is not None else None),
        },
        "derived": {
            "trace_compile_speedup": round(
                functional_s / trace_load_s, 3) if trace_load_s else 0.0,
            "cold_over_warm": round(
                sweep_cold_s / sweep_warm_s, 3) if sweep_warm_s else 0.0,
            "warm_over_obs": round(
                sweep_warm_s / sweep_obs_s, 3) if sweep_obs_s else 0.0,
            "event_engine_speedup": round(
                sweep_naive_s / sweep_event_s, 3) if sweep_event_s else 0.0,
            "screen_speedup": round(
                sweep_event_s / analytic_suite_s,
                3) if analytic_suite_s else 0.0,
        },
        "env": {
            "python": platform.python_version(),
            "platform": sys.platform,
            "engine": _active_engine_variant(),
        },
    }


# --------------------------------------------------------------- profile
def run_profile(smoke: bool = False, top: int = 15,
                progress: Optional[Callable[[str], None]] = None) -> dict:
    """cProfile one warm suite sweep; returns the profile report dict.

    Timings taken under the profiler are not comparable to the
    regression columns (instrumentation overhead), so this is a
    *separate* report (``BENCH_profile.json``): a per-stage table over
    :data:`STAGE_METHODS` plus the flat top-``top`` hotspot list.
    """
    import cProfile
    import pstats

    from .runner import load_workload
    from .tracestore import NO_TRACE_CACHE_ENV, reset_trace_store

    def note(line: str) -> None:
        if progress is not None:
            progress(line)

    scale = SMOKE_SCALE if smoke else PERF_SCALE
    saved_cache_dir = os.environ.get("REPRO_CACHE_DIR")
    saved_no_trace = os.environ.pop(NO_TRACE_CACHE_ENV, None)
    private_root = tempfile.mkdtemp(prefix="repro-perfprof-")
    os.environ["REPRO_CACHE_DIR"] = private_root
    reset_trace_store()
    try:
        note("populating private trace store")
        _clear_workload_cache()
        for name, _mode in PERF_SUITE:
            load_workload(name, scale).trace()
        note("profiled warm sweep (simulation only)")
        profiler = cProfile.Profile()
        profiler.enable()
        sim_s = _sweep_direct(scale, "run")
        profiler.disable()
    finally:
        if saved_cache_dir is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = saved_cache_dir
        if saved_no_trace is not None:
            os.environ[NO_TRACE_CACHE_ENV] = saved_no_trace
        reset_trace_store()
        shutil.rmtree(private_root, ignore_errors=True)

    stats = pstats.Stats(profiler)
    stages: Dict[str, List[float]] = {}
    hotspots = []
    for (filename, lineno, funcname), row in stats.stats.items():
        _cc, ncalls, tottime, cumtime, _callers = row
        if f"repro{os.sep}" in filename:
            if funcname in STAGE_METHODS:
                agg = stages.setdefault(funcname, [0, 0.0, 0.0])
                agg[0] += ncalls
                agg[1] += tottime
                agg[2] += cumtime
            where = f"{os.path.basename(filename)}:{lineno}({funcname})"
        else:
            where = f"{os.path.basename(filename)}({funcname})"
        hotspots.append((tottime, cumtime, ncalls, where))
    hotspots.sort(reverse=True)

    stage_rows = [
        {"stage": name, "calls": int(agg[0]),
         "tottime_s": round(agg[1], 4), "cumtime_s": round(agg[2], 4)}
        for name, agg in sorted(stages.items(),
                                key=lambda item: -item[1][1])]
    hotspot_rows = [
        {"where": where, "calls": int(ncalls),
         "tottime_s": round(tottime, 4), "cumtime_s": round(cumtime, 4)}
        for tottime, cumtime, ncalls, where in hotspots[:top]]
    return {
        "schema": 1,
        "suite": [list(pair) for pair in PERF_SUITE],
        "scale": scale,
        "smoke": smoke,
        "profiled_sim_s": round(sim_s, 4),
        "stages": stage_rows,
        "hotspots": hotspot_rows,
        "env": {
            "python": platform.python_version(),
            "platform": sys.platform,
            "engine": _active_engine_variant(),
        },
    }


# --------------------------------------------------------------- compare
def compare_timings(current: dict, previous: dict,
                    tolerance: float = DEFAULT_TOLERANCE) -> List[str]:
    """Same-machine regression check on raw timings (lower is better).

    Returns human-readable regression lines; empty means within band.
    Only comparable runs are compared (same suite shape and scale).
    """
    if (previous.get("schema") != current.get("schema")
            or previous.get("suite") != current.get("suite")
            or previous.get("scale") != current.get("scale")):
        return []
    regressions = []
    prev_t: Dict[str, float] = previous.get("timings", {})
    for metric, now in current.get("timings", {}).items():
        then = prev_t.get(metric)
        if now is None:     # variant unavailable on this machine
            continue
        if then and now > then * (1.0 + tolerance):
            regressions.append(
                f"{metric}: {now:.3f}s vs {then:.3f}s "
                f"(+{(now / then - 1.0) * 100:.0f}%, band "
                f"{tolerance * 100:.0f}%)")
    return regressions


def compare_ratios(current: dict, baseline: dict,
                   tolerance: float = DEFAULT_TOLERANCE) -> List[str]:
    """Cross-machine regression check on derived ratios (higher is
    better).  *baseline* maps ratio names to committed floor values."""
    regressions = []
    derived: Dict[str, float] = current.get("derived", {})
    for metric, floor in baseline.items():
        if not isinstance(floor, (int, float)):
            continue
        now = derived.get(metric)
        if now is not None and now < floor * (1.0 - tolerance):
            regressions.append(
                f"{metric}: {now:.3f} vs committed floor {floor:.3f} "
                f"(band {tolerance * 100:.0f}%)")
    return regressions
