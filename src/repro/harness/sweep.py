"""Parameter-sweep utilities.

Generic machinery for sensitivity studies: sweep one knob across a list
of values, run a set of benchmarks under selected modes at each point,
and collect geomean speedups. Used by the Fig. 17 driver's cousin
studies (memory-system sensitivity, MSHR scaling) and available to
users for their own what-if experiments.

Sweeps execute through :mod:`repro.harness.engine`: every (value, mode,
benchmark) point becomes one engine job, so sweeps parallelize under
``REPRO_JOBS`` and resume from the persistent result cache. See
docs/harness.md and examples/parallel_sweep.py.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

from ..config import SimConfig
from ..workloads import DEFAULT_SEED
from .engine import Job, get_engine
from .runner import config_for_mode, geomean

#: A knob mutates a SimConfig in place for a given sweep value.
Knob = Callable[[SimConfig, object], None]


def sweep(knob: Knob, values: Sequence, names: Sequence[str],
          modes: Sequence[str] = ("baseline", "cdf", "pre"),
          scale: float = 0.5, seed: int = DEFAULT_SEED,
          engine=None) -> Dict:
    """Run the sweep; returns {value: {mode: {benchmark: SimResult}}}."""
    engine = engine or get_engine()
    jobs = []
    for value in values:
        for mode in modes:
            for name in names:
                config = config_for_mode(mode)
                knob(config, value)
                jobs.append(Job(name, mode, scale=scale, seed=seed,
                                config=config))
    flat = engine.run(jobs)
    results: Dict = {}
    index = 0
    for value in values:
        results[value] = {}
        for mode in modes:
            results[value][mode] = {}
            for name in names:
                results[value][mode][name] = flat[index]
                index += 1
    return results


def geomean_speedups(results: Dict,
                     over_mode: str = "baseline") -> Dict:
    """Reduce sweep results to {value: {mode: geomean speedup}}."""
    out: Dict = {}
    for value, by_mode in results.items():
        base = by_mode[over_mode]
        out[value] = {}
        for mode, by_name in by_mode.items():
            if mode == over_mode:
                continue
            ratios = [by_name[name].speedup_over(base[name])
                      for name in by_name]
            out[value][mode] = geomean(ratios)
    return out


# ------------------------------------------------------------ common knobs
def memory_speed_knob(config: SimConfig, factor: float) -> None:
    """Scale main-memory latency: factor 1.0 is DDR4-2400; 0.5 halves
    the core-visible timing parameters (a 'better memory system')."""
    dram = config.dram
    dram.trp = max(1, int(dram.trp * factor))
    dram.tcl = max(1, int(dram.tcl * factor))
    dram.trcd = max(1, int(dram.trcd * factor))
    dram.burst_core_cycles = max(2, int(dram.burst_core_cycles * factor))


def mshr_knob(config: SimConfig, count: int) -> None:
    """Set the L1D/LLC MSHR counts (the hard MLP ceiling)."""
    # Knobs mutate by contract (see the Knob type alias): sweep() builds
    # a fresh config_for_mode() per point before applying the knob, so
    # no caller-shared config is ever touched.
    config.l1d.mshrs = count                # simlint: disable=CFG001 knob contract
    config.llc.mshrs = 2 * count            # simlint: disable=CFG001 knob contract


def llc_size_knob(config: SimConfig, size_bytes: int) -> None:
    """Set the LLC capacity (sets scale with it; ways fixed)."""
    config.llc.size_bytes = size_bytes      # simlint: disable=CFG001 knob contract
