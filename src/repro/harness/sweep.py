"""Parameter-sweep utilities.

Generic machinery for sensitivity studies: sweep one knob across a list
of values, run a set of benchmarks under selected modes at each point,
and collect geomean speedups. Used by the Fig. 17 driver's cousin
studies (memory-system sensitivity, MSHR scaling) and available to
users for their own what-if experiments.

Sweeps execute through :mod:`repro.harness.engine`: every (value, mode,
benchmark) point becomes one engine job, so sweeps parallelize under
``REPRO_JOBS`` and resume from the persistent result cache. See
docs/harness.md and examples/parallel_sweep.py.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..config import SimConfig
from ..workloads import DEFAULT_SEED
from .engine import Job, ScreeningEngine, get_engine
from .runner import config_for_mode, geomean

#: A knob maps (config, sweep value) to a *new* SimConfig — knobs never
#: mutate their argument (CFG001: the caller may share it across jobs).
Knob = Callable[[SimConfig, object], SimConfig]


def sweep(knob: Knob, values: Sequence, names: Sequence[str],
          modes: Sequence[str] = ("baseline", "cdf", "pre"),
          scale: float = 0.5, seed: int = DEFAULT_SEED,
          engine=None) -> Dict:
    """Run the sweep; returns {value: {mode: {benchmark: SimResult}}}."""
    engine = engine or get_engine()
    jobs = []
    for value in values:
        for mode in modes:
            for name in names:
                config = knob(config_for_mode(mode), value)
                jobs.append(Job(name, mode, scale=scale, seed=seed,
                                config=config))
    flat = engine.run(jobs)
    results: Dict = {}
    index = 0
    for value in values:
        results[value] = {}
        for mode in modes:
            results[value][mode] = {}
            for name in names:
                results[value][mode][name] = flat[index]
                index += 1
    return results


def geomean_speedups(results: Dict,
                     over_mode: str = "baseline") -> Dict:
    """Reduce sweep results to {value: {mode: geomean speedup}}."""
    out: Dict = {}
    for value, by_mode in results.items():
        base = by_mode[over_mode]
        out[value] = {}
        for mode, by_name in by_mode.items():
            if mode == over_mode:
                continue
            ratios = [by_name[name].speedup_over(base[name])
                      for name in by_name]
            out[value][mode] = geomean(ratios)
    return out


# ------------------------------------------------------- screened sweeps
@dataclass
class ScreenReport:
    """Outcome of one :func:`screened_sweep`.

    ``results`` holds full :class:`~repro.stats.SimResult` grids (the
    same shape :func:`sweep` returns) for the *promoted* values only;
    ``scores`` has the analytic geomean-IPC score for every value, so
    callers can see exactly why a point was pruned.  ``recall`` is
    populated only when the sweep ran with ``measure_recall=True``: 1.0
    means the full-simulation best value was inside the promoted set.
    """

    scores: Dict = field(default_factory=dict)
    promoted: List = field(default_factory=list)
    pruned: List = field(default_factory=list)
    results: Dict = field(default_factory=dict)
    true_best: object = None
    recall: Optional[float] = None

    def best_promoted(self):
        """The promoted value with the best *simulated* metric."""
        return max(self.results,
                   key=lambda value: _sim_score(self.results[value]))

    def to_dict(self) -> dict:
        payload = {
            "scores": {repr(value): score
                       for value, score in self.scores.items()},
            "promoted": [repr(value) for value in self.promoted],
            "pruned": [repr(value) for value in self.pruned],
        }
        if self.recall is not None:
            payload["recall"] = self.recall
            payload["true_best"] = repr(self.true_best)
        return payload


def _sim_score(by_mode: Dict) -> float:
    """Full-simulation ranking metric for one sweep value: geomean IPC
    over every (mode, benchmark) cell.  Mirrors the analytic score so
    the two tiers rank on the same quantity."""
    return geomean(result.ipc
                   for by_name in by_mode.values()
                   for result in by_name.values())


def screened_sweep(knob: Knob, values: Sequence, names: Sequence[str],
                   modes: Sequence[str] = ("baseline", "cdf", "pre"),
                   scale: float = 0.5, seed: int = DEFAULT_SEED,
                   top_k: int = 3, epsilon: float = 0.05,
                   engine=None, screening: Optional[ScreeningEngine] = None,
                   measure_recall: bool = False) -> ScreenReport:
    """Two-tier sweep: score every value analytically, simulate the best.

    Every (value, mode, benchmark) point is first scored by the
    analytic fast tier (milliseconds per point); values are ranked by
    the geomean of predicted IPC and the top ``top_k`` — plus any value
    scoring within ``epsilon`` (fractional) of the best — are promoted
    to a full cycle-accurate :func:`sweep`.  With five values and the
    defaults, a screened sweep simulates at most 3/5 of the grid while
    the committed recall tests assert the true optimum survives
    screening.

    ``measure_recall=True`` additionally runs the *full* grid (the
    pruned values too) and records whether the cycle-accurate best value
    was promoted — the property the screening tier exists to preserve.
    """
    if screening is None:
        screening = ScreeningEngine(full_engine=engine or get_engine())
    values = list(values)
    if top_k <= 0:
        raise ValueError(f"top_k must be positive, got {top_k}")

    scores: Dict = {}
    for value in values:
        predicted = []
        for mode in modes:
            for name in names:
                config = knob(config_for_mode(mode), value)
                job = Job(name, mode, scale=scale, seed=seed,
                          config=config)
                predicted.append(screening.predict(job).ipc)
        scores[value] = geomean(predicted)

    best_score = max(scores.values())
    ranked = sorted(values, key=lambda value: scores[value], reverse=True)
    keep = set(ranked[:top_k])
    keep.update(value for value in values
                if scores[value] >= best_score * (1.0 - epsilon))
    promoted = [value for value in values if value in keep]
    pruned = [value for value in values if value not in keep]
    screening.counters.bump("screen_configs_promoted", len(promoted))
    screening.counters.bump("screen_configs_pruned", len(pruned))

    report = ScreenReport(scores=scores, promoted=promoted, pruned=pruned)
    report.results = sweep(knob, promoted, names, modes, scale=scale,
                           seed=seed, engine=screening.full)
    if measure_recall:
        full = dict(report.results)
        if pruned:
            full.update(sweep(knob, pruned, names, modes, scale=scale,
                              seed=seed, engine=screening.full))
        report.true_best = max(
            values, key=lambda value: _sim_score(full[value]))
        report.recall = 1.0 if report.true_best in keep else 0.0
    return report


# ------------------------------------------------------------ common knobs
def memory_speed_knob(config: SimConfig, factor: float) -> SimConfig:
    """Scale main-memory latency: factor 1.0 is DDR4-2400; 0.5 halves
    the core-visible timing parameters (a 'better memory system')."""
    config = copy.deepcopy(config)
    dram = config.dram
    dram.trp = max(1, int(dram.trp * factor))
    dram.tcl = max(1, int(dram.tcl * factor))
    dram.trcd = max(1, int(dram.trcd * factor))
    dram.burst_core_cycles = max(2, int(dram.burst_core_cycles * factor))
    return config


def mshr_knob(config: SimConfig, count: int) -> SimConfig:
    """Set the L1D/LLC MSHR counts (the hard MLP ceiling)."""
    config = copy.deepcopy(config)
    config.l1d.mshrs = count
    config.llc.mshrs = 2 * count
    return config


def llc_size_knob(config: SimConfig, size_bytes: int) -> SimConfig:
    """Set the LLC capacity (sets scale with it; ways fixed)."""
    config = copy.deepcopy(config)
    config.llc.size_bytes = size_bytes
    return config


#: Named knobs for the CLI (``repro-sim sweep --knob``).
KNOBS: Dict[str, Knob] = {
    "memory_speed": memory_speed_knob,
    "mshrs": mshr_knob,
    "llc_size": llc_size_knob,
}

#: Pinned QUICK screening sweeps: (knob name, values) grids small enough
#: for CI, one per knob family.  The screening recall property — the
#: cycle-accurate best value always survives promotion — is asserted
#: over exactly these grids (tests/harness/test_screening.py and the
#: ``screen-smoke`` CI job), so the values are part of the contract: do
#: not casually edit.
QUICK_SCREEN_SWEEPS: Dict[str, Sequence] = {
    "memory_speed": (0.5, 0.75, 1.0, 1.5, 2.0),
    "mshrs": (1, 2, 4, 8, 16),
    "llc_size": (128 * 1024, 256 * 1024, 512 * 1024,
                 1024 * 1024, 4096 * 1024),
}

#: Benchmarks/modes/scale for the pinned QUICK screening sweeps: three
#: kernels spanning the bottleneck space (latency-bound pointer chasing,
#: dependent chains, prefetch-friendly streaming) at a scale small
#: enough that the full 5-value grid stays CI-sized even when
#: ``measure_recall`` simulates the pruned points too.
QUICK_SCREEN_NAMES = ("astar", "mcf", "lbm")
QUICK_SCREEN_MODES = ("baseline", "cdf")
QUICK_SCREEN_SCALE = 0.15


def quick_screened_sweep(knob_name: str, top_k: int = 3,
                         epsilon: float = 0.05, engine=None,
                         screening: Optional[ScreeningEngine] = None,
                         measure_recall: bool = False) -> ScreenReport:
    """Run one pinned QUICK screening sweep by knob name."""
    try:
        values = QUICK_SCREEN_SWEEPS[knob_name]
    except KeyError:
        raise ValueError(
            f"unknown quick sweep {knob_name!r}; "
            f"known: {sorted(QUICK_SCREEN_SWEEPS)}") from None
    return screened_sweep(
        KNOBS[knob_name], values, QUICK_SCREEN_NAMES,
        modes=QUICK_SCREEN_MODES, scale=QUICK_SCREEN_SCALE,
        top_k=top_k, epsilon=epsilon, engine=engine,
        screening=screening, measure_recall=measure_recall)
