"""Durable append-only journal + atomic checkpoint for the sweep service.

The sweep service (:mod:`repro.harness.service`) must survive being
SIGKILLed at any instruction and resume without losing a job or running
a completed one twice. The durability story is deliberately boring:

* **Journal** — one JSON record per line, appended and fsynced. Every
  record carries a monotonically increasing sequence number and a
  truncated-SHA-256 checksum of its own canonical encoding, so replay
  can tell a torn tail (the crash window of an append) and a corrupted
  interior record (bit rot, or the fault injector) from real data.

* **Replay** — :func:`replay_journal` parses the file line by line.
  Valid records are returned in order. A corrupt or torn *tail* is cut
  off; corrupt *interior* lines are skipped. Either way the offending
  bytes are moved to a ``quarantine/`` sidecar file — never silently
  deleted, never fatal — and the journal is compacted to only the
  records that verified. Because every service-level record is
  idempotent against the job state machine (a lost ``done`` merely
  causes one recomputation whose result is bit-identical), quarantining
  is always safe.

* **Checkpoint** — :func:`write_checkpoint` snapshots folded state with
  the classic temp-file + ``os.replace`` + fsync dance. A checkpoint
  names the journal sequence number it folds up to; replay applies only
  journal records *after* it. A corrupt checkpoint is quarantined and
  ignored — the journal alone can rebuild state since its last
  compaction, which only ever happens on a clean drain.

Records never contain wall-clock values: replay must fold to the same
state no matter when it runs (see docs/harness.md#the-sweep-service).
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import IO, Dict, List, Optional

__all__ = [
    "Journal",
    "JournalReplay",
    "encode_record",
    "decode_line",
    "replay_journal",
    "write_checkpoint",
    "read_checkpoint",
]

#: Subdirectory (sibling of the journal) that receives unverifiable
#: bytes: corrupt journal lines, torn tails, unreadable checkpoints.
QUARANTINE_DIR = "quarantine"

#: Bump on incompatible record-schema changes.
JOURNAL_SCHEMA = 1


def _crc(blob: bytes) -> str:
    return hashlib.sha256(blob).hexdigest()[:12]


def encode_record(record: Dict) -> str:
    """Canonical single-line encoding of *record* with its checksum.

    The checksum covers the canonical JSON of everything except the
    ``crc`` field itself, so any single-bit flip in the stored line is
    detected on replay.
    """
    body = dict(record)
    body.pop("crc", None)
    blob = json.dumps(body, sort_keys=True, separators=(",", ":"))
    body["crc"] = _crc(blob.encode("utf-8"))
    return json.dumps(body, sort_keys=True, separators=(",", ":"))


def decode_line(line: str) -> Optional[Dict]:
    """Parse and verify one journal line; None if torn or corrupt."""
    line = line.strip()
    if not line:
        return None
    try:
        record = json.loads(line)
    except ValueError:
        return None
    if not isinstance(record, dict) or "crc" not in record:
        return None
    claimed = record.pop("crc")
    blob = json.dumps(record, sort_keys=True, separators=(",", ":"))
    if _crc(blob.encode("utf-8")) != claimed:
        return None
    return record


class Journal:
    """Append-side handle on the journal file.

    ``append`` assigns sequence numbers, encodes, writes one line, and
    fsyncs, so a record either fully exists with a valid checksum or is
    a detectable torn tail. A ``post_append`` hook (used by the fault
    injector to corrupt freshly written records) runs after the fsync.
    """

    def __init__(self, path: os.PathLike, next_seq: int = 1,
                 fsync: bool = True):
        self.path = pathlib.Path(path)
        self.next_seq = int(next_seq)
        self.fsync = bool(fsync)
        self.appended = 0
        self.post_append = None   # callable(journal, seq, offset, length)
        self._handle: Optional[IO[bytes]] = None

    def _file(self) -> IO[bytes]:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "ab")
        return self._handle

    def append(self, record_type: str, **fields) -> int:
        """Durably append one record; returns its sequence number."""
        seq = self.next_seq
        self.next_seq += 1
        record = {"n": seq, "type": record_type, **fields}
        line = encode_record(record) + "\n"
        handle = self._file()
        offset = handle.tell()
        handle.write(line.encode("utf-8"))
        handle.flush()
        if self.fsync:
            os.fsync(handle.fileno())
        self.appended += 1
        if self.post_append is not None:
            self.post_append(self, seq, offset, len(line))
        return seq

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def reset(self) -> None:
        """Truncate the journal (only safe after a clean drain, when
        every outstanding job is folded into results)."""
        self.close()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "wb") as handle:
            handle.flush()
            os.fsync(handle.fileno())


@dataclass
class JournalReplay:
    """Outcome of one journal replay."""

    records: List[Dict] = field(default_factory=list)
    corrupt_records: int = 0          # interior lines that failed the crc
    torn_tail: bool = False           # final line was torn / corrupt
    quarantined: Optional[pathlib.Path] = None
    next_seq: int = 1                 # first unused sequence number


def _quarantine(journal_path: pathlib.Path, bad_lines: List[str],
                tag: str) -> pathlib.Path:
    qdir = journal_path.parent / QUARANTINE_DIR
    qdir.mkdir(parents=True, exist_ok=True)
    # Deterministic, collision-free name per quarantine event.
    existing = len(list(qdir.glob(f"{tag}-*.bad")))
    path = qdir / f"{tag}-{existing:04d}.bad"
    path.write_text("".join(bad_lines))
    return path


def replay_journal(path: os.PathLike,
                   repair: bool = True) -> JournalReplay:
    """Read, verify, and (if needed) repair the journal at *path*.

    Returns every verifiable record in order. If any line fails
    verification the journal is atomically rewritten with only the good
    records and the bad bytes are preserved under ``quarantine/``.
    Pass ``repair=False`` for a strictly read-only replay (``repro-sim
    status`` runs concurrently with live services and must never
    rewrite their journal); corruption is still counted in the result.
    """
    journal_path = pathlib.Path(path)
    replay = JournalReplay()
    try:
        raw = journal_path.read_text(errors="replace")
    except FileNotFoundError:
        return replay
    lines = raw.splitlines(keepends=True)
    good_lines: List[str] = []
    bad_lines: List[str] = []
    for index, line in enumerate(lines):
        record = decode_line(line)
        if record is None:
            bad_lines.append(line)
            if index == len(lines) - 1:
                replay.torn_tail = True
            else:
                replay.corrupt_records += 1
            continue
        replay.records.append(record)
        good_lines.append(line if line.endswith("\n") else line + "\n")
    if bad_lines and repair:
        replay.quarantined = _quarantine(journal_path, bad_lines,
                                         "journal")
        tmp = journal_path.with_name(journal_path.name
                                     + f".tmp{os.getpid()}")
        tmp.write_text("".join(good_lines))
        os.replace(tmp, journal_path)
    if replay.records:
        replay.next_seq = max(r.get("n", 0) for r in replay.records) + 1
    return replay


# ----------------------------------------------------------- checkpoint
def write_checkpoint(path: os.PathLike, state: Dict) -> None:
    """Atomically persist *state* (with its own checksum) to *path*."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    document = dict(state)
    document["schema"] = JOURNAL_SCHEMA
    blob = json.dumps(document, sort_keys=True, separators=(",", ":"))
    document["crc"] = _crc(blob.encode("utf-8"))
    tmp = target.with_name(target.name + f".tmp{os.getpid()}")
    with open(tmp, "w") as handle:
        json.dump(document, handle, sort_keys=True)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, target)


def read_checkpoint(path: os.PathLike) -> Optional[Dict]:
    """Load and verify a checkpoint; corrupt ones are quarantined.

    Returns None when absent or unverifiable — the caller falls back to
    a full journal replay.
    """
    target = pathlib.Path(path)
    try:
        raw = target.read_text()
    except FileNotFoundError:
        return None
    try:
        document = json.loads(raw)
        claimed = document.pop("crc")
        blob = json.dumps(document, sort_keys=True,
                          separators=(",", ":"))
        if _crc(blob.encode("utf-8")) != claimed:
            raise ValueError("checksum mismatch")
        if document.get("schema") != JOURNAL_SCHEMA:
            raise ValueError("schema mismatch")
    except (ValueError, KeyError, TypeError):
        _quarantine(target, [raw], "checkpoint")
        try:
            target.unlink()
        except OSError:
            pass
        return None
    return document
