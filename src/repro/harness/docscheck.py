"""Docs checker (``repro-sim lint --docs``): simlint for the prose.

Documentation rots in three specific ways this repo has already been
bitten by, and this module checks all three mechanically:

**internal links**
    Every relative markdown link in ``README.md`` and ``docs/*.md``
    must point at a file that exists, and every ``#anchor`` fragment at
    a heading that exists in the target (GitHub's slug rules).

**CLI examples**
    Every ``repro-sim ...`` command — fenced blocks and inline code
    spans alike — is validated against the *real* parser
    (:func:`repro.cli.build_parser`), so a renamed flag or subcommand
    fails the docs build instead of a reader.  Only subcommand names
    and ``--option`` flags are validated; operands, shell plumbing
    (pipes, redirects, env prefixes) and usage placeholders
    (``[--quick|--full]``) are tolerated.

**module paths**
    Every dotted ``repro.*`` path named in the docs must import (and
    any trailing attribute resolve), so docs cannot reference modules
    or functions that were moved or deleted.

It lives in the harness layer (not :mod:`repro.analysis`) because
validating CLI examples requires importing :mod:`repro.cli`, which the
ARCH001 import-layering rule forbids from the analysis layer.
"""

from __future__ import annotations

import argparse
import importlib
import re
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

__all__ = ["check_docs", "check_file", "cli_surface", "heading_anchors",
           "main"]

#: What gets checked when no paths are given (relative to repo root).
DEFAULT_ROOTS = ("README.md", "docs")

_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_FENCE_RE = re.compile(r"^\s*(```|~~~)")
_INLINE_CODE_RE = re.compile(r"`([^`\n]+)`")
_MODULE_RE = re.compile(r"\brepro(?:\.[A-Za-z_][A-Za-z0-9_]*)+")
_ENV_ASSIGN_RE = re.compile(r"^[A-Z][A-Z0-9_]*=\S*$")


# ------------------------------------------------------------------ links
def github_slug(heading: str) -> str:
    """GitHub's heading-to-anchor slug: lowercase, drop punctuation,
    spaces to hyphens (backtick code spans keep their content)."""
    text = heading.strip().lower()
    text = text.replace("`", "")
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_anchors(text: str) -> Set[str]:
    """All anchor slugs a markdown document exposes (duplicate headings
    get ``-1``/``-2`` suffixes, as on GitHub)."""
    anchors: Set[str] = set()
    counts: Dict[str, int] = {}
    in_fence = False
    for line in text.splitlines():
        if _FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING_RE.match(line)
        if not match:
            continue
        slug = github_slug(match.group(2))
        seen = counts.get(slug, 0)
        counts[slug] = seen + 1
        anchors.add(slug if seen == 0 else f"{slug}-{seen}")
    return anchors


def _check_links(path: Path, text: str, repo_root: Path) -> List[str]:
    problems = []
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if _FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            where = f"{path}:{lineno}"
            if target.startswith("#"):
                if target[1:] not in heading_anchors(text):
                    problems.append(
                        f"{where}: broken anchor {target!r} "
                        "(no such heading in this file)")
                continue
            file_part, _, anchor = target.partition("#")
            resolved = (path.parent / file_part).resolve()
            try:
                resolved.relative_to(repo_root.resolve())
            except ValueError:
                problems.append(
                    f"{where}: link {target!r} escapes the repository")
                continue
            if not resolved.exists():
                problems.append(
                    f"{where}: broken link {target!r} "
                    f"(no such file: {file_part})")
                continue
            if anchor and resolved.suffix == ".md":
                linked = resolved.read_text(encoding="utf-8")
                if anchor not in heading_anchors(linked):
                    problems.append(
                        f"{where}: broken anchor {target!r} "
                        f"(no heading #{anchor} in {file_part})")
    return problems


# ------------------------------------------------------------ CLI surface
def cli_surface() -> Dict[str, Set[str]]:
    """subcommand -> set of valid option strings, from the real parser.

    ``lint`` owns its options in :mod:`repro.analysis.runner` (the main
    parser only stubs it), so its surface is introspected there, plus
    the ``--docs`` dispatch flag this module adds.
    """
    from ..cli import build_parser
    surface: Dict[str, Set[str]] = {}
    for action in build_parser()._actions:
        if not isinstance(action, argparse._SubParsersAction):
            continue
        for name, sub in action.choices.items():
            options: Set[str] = set()
            for sub_action in sub._actions:
                options.update(sub_action.option_strings)
            surface[name] = options
    from ..analysis.runner import build_parser as lint_parser
    lint_options: Set[str] = set()
    for action in lint_parser()._actions:
        lint_options.update(action.option_strings)
    lint_options.add("--docs")
    surface["lint"] = lint_options
    return surface


def _iter_commands(text: str) -> List[Tuple[int, str]]:
    """Every ``repro-sim ...`` command in *text* with its line number,
    from fenced code blocks and inline code spans."""
    commands = []
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if _FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            if "repro-sim" in line:
                commands.append((lineno, line))
        else:
            for match in _INLINE_CODE_RE.finditer(line):
                if "repro-sim" in match.group(1):
                    commands.append((lineno, match.group(1)))
    return commands


def _check_command(where: str, command: str,
                   surface: Dict[str, Set[str]]) -> List[str]:
    tokens = command.split()
    try:
        start = tokens.index("repro-sim")
    except ValueError:
        return []
    tokens = tokens[start + 1:]
    # Shell plumbing ends the command; env prefixes never precede the
    # token we anchored on, so nothing to strip on the left.
    for stop, token in enumerate(tokens):
        if token in ("|", "||", "&&", ">", ">>", "2>", ";"):
            tokens = tokens[:stop]
            break
    if not tokens:
        return []          # naming the tool, not showing a command
    subcommand = tokens[0].strip("[]")
    if not re.fullmatch(r"[a-z][a-z0-9-]*", subcommand):
        return []          # usage placeholder like <command>; skip
    if subcommand not in surface:
        known = ", ".join(sorted(surface))
        return [f"{where}: unknown subcommand `{subcommand}` "
                f"(known: {known})"]
    problems = []
    for token in tokens[1:]:
        # Usage templates bracket alternatives: [--quick|--full].
        for part in token.strip("[]").split("|"):
            if not part.startswith("--"):
                continue
            flag = part.split("=", 1)[0].rstrip("]")
            if flag == "--":
                continue
            if flag not in surface[subcommand]:
                problems.append(
                    f"{where}: `repro-sim {subcommand}` has no "
                    f"{flag} option")
    return problems


def _check_cli_examples(path: Path, text: str,
                        surface: Dict[str, Set[str]]) -> List[str]:
    problems = []
    for lineno, command in _iter_commands(text):
        problems.extend(
            _check_command(f"{path}:{lineno}", command, surface))
    return problems


# ----------------------------------------------------------- module paths
def _resolve_dotted(dotted: str) -> bool:
    """True if *dotted* names an importable module, or an attribute
    reachable from one (``repro.harness.engine.Job``)."""
    parts = dotted.split(".")
    for cut in range(len(parts), 0, -1):
        module_name = ".".join(parts[:cut])
        try:
            module = importlib.import_module(module_name)
        except ImportError:
            continue
        obj = module
        try:
            for attr in parts[cut:]:
                obj = getattr(obj, attr)
        except AttributeError:
            return False
        return True
    return False


def _check_module_paths(path: Path, text: str) -> List[str]:
    problems = []
    checked: Set[str] = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in _MODULE_RE.finditer(line):
            dotted = match.group(0)
            if dotted in checked:
                continue
            checked.add(dotted)
            if not _resolve_dotted(dotted):
                problems.append(
                    f"{path}:{lineno}: `{dotted}` does not resolve to "
                    "a module or attribute")
    return problems


# --------------------------------------------------------------- driver
def check_file(path: Path, repo_root: Path,
               surface: Optional[Dict[str, Set[str]]] = None) -> List[str]:
    """All findings for one markdown file."""
    text = path.read_text(encoding="utf-8")
    if surface is None:
        surface = cli_surface()
    return (_check_links(path, text, repo_root)
            + _check_cli_examples(path, text, surface)
            + _check_module_paths(path, text))


def check_docs(roots: Sequence[str] = DEFAULT_ROOTS,
               repo_root: str = ".") -> List[str]:
    """Check every markdown file under *roots*; returns findings."""
    root = Path(repo_root)
    files: List[Path] = []
    for entry in roots:
        path = root / entry
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.suffix == ".md" and path.exists():
            files.append(path)
    surface = cli_surface()
    problems: List[str] = []
    for path in sorted(set(files)):
        problems.extend(check_file(path, root, surface))
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-sim lint --docs",
        description="validate docs: internal links, repro-sim command "
                    "examples, and repro.* module paths")
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="markdown files or directories "
             f"(default: {' '.join(DEFAULT_ROOTS)})")
    args = parser.parse_args(argv)
    roots = args.paths or list(DEFAULT_ROOTS)
    problems = check_docs(roots)
    for problem in problems:
        print(problem)
    count = len(problems)
    checked = ", ".join(roots)
    if count:
        print(f"docscheck: {count} problem(s) in {checked}",
              file=sys.stderr)
        return 1
    print(f"docscheck: {checked} clean")
    return 0


if __name__ == "__main__":                          # pragma: no cover
    sys.exit(main())
