"""Experiment runner: one benchmark x one mode -> SimResult.

This is the programmatic entry point everything else (examples, figure
drivers, pytest benches) uses. Traces are cached per (name, scale, seed)
so the three modes of a comparison share one functional execution.

``run_benchmark`` is the single-simulation primitive; multi-point
functions (``run_comparison`` here, ``sweep``, the figure drivers) go
through :mod:`repro.harness.engine`, which adds process-pool fan-out and
a persistent on-disk result cache. See docs/harness.md.
"""

from __future__ import annotations

import os
import warnings
from collections import OrderedDict
from typing import Dict, Iterable, Optional, Tuple

from ..cdf import CDFPipeline
from ..config import SimConfig
from ..core import BaselinePipeline
from ..energy import EnergyModel
from ..runahead import PREPipeline
from ..stats import SimResult, mark_critical_chains, metrics
from ..workloads import DEFAULT_SEED, Workload, get_workload
from .tracestore import get_trace_store, trace_store_enabled

MODES = ("baseline", "cdf", "pre")

#: Cap on the in-process workload memo (``$REPRO_WORKLOAD_CACHE``).
#: Long sweeps visit many (name, scale, seed) points; without a bound a
#: single worker process would keep every dynamic trace alive at once.
WORKLOAD_CACHE_ENV = "REPRO_WORKLOAD_CACHE"
DEFAULT_WORKLOAD_CACHE = 8

#: In-process LRU of built workloads, most recently used last.
_workload_cache: "OrderedDict[Tuple[str, float, int], Workload]" = \
    OrderedDict()


#: One warning per process for a malformed ``$REPRO_WORKLOAD_CACHE``
#: (the capacity is re-read on every eviction check, so warning on each
#: parse would flood long sweeps).
_warned_bad_workload_cache = False


def workload_cache_capacity() -> int:
    """Entry cap from ``$REPRO_WORKLOAD_CACHE`` (default 8, min 1).

    A non-integer value falls back to the default with a single warning
    — the same degrade-don't-die contract as ``REPRO_STRICT=0``
    (see :mod:`repro.stats.registry`).
    """
    global _warned_bad_workload_cache  # simlint: disable=CONC001 warn-once latch, process-local by design
    raw = os.environ.get(WORKLOAD_CACHE_ENV)
    if raw is None:
        return DEFAULT_WORKLOAD_CACHE
    try:
        return max(1, int(raw))
    except ValueError:
        if not _warned_bad_workload_cache:
            _warned_bad_workload_cache = True
            warnings.warn(
                f"ignoring non-integer {WORKLOAD_CACHE_ENV}={raw!r}; "
                f"using the default capacity of "
                f"{DEFAULT_WORKLOAD_CACHE}", RuntimeWarning,
                stacklevel=2)
        return DEFAULT_WORKLOAD_CACHE


def load_workload(name: str, scale: float = 1.0,
                  seed: int = DEFAULT_SEED) -> Workload:
    """Build (or fetch the cached) workload; its trace is cached too.

    The in-process memo is a small LRU (see ``REPRO_WORKLOAD_CACHE``).
    Fresh workloads are wired to the persistent compiled-trace store
    (:mod:`repro.harness.tracestore`) so their dynamic trace is
    deserialized from disk when available and persisted after the first
    functional execution — engine worker processes never re-run the
    functional model for a trace any process has built before.
    """
    key = (name, scale, seed)
    workload = _workload_cache.get(key)
    if workload is not None:
        _workload_cache.move_to_end(key)  # simlint: disable=CONC001 LRU memo of deterministically built workloads
        return workload
    workload = get_workload(name, scale=scale, seed=seed)
    if trace_store_enabled():
        store = get_trace_store()
        workload.trace_loader = lambda: store.get(name, scale, seed)
        workload.trace_saver = \
            lambda trace: store.put(name, scale, seed, trace)
    _workload_cache[key] = workload  # simlint: disable=CONC001 LRU memo of deterministically built workloads
    while len(_workload_cache) > workload_cache_capacity():
        _workload_cache.popitem(last=False)  # simlint: disable=CONC001 LRU eviction of the same memo
    return workload


def config_for_mode(mode: str, **overrides) -> SimConfig:
    if mode == "baseline":
        return SimConfig.baseline(**overrides)
    if mode == "cdf":
        return SimConfig.with_cdf(**overrides)
    if mode == "pre":
        return SimConfig.with_pre(**overrides)
    raise ValueError(f"unknown mode: {mode!r}; known: {MODES}")


def make_pipeline(mode: str, trace, config: SimConfig, workload: Workload,
                  **kwargs):
    if mode == "baseline":
        pipeline = BaselinePipeline(trace, config, benchmark=workload.name,
                                    **kwargs)
    elif mode == "cdf":
        pipeline = CDFPipeline(trace, config, workload.program,
                               benchmark=workload.name, **kwargs)
    elif mode == "pre":
        pipeline = PREPipeline(trace, config, workload.program,
                               benchmark=workload.name, **kwargs)
    else:
        raise ValueError(f"unknown mode: {mode!r}")
    if config.verify_level > 0:
        # Imported lazily: at verify_level 0 (every normal run) the
        # verification subsystem is never even imported.
        from ..verify import DifferentialOracle, PipelineVerifier
        oracle = DifferentialOracle(workload.program, workload.memory,
                                    context=workload.name)
        pipeline.attach_verifier(PipelineVerifier(
            level=config.verify_level, oracle=oracle,
            context=workload.name))
    if config.obs_level > 0:
        # Same lazy-import contract as verification: at obs_level 0 the
        # telemetry subsystem is never imported and results stay
        # bit-identical (pinned by tests/memory/test_hierarchy_
        # fingerprints.py and the trace-smoke CI job).
        from ..obs import ObsCollector
        pipeline.attach_observer(ObsCollector(
            level=config.obs_level,
            sample_interval=config.obs_sample_interval))
    return pipeline


def run_benchmark(name: str, mode: str = "baseline", scale: float = 1.0,
                  seed: int = DEFAULT_SEED,
                  config: Optional[SimConfig] = None,
                  obs_level: Optional[int] = None,
                  **pipeline_kwargs) -> SimResult:
    """Run one benchmark under one mode; returns the SimResult with the
    energy model applied.

    ``obs_level`` (when not None) overrides ``config.obs_level``; at
    level >= 1 the returned result carries the telemetry payload on
    ``result.obs`` (see docs/observability.md).
    """
    workload = load_workload(name, scale, seed)
    trace = workload.trace()
    if config is None:
        config = config_for_mode(mode)
    else:
        # Never mutate the caller's config: it may be shared across
        # workloads (sweeps reuse one config object per point) and the
        # per-workload warmup assignment below would silently leak into
        # subsequent runs.  ``copy()`` round-trips through the dict form
        # (cheaper than deepcopy) and always yields a mutable config,
        # even when the caller's was frozen by the engine.
        config = config.copy()
    config.stats_warmup_uops = workload.warmup_uops()
    if obs_level is not None:
        config.obs_level = obs_level
    pipeline = make_pipeline(mode, trace, config, workload,
                             **pipeline_kwargs)
    result = pipeline.run()
    if pipeline.observer is not None:
        result.obs = pipeline.observer.payload()
    EnergyModel(config).compute(result)
    return result


def rob_stall_profile(name: str, scale: float = 1.0,
                      seed: int = DEFAULT_SEED) -> float:
    """Fraction of ROB slots holding critical uops during full-window
    stalls on the baseline core (the per-benchmark unit of Fig. 1)."""
    workload = load_workload(name, scale, seed)
    trace = workload.trace()
    config = config_for_mode("baseline")
    pipeline = BaselinePipeline(trace, config, benchmark=name,
                                profile_rob_stalls=True)
    pipeline.run()
    if pipeline.profiler.stall_cycles == 0:
        return 0.0
    roots = list(pipeline.llc_miss_load_seqs)
    roots += pipeline.mispredicted_branch_seqs
    critical = mark_critical_chains(trace, roots)
    return pipeline.profiler.critical_fraction(critical)


def run_comparison(names: Iterable[str], modes: Iterable[str] = MODES,
                   scale: float = 1.0, seed: int = DEFAULT_SEED,
                   engine=None) -> Dict[str, Dict[str, SimResult]]:
    """Run every benchmark under every mode.

    Execution goes through the experiment engine: jobs fan out across
    ``REPRO_JOBS`` worker processes and completed points are memoized in
    the on-disk result cache (see :mod:`repro.harness.engine`).
    """
    from .engine import Job, get_engine
    engine = engine or get_engine()
    names = list(names)
    modes = list(modes)
    jobs = [Job(name, mode, scale=scale, seed=seed)
            for name in names for mode in modes]
    flat = engine.run(jobs)
    results: Dict[str, Dict[str, SimResult]] = {}
    index = 0
    for name in names:
        results[name] = {}
        for mode in modes:
            results[name][mode] = flat[index]
            index += 1
    return results


def geomean(values: Iterable[float]) -> float:
    """Defensive geometric mean for sweep/figure reducers.

    Non-positive values (a diverged zero-IPC point) are dropped and an
    empty input yields 0.0 — the long-standing harness behaviour the
    figure drivers and their pinned outputs rely on.  The strict
    variant, which raises a typed :class:`repro.stats.metrics.
    MetricDomainError` instead, is :func:`repro.stats.metrics.geomean`.
    """
    positive = [v for v in values if v > 0]
    if not positive:
        return 0.0
    return metrics.geomean(positive)


def speedups(results: Dict[str, Dict[str, SimResult]],
             mode: str) -> Dict[str, float]:
    """Per-benchmark IPC ratio of *mode* over baseline."""
    out = {}
    for name, by_mode in results.items():
        out[name] = by_mode[mode].speedup_over(by_mode["baseline"])
    return out
