"""Simulation configuration, with defaults matching Table 1 of the paper.

Every structure size, latency, and CDF parameter that Table 1 or the text
of the paper specifies appears here with the paper's value as the default:

* Core: 3.2 GHz, 6-wide, 352-entry ROB, 160-entry RS, 128-entry LQ,
  72-entry SQ (Intel Sunny Cove-like).
* Caches: 32KB 8-way L1 I/D (2-cycle), 1MB 16-way LLC (18-cycle), 64B lines.
* Prefetcher: 64-stream stream prefetcher with feedback-directed throttling.
* Memory: DDR4-2400R, 2 channels, 1 rank, 4 bank groups x 4 banks,
  tRP-tCL-tRCD = 16-16-16.
* CDF: 64-entry 2-way Critical Count Tables, 4KB 4-way Mask Cache,
  18KB 4-way Critical Uop Cache (8 uops per entry), 1024-entry Fill
  Buffer, 256-entry Delayed Branch Queue, 256-entry Critical Map Queue.
* CDF policies (from the text): fill-buffer walk every 10k retired
  instructions with ~1200-cycle fill latency; mask cache reset every 200k
  instructions; density gates at <2% and >50%; dynamic partitioning with a
  4-cycle stall threshold, +/-8-entry ROB/RS steps and +/-2-entry LQ/SQ
  steps.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import typing
from dataclasses import dataclass, field


class FrozenConfigError(AttributeError):
    """A config object was mutated after :meth:`SimConfig.freeze`."""


class _Freezable:
    """Opt-in immutability for the config dataclasses.

    Configs are born mutable (builders tweak fields freely), but once a
    config enters the experiment engine its canonical JSON becomes a
    cache key: silent mutation after that point would corrupt
    content-addressed results.  ``freeze()`` flips the object (and, for
    :class:`SimConfig`, every nested config) read-only, which also makes
    it safe to memoize :meth:`SimConfig.canonical_json` /
    :meth:`SimConfig.fingerprint` — the engine's per-job cache-key path
    then re-canonicalizes nothing.  Use :meth:`SimConfig.copy` to derive
    a fresh mutable config from a frozen one.
    """

    _frozen: bool = False        # class default; flipped per-instance

    def __setattr__(self, name: str, value: typing.Any) -> None:
        if self._frozen:
            raise FrozenConfigError(
                f"cannot set {name!r}: this "
                f"{type(self).__name__} was frozen when it entered the "
                f"experiment engine (its fingerprint is a cache key); "
                f"derive a mutable copy with SimConfig.copy()")
        object.__setattr__(self, name, value)

    def freeze(self) -> "_Freezable":
        """Make this object (and nested configs) immutable; returns it."""
        for f in dataclasses.fields(self):          # type: ignore[arg-type]
            value = getattr(self, f.name)
            if isinstance(value, _Freezable):
                value.freeze()
        object.__setattr__(self, "_frozen", True)
        return self

    @property
    def frozen(self) -> bool:
        return self._frozen


def _dataclass_from_dict(cls: type, data: dict) -> typing.Any:
    """Rebuild a (possibly nested) config dataclass from a plain dict.

    Unknown keys are ignored and missing keys fall back to the field
    defaults, so configs serialized by older/newer code versions load
    cleanly (the cache's code-version salt handles semantic drift).
    """
    hints = typing.get_type_hints(cls)
    kwargs = {}
    for f in dataclasses.fields(cls):
        if f.name not in data:
            continue
        value = data[f.name]
        ftype = hints.get(f.name)
        if dataclasses.is_dataclass(ftype) and isinstance(value, dict):
            value = _dataclass_from_dict(ftype, value)
        kwargs[f.name] = value
    return cls(**kwargs)


@dataclass
class CoreConfig(_Freezable):
    """Out-of-order core parameters (Table 1, 'Core')."""

    freq_ghz: float = 3.2
    fetch_width: int = 6
    decode_width: int = 6
    rename_width: int = 6
    issue_width: int = 6
    retire_width: int = 6
    rob_size: int = 352
    rs_size: int = 160
    lq_size: int = 128
    sq_size: int = 72
    num_phys_regs: int = 416          # 352 ROB + 32 arch + headroom
    decode_latency: int = 3           # fetch->rename pipeline depth
    mispredict_redirect_penalty: int = 10
    num_load_ports: int = 2
    num_store_ports: int = 1
    # Execution-unit pools (Sunny-Cove-like): simple integer/branch ports,
    # floating-point ports, and a long-latency integer (mul/div) pipe.
    num_alu_ports: int = 4
    num_fp_ports: int = 3
    num_muldiv_ports: int = 2
    # Memory dependence handling: 'oracle' models perfect memory
    # dependence prediction (loads bypass older stores except true
    # forwarders — how modern cores behave in the common case);
    # 'conservative' holds every load until all older stores have
    # computed their addresses.
    memory_disambiguation: str = "oracle"

    def scaled(self, rob_size: int) -> "CoreConfig":
        """Return a copy scaled to *rob_size* with other window structures
        scaled proportionately (used by the Fig. 17 scaling study)."""
        factor = rob_size / self.rob_size
        return dataclasses.replace(
            self,
            rob_size=rob_size,
            rs_size=max(16, int(round(self.rs_size * factor))),
            lq_size=max(8, int(round(self.lq_size * factor))),
            sq_size=max(8, int(round(self.sq_size * factor))),
            num_phys_regs=rob_size + 64,
        )


@dataclass
class CacheConfig(_Freezable):
    """One cache level."""

    size_bytes: int
    ways: int
    latency: int
    line_bytes: int = 64
    mshrs: int = 16

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)


@dataclass
class PrefetcherConfig(_Freezable):
    """Stream prefetcher with feedback-directed throttling (Table 1)."""

    enabled: bool = True
    num_streams: int = 64
    max_distance: int = 48            # lines ahead of the demand stream
    initial_degree: int = 2
    min_degree: int = 1
    max_degree: int = 6
    feedback_interval: int = 512      # prefetches between throttle decisions
    high_accuracy: float = 0.60       # above this, increase degree
    low_accuracy: float = 0.30        # below this, decrease degree
    train_on_hits: bool = False


@dataclass
class DRAMConfig(_Freezable):
    """DDR4-2400R main memory (Table 1, 'Memory').

    Timing parameters are in *memory* cycles (1200 MHz for DDR4-2400) and
    converted to core cycles via the frequency ratio.
    """

    channels: int = 2
    ranks: int = 1
    bank_groups: int = 4
    banks_per_group: int = 4
    trp: int = 16
    tcl: int = 16
    trcd: int = 16
    row_bytes: int = 2048
    mem_freq_mhz: float = 1200.0
    burst_core_cycles: int = 11       # 64B burst at 2400 MT/s, 3.2 GHz core

    def core_cycles(self, mem_cycles: int, core_freq_ghz: float) -> int:
        """Convert memory-clock cycles to core-clock cycles (rounded up)."""
        ratio = core_freq_ghz * 1000.0 / self.mem_freq_mhz
        return int(mem_cycles * ratio + 0.999)

    @property
    def total_banks(self) -> int:
        return self.channels * self.ranks * self.bank_groups * self.banks_per_group


@dataclass
class CDFConfig(_Freezable):
    """Criticality Driven Fetch structures and policies (Table 1 + Sec. 3)."""

    enabled: bool = True

    # Critical Count Tables: two saturating counters per entry. The strict
    # counter needs more evidence before marking a load critical; the
    # permissive one marks sooner. CDF picks permissive when too few uops
    # end up marked critical (Sec. 3.2).
    cct_entries: int = 64
    cct_ways: int = 2
    strict_counter_max: int = 15
    strict_threshold: int = 12
    permissive_counter_max: int = 7
    permissive_threshold: int = 4
    # Hard-to-predict branch table ("tracked similarly in a separate table
    # and have different thresholds").
    branch_table_entries: int = 64
    branch_table_ways: int = 2
    branch_strict_threshold: int = 10
    branch_permissive_threshold: int = 3
    branch_counter_max: int = 15
    # Asymmetric walk so 50%-mispredicting branches qualify (see cct.py).
    branch_counter_increment: int = 2
    mark_branches_critical: bool = True
    # Fraction of retired uops marked critical below which the permissive
    # counters are selected.
    low_coverage_fraction: float = 0.05

    # Fill Buffer / trace construction (Sec. 3.2).
    fill_buffer_entries: int = 1024
    fill_interval_uops: int = 10_000
    fill_latency_cycles: int = 1200
    min_critical_fraction: float = 0.02   # <2%: do not fill
    max_critical_fraction: float = 0.50   # >50%: do not fill

    # Mask Cache: 4KB, 4-way; one 64-bit mask per basic block.
    mask_cache_entries: int = 512
    mask_cache_ways: int = 4
    mask_cache_reset_interval: int = 200_000

    # Critical Uop Cache: 18KB, 4-way, 8 uops per entry.
    uop_cache_entries: int = 288
    uop_cache_ways: int = 4
    uops_per_trace: int = 8

    # FIFOs.
    delayed_branch_queue_entries: int = 256
    critical_map_queue_entries: int = 256

    # Dynamic partitioning (Sec. 3.5).
    dynamic_partitioning: bool = True
    stall_cycle_threshold: int = 4
    rob_partition_step: int = 8
    lsq_partition_step: int = 2
    min_noncrit_rob: int = 32
    initial_critical_rob_fraction: float = 0.5

    # Extra pipeline stage at the end of Rename while in CDF mode
    # (Sec. 4.3, "worst-case scenario").
    extra_rename_stage: bool = True

    # Design alternative the paper evaluates and rejects (Sec. 3.3): a
    # separate Non-Critical Uop Cache that avoids re-fetching/decoding
    # critical uops from the I-cache and raises non-critical fetch
    # bandwidth. 'Non-critical instructions are generally less sensitive
    # to fetch bandwidth' — the ablation bench quantifies that.
    non_critical_uop_cache: bool = False
    non_critical_fetch_boost: int = 2     # x fetch width when enabled

    # Generalised criticality (Sec. 6): 'Criticality driven fetch is not
    # fundamentally limited to loads and can be expanded to any
    # instructions in the program that are critical.' When enabled,
    # long-latency arithmetic (DIV/FDIV-class uops) also roots critical
    # chains, letting CDF pack independent long dependence chains the
    # way it packs independent misses.
    mark_longlat_critical: bool = False
    longlat_min_latency: int = 12

    # Dependence-violation flush penalty (reuses branch-flush logic).
    violation_flush_penalty: int = 10


@dataclass
class PREConfig(_Freezable):
    """Precise Runahead comparator (Sec. 4.1).

    Per the paper's fair-comparison methodology, PRE uses the *same*
    marking/fetching infrastructure as CDF except that only loads causing
    full-window stalls are marked critical, and it runs dependence chains
    only during full-window stalls using free RS entries / physical
    registers.
    """

    enabled: bool = False
    enter_exit_overhead: int = 4      # cycles to start/stop runahead
    chain_issue_width: int = 4        # chains issued per cycle in runahead
    # How far beyond the stalled fetch point runahead chains may reach, in
    # trace uops. PRE holds runahead state in *free* RS entries and
    # physical registers only, which bounds how many future chains can be
    # live; with typical chain densities that corresponds to roughly 2k
    # sequential uops. This bound produces the paper's observation (c):
    # stalls spaced further apart than this see no runahead benefit.
    max_runahead_distance: int = 2048
    # Probability that a chain whose inputs depend on in-flight misses
    # produces a wrong address (models stale-value chains; drives the
    # extra-traffic results of Figs. 14/15).
    stale_chain_fraction: float = 0.10
    # Runahead requests are second-class citizens: leave this many LLC
    # MSHRs for demand misses.
    reserved_llc_mshrs: int = 4


@dataclass
class SimConfig(_Freezable):
    """Top-level simulation configuration."""

    core: CoreConfig = field(default_factory=CoreConfig)
    l1i: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=32 * 1024, ways=8, latency=2, mshrs=8))
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=32 * 1024, ways=8, latency=2, mshrs=16))
    llc: CacheConfig = field(default_factory=lambda: CacheConfig(
        size_bytes=1024 * 1024, ways=16, latency=18, mshrs=32))
    prefetcher: PrefetcherConfig = field(default_factory=PrefetcherConfig)
    dram: DRAMConfig = field(default_factory=DRAMConfig)
    cdf: CDFConfig = field(default_factory=lambda: CDFConfig(enabled=False))
    pre: PREConfig = field(default_factory=PREConfig)
    stats_warmup_uops: int = 0
    max_cycles: int = 50_000_000
    seed: int = 1
    # Runtime verification (see docs/verification.md): 0 = off (the
    # default; bit-identical results and no measurable overhead), 1 =
    # event invariants + differential oracle, 2 = level 1 plus per-cycle
    # occupancy sweeps and periodic structural scans, 3 = level 2 with
    # the structural scan every cycle.
    verify_level: int = 0
    # Observability (see docs/observability.md), mirroring the
    # verify_level contract: 0 = off (the default; bit-identical results,
    # the obs subsystem is never imported and every hook site costs one
    # comparison), 1 = sampled counter time-series + structure-occupancy
    # gauges every ``obs_sample_interval`` cycles, 2 = level 1 plus full
    # per-uop lifecycle events and per-request memory latency
    # attribution.
    obs_level: int = 0
    # Cycles between occupancy-gauge samples at obs_level >= 1.
    obs_sample_interval: int = 128

    @staticmethod
    def baseline(**overrides: typing.Any) -> "SimConfig":
        """Baseline OoO core with prefetching (the paper's baseline)."""
        cfg = SimConfig(**overrides)
        cfg.cdf = CDFConfig(enabled=False)
        cfg.pre = PREConfig(enabled=False)
        return cfg

    @staticmethod
    def with_cdf(**overrides: typing.Any) -> "SimConfig":
        """Baseline plus Criticality Driven Fetch."""
        cfg = SimConfig(**overrides)
        cfg.cdf = CDFConfig(enabled=True)
        cfg.pre = PREConfig(enabled=False)
        return cfg

    @staticmethod
    def with_pre(**overrides: typing.Any) -> "SimConfig":
        """Baseline plus Precise Runahead."""
        cfg = SimConfig(**overrides)
        cfg.cdf = CDFConfig(enabled=False)
        cfg.pre = PREConfig(enabled=True)
        return cfg

    def mode(self) -> str:
        """Return 'cdf', 'pre', or 'baseline'."""
        if self.cdf.enabled:
            return "cdf"
        if self.pre.enabled:
            return "pre"
        return "baseline"

    # ------------------------------------------------ stable serialization
    def to_dict(self) -> dict:
        """Plain-dict form (nested dataclasses become nested dicts).

        Always returns a fresh dict the caller may mutate.  On a frozen
        config it is rebuilt from the memoized canonical JSON (one C
        ``json.loads`` instead of a recursive ``dataclasses.asdict``
        walk); config values are JSON-exact scalars, so the round trip
        is lossless.
        """
        if self._frozen:
            result: dict = json.loads(self.canonical_json())
            return result
        return dataclasses.asdict(self)

    @staticmethod
    def from_dict(data: dict) -> "SimConfig":
        """Inverse of :meth:`to_dict`; tolerant of unknown/missing keys."""
        config: SimConfig = _dataclass_from_dict(SimConfig, data)
        return config

    def copy(self) -> "SimConfig":
        """A fresh, always-mutable deep copy (frozen or not)."""
        return SimConfig.from_dict(self.to_dict())

    def canonical_json(self) -> str:
        """Deterministic JSON rendering: sorted keys, no whitespace.

        This is the representation the experiment engine hashes into
        on-disk cache keys, so it must be byte-stable across processes
        and Python versions for equal configs.  Memoized once the
        config is frozen (the engine freezes every job config), so the
        per-job cache-key path stops re-canonicalizing JSON.
        """
        if self._frozen:
            cached = self.__dict__.get("_canonical_json_cache")
            if cached is None:
                cached = json.dumps(dataclasses.asdict(self),
                                    sort_keys=True,
                                    separators=(",", ":"))
                object.__setattr__(self, "_canonical_json_cache", cached)
            return typing.cast(str, cached)
        return json.dumps(dataclasses.asdict(self), sort_keys=True,
                          separators=(",", ":"))

    def fingerprint(self) -> str:
        """SHA-256 hex digest of :meth:`canonical_json` (memoized on
        frozen configs alongside the canonical JSON)."""
        if self._frozen:
            cached = self.__dict__.get("_fingerprint_cache")
            if cached is None:
                digest = hashlib.sha256(
                    self.canonical_json().encode("utf-8"))
                cached = digest.hexdigest()
                object.__setattr__(self, "_fingerprint_cache", cached)
            return typing.cast(str, cached)
        digest = hashlib.sha256(self.canonical_json().encode("utf-8"))
        return digest.hexdigest()
