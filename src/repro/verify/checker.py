"""Pipeline invariant checker, hooked into the cycle loop.

The pipelines expose four verification points (all behind a single
``pipeline.verifier is not None`` test, so a run with
``SimConfig.verify_level == 0`` pays one attribute comparison per event
and nothing else):

* ``on_dispatch``  — after a ROB entry is allocated;
* ``on_issue``     — when an entry is selected and sent to execute;
* ``on_retire``    — after an entry retires;
* ``on_cycle_end`` — once per simulated step of the main loop.

What runs at each point depends on ``verify_level``:

=====  ==============================================================
level  checks
=====  ==============================================================
0      verification off (the default; zero behavioural change)
1      event checks: program-order retirement, no flushed/incomplete
       retirement, sources ready at issue, forwarding consistency,
       conservative-disambiguation load ordering, per-partition
       occupancy bounds at allocation; plus the differential oracle
       if one is attached
2      level 1 + per-cycle occupancy sweeps (partition totals never
       exceed the physical structures, no negative occupancy) and a
       full structural scan every ``scan_interval`` cycles (ROB seq
       order, LSQ/RS/PRF recounts, inflight-map consistency, cache
       tag-store sanity)
3      level 2 with the full structural scan every cycle
=====  ==============================================================

Every check that fails raises :class:`InvariantViolation` naming the
invariant, the cycle, the offending uop, and a replay hint.
"""

from __future__ import annotations

from typing import Any, List, Optional

from ..core.rob import COMPLETE, READY, WAITING, RobEntry
from .errors import InvariantViolation
from .oracle import DifferentialOracle


class PipelineVerifier:
    """Invariant checker (and oracle host) for one pipeline run."""

    def __init__(self, level: int = 1,
                 oracle: Optional[DifferentialOracle] = None,
                 context: str = "", replay: str = "",
                 scan_interval: int = 256) -> None:
        if level < 1:
            raise ValueError("PipelineVerifier requires level >= 1; "
                             "leave pipeline.verifier unset to disable")
        self.level = level
        self.oracle = oracle
        self.context = context
        self.replay = replay
        self.scan_interval = max(1, scan_interval)
        self.pipeline: Any = None
        self._dual = False          # has a partitioned (critical) ROB
        self._last_retired_seq = -1
        self._last_scan_cycle = 0

    # ------------------------------------------------------------------
    def bind(self, pipeline: Any) -> "PipelineVerifier":
        """Associate with *pipeline*; returns self for chaining."""
        self.pipeline = pipeline
        self._dual = hasattr(pipeline, "rob_crit")
        if self.oracle is not None:
            self.oracle.mode = pipeline._mode_name()
            if not self.oracle.replay:
                self.oracle.replay = self.replay
        return self

    def _fail(self, invariant: str, detail: str, cycle: int,
              seq: Optional[int] = None) -> None:
        mode = self.pipeline._mode_name() if self.pipeline else ""
        raise InvariantViolation(
            invariant=invariant, detail=detail, cycle=cycle, seq=seq,
            mode=mode, context=self.context, replay=self.replay)

    # ------------------------------------------------------------ events
    def on_dispatch(self, entry: RobEntry, cycle: int,
                    critical: bool) -> None:
        """Occupancy bounds hold at the moment an entry is allocated."""
        p = self.pipeline
        p.counters.bump("verify_dispatch_checks")
        uop = entry.uop
        if critical:
            parts = p.partitions
            if len(p.rob_crit) > parts.rob.critical_size:
                self._fail("partition_rob_bound",
                           f"critical ROB holds {len(p.rob_crit)} > "
                           f"partition bound {parts.rob.critical_size}",
                           cycle, uop.seq)
            if p.rs_crit_used > parts.rs_critical_size:
                self._fail("partition_rs_bound",
                           f"critical RS share {p.rs_crit_used} > "
                           f"{parts.rs_critical_size}", cycle, uop.seq)
            if p.lq_crit_used > parts.lq.critical_size:
                self._fail("partition_lq_bound",
                           f"critical LQ {p.lq_crit_used} > "
                           f"{parts.lq.critical_size}", cycle, uop.seq)
            if p.sq_crit_used > parts.sq.critical_size:
                self._fail("partition_sq_bound",
                           f"critical SQ {p.sq_crit_used} > "
                           f"{parts.sq.critical_size}", cycle, uop.seq)
            return
        if self._dual:
            parts = p.partitions
            if len(p.rob) > parts.rob.noncritical_size:
                self._fail("partition_rob_bound",
                           f"non-critical ROB holds {len(p.rob)} > "
                           f"partition bound "
                           f"{parts.rob.noncritical_size}", cycle, uop.seq)
        elif len(p.rob) > p.rob_size:
            self._fail("rob_bound",
                       f"ROB holds {len(p.rob)} > {p.rob_size}",
                       cycle, uop.seq)
        if p.rs_used > p.rs_size:
            self._fail("rs_bound", f"RS holds {p.rs_used} > {p.rs_size}",
                       cycle, uop.seq)
        if p.lq_used > p.lq_size:
            self._fail("lq_bound", f"LQ holds {p.lq_used} > {p.lq_size}",
                       cycle, uop.seq)
        if p.sq_used > p.sq_size:
            self._fail("sq_bound", f"SQ holds {p.sq_used} > {p.sq_size}",
                       cycle, uop.seq)

    def on_issue(self, entry: RobEntry, cycle: int) -> None:
        """Scheduling invariants hold when an entry starts executing."""
        p = self.pipeline
        p.counters.bump("verify_issue_checks")
        uop = entry.uop
        if entry.pending != 0:
            self._fail("issue_pending_wakeups",
                       f"issued with {entry.pending} outstanding "
                       f"wakeups", cycle, uop.seq)
        if entry.flushed:
            self._fail("issue_flushed",
                       "a squashed entry was issued", cycle, uop.seq)
        if not entry.poisoned:
            for dep in uop.src_deps:
                producer = p.inflight.get(dep)
                if producer is not None and not producer.flushed \
                        and producer.state != COMPLETE:
                    self._fail(
                        "issue_source_not_ready",
                        f"source seq {dep} is in flight in state "
                        f"{producer.state} (not COMPLETE)", cycle,
                        uop.seq)
        if entry.forwarded and (not uop.is_load or uop.store_dep < 0):
            self._fail("forward_without_store",
                       "entry marked forwarded but has no forwarding "
                       "store", cycle, uop.seq)
        if uop.is_load and uop.store_dep >= 0 and not entry.forwarded \
                and not entry.poisoned:
            store = p.inflight.get(uop.store_dep)
            if store is not None and not store.flushed:
                self._fail(
                    "load_bypassed_forwarding_store",
                    f"load reads memory while forwarding store seq "
                    f"{uop.store_dep} is still in flight", cycle,
                    uop.seq)
        if p.conservative_mem and uop.is_load and not entry.forwarded \
                and not self._dual:
            unissued = p._unissued_stores
            if unissued and unissued[0] < uop.seq:
                self._fail(
                    "conservative_load_order",
                    f"load issued ahead of unissued older store seq "
                    f"{unissued[0]} under conservative disambiguation",
                    cycle, uop.seq)

    def on_retire(self, entry: RobEntry, cycle: int) -> None:
        """Commit-time invariants, then the differential oracle."""
        p = self.pipeline
        p.counters.bump("verify_retired_uops")
        if entry.seq <= self._last_retired_seq:
            self._fail("retire_order",
                       f"seq {entry.seq} retired after seq "
                       f"{self._last_retired_seq} (program order "
                       f"requires strictly increasing seqs)", cycle,
                       entry.seq)
        if entry.flushed:
            self._fail("retire_flushed", "a squashed entry retired",
                       cycle, entry.seq)
        if entry.state != COMPLETE:
            self._fail("retire_incomplete",
                       f"retired in state {entry.state} (not COMPLETE)",
                       cycle, entry.seq)
        if entry.complete_cycle > cycle:
            self._fail("retire_before_complete",
                       f"retired at cycle {cycle} but completes at "
                       f"{entry.complete_cycle}", cycle, entry.seq)
        self._last_retired_seq = entry.seq
        if self.oracle is not None:
            p.counters.bump("verify_oracle_uops")
            self.oracle.on_retire(entry.uop, cycle)

    # ------------------------------------------------------------ cycles
    def on_cycle_end(self, cycle: int) -> None:
        if self.level < 2:
            return
        p = self.pipeline
        p.counters.bump("verify_cycle_checks")
        core = p.config.core
        rob_crit = len(p.rob_crit) if self._dual else 0
        lq_crit = p.lq_crit_used if self._dual else 0
        sq_crit = p.sq_crit_used if self._dual else 0
        rs_crit = p.rs_crit_used if self._dual else 0
        occupancies = (
            ("ROB", len(p.rob) + rob_crit, core.rob_size),
            ("RS", p.rs_used + rs_crit, core.rs_size),
            ("LQ", p.lq_used + lq_crit, core.lq_size),
            ("SQ", p.sq_used + sq_crit, core.sq_size),
        )
        for name, used, limit in occupancies:
            if used > limit:
                self._fail("occupancy_total",
                           f"{name} occupancy {used} exceeds the "
                           f"physical structure ({limit})", cycle)
        negatives = (
            ("rs_used", p.rs_used), ("lq_used", p.lq_used),
            ("sq_used", p.sq_used),
            ("writers_inflight", p.writers_inflight),
            ("rs_crit_used", rs_crit), ("lq_crit_used", lq_crit),
            ("sq_crit_used", sq_crit),
        )
        for name, value in negatives:
            if value < 0:
                self._fail("negative_occupancy",
                           f"{name} went negative ({value})", cycle)
        if self.level >= 3 \
                or cycle - self._last_scan_cycle >= self.scan_interval:
            self._last_scan_cycle = cycle
            self._structural_scan(cycle)

    # ---------------------------------------------------- structural scan
    def _scan_partition(self, name: str, rob, cycle: int) -> tuple:
        """Order/content scan of one ROB section; returns its recounts."""
        loads = stores = writers = rs_entries = 0
        prev = -1
        for entry in rob:
            if entry.seq <= prev:
                self._fail("rob_order",
                           f"{name} ROB out of program order: seq "
                           f"{entry.seq} follows {prev}", cycle,
                           entry.seq)
            prev = entry.seq
            if entry.flushed:
                self._fail("flushed_in_rob",
                           f"squashed entry still in the {name} ROB",
                           cycle, entry.seq)
            if self.pipeline.inflight.get(entry.seq) is not entry:
                self._fail("inflight_map",
                           f"{name} ROB entry seq {entry.seq} missing "
                           f"from (or mismatched in) the inflight map",
                           cycle, entry.seq)
            uop = entry.uop
            loads += uop.is_load
            stores += uop.is_store
            writers += uop.writes_reg
            rs_entries += entry.state in (WAITING, READY)
        return loads, stores, writers, rs_entries

    def _recount(self, what: str, counted: int, tracked: int,
                 cycle: int) -> None:
        if counted != tracked:
            self._fail("resource_recount",
                       f"{what}: recount over the ROB finds {counted} "
                       f"but the occupancy counter says {tracked}",
                       cycle)

    def _structural_scan(self, cycle: int) -> None:
        p = self.pipeline
        p.counters.bump("verify_structural_scans")
        loads, stores, writers, rs_entries = self._scan_partition(
            "non-critical" if self._dual else "", p.rob, cycle)
        self._recount("LQ (non-critical)", loads, p.lq_used, cycle)
        self._recount("SQ (non-critical)", stores, p.sq_used, cycle)
        self._recount("PRF writers", writers, p.writers_inflight, cycle)
        self._recount("RS (non-critical)", rs_entries, p.rs_used, cycle)
        total_entries = len(p.rob)
        if self._dual:
            c_loads, c_stores, c_writers, c_rs = self._scan_partition(
                "critical", p.rob_crit, cycle)
            self._recount("LQ (critical)", c_loads, p.lq_crit_used, cycle)
            self._recount("SQ (critical)", c_stores, p.sq_crit_used,
                          cycle)
            self._recount("PRF writers (critical)", c_writers,
                          p.writers_crit, cycle)
            self._recount("RS (critical)", c_rs, p.rs_crit_used, cycle)
            total_entries += len(p.rob_crit)
        if len(p.inflight) != total_entries:
            self._fail("inflight_map",
                       f"inflight map holds {len(p.inflight)} entries "
                       f"but the ROB sections hold {total_entries}",
                       cycle)
        if p.conservative_mem:
            expected = sorted(
                entry.seq
                for rob in ((p.rob, p.rob_crit) if self._dual
                            else (p.rob,))
                for entry in rob
                if entry.uop.is_store and entry.state in (WAITING, READY))
            if expected != list(p._unissued_stores):
                self._fail("unissued_store_tracking",
                           f"unissued-store list {list(p._unissued_stores)}"
                           f" != dispatched unissued stores {expected}",
                           cycle)
        self._cache_scan(cycle)

    def _cache_scan(self, cycle: int) -> None:
        p = self.pipeline
        p.counters.bump("verify_cache_scans")
        for cache in (p.mem.l1i, p.mem.l1d, p.mem.llc):
            # The tag store allocates per set on first fill; an absent
            # set is all-invalid by construction, so scanning only the
            # allocated ones checks every line that can hold state.
            for set_index, lines in cache._lines.items():
                tags: List[int] = [line.tag for line in lines
                                   if line.valid]
                if len(tags) != len(set(tags)):
                    self._fail("cache_duplicate_tag",
                               f"{cache.name} set {set_index} holds a "
                               f"duplicate line: {sorted(tags)}", cycle)
                for tag in tags:
                    if tag & cache._set_mask != set_index:
                        self._fail(
                            "cache_tag_set_mismatch",
                            f"{cache.name} line {tag} stored in set "
                            f"{set_index}, belongs in set "
                            f"{tag & cache._set_mask}", cycle)

    # ------------------------------------------------------------ finish
    def on_run_end(self) -> None:
        """All machine structures must drain; the oracle must be sated."""
        p = self.pipeline
        end = p.cycle
        if p.rob or (self._dual and p.rob_crit):
            self._fail("drain_rob",
                       f"{len(p.rob)} entries left in the ROB at end of "
                       f"run", end)
        if p.inflight:
            self._fail("drain_inflight",
                       f"{len(p.inflight)} entries left in the inflight "
                       f"map", end)
        if p.retry_loads:
            self._fail("drain_retry_loads",
                       f"{len(p.retry_loads)} loads still awaiting MSHR "
                       f"retry", end)
        leftovers = [
            ("rs_used", p.rs_used), ("lq_used", p.lq_used),
            ("sq_used", p.sq_used),
            ("writers_inflight", p.writers_inflight),
        ]
        if self._dual:
            leftovers += [
                ("rs_crit_used", p.rs_crit_used),
                ("lq_crit_used", p.lq_crit_used),
                ("sq_crit_used", p.sq_crit_used),
                ("writers_crit", p.writers_crit),
            ]
        for name, value in leftovers:
            if value:
                self._fail("drain_occupancy",
                           f"{name} is {value} at end of run "
                           f"(expected 0)", end)
        if self.oracle is not None:
            self.oracle.on_run_end(p.retired, len(p.trace))
