"""Seeded fuzz-program generator over the repro uop ISA.

:func:`fuzz_program` deterministically derives a random but *well-formed*
program (plus an initial memory image) from a single integer seed.  The
grammar is tuned to stress exactly the machinery the timing pipelines —
and especially the CDF/PRE reordering models — get wrong first:

* **loops** — a counted outer loop around a counted inner loop, so the
  branch predictor sees strong loop structure and the trace is long
  enough for CDF mode switches to occur;
* **call/RAS pressure** — a chain of non-recursive functions
  (``fn_0`` may call ``fn_1`` which may call ``fn_2`` …) exercised from
  loop bodies, driving return-address-stack depth;
* **aliasing loads and stores** — a small *alias window* (a handful of
  words) hammered by both loads and stores, so store-to-load forwarding
  and memory disambiguation fire constantly;
* **pointer chasing** — a register walks a closed ring of pointers in
  memory (each load's address depends on the previous load's value),
  the canonical criticality chain from the paper;
* **hard-to-predict branches** — forward skips conditioned on bits of
  an LCG entropy register, which no history-based predictor learns.

Register convention (all generated programs obey it):

====== =================================================================
reg    role
====== =================================================================
r0     LCG entropy register (only the LCG step writes it)
r1     outer loop counter (written only at init and the loop tail)
r2     inner loop counter (written only at init and the loop tail)
r3–r8  scratch (random ALU/memory destinations)
r9     pointer-chase cursor (walks the pointer ring)
r10–13 scratch
r14    alias-window base (never written after init)
r15    large-region base (never written after init)
====== =================================================================

Termination is structural, not probabilistic: the loop counters are
decremented exactly once per iteration at the loop tail and nothing
else writes them; every forward skip targets a label later in the same
block; calls only go to strictly-higher-numbered functions.  A
generated program therefore always halts, and
:func:`repro.isa.functional.execute` needs no uop cap in practice
(callers still pass one as a backstop).
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from ..isa.builder import ProgramBuilder
from ..isa.program import Program

# LCG constants (Knuth MMIX); the entropy register advances through a
# full-period 2^64 sequence, so branch predicates derived from its bits
# look random to the predictor but are perfectly deterministic.
_LCG_A = 6364136223846793005
_LCG_C = 1442695040888963407

#: Registers the generator may clobber freely.
_SCRATCH = (3, 4, 5, 6, 7, 8, 10, 11, 12, 13)

_ENTROPY = 0
_OUTER = 1
_INNER = 2
_CHASE = 9
_ALIAS_BASE = 14
_BIG_BASE = 15

_ALIAS_REGION = 1 << 20      # the hammered alias window lives here
_RING_REGION = 1 << 22       # pointer ring (never stored to)
_BIG_REGION = 1 << 26        # large sparse region (masked indices)

_ALIAS_WORDS_CHOICES = (4, 6, 8, 12, 16)
_RING_WORDS_CHOICES = (8, 16, 32, 64)
_BIG_MASK_CHOICES = (0x3F, 0xFF, 0x3FF)


class _Ctx:
    """Per-program generation context: labels, layout, and knobs."""

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng
        self._labels = 0
        self.alias_words = rng.choice(_ALIAS_WORDS_CHOICES)
        self.ring_words = rng.choice(_RING_WORDS_CHOICES)
        self.big_mask = rng.choice(_BIG_MASK_CHOICES)
        #: functions callable from the current scope (label names)
        self.call_targets: List[str] = []

    def fresh(self, stem: str) -> str:
        self._labels += 1
        return f"{stem}_{self._labels}"


# ---------------------------------------------------------------- blocks
def _blk_lcg(b: ProgramBuilder, ctx: _Ctx) -> None:
    """Advance the entropy register one LCG step."""
    b.mul(_ENTROPY, _ENTROPY, imm=_LCG_A)
    b.add(_ENTROPY, _ENTROPY, imm=_LCG_C)


def _blk_alu(b: ProgramBuilder, ctx: _Ctx) -> None:
    """A short dependent ALU chain over scratch registers."""
    rng = ctx.rng
    ops = ("add", "sub", "mul", "and_", "or_", "xor", "shl", "shr",
           "cmplt", "cmpeq")
    for _ in range(rng.randint(1, 3)):
        op = getattr(b, rng.choice(ops))
        dst = rng.choice(_SCRATCH)
        src1 = rng.choice(_SCRATCH + (_ENTROPY,))
        if rng.random() < 0.5:
            op(dst, src1, src2=rng.choice(_SCRATCH))
        else:
            imm = rng.randint(0, 63) if op in (b.shl, b.shr) \
                else rng.randint(-128, 127)
            op(dst, src1, imm=imm)


def _blk_longlat(b: ProgramBuilder, ctx: _Ctx) -> None:
    """A long-latency op (div/mod/fp) to open criticality gaps."""
    rng = ctx.rng
    dst = rng.choice(_SCRATCH)
    src = rng.choice(_SCRATCH + (_ENTROPY,))
    choice = rng.random()
    if choice < 0.35:
        b.div(dst, src, src2=rng.choice(_SCRATCH))
    elif choice < 0.6:
        b.mod(dst, src, imm=rng.randint(1, 97))
    elif choice < 0.8:
        b.fmul(dst, src, src2=rng.choice(_SCRATCH))
    else:
        b.fdiv(dst, src, imm=rng.randint(1, 17))


def _blk_alias_store(b: ProgramBuilder, ctx: _Ctx) -> None:
    """Store a scratch value into the tiny alias window."""
    rng = ctx.rng
    slot = rng.randrange(ctx.alias_words)
    b.store(rng.choice(_SCRATCH), base=_ALIAS_BASE, imm=8 * slot)


def _blk_alias_load(b: ProgramBuilder, ctx: _Ctx) -> None:
    """Load from the alias window, then use the value (forwarding)."""
    rng = ctx.rng
    dst = rng.choice(_SCRATCH)
    slot = rng.randrange(ctx.alias_words)
    b.load(dst, base=_ALIAS_BASE, imm=8 * slot)
    if rng.random() < 0.6:
        b.add(rng.choice(_SCRATCH), dst, imm=rng.randint(0, 7))


def _blk_big_store(b: ProgramBuilder, ctx: _Ctx) -> None:
    """Masked-index store into the large region (confined addresses)."""
    rng = ctx.rng
    idx = rng.choice(_SCRATCH)
    b.and_(idx, rng.choice(_SCRATCH + (_ENTROPY,)), imm=ctx.big_mask)
    b.store(rng.choice(_SCRATCH), base=_BIG_BASE, index=idx, scale=8)


def _blk_big_load(b: ProgramBuilder, ctx: _Ctx) -> None:
    """Masked-index load from the large region (cache pressure)."""
    rng = ctx.rng
    idx = rng.choice(_SCRATCH)
    dst = rng.choice(tuple(r for r in _SCRATCH if r != idx))
    b.and_(idx, rng.choice(_SCRATCH + (_ENTROPY,)), imm=ctx.big_mask)
    b.load(dst, base=_BIG_BASE, index=idx, scale=8)


def _blk_chase(b: ProgramBuilder, ctx: _Ctx) -> None:
    """Walk the pointer ring: each address depends on the last load."""
    for _ in range(ctx.rng.randint(1, 3)):
        b.load(_CHASE, base=_CHASE, imm=0)


def _blk_hard_branch(b: ProgramBuilder, ctx: _Ctx) -> None:
    """Forward skip conditioned on an entropy bit — unpredictable."""
    rng = ctx.rng
    bit = 1 << rng.randint(0, 15)
    test = rng.choice(_SCRATCH)
    skip = ctx.fresh("skip")
    b.and_(test, _ENTROPY, imm=bit)
    b.beqz(test, skip) if rng.random() < 0.5 else b.bnez(test, skip)
    for _ in range(rng.randint(1, 3)):
        _blk_alu(b, ctx) if rng.random() < 0.7 else _blk_alias_store(b, ctx)
    b.label(skip)


def _blk_call(b: ProgramBuilder, ctx: _Ctx) -> None:
    """Call one of the currently-visible functions (RAS pressure)."""
    b.call(ctx.rng.choice(ctx.call_targets))


_BODY_BLOCKS = (
    (_blk_alu, 4),
    (_blk_lcg, 3),
    (_blk_alias_store, 3),
    (_blk_alias_load, 3),
    (_blk_big_store, 2),
    (_blk_big_load, 2),
    (_blk_chase, 2),
    (_blk_hard_branch, 3),
    (_blk_longlat, 1),
    (_blk_call, 2),
)


def _emit_blocks(b: ProgramBuilder, ctx: _Ctx, count: int,
                 allow_calls: bool) -> None:
    blocks = [(fn, w) for fn, w in _BODY_BLOCKS
              if allow_calls or fn is not _blk_call]
    if not ctx.call_targets:
        blocks = [(fn, w) for fn, w in blocks if fn is not _blk_call]
    fns = [fn for fn, _ in blocks]
    weights = [w for _, w in blocks]
    for _ in range(count):
        ctx.rng.choices(fns, weights)[0](b, ctx)


# ---------------------------------------------------------------- memory
def _initial_memory(ctx: _Ctx) -> Dict[int, int]:
    rng = ctx.rng
    memory: Dict[int, int] = {}
    # Closed pointer ring: a random cyclic permutation of the ring slots,
    # so the chase cursor can never escape the ring.
    order = list(range(ctx.ring_words))
    rng.shuffle(order)
    for pos in range(ctx.ring_words):
        src = _RING_REGION + 8 * order[pos]
        dst = _RING_REGION + 8 * order[(pos + 1) % ctx.ring_words]
        memory[src] = dst
    # Alias window and a sprinkling of the big region start non-zero so
    # early loads see real values.
    for slot in range(ctx.alias_words):
        memory[_ALIAS_REGION + 8 * slot] = rng.getrandbits(32)
    for _ in range(16):
        idx = rng.randint(0, ctx.big_mask)
        memory[_BIG_REGION + 8 * idx] = rng.getrandbits(32)
    return memory


# ------------------------------------------------------------------ main
def fuzz_program(seed: int) -> Tuple[Program, Dict[int, int]]:
    """Derive a deterministic random well-formed program from *seed*.

    Returns ``(program, initial_memory)``.  Two calls with the same seed
    return identical programs and memory images on any platform (the
    generator uses only :class:`random.Random`, never ``hash()``).
    """
    rng = random.Random(seed)
    ctx = _Ctx(rng)
    b = ProgramBuilder()

    outer_iters = rng.randint(6, 14)
    inner_iters = rng.randint(8, 20)
    n_funcs = rng.randint(0, 3)

    # --- init ----------------------------------------------------------
    b.movi(_ENTROPY, seed & 0x7FFFFFFF | 1)
    b.movi(_ALIAS_BASE, _ALIAS_REGION)
    b.movi(_BIG_BASE, _BIG_REGION)
    b.movi(_CHASE, _RING_REGION)
    for reg in _SCRATCH:
        b.movi(reg, rng.randint(-64, 64))

    # Function bodies live after HALT; reserve their names now so the
    # main body can call them, resolve labels when we emit them.
    fn_names = [ctx.fresh("fn") for _ in range(n_funcs)]

    # --- main body: counted outer loop around a counted inner loop -----
    ctx.call_targets = fn_names
    b.movi(_OUTER, outer_iters)
    outer_top = ctx.fresh("outer")
    b.label(outer_top)

    _emit_blocks(b, ctx, rng.randint(1, 3), allow_calls=True)

    b.movi(_INNER, inner_iters)
    inner_top = ctx.fresh("inner")
    b.label(inner_top)
    _emit_blocks(b, ctx, rng.randint(4, 9), allow_calls=True)
    b.sub(_INNER, _INNER, imm=1)
    b.bnez(_INNER, inner_top)

    _emit_blocks(b, ctx, rng.randint(0, 2), allow_calls=True)
    b.sub(_OUTER, _OUTER, imm=1)
    b.bnez(_OUTER, outer_top)

    b.halt()

    # --- functions (deepest-first so callers see callees) --------------
    for i in reversed(range(n_funcs)):
        ctx.call_targets = fn_names[i + 1:]
        b.label(fn_names[i])
        _emit_blocks(b, ctx, rng.randint(2, 5), allow_calls=True)
        if ctx.call_targets and rng.random() < 0.5:
            b.call(ctx.call_targets[0])
        b.ret()

    return b.build(), _initial_memory(ctx)
