"""Fuzz campaign driver: generated programs through verified pipelines.

One *case* is one seed: :func:`repro.verify.fuzz.fuzz_program` derives a
program and memory image, the functional model executes it once, and the
resulting trace is replayed through each requested timing pipeline with
a :class:`~repro.verify.checker.PipelineVerifier` (hosting a
:class:`~repro.verify.oracle.DifferentialOracle`) attached.  Any
divergence or invariant violation surfaces as a
:class:`~repro.verify.errors.VerificationError` whose report carries the
replay hint ``repro-sim verify --fuzz 1 --seed <seed>``.

Configs are fuzzed too — deterministically, from the case seed and a
fixed per-mode salt (never ``hash()``, which is randomized across
processes).  The CDF time constants are shrunk so a few-thousand-uop
fuzz trace actually trains the CCTs, fills the uop cache, and enters CDF
mode; full-size constants would leave the CDF machinery cold and
unverified.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..cdf import CDFPipeline
from ..config import SimConfig
from ..core import BaselinePipeline
from ..isa.functional import execute
from ..runahead import PREPipeline
from ..stats import SimResult
from .errors import VerificationError
from .fuzz import fuzz_program
from .oracle import DifferentialOracle
from .checker import PipelineVerifier

MODES: Tuple[str, ...] = ("baseline", "cdf", "pre")

#: Fixed per-mode seed salts (``hash(mode)`` would vary with
#: PYTHONHASHSEED and break cross-process replay).
_MODE_SALT: Dict[str, int] = {"baseline": 101, "cdf": 202, "pre": 303}

#: Backstop for the functional execution; the generator's loops are
#: structurally bounded well below this.
_MAX_UOPS = 200_000


def replay_hint(seed: int) -> str:
    """The exact CLI invocation that regenerates one failing case."""
    return f"repro-sim verify --fuzz 1 --seed {seed}"


# ------------------------------------------------------------------ config
def fuzz_config(mode: str, seed: int) -> SimConfig:
    """Derive a deterministic per-(mode, seed) configuration.

    Small cores (64–128-entry ROBs) so short fuzz traces fill every
    structure; shrunken CDF intervals so mode switches happen within the
    trace; occasional conservative disambiguation / prefetcher-off /
    design-alternative knobs so those paths get verified too.
    """
    if mode not in _MODE_SALT:
        raise ValueError(f"unknown mode: {mode!r}; known: {MODES}")
    rng = random.Random(seed * 1_000_003 + _MODE_SALT[mode])
    if mode == "baseline":
        cfg = SimConfig.baseline()
    elif mode == "cdf":
        cfg = SimConfig.with_cdf()
    else:
        cfg = SimConfig.with_pre()
    cfg.seed = seed
    cfg.core = cfg.core.scaled(rng.choice((64, 96, 128)))
    if rng.random() < 0.30:
        cfg.core = dataclasses.replace(
            cfg.core, memory_disambiguation="conservative")
    if rng.random() < 0.20:
        cfg.prefetcher.enabled = False
    if mode == "cdf":
        # Shrink the time constants to fuzz-trace scale.
        cfg.cdf.fill_interval_uops = 300
        cfg.cdf.fill_buffer_entries = 256
        cfg.cdf.fill_latency_cycles = 60
        cfg.cdf.mask_cache_reset_interval = 4_000
        cfg.cdf.mark_longlat_critical = rng.random() < 0.5
        cfg.cdf.non_critical_uop_cache = rng.random() < 0.25
    if mode == "pre":
        # Same shrinkage: PRE reuses the CDF marking infrastructure.
        cfg.cdf.fill_interval_uops = 300
        cfg.cdf.fill_latency_cycles = 60
    return cfg


def _make_pipeline(mode: str, trace, config: SimConfig, program,
                   benchmark: str):
    if mode == "baseline":
        return BaselinePipeline(trace, config, benchmark=benchmark)
    if mode == "cdf":
        return CDFPipeline(trace, config, program, benchmark=benchmark)
    if mode == "pre":
        return PREPipeline(trace, config, program, benchmark=benchmark)
    raise ValueError(f"unknown mode: {mode!r}; known: {MODES}")


# ------------------------------------------------------------------- case
@dataclasses.dataclass
class FuzzCase:
    """Outcome of one seed run through every requested pipeline."""

    seed: int
    trace_len: int
    results: Dict[str, SimResult]


@dataclasses.dataclass
class FuzzFailure:
    """One verification failure, with everything needed to replay it."""

    seed: int
    mode: str
    error: VerificationError

    def report(self) -> str:
        return str(self.error)


def run_fuzz_case(seed: int, modes: Sequence[str] = MODES,
                  verify_level: int = 2,
                  max_uops: int = _MAX_UOPS) -> FuzzCase:
    """Run one fuzz case; raises :class:`VerificationError` on failure."""
    program, memory = fuzz_program(seed)
    trace = execute(program, memory, max_uops=max_uops,
                    require_halt=False)
    benchmark = f"fuzz-{seed}"
    results: Dict[str, SimResult] = {}
    for mode in modes:
        config = fuzz_config(mode, seed)
        config.verify_level = verify_level
        pipeline = _make_pipeline(mode, trace, config, program, benchmark)
        oracle = DifferentialOracle(
            program, memory, context=f"fuzz seed {seed}",
            replay=replay_hint(seed))
        pipeline.attach_verifier(PipelineVerifier(
            level=verify_level, oracle=oracle,
            context=f"fuzz seed {seed}", replay=replay_hint(seed)))
        results[mode] = pipeline.run()
    return FuzzCase(seed=seed, trace_len=len(trace), results=results)


# --------------------------------------------------------------- campaign
@dataclasses.dataclass
class CampaignReport:
    """Aggregate outcome of a fuzz campaign."""

    base_seed: int
    modes: Tuple[str, ...]
    verify_level: int
    cases: List[FuzzCase]
    failures: List[FuzzFailure]

    @property
    def passed(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        runs = len(self.cases) + len(self.failures)
        uops = sum(case.trace_len for case in self.cases)
        lines = [
            f"fuzz campaign: {runs} cases "
            f"(seeds {self.base_seed}..{self.base_seed + runs - 1}), "
            f"modes={','.join(self.modes)}, "
            f"verify_level={self.verify_level}",
            f"  passed : {len(self.cases)} cases, "
            f"{uops} trace uops cross-checked",
            f"  failed : {len(self.failures)}",
        ]
        for failure in self.failures:
            lines.append("")
            lines.append(f"seed {failure.seed} [{failure.mode}]:")
            lines.extend("  " + ln for ln in failure.report().splitlines())
        return "\n".join(lines)


def run_fuzz_campaign(count: int, seed: int = 0,
                      modes: Sequence[str] = MODES,
                      verify_level: int = 2,
                      fail_fast: bool = False,
                      progress: Optional[Callable[[str], None]] = None,
                      ) -> CampaignReport:
    """Run ``count`` cases with seeds ``seed .. seed+count-1``.

    Case ``i`` uses seed ``seed + i`` so any failure replays in
    isolation with ``--fuzz 1 --seed <case seed>``.  Verification
    failures are collected in the report (or re-raised immediately with
    ``fail_fast=True``); infrastructure errors propagate.
    """
    modes = tuple(modes)
    cases: List[FuzzCase] = []
    failures: List[FuzzFailure] = []
    for i in range(count):
        case_seed = seed + i
        try:
            case = run_fuzz_case(case_seed, modes=modes,
                                 verify_level=verify_level)
        except VerificationError as err:
            mode = getattr(err, "mode", "") or "?"
            failures.append(FuzzFailure(seed=case_seed, mode=mode,
                                        error=err))
            if progress is not None:
                progress(f"seed {case_seed}: FAIL [{mode}] "
                         f"{getattr(err, 'field', '') or getattr(err, 'invariant', '')}")
            if fail_fast:
                raise
            continue
        cases.append(case)
        if progress is not None:
            ipcs = " ".join(
                f"{mode}={case.results[mode].ipc:.3f}"
                for mode in modes)
            progress(f"seed {case_seed}: ok "
                     f"({case.trace_len} uops; {ipcs})")
    return CampaignReport(base_seed=seed, modes=modes,
                          verify_level=verify_level,
                          cases=cases, failures=failures)
