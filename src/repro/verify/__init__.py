"""Differential oracle, pipeline invariant checker, and fuzz campaign.

The timing pipelines replay a pre-computed functional trace, so a
retirement bug is *silent*: the run still finishes and reports an IPC.
This package closes that hole three ways:

* :class:`DifferentialOracle` — an independent functional re-execution
  cross-checked against every retired uop at commit;
* :class:`PipelineVerifier` — leveled invariant checks hooked into the
  cycle loop behind ``SimConfig.verify_level`` (zero-cost at level 0);
* :func:`fuzz_program` / :func:`run_fuzz_campaign` — seeded random
  well-formed programs driven through all three pipelines, surfaced as
  ``repro-sim verify --fuzz N --seed S``.

See docs/verification.md for the invariant catalogue and replay recipe.
"""

from .campaign import (CampaignReport, FuzzCase, FuzzFailure, MODES,
                       fuzz_config, replay_hint, run_fuzz_campaign,
                       run_fuzz_case)
from .checker import PipelineVerifier
from .errors import DivergenceError, InvariantViolation, VerificationError
from .fuzz import fuzz_program
from .oracle import DifferentialOracle

__all__ = [
    "CampaignReport",
    "DifferentialOracle",
    "DivergenceError",
    "FuzzCase",
    "FuzzFailure",
    "InvariantViolation",
    "MODES",
    "PipelineVerifier",
    "VerificationError",
    "fuzz_config",
    "fuzz_program",
    "replay_hint",
    "run_fuzz_campaign",
    "run_fuzz_case",
]
