"""Verification failure types.

Both failure modes — a differential-oracle divergence and a pipeline
invariant violation — derive from :class:`VerificationError` so callers
(the fuzz campaign, the CLI, pytest) can catch one type.  Each error
renders a structured, human-readable report that names the first point
of divergence and carries a *replay hint*: the exact command that
regenerates the failing case deterministically.
"""

from __future__ import annotations

from typing import Any, Optional


class VerificationError(AssertionError):
    """Base class for oracle divergences and invariant violations."""


class DivergenceError(VerificationError):
    """The timing pipeline's retired stream diverged from the functional
    re-execution.  Carries the first divergent uop and what was expected.
    """

    def __init__(self, field: str, seq: int, pc: int,
                 expected: Any, actual: Any, cycle: int = -1,
                 mode: str = "", context: str = "",
                 replay: str = "") -> None:
        self.field = field
        self.seq = seq
        self.pc = pc
        self.expected = expected
        self.actual = actual
        self.cycle = cycle
        self.mode = mode
        self.context = context
        self.replay = replay
        super().__init__(self.report())

    def report(self) -> str:
        lines = [
            "differential oracle divergence (first divergent uop):",
            f"  context   : {self.context or '-'}",
            f"  pipeline  : {self.mode or '-'}",
            f"  uop       : seq={self.seq} pc={self.pc} "
            f"(retire cycle {self.cycle})",
            f"  field     : {self.field}",
            f"  expected  : {self.expected!r}",
            f"  actual    : {self.actual!r}",
        ]
        if self.replay:
            lines.append(f"  replay    : {self.replay}")
        return "\n".join(lines)


class InvariantViolation(VerificationError):
    """A pipeline invariant asserted by the checker failed."""

    def __init__(self, invariant: str, detail: str, cycle: int = -1,
                 seq: Optional[int] = None, mode: str = "",
                 context: str = "", replay: str = "") -> None:
        self.invariant = invariant
        self.detail = detail
        self.cycle = cycle
        self.seq = seq
        self.mode = mode
        self.context = context
        self.replay = replay
        super().__init__(self.report())

    def report(self) -> str:
        lines = [
            f"pipeline invariant violated: {self.invariant}",
            f"  context   : {self.context or '-'}",
            f"  pipeline  : {self.mode or '-'}",
            f"  cycle     : {self.cycle}",
        ]
        if self.seq is not None:
            lines.append(f"  uop seq   : {self.seq}")
        lines.append(f"  detail    : {self.detail}")
        if self.replay:
            lines.append(f"  replay    : {self.replay}")
        return "\n".join(lines)
