"""Differential oracle: lockstep functional re-execution at commit.

The timing pipelines replay a pre-computed dynamic uop trace, so the
obvious failure mode of this design is *silent*: a pipeline that retires
the wrong uop, retires out of program order, drops or duplicates a uop,
or consumes a corrupted trace record still "finishes" and reports an
IPC.  The oracle closes that hole by running a second, completely
independent :class:`~repro.isa.functional.FunctionalMachine` in lockstep
with retirement:

* every retired uop must be exactly the next architectural instruction
  (sequence number, pc, opcode) — this catches out-of-order, duplicated,
  and skipped retirement;
* memory uops must carry the address the functional machine computes
  from *its own* register state — this catches trace corruption and any
  timing-model mutation of the shared trace;
* loads must name the correct forwarding store (``store_dep`` == the
  youngest older store to the address) and observe the value that store
  wrote — the contract store-to-load forwarding relies on;
* branches must carry the direction and dynamic target the functional
  machine actually takes;
* register dataflow edges (``src_deps``) must match the producers the
  oracle's own last-writer table derives.

The oracle never trusts the trace: everything is recomputed from the
program text and the initial memory image.  On the first mismatch it
raises :class:`DivergenceError` with the uop, the field, both values,
and a replay hint.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..isa.dynuop import DynUop
from ..isa.functional import FunctionalMachine
from ..isa.opcodes import Opcode
from ..isa.program import Program
from ..isa.registers import NUM_ARCH_REGS
from .errors import DivergenceError


class DifferentialOracle:
    """Cross-checks a pipeline's retired uop stream at commit time.

    One oracle instance verifies one pipeline run; attach it through
    :class:`repro.verify.PipelineVerifier`.
    """

    def __init__(self, program: Program,
                 memory: Optional[Dict[int, int]] = None,
                 context: str = "", replay: str = "") -> None:
        self.machine = FunctionalMachine(program, memory)
        self.context = context
        self.replay = replay
        self.mode = ""
        self.expected_seq = 0
        self._last_writer = [-1] * NUM_ARCH_REGS
        #: addr -> (seq of youngest older store, value it wrote)
        self._last_store: Dict[int, Tuple[int, int]] = {}

    # ------------------------------------------------------------------
    def _diverge(self, field: str, uop: DynUop, expected, actual,
                 cycle: int) -> None:
        raise DivergenceError(
            field=field, seq=uop.seq, pc=uop.pc,
            expected=expected, actual=actual, cycle=cycle,
            mode=self.mode, context=self.context, replay=self.replay)

    # ------------------------------------------------------------------
    def on_retire(self, uop: DynUop, cycle: int) -> None:
        """Verify one retired uop against one functional step."""
        machine = self.machine
        if machine.halted:
            self._diverge("retirement past HALT", uop,
                          "no further retirement", f"seq {uop.seq}", cycle)
        if uop.seq != self.expected_seq:
            self._diverge("retirement order", uop,
                          f"seq {self.expected_seq}", f"seq {uop.seq}",
                          cycle)
        pc = machine.pc
        if uop.pc != pc:
            self._diverge("pc", uop, pc, uop.pc, cycle)
        inst = machine.program[pc]
        if uop.op != int(inst.op):
            self._diverge("opcode", uop, Opcode(int(inst.op)).name,
                          Opcode(uop.op).name, cycle)

        # Dataflow edges: the producers our own last-writer table derives.
        expected_deps = tuple(dict.fromkeys(
            dep for dep in (self._last_writer[reg]
                            for reg in inst.source_regs())
            if dep >= 0))
        if uop.src_deps != expected_deps:
            self._diverge("src_deps", uop, expected_deps, uop.src_deps,
                          cycle)

        # Memory address and forwarding edge, computed before the step
        # mutates register state.
        addr = None
        if inst.is_mem:
            addr = machine._mem_addr(inst)
            if uop.mem_addr != addr:
                self._diverge("mem_addr", uop, addr, uop.mem_addr, cycle)
            if inst.is_load:
                store = self._last_store.get(addr)
                expected_dep = store[0] if store is not None else -1
                if uop.store_dep != expected_dep:
                    self._diverge("store_dep (forwarding store)", uop,
                                  expected_dep, uop.store_dep, cycle)
                loaded = machine.read_mem(addr)
                if store is not None and loaded != store[1]:
                    self._diverge("load value", uop, store[1], loaded,
                                  cycle)
        elif uop.mem_addr is not None:
            self._diverge("mem_addr", uop, None, uop.mem_addr, cycle)

        machine.step()

        # Branch outcome: direction and dynamic target.
        next_pc = machine.pc
        if uop.next_pc != next_pc:
            self._diverge("next_pc (branch outcome)", uop, next_pc,
                          uop.next_pc, cycle)
        taken = inst.is_branch and next_pc != pc + 1
        if inst.op in (Opcode.JMP, Opcode.CALL, Opcode.RET):
            taken = True
        if uop.taken != taken:
            self._diverge("taken", uop, taken, uop.taken, cycle)

        # Architectural writes become visible to younger uops.
        if inst.writes_reg:
            if not uop.writes_reg or uop.dst != inst.dst:
                self._diverge("dst register", uop, inst.dst, uop.dst,
                              cycle)
            self._last_writer[inst.dst] = uop.seq
        elif uop.writes_reg:
            self._diverge("dst register", uop, None, uop.dst, cycle)
        if inst.is_store and addr is not None:
            self._last_store[addr] = (uop.seq, machine.read_mem(addr))
        self.expected_seq += 1

    # ------------------------------------------------------------------
    def on_run_end(self, retired: int, trace_len: int) -> None:
        """Every trace uop must have retired exactly once, in order."""
        if retired != trace_len or self.expected_seq != trace_len:
            raise DivergenceError(
                field="retired uop count", seq=self.expected_seq,
                pc=self.machine.pc,
                expected=f"{trace_len} retirements",
                actual=f"pipeline retired {retired}, "
                       f"oracle checked {self.expected_seq}",
                mode=self.mode, context=self.context, replay=self.replay)
