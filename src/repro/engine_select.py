"""Engine-variant selection: ``REPRO_ENGINE=python|numpy``.

Bulk-state code paths (columnar trace decoding in :mod:`repro.isa.
traceio`, vectorised table precomputation) exist in two bit-identical
implementations: a numpy-backed one and a pure-python fallback.  This
module is the single switch that decides which runs:

* ``REPRO_ENGINE=numpy`` — require numpy; raise if it is missing.
* ``REPRO_ENGINE=python`` — force the pure-python paths even when numpy
  is installed (the configuration CI uses to prove parity).
* unset — use numpy when importable, python otherwise.  numpy is an
  *optional* dependency (see pyproject.toml): a bare install runs
  everything, just slower.

Layering (ARCH001): this module sits at the very bottom of the
dependency DAG — below even ``repro.isa`` — precisely so the foundation
layers can consult it.  It must import nothing from ``repro``; the
numpy-backed data structures themselves live in whichever layer owns
the data (the columnar trace decoder in ``repro.isa``), selected at
call time via :func:`use_numpy`.  See docs/architecture.md.

The choice deliberately cannot vary mid-process: both variants are
bit-identical (pinned by tests/core/test_engine_equivalence.py and the
24 suite fingerprints), so flipping between them is only ever a
performance decision, and caching it keeps the hot paths branch-cheap.
"""

from __future__ import annotations

import os
from typing import Optional

__all__ = ["ENGINE_ENV", "engine_variant", "get_numpy", "use_numpy"]

ENGINE_ENV = "REPRO_ENGINE"

#: Resolved (variant, numpy-module-or-None); None until first use.
_resolved: Optional[tuple] = None


def _resolve() -> tuple:
    requested = os.environ.get(ENGINE_ENV, "").strip().lower()
    if requested not in ("", "python", "numpy"):
        raise ValueError(
            f"{ENGINE_ENV}={requested!r}: expected 'python' or 'numpy'")
    if requested == "python":
        return ("python", None)
    try:
        import numpy
    except ImportError:
        if requested == "numpy":
            raise RuntimeError(
                f"{ENGINE_ENV}=numpy but numpy is not installed; install "
                f"the 'fast' extra or unset {ENGINE_ENV}")
        return ("python", None)
    return ("numpy", numpy)


def engine_variant() -> str:
    """The active variant name: ``'numpy'`` or ``'python'``."""
    global _resolved  # simlint: disable=CONC001 idempotent memo of an env read
    if _resolved is None:
        _resolved = _resolve()
    return _resolved[0]


def use_numpy() -> bool:
    """True when numpy-backed code paths should run."""
    return engine_variant() == "numpy"


def get_numpy():
    """The numpy module when the numpy variant is active, else None."""
    engine_variant()
    return _resolved[1]
