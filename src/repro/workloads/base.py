"""Workload framework: the SPEC-like synthetic kernel suite.

The paper evaluates the memory-intensive subset of SPEC CPU2006/2017.
Those binaries and inputs are unavailable offline, so each benchmark is
replaced by a synthetic kernel engineered to reproduce the *property the
paper attributes to it* (random LLC-missing gathers for astar, pointer
chasing for mcf, streaming for lbm/libquantum, distant misses for nab,
dense stencils for zeusmp/GemsFDTD/fotonik3d/roms, ...). DESIGN.md
section 5 tabulates the mapping.

Memory regions (byte addresses):

* ``TABLE_REGION``  - small tables, cache-resident after warmup
* ``INDEX_REGION``  - medium index arrays, LLC-resident, prefetchable
* ``BIG_REGION``    - large data, never fits the LLC (demand misses)
* ``HEAP_REGION``   - pointer-chase arenas
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..isa import Program, ProgramBuilder, execute
from ..isa.dynuop import DynUop

TABLE_REGION = 0x0040_0000       # 4 MB mark
INDEX_REGION = 0x0100_0000      # 16 MB mark
BIG_REGION = 0x0400_0000        # 64 MB mark
HEAP_REGION = 0x1000_0000       # 256 MB mark

DEFAULT_SEED = 42


@dataclass
class Workload:
    """One runnable benchmark: program + initial memory + metadata."""

    name: str
    program: Program
    memory: Dict[int, int]
    max_uops: int
    description: str = ""
    #: Fraction of the dynamic trace treated as warmup when measuring
    #: (the paper warms 200M instructions before each SimPoint).
    warmup_fraction: float = 0.3
    _trace_cache: Optional[List[DynUop]] = field(
        default=None, repr=False, compare=False)
    #: Optional hooks installed by the harness's persistent trace store
    #: (:mod:`repro.harness.tracestore`): ``trace_loader`` may return a
    #: previously compiled trace (or None), ``trace_saver`` persists a
    #: freshly built one.  The workload layer stays store-agnostic.
    trace_loader: Optional[Callable[[], Optional[List[DynUop]]]] = field(
        default=None, repr=False, compare=False)
    trace_saver: Optional[Callable[[List[DynUop]], None]] = field(
        default=None, repr=False, compare=False)

    def trace(self) -> List[DynUop]:
        """The dynamic uop trace (functional execution, memoized).

        Resolution order: in-process memo, then the installed
        ``trace_loader`` (the on-disk compiled-trace store), then
        functional execution — which is persisted through
        ``trace_saver`` so the next process deserializes instead.
        """
        if self._trace_cache is None:
            trace = self.trace_loader() if self.trace_loader else None
            if trace is None:
                trace = execute(
                    self.program, self.memory, max_uops=self.max_uops,
                    require_halt=False)
                if self.trace_saver is not None:
                    self.trace_saver(trace)
            self._trace_cache = trace
        return self._trace_cache

    def warmup_uops(self) -> int:
        return int(len(self.trace()) * self.warmup_fraction)


#: Type of a kernel builder: scale stretches iteration counts.
WorkloadBuilder = Callable[..., Workload]


def make_rng(seed: int) -> random.Random:
    return random.Random(seed)


def fill_random_words(memory: Dict[int, int], base: int, count: int,
                      max_value: int, rng: random.Random,
                      stride: int = 8) -> None:
    """Initialise ``count`` words at ``base`` with values in [0, max)."""
    for i in range(count):
        memory[base + i * stride] = rng.randrange(max_value)


def fill_bits(memory: Dict[int, int], base: int, count: int,
              taken_probability: float, rng: random.Random) -> None:
    """Initialise a 0/1 table with the given bias."""
    for i in range(count):
        memory[base + i * 8] = 1 if rng.random() < taken_probability else 0


def build_pointer_ring(memory: Dict[int, int], base: int, nodes: int,
                       node_bytes: int, rng: random.Random) -> int:
    """Lay out a randomly permuted singly linked ring; returns the head.

    Each node's first word holds the address of the next node; the second
    word holds a random payload.
    """
    order = list(range(nodes))
    rng.shuffle(order)
    for here, there in zip(order, order[1:] + order[:1]):
        addr = base + here * node_bytes
        memory[addr] = base + there * node_bytes
        memory[addr + 8] = rng.randrange(1 << 30)
    return base + order[0] * node_bytes


def emit_filler(b: ProgramBuilder, uops: int, start_reg: int = 20,
                fp: bool = False) -> None:
    """Emit non-critical compute that never feeds loads or branches (the
    'rest of the loop body').

    The chains are short (4 uops) and restart from an immediate, so the
    filler carries no dependence across loop iterations — it is work the
    core can always overlap, exactly the kind of instruction CDF delays
    without hurting the critical path.
    """
    regs = [start_reg, start_reg + 1, start_reg + 2]
    i = 0
    while i < uops:
        r = regs[(i // 4) % 3]
        phase = i % 4
        if phase == 0:
            b.movi(r, 7 + i)
        elif fp and phase == 2:
            b.fmul(r, r, imm=3)
        elif fp and phase == 3:
            b.fadd(r, r, imm=7)
        else:
            b.add(r, r, imm=1)
        i += 1


def scaled(iterations: int, scale: float, minimum: int = 8) -> int:
    return max(minimum, int(iterations * scale))
