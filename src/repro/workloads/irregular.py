"""Irregular-gather kernels: astar, soplex, milc.

These are the paper's best cases for CDF: sparse critical chains ending in
random LLC-missing loads, with (astar, soplex) or without (milc) hard
data-dependent branches.
"""

from __future__ import annotations

from ..isa import ProgramBuilder
from .base import (
    BIG_REGION,
    DEFAULT_SEED,
    INDEX_REGION,
    TABLE_REGION,
    Workload,
    emit_filler,
    fill_random_words,
    make_rng,
    scaled,
)


def build_astar(scale: float = 1.0, seed: int = DEFAULT_SEED) -> Workload:
    """astar (Fig. 2): array access whose index is loaded from memory and
    is 'fairly random'; the array does not fit the LLC. The index array
    itself streams and prefetches well. A hard branch tests the loaded
    value (bound checks on random map data)."""
    rng = make_rng(seed)
    iters = scaled(700, scale)
    table_entries = 1 << 16
    target_words = 1 << 20           # 8 MB footprint >> 1 MB LLC
    memory = {}
    targets = [rng.randrange(target_words) for _ in range(table_entries)]
    for i, t in enumerate(targets):
        memory[INDEX_REGION + i * 8] = t
    # Map-cell values: the bound-check branch takes the rare arm ~22% of
    # the time — data dependent, mispredicting often, and resolving only
    # when the missing cell returns. Exactly the Fig. 2 structure.
    # Dedup in first-seen order (dict.fromkeys), NOT via set(): each t
    # consumes rng draws, so iteration order decides which cell gets
    # which value — set order is hash order and would tie the generated
    # trace to PYTHONHASHSEED (simlint DET002).
    for t in dict.fromkeys(targets[:iters + 16]):
        memory[BIG_REGION + t * 8] = (rng.randrange(1 << 30) << 1) | (
            1 if rng.random() < 0.22 else 0)

    b = ProgramBuilder()
    b.movi(1, iters)
    b.movi(2, INDEX_REGION)
    b.movi(3, BIG_REGION)
    b.movi(4, 0)                                 # i
    b.label("loop")
    b.load(5, base=2, index=4, scale=8)          # idx = index[i] (streams)
    b.load(6, base=3, index=5, scale=8)          # big[idx]: LLC miss
    b.and_(7, 6, imm=1)
    b.bnez(7, "odd")                             # branch on the missing data
    b.add(8, 8, 6)
    b.jmp("join")
    b.label("odd")
    b.sub(8, 8, 6)
    b.label("join")
    emit_filler(b, 78)                           # fat search-loop body
    b.add(4, 4, imm=1)
    b.and_(4, 4, imm=table_entries - 1)
    b.sub(1, 1, imm=1)
    b.bnez(1, "loop")
    b.halt()
    return Workload(
        name="astar", program=b.build(), memory=memory,
        max_uops=int(iters * 95 + 100),
        description="random-index gather + hard branch (paper Fig. 2)")


def build_soplex(scale: float = 1.0, seed: int = DEFAULT_SEED) -> Workload:
    """soplex: sparse-matrix traversal. Row lengths are data-dependent
    (inner-loop branch mispredicts); column gathers x[col] miss the LLC."""
    rng = make_rng(seed)
    rows = scaled(1500, scale)
    cols_entries = 1 << 16
    x_words = 1 << 20
    memory = {}
    fill_random_words(memory, INDEX_REGION, cols_entries, x_words, rng)
    for i in range(4096):
        memory[TABLE_REGION + i * 8] = 1 + rng.randrange(5)   # row length

    b = ProgramBuilder()
    b.movi(1, rows)
    b.movi(2, TABLE_REGION)
    b.movi(3, INDEX_REGION)
    b.movi(4, BIG_REGION)
    b.movi(5, 0)                                 # row
    b.movi(6, 0)                                 # col cursor
    b.label("row")
    b.and_(7, 5, imm=4095)
    b.load(8, base=2, index=7, scale=8)          # row length (1..5)
    b.label("inner")
    b.and_(9, 6, imm=cols_entries - 1)
    b.load(10, base=3, index=9, scale=8)         # col index (streams)
    b.load(11, base=4, index=10, scale=8)        # x[col]: LLC miss
    b.fadd(12, 12, 11)
    emit_filler(b, 20, fp=True)                  # per-element arithmetic
    b.add(6, 6, imm=1)
    b.sub(8, 8, imm=1)
    b.bnez(8, "inner")                           # data-dependent trip count
    emit_filler(b, 10, fp=True)
    b.add(5, 5, imm=1)
    b.sub(1, 1, imm=1)
    b.bnez(1, "row")
    b.halt()
    return Workload(
        name="soplex", program=b.build(), memory=memory,
        max_uops=int(rows * 45 + 100),
        description="CSR-style gather with data-dependent trip counts")


def build_milc(scale: float = 1.0, seed: int = DEFAULT_SEED) -> Workload:
    """milc: lattice-QCD-like gather at register-computed pseudo-random
    sites. The critical chain is a handful of ALU uops plus the load —
    very sparse — inside a fat FP body: CDF's ideal density."""
    iters = scaled(1100, scale)
    b = ProgramBuilder()
    b.movi(1, iters)
    b.movi(3, BIG_REGION)
    b.movi(7, 0x9E3779B9)                        # xorshift state
    b.label("loop")
    # xorshift: the (critical) address chain
    b.shl(8, 7, imm=13)
    b.xor(7, 7, 8)
    b.shr(8, 7, imm=7)
    b.xor(7, 7, 8)
    b.shl(8, 7, imm=17)
    b.xor(7, 7, 8)
    b.and_(9, 7, imm=(1 << 20) - 8)              # 8 MB site footprint
    b.load(10, base=3, index=9, scale=8)         # site load: LLC miss
    b.fadd(11, 11, 10)
    emit_filler(b, 40, fp=True)
    b.sub(1, 1, imm=1)
    b.bnez(1, "loop")
    b.halt()
    return Workload(
        name="milc", program=b.build(), memory={},
        max_uops=int(iters * 55 + 100),
        description="register-computed random gather in a fat FP body")
