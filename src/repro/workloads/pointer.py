"""Pointer-chasing kernels: mcf and omnetpp.

mcf walks a few independent linked structures (bounded MLP, long serial
chains) with hard value-dependent branches; omnetpp emulates event-queue
processing: dependent two-level pointer hops with data-dependent control.
"""

from __future__ import annotations

from ..isa import ProgramBuilder
from .base import (
    DEFAULT_SEED,
    HEAP_REGION,
    Workload,
    build_pointer_ring,
    emit_filler,
    make_rng,
    scaled,
)


def build_mcf(scale: float = 1.0, seed: int = DEFAULT_SEED) -> Workload:
    """mcf: network-simplex arc walking. Three independent pointer chains
    (bounded MLP) over a 2 MB arena; a hard branch tests node payloads.
    CDF gains from earlier chain initiation and critical branches."""
    rng = make_rng(seed)
    iters = scaled(520, scale)
    chains = 4
    nodes = 1 << 14                 # 16k nodes x 64B = 1 MB per arena
    memory = {}
    heads = []
    for chain in range(chains):
        base = HEAP_REGION + chain * (nodes * 64 + (1 << 22))
        heads.append(build_pointer_ring(memory, base, nodes, 64, rng))
    # Bias the payloads: the arc-cost branch takes the rare arm ~25% of
    # the time. It resolves only when the (missing) node returns, which
    # serialises the baseline frontend behind memory.
    for chain in range(2):
        base = HEAP_REGION + chain * (nodes * 64 + (1 << 22))
        for node in range(nodes):
            value = memory[base + node * 64 + 8]
            memory[base + node * 64 + 8] = (value << 1) | (
                1 if rng.random() < 0.25 else 0)

    b = ProgramBuilder()
    b.movi(1, iters)
    for chain in range(chains):
        b.movi(2 + chain, heads[chain])
    b.label("loop")
    for chain in range(chains):
        b.load(2 + chain, base=2 + chain)   # 6 parallel hops (LLC misses)
    b.load(9, base=2, imm=8)                # chain-0 payload (same line)
    b.and_(10, 9, imm=1)
    b.bnez(10, "reduce")                    # cost branch on missing data
    b.add(11, 11, 9)
    b.jmp("next")
    b.label("reduce")
    b.sub(11, 11, 9)
    b.label("next")
    emit_filler(b, 55)                      # pricing bookkeeping
    b.load(12, base=3, imm=8)               # chain-1 payload (same line)
    b.and_(13, 12, imm=1)
    b.bnez(13, "swap")                      # second hard cost branch
    b.add(11, 11, 12)
    b.jmp("cont")
    b.label("swap")
    b.sub(11, 11, 12)
    b.label("cont")
    emit_filler(b, 55)                      # basis-update bookkeeping
    b.sub(1, 1, imm=1)
    b.bnez(1, "loop")
    b.halt()
    return Workload(
        name="mcf", program=b.build(), memory=memory,
        max_uops=int(iters * 128 + 100),
        description="4 independent pointer chains + payload branches")


def build_omnetpp(scale: float = 1.0, seed: int = DEFAULT_SEED) -> Workload:
    """omnetpp: event-queue processing. Each 'event' is a dependent
    two-hop pointer dereference with a data-dependent dispatch branch -
    dependent misses bound the achievable MLP for everyone (the paper
    reports neither CDF nor PRE helps much)."""
    rng = make_rng(seed)
    iters = scaled(1300, scale)
    nodes = 1 << 15
    memory = {}
    head = build_pointer_ring(memory, HEAP_REGION, nodes, 64, rng)
    # Second-level objects pointed to by payloads.
    for i in range(nodes):
        addr = HEAP_REGION + i * 64
        obj = HEAP_REGION + (1 << 24) + rng.randrange(nodes) * 64
        memory[addr + 8] = obj
        memory[obj] = rng.randrange(1 << 20)

    b = ProgramBuilder()
    b.movi(1, iters)
    b.movi(2, head)
    b.label("loop")
    b.load(2, base=2)                       # next event (miss)
    b.load(5, base=2, imm=8)                # event object pointer
    b.load(6, base=5)                       # object field (dependent miss)
    b.and_(7, 6, imm=3)
    b.beqz(7, "kind0")                      # dispatch branch (hard)
    b.add(8, 8, 6)
    b.jmp("done")
    b.label("kind0")
    b.sub(8, 8, 6)
    b.label("done")
    emit_filler(b, 22)
    b.sub(1, 1, imm=1)
    b.bnez(1, "loop")
    b.halt()
    return Workload(
        name="omnetpp", program=b.build(), memory=memory,
        max_uops=int(iters * 40 + 100),
        description="event queue: dependent 2-hop pointer walks")
