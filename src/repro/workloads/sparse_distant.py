"""Kernels dominated by distant or branch-shaped criticality: nab, bzip.

nab: LLC misses more than a thousand uops apart and serially dependent —
no MLP is extractable by anyone; CDF wins only by *initiating* the next
miss earlier (paper Sec. 2.3). PRE cannot reach the next chain within its
runahead budget.

bzip: almost cache-resident, dominated by hard data-dependent branches;
CDF's benefit comes from resolving them early (Sec. 2.2).
"""

from __future__ import annotations

from ..isa import ProgramBuilder
from .base import (
    BIG_REGION,
    DEFAULT_SEED,
    TABLE_REGION,
    Workload,
    emit_filler,
    fill_bits,
    make_rng,
    scaled,
)


def build_nab(scale: float = 1.0, seed: int = DEFAULT_SEED) -> Workload:
    """nab: molecular-dynamics-like. One serially dependent pointer hop
    per ~600-uop body of floating-point work."""
    rng = make_rng(seed)
    iters = scaled(110, scale)
    # Lay out the dependent chain: each node's value is the address of
    # the next, at random offsets in a 32 MB region.
    memory = {}
    addr = BIG_REGION
    used = {addr}
    chain = [addr]
    for _ in range(iters + 4):
        nxt = BIG_REGION + rng.randrange(1 << 22) * 8
        while nxt in used:
            nxt = BIG_REGION + rng.randrange(1 << 22) * 8
        used.add(nxt)
        memory[addr] = nxt
        addr = nxt
        chain.append(addr)

    b = ProgramBuilder()
    b.movi(1, iters)
    b.movi(7, BIG_REGION)
    b.label("loop")
    b.load(8, base=7)                        # the distant dependent miss
    # Address post-processing: a serial chain that keeps the slice above
    # CDF's 2% density gate (force-field table index arithmetic).
    b.xor(9, 8, imm=0)
    for _ in range(11):
        b.add(9, 9, imm=13)
        b.sub(9, 9, imm=13)
    b.mov(7, 9)                              # next pointer
    b.fadd(12, 12, 8)
    emit_filler(b, 560, fp=True)             # the force-field arithmetic
    b.sub(1, 1, imm=1)
    b.bnez(1, "loop")
    b.halt()
    return Workload(
        name="nab", program=b.build(), memory=memory,
        max_uops=int(iters * 620 + 100),
        description="dependent miss every ~600 uops (no extractable MLP)",
        warmup_fraction=0.35)


def build_bzip(scale: float = 1.0, seed: int = DEFAULT_SEED) -> Workload:
    """bzip: Huffman-style bit twiddling. Branch direction follows random
    table bits; the working set is cache resident. The rare (1/64) big
    gather keeps the CCT populated without making it memory bound."""
    rng = make_rng(seed)
    iters = scaled(2200, scale)
    bits = 2048
    memory = {}
    fill_bits(memory, TABLE_REGION, bits, 0.5, rng)

    b = ProgramBuilder()
    b.movi(1, iters)
    b.movi(2, TABLE_REGION)
    b.movi(3, BIG_REGION)
    b.movi(4, 0)
    b.movi(14, 0x12345)
    b.label("loop")
    b.and_(5, 4, imm=bits - 1)
    b.load(6, base=2, index=5, scale=8)      # table bit (L1 resident)
    b.bnez(6, "one")                         # hard branch (50/50)
    b.add(7, 7, imm=2)
    b.shl(8, 7, imm=1)
    b.jmp("merge")
    b.label("one")
    b.sub(7, 7, imm=1)
    b.shr(8, 7, imm=1)
    b.label("merge")
    b.and_(9, 4, imm=63)
    b.bnez(9, "no_miss")
    # every 64th iteration: a random gather that misses
    b.shl(10, 14, imm=13)
    b.xor(14, 14, 10)
    b.and_(11, 14, imm=(1 << 20) - 1)
    b.load(12, base=3, index=11, scale=8)
    b.add(7, 7, 12)
    b.label("no_miss")
    emit_filler(b, 12)
    b.add(4, 4, imm=1)
    b.sub(1, 1, imm=1)
    b.bnez(1, "loop")
    b.halt()
    return Workload(
        name="bzip", program=b.build(), memory=memory,
        max_uops=int(iters * 30 + 100),
        description="hard 50/50 branches on cache-resident bits")
