"""Dense-stencil kernels: zeusmp, GemsFDTD, fotonik3d, roms.

Large-stride grid sweeps whose address generation is a long ALU chain per
access: the backward slices of the missing loads cover most of the loop
body. That density means CDF has almost nothing to skip (its >50% density
gate typically keeps it out entirely: 'the critical instructions are not
sparse enough'), while PRE — which has no such gate — prefetches the next
sweep points during the frequent long stalls. This is the benchmark
family where the paper reports PRE >= CDF.

Strides of >= 65 cache lines hop prefetcher regions every access, so the
stream prefetcher never trains and every grid access is a demand miss.
"""

from __future__ import annotations

from ..isa import ProgramBuilder
from .base import BIG_REGION, DEFAULT_SEED, Workload, emit_filler, scaled


def _emit_address_chain(b: ProgramBuilder, dst: int, counter: int,
                        stride_words: int, salt: int, length: int) -> None:
    """A serial ALU chain computing ``counter * stride_words`` the long
    way round; every uop is on the load's backward slice."""
    b.mov(dst, counter)
    for step in range(length):
        if step % 4 == 0:
            b.xor(dst, dst, imm=salt)
        elif step % 4 == 1:
            b.add(dst, dst, imm=salt & 0xFF)
        elif step % 4 == 2:
            b.sub(dst, dst, imm=salt & 0xFF)
        else:
            b.xor(dst, dst, imm=salt)
    b.mul(dst, dst, imm=stride_words)


def _build_stencil(name: str, streams: int, stride_lines: int,
                   chain_length: int, fp_tail: int, iters_base: int,
                   scale: float) -> Workload:
    iters = scaled(iters_base, scale)
    stride_words = stride_lines * 8
    b = ProgramBuilder()
    b.movi(1, iters)
    for s in range(streams):
        b.movi(2 + s, BIG_REGION + s * (64 << 20))
    b.movi(10, 0)                                  # i
    b.label("loop")
    for s in range(streams):
        _emit_address_chain(b, 11, counter=10, stride_words=stride_words,
                            salt=0x155 + 64 * s, length=chain_length)
        b.load(12 + s, base=2 + s, index=11, scale=8)   # grid load (miss)
    acc = 12 + streams
    b.fadd(acc, 12, 13 if streams > 1 else 12)
    emit_filler(b, fp_tail, fp=True)
    b.add(10, 10, imm=1)
    b.and_(10, 10, imm=(1 << 14) - 1)              # wrap the sweep
    b.sub(1, 1, imm=1)
    b.bnez(1, "loop")
    b.halt()
    body = streams * (chain_length + 2) + fp_tail + 6
    return Workload(
        name=name, program=b.build(), memory={},
        max_uops=int(iters * (body + 6) + 100),
        description=(f"{streams}-stream stride-{stride_lines}-line sweep, "
                     f"{chain_length}-uop address chains (dense slices)"))


def build_zeusmp(scale: float = 1.0, seed: int = DEFAULT_SEED) -> Workload:
    return _build_stencil("zeusmp", streams=2, stride_lines=65,
                          chain_length=16, fp_tail=10, iters_base=900,
                          scale=scale)


def build_gemsfdtd(scale: float = 1.0, seed: int = DEFAULT_SEED) -> Workload:
    return _build_stencil("GemsFDTD", streams=2, stride_lines=67,
                          chain_length=20, fp_tail=8, iters_base=800,
                          scale=scale)


def build_fotonik3d(scale: float = 1.0,
                    seed: int = DEFAULT_SEED) -> Workload:
    return _build_stencil("fotonik3d", streams=2, stride_lines=129,
                          chain_length=14, fp_tail=12, iters_base=950,
                          scale=scale)


def build_roms(scale: float = 1.0, seed: int = DEFAULT_SEED) -> Workload:
    return _build_stencil("roms", streams=3, stride_lines=97,
                          chain_length=15, fp_tail=8, iters_base=700,
                          scale=scale)
