"""Synthetic SPEC-like workload suite (see DESIGN.md Sec. 5)."""

from .base import (
    BIG_REGION,
    DEFAULT_SEED,
    HEAP_REGION,
    INDEX_REGION,
    TABLE_REGION,
    Workload,
    build_pointer_ring,
    emit_filler,
    fill_bits,
    fill_random_words,
    make_rng,
)
from .suite import (
    BRANCH_SENSITIVE,
    NEUTRAL,
    PRE_FAVOURABLE,
    SUITE,
    get_workload,
    suite_names,
)

__all__ = [
    "Workload",
    "SUITE",
    "get_workload",
    "suite_names",
    "BRANCH_SENSITIVE",
    "PRE_FAVOURABLE",
    "NEUTRAL",
    "BIG_REGION",
    "INDEX_REGION",
    "TABLE_REGION",
    "HEAP_REGION",
    "DEFAULT_SEED",
    "build_pointer_ring",
    "emit_filler",
    "fill_bits",
    "fill_random_words",
    "make_rng",
]
