"""Intermediate-density kernels: leslie3d, sphinx, wrf, parest.

The paper's 'neither helps much' family: critical densities between the
sparse-chain and dense-stencil regimes, partially prefetchable access
patterns, and moderate branch behaviour. Expected result: CDF and PRE
within a couple of percent of the baseline.
"""

from __future__ import annotations

from ..isa import ProgramBuilder
from .base import (
    BIG_REGION,
    DEFAULT_SEED,
    INDEX_REGION,
    Workload,
    emit_filler,
    fill_random_words,
    make_rng,
    scaled,
)


def _mixed_kernel(name: str, iters_base: int, stream_loads: int,
                  gather_every: int, filler: int, chain_alu: int,
                  scale: float, seed: int) -> Workload:
    """Shared shape: prefetchable streams every iteration, a random
    gather every ``gather_every`` iterations, and a chain of ALU work
    feeding the gather address (raising critical density)."""
    rng = make_rng(seed)
    iters = scaled(iters_base, scale)
    memory = {}
    fill_random_words(memory, INDEX_REGION, 1 << 14, (1 << 20) - 1, rng)

    b = ProgramBuilder()
    b.movi(1, iters)
    b.movi(2, BIG_REGION)
    b.movi(3, INDEX_REGION)
    b.movi(4, BIG_REGION + (32 << 20))
    b.movi(5, 0)
    b.movi(15, 0)                               # loop-carried gather value
    b.label("loop")
    for s in range(stream_loads):
        b.load(7 + s, base=2, index=5, scale=8, imm=s * 8)
    b.fadd(11, 7, 7 + stream_loads - 1)
    b.and_(12, 5, imm=gather_every - 1)
    b.bnez(12, "no_gather")
    # The gather index mixes the *previous* gather's value: successive
    # misses are serially dependent, so extra window exposes no MLP -
    # the paper's 'intermediate' benchmarks where neither technique wins.
    b.add(13, 15, 5)
    for _ in range(chain_alu):                  # address chain (critical)
        b.xor(13, 13, imm=0x5A5)
        b.and_(13, 13, imm=(1 << 14) - 1)
    b.load(14, base=3, index=13, scale=8)       # index table
    b.load(15, base=4, index=14, scale=8)       # gather: LLC miss
    b.fadd(11, 11, 15)
    b.label("no_gather")
    emit_filler(b, filler, fp=True)
    b.add(5, 5, imm=1)
    b.sub(1, 1, imm=1)
    b.bnez(1, "loop")
    b.halt()
    body = stream_loads + filler + chain_alu // gather_every + 10
    return Workload(
        name=name, program=b.build(), memory=memory,
        max_uops=int(iters * (body + chain_alu + 8) + 100),
        description=(f"{stream_loads} streams + gather every "
                     f"{gather_every} iters (intermediate density)"))


def build_leslie3d(scale: float = 1.0, seed: int = DEFAULT_SEED) -> Workload:
    return _mixed_kernel("leslie3d", iters_base=1800, stream_loads=3,
                         gather_every=4, filler=8, chain_alu=6,
                         scale=scale, seed=seed)


def build_sphinx(scale: float = 1.0, seed: int = DEFAULT_SEED) -> Workload:
    return _mixed_kernel("sphinx", iters_base=2000, stream_loads=2,
                         gather_every=8, filler=10, chain_alu=8,
                         scale=scale, seed=seed + 1)


def build_wrf(scale: float = 1.0, seed: int = DEFAULT_SEED) -> Workload:
    return _mixed_kernel("wrf", iters_base=1700, stream_loads=4,
                         gather_every=4, filler=6, chain_alu=5,
                         scale=scale, seed=seed + 2)


def build_parest(scale: float = 1.0, seed: int = DEFAULT_SEED) -> Workload:
    return _mixed_kernel("parest", iters_base=1400, stream_loads=2,
                         gather_every=1, filler=10, chain_alu=12,
                         scale=scale, seed=seed + 3)
