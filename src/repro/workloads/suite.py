"""The benchmark suite registry.

``SUITE`` maps benchmark name -> builder; ``get_workload(name, scale)``
instantiates one. The names (and the behaviours engineered into each
kernel) follow the paper's evaluation set: the memory-intensive SPEC
CPU2006/2017 benchmarks it reports in Figs. 13-16.
"""

from __future__ import annotations

from typing import Dict, List

from .base import DEFAULT_SEED, Workload, WorkloadBuilder
from .irregular import build_astar, build_milc, build_soplex
from .mixed import build_leslie3d, build_parest, build_sphinx, build_wrf
from .pointer import build_mcf, build_omnetpp
from .sparse_distant import build_bzip, build_nab
from .stencil import (
    build_fotonik3d,
    build_gemsfdtd,
    build_roms,
    build_zeusmp,
)
from .streaming import build_cactubssn, build_lbm, build_libquantum

SUITE: Dict[str, WorkloadBuilder] = {
    "astar": build_astar,
    "mcf": build_mcf,
    "soplex": build_soplex,
    "milc": build_milc,
    "bzip": build_bzip,
    "nab": build_nab,
    "lbm": build_lbm,
    "libquantum": build_libquantum,
    "cactuBSSN": build_cactubssn,
    "omnetpp": build_omnetpp,
    "zeusmp": build_zeusmp,
    "GemsFDTD": build_gemsfdtd,
    "fotonik3d": build_fotonik3d,
    "roms": build_roms,
    "leslie3d": build_leslie3d,
    "sphinx": build_sphinx,
    "wrf": build_wrf,
    "parest": build_parest,
}

#: Benchmarks where the paper highlights CDF's branch-criticality benefit
#: (Sec. 4.2: 'CDF does well on bzip, astar, mcf and soplex as we mark
#: hard-to-predict branches critical').
BRANCH_SENSITIVE = ("bzip", "astar", "mcf", "soplex")

#: The PRE-favourable family ('zeusmp, GemsFDTD, fotonik3d and roms').
PRE_FAVOURABLE = ("zeusmp", "GemsFDTD", "fotonik3d", "roms")

#: The 'neither helps much' family.
NEUTRAL = ("leslie3d", "sphinx", "wrf", "parest", "omnetpp")


def suite_names() -> List[str]:
    return list(SUITE)


def get_workload(name: str, scale: float = 1.0,
                 seed: int = DEFAULT_SEED) -> Workload:
    """Instantiate one benchmark; raises KeyError for unknown names."""
    if name not in SUITE:
        raise KeyError(f"unknown benchmark: {name!r}; "
                       f"known: {', '.join(SUITE)}")
    return SUITE[name](scale=scale, seed=seed)
