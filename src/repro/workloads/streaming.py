"""Streaming kernels: lbm, libquantum, cactuBSSN.

Streaming data feeds the stream prefetcher well, so full-window stalls
are short or rare — PRE's worst case ('the full window stall duration is
too short to enable any useful Runahead prefetches'). cactuBSSN adds
dependent double-indirect gathers whose runahead chains go stale,
reproducing its excess-traffic behaviour under PRE.
"""

from __future__ import annotations

from ..isa import ProgramBuilder
from .base import (
    BIG_REGION,
    DEFAULT_SEED,
    INDEX_REGION,
    TABLE_REGION,
    Workload,
    emit_filler,
    fill_random_words,
    make_rng,
    scaled,
)


def build_lbm(scale: float = 1.0, seed: int = DEFAULT_SEED) -> Workload:
    """lbm: lattice-Boltzmann streaming. Three read streams and a write
    stream; bandwidth-bound with highly-overlapped short stalls."""
    iters = scaled(2500, scale)
    stream = 16 << 20               # 16 MB per stream
    b = ProgramBuilder()
    b.movi(1, iters)
    b.movi(2, BIG_REGION)
    b.movi(3, BIG_REGION + stream)
    b.movi(4, BIG_REGION + 2 * stream)
    b.movi(5, BIG_REGION + 3 * stream)
    b.movi(6, 0)                              # i
    b.label("loop")
    b.load(7, base=2, index=6, scale=8)
    b.load(8, base=3, index=6, scale=8)
    b.load(9, base=4, index=6, scale=8)
    b.fadd(10, 7, 8)
    b.fmul(10, 10, 9)
    b.fadd(10, 10, imm=3)
    b.store(10, base=5, index=6, scale=8)
    emit_filler(b, 10, fp=True)
    b.add(6, 6, imm=1)
    b.sub(1, 1, imm=1)
    b.bnez(1, "loop")
    b.halt()
    return Workload(
        name="lbm", program=b.build(), memory={},
        max_uops=int(iters * 25 + 100),
        description="3-in/1-out streaming, bandwidth bound, short stalls")


def build_libquantum(scale: float = 1.0,
                     seed: int = DEFAULT_SEED) -> Workload:
    """libquantum: a single perfectly-prefetchable stream with the famous
    bit-test conditional update. Neither technique should move it much;
    PRE risks polluting the cache."""
    rng = make_rng(seed)
    iters = scaled(3000, scale)
    entries = 1 << 14
    memory = {}
    # Bit 2 is set ~15% of the time: the bit-test branch is mostly
    # not-taken (real libquantum's toggles are similarly biased).
    for i in range(entries):
        value = rng.randrange(1 << 30) & ~4
        if rng.random() < 0.15:
            value |= 4
        memory[BIG_REGION + i * 8] = value

    b = ProgramBuilder()
    b.movi(1, iters)
    b.movi(2, BIG_REGION)
    b.movi(3, 0)
    b.label("loop")
    b.and_(4, 3, imm=entries - 1)
    b.load(5, base=2, index=4, scale=8)       # stream (prefetched)
    b.and_(6, 5, imm=4)                       # bit test
    b.beqz(6, "skip")
    b.xor(5, 5, imm=4)
    b.store(5, base=2, index=4, scale=8)      # conditional toggle
    b.label("skip")
    emit_filler(b, 8)
    b.add(3, 3, imm=1)
    b.sub(1, 1, imm=1)
    b.bnez(1, "loop")
    b.halt()
    return Workload(
        name="libquantum", program=b.build(), memory=memory,
        max_uops=int(iters * 20 + 100),
        description="single stream + bit-test conditional store")


def build_cactubssn(scale: float = 1.0,
                    seed: int = DEFAULT_SEED) -> Workload:
    """cactuBSSN: stencil streams plus a two-level indirect gather whose
    *both* levels miss the LLC. Runahead cannot complete a two-deep miss
    chain inside one stall window, so its attempts mostly truncate or go
    stale (PRE's excess traffic); the baseline already overlaps the
    independent chains up to the MSHRs, leaving CDF little headroom."""
    rng = make_rng(seed)
    iters = scaled(900, scale)
    ptab_words = 1 << 19                         # 4 MB: misses the LLC
    memory = {}
    fill_random_words(memory, INDEX_REGION, 1 << 14, ptab_words - 1, rng)
    # Initialise only the ptab entries the run touches.
    touched = set()
    idx_vals = [memory[INDEX_REGION + i * 8] for i in range(1 << 14)]
    for i in range(min(iters + 16, 1 << 14)):
        touched.add(idx_vals[i & ((1 << 14) - 1)])
    for t in touched:
        memory[TABLE_REGION + t * 8] = rng.randrange((1 << 20) - 1)

    b = ProgramBuilder()
    b.movi(1, iters)
    b.movi(2, BIG_REGION)
    b.movi(3, INDEX_REGION)
    b.movi(4, TABLE_REGION)
    b.movi(5, BIG_REGION + (32 << 20))
    b.movi(6, 0)
    b.label("loop")
    b.load(7, base=2, index=6, scale=8)          # stencil stream
    b.load(8, base=2, index=6, scale=8, imm=8)
    b.fadd(10, 7, 8)
    b.and_(11, 6, imm=(1 << 14) - 1)
    b.load(12, base=3, index=11, scale=8)        # index table (resident)
    b.load(13, base=4, index=12, scale=8)        # ptab[...]: LLC miss 1
    b.load(14, base=5, index=13, scale=8)        # big[...]:  LLC miss 2
    b.fadd(10, 10, 14)
    emit_filler(b, 40, fp=True)
    b.add(6, 6, imm=1)
    b.sub(1, 1, imm=1)
    b.bnez(1, "loop")
    b.halt()
    return Workload(
        name="cactuBSSN", program=b.build(), memory=memory,
        max_uops=int(iters * 58 + 100),
        description="stencil + two-deep missing indirect chains")
