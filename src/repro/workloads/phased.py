"""Multi-phase workloads for the SimPoint-methodology study.

The paper's 'Note on PRE Results' (Sec. 4.2) explains why its PRE numbers
are lower than prior work's: 'we used up to five SimPoints per benchmark,
whereas all prior work on Runahead (including PRE) uses only a single
SimPoint. Some SimPoints are not memory intensive and can provide neutral
or even negative benefits.'

These builders create two-phase programs — a memory-intensive gather
phase followed by a compute phase — plus each phase in isolation, so the
harness can compare 'single memory-intensive SimPoint' evaluation (the
prior-work methodology) against whole-program evaluation (this paper's).
"""

from __future__ import annotations

from ..isa import ProgramBuilder
from .base import (
    BIG_REGION,
    DEFAULT_SEED,
    INDEX_REGION,
    Workload,
    emit_filler,
    make_rng,
    scaled,
)


def _emit_memory_phase(b: ProgramBuilder, iters: int,
                       table_entries: int) -> None:
    """astar-style random gather loop (the memory-intensive SimPoint)."""
    b.movi(1, iters)
    b.movi(2, INDEX_REGION)
    b.movi(3, BIG_REGION)
    b.movi(4, 0)
    b.label("mem_loop")
    b.load(5, base=2, index=4, scale=8)
    b.load(6, base=3, index=5, scale=8)       # LLC miss
    b.add(7, 7, 6)
    emit_filler(b, 40)
    b.add(4, 4, imm=1)
    b.and_(4, 4, imm=table_entries - 1)
    b.sub(1, 1, imm=1)
    b.bnez(1, "mem_loop")


def _emit_compute_phase(b: ProgramBuilder, iters: int) -> None:
    """Cache-resident arithmetic loop (the non-memory SimPoint)."""
    b.movi(1, iters)
    b.label("compute_loop")
    b.movi(8, 23)
    b.fmul(8, 8, imm=5)
    b.fadd(9, 9, 8)
    emit_filler(b, 30, fp=True)
    b.sub(1, 1, imm=1)
    b.bnez(1, "compute_loop")


def _finish(b: ProgramBuilder, name: str, memory, iters_hint: int,
            description: str) -> Workload:
    b.halt()
    return Workload(name=name, program=b.build(), memory=memory,
                    max_uops=iters_hint, description=description,
                    warmup_fraction=0.05)


def _gather_memory(rng, table_entries):
    memory = {}
    targets = [rng.randrange(1 << 20) for _ in range(table_entries)]
    for i, t in enumerate(targets):
        memory[INDEX_REGION + i * 8] = t
    return memory


def build_phased(scale: float = 1.0, seed: int = DEFAULT_SEED) -> Workload:
    """Both phases back to back: the 'all SimPoints' program."""
    rng = make_rng(seed)
    table_entries = 1 << 14
    mem_iters = scaled(450, scale)
    compute_iters = scaled(1800, scale)
    b = ProgramBuilder()
    _emit_memory_phase(b, mem_iters, table_entries)
    _emit_compute_phase(b, compute_iters)
    return _finish(b, "phased", _gather_memory(rng, table_entries),
                   mem_iters * 50 + compute_iters * 40 + 200,
                   "memory phase + compute phase (5-SimPoint analogue)")


def build_phased_memory_only(scale: float = 1.0,
                             seed: int = DEFAULT_SEED) -> Workload:
    """Just the memory phase: the 'single SimPoint' prior-work pick."""
    rng = make_rng(seed)
    table_entries = 1 << 14
    mem_iters = scaled(450, scale)
    b = ProgramBuilder()
    _emit_memory_phase(b, mem_iters, table_entries)
    return _finish(b, "phased_memory", _gather_memory(rng, table_entries),
                   mem_iters * 50 + 200,
                   "memory phase only (single-SimPoint analogue)")


def build_phased_compute_only(scale: float = 1.0,
                              seed: int = DEFAULT_SEED) -> Workload:
    """Just the compute phase (a SimPoint with nothing to accelerate)."""
    compute_iters = scaled(1800, scale)
    b = ProgramBuilder()
    _emit_compute_phase(b, compute_iters)
    return _finish(b, "phased_compute", {}, compute_iters * 40 + 200,
                   "compute phase only (non-memory SimPoint)")
