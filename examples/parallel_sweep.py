#!/usr/bin/env python3
"""An engine-backed sensitivity sweep: MSHRs x modes, in parallel.

The serial cousin of this script is examples/scaling_study.py, which
drives the Fig. 17 study through the figure driver. This one goes one
layer down and uses the experiment engine directly: it expands an
MSHR-scaling sweep into a flat job list, fans it out across worker
processes, and memoizes every point in the persistent result cache —
rerun the script and it completes in milliseconds with zero simulations.

Run:  python examples/parallel_sweep.py [scale] [jobs]

  scale  workload scale (default 0.3)
  jobs   worker processes (default: $REPRO_JOBS or 2)

See docs/harness.md for the job model and cache-key anatomy.
"""

import os
import sys

from repro.harness import Engine, Job, config_for_mode, geomean
from repro.harness.sweep import mshr_knob

BENCHMARKS = ("milc", "mcf", "astar")
MSHR_COUNTS = (4, 8, 16, 32)
MODES = ("baseline", "cdf")


def build_jobs(scale):
    """One job per (MSHR count, mode, benchmark) point."""
    jobs = []
    for count in MSHR_COUNTS:
        for mode in MODES:
            config = mshr_knob(config_for_mode(mode), count)
            for name in BENCHMARKS:
                jobs.append(Job(name, mode, scale=scale, config=config))
    return jobs


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.3
    workers = (int(sys.argv[2]) if len(sys.argv) > 2
               else int(os.environ.get("REPRO_JOBS", "2")))

    jobs = build_jobs(scale)
    print(f"{len(jobs)} jobs ({len(MSHR_COUNTS)} MSHR points x "
          f"{len(MODES)} modes x {len(BENCHMARKS)} benchmarks) on "
          f"{workers} workers ...")

    engine = Engine(jobs=workers,
                    progress=lambda line: print(f"  {line}"))
    flat = engine.run(jobs)

    # Reassemble (jobs come back in submission order) and reduce.
    print(f"\nCDF geomean speedup vs baseline at scale {scale}:")
    index = 0
    for count in MSHR_COUNTS:
        by_mode = {}
        for mode in MODES:
            by_mode[mode] = flat[index:index + len(BENCHMARKS)]
            index += len(BENCHMARKS)
        ratios = [cdf.speedup_over(base)
                  for base, cdf in zip(by_mode["baseline"],
                                       by_mode["cdf"])]
        print(f"  {count:3d} L1D MSHRs: {100 * (geomean(ratios) - 1):+6.1f}%")

    print(f"\n{engine.summary()}")
    print("Rerun this script: every point above becomes a cache hit.")


if __name__ == "__main__":
    main()
