#!/usr/bin/env python3
"""Marking hard-to-predict branches critical (paper Sec. 2.2 / 4.2).

Runs the branch-sensitive benchmarks (bzip, astar, mcf, soplex) with and
without critical-branch marking, reproducing the ablation the paper uses
to attribute part of CDF's speedup: 'Not marking these branches critical
... reduces the geomean speedup to 3.8%'.

Run:  python examples/branch_criticality.py [scale]
"""

import sys

from repro.config import SimConfig
from repro.harness import geomean, run_benchmark
from repro.harness.tables import percent, render_table
from repro.workloads import BRANCH_SENSITIVE


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    rows = []
    with_marks = {}
    without_marks = {}
    for name in BRANCH_SENSITIVE:
        base = run_benchmark(name, "baseline", scale=scale)
        cdf = run_benchmark(name, "cdf", scale=scale)
        no_branches_cfg = SimConfig.with_cdf()
        no_branches_cfg.cdf.mark_branches_critical = False
        no_branches = run_benchmark(name, "cdf", scale=scale,
                                    config=no_branches_cfg)
        with_marks[name] = cdf.speedup_over(base)
        without_marks[name] = no_branches.speedup_over(base)
        rows.append((name,
                     f"{1000 * base.counters['branch_mispredicts'] / base.retired_uops:.1f}",
                     percent(with_marks[name]),
                     percent(without_marks[name])))
    rows.append(("GEOMEAN", "",
                 percent(geomean(with_marks.values())),
                 percent(geomean(without_marks.values()))))
    print(render_table(
        "Critical-branch ablation on the branch-sensitive family",
        ("benchmark", "base MPKI", "CDF", "CDF w/o critical branches"),
        rows))
    print("\nMarking hard branches critical lets the critical fetch engine "
          "resolve them early and keep fetching critical loads past them "
          "(paper Sec. 2.2).")


if __name__ == "__main__":
    main()
