#!/usr/bin/env python3
"""Quickstart: run one benchmark under all three cores and compare.

This is the smallest end-to-end use of the library:

1. build a workload (program + initial memory) from the suite,
2. execute it functionally to get the dynamic uop trace,
3. replay the trace on the baseline, CDF, and Precise Runahead cores,
4. compare IPC / MLP / DRAM traffic / energy.

Run:  python examples/quickstart.py [benchmark] [scale]
"""

import sys

from repro.harness import run_benchmark
from repro.harness.tables import render_table
from repro.workloads import suite_names


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "astar"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5
    if name not in suite_names():
        raise SystemExit(f"unknown benchmark {name!r}; "
                         f"choose from: {', '.join(suite_names())}")

    print(f"Running '{name}' (scale {scale}) under baseline, CDF, PRE ...\n")
    results = {mode: run_benchmark(name, mode, scale=scale)
               for mode in ("baseline", "cdf", "pre")}

    base = results["baseline"]
    rows = []
    for mode, result in results.items():
        rows.append((
            mode,
            f"{result.ipc:.3f}",
            f"{result.ipc / base.ipc:.3f}x",
            f"{result.mlp:.2f}",
            f"{result.total_traffic}",
            f"{result.energy_nj / 1000:.1f} uJ",
        ))
    print(render_table(
        f"{name}: baseline vs CDF vs PRE",
        ("core", "IPC", "speedup", "MLP", "DRAM xfers", "energy"), rows))

    cdf = results["cdf"]
    print(f"\nCDF engaged for {cdf.counters['cdf_mode_cycles']} cycles "
          f"({cdf.counters['cdf_mode_entries']} mode entries), "
          f"fetched {cdf.counters['crit_fetch_uops']} uops critically, "
          f"with {cdf.counters['dependence_violations']} dependence "
          f"violations.")


if __name__ == "__main__":
    main()
