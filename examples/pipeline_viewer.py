#!/usr/bin/env python3
"""Watch CDF reorder the machine: a per-uop pipeline waterfall.

Runs a small slice of the astar kernel on the baseline and CDF cores with
event logging on, then renders a per-uop timeline. On the CDF core the
critical chain (index load -> gather -> branch) is fetched ('f') and
renamed ('d') far ahead of its program-order position, its loads execute
('=') while the non-critical stream is still catching up, and the rename
replay ('p') stitches the two streams back together.

Run:  python examples/pipeline_viewer.py [seq_window_start_iteration]
"""

import sys

from repro.cdf import CDFPipeline
from repro.config import SimConfig
from repro.core import BaselinePipeline
from repro.harness import load_workload
from repro.harness.timeline import first_seq_at_pc, render_timeline


def main() -> None:
    iteration = int(sys.argv[1]) if len(sys.argv) > 1 else 180
    workload = load_workload("astar", 0.3)
    trace = workload.trace()

    # Window: two loop iterations somewhere past CDF's training ramp.
    gather_pc = next(u.pc for u in trace
                     if u.is_load and u.mem_addr >= (1 << 26))
    instances = sum(1 for u in trace if u.pc == gather_pc)
    iteration = min(iteration, instances - 4)
    start = first_seq_at_pc(trace, gather_pc, occurrence=iteration)
    body = 95
    window = (start - 2, start - 2 + 2 * body)

    for mode, make in (
            ("BASELINE", lambda: BaselinePipeline(
                trace, SimConfig.baseline())),
            ("CDF", lambda: CDFPipeline(
                trace, SimConfig.with_cdf(), workload.program))):
        pipeline = make()
        pipeline.event_log = []
        pipeline.run()
        print(f"\n=== {mode} ===")
        print(render_timeline(pipeline.event_log, trace, *window))


if __name__ == "__main__":
    main()
