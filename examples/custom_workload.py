#!/usr/bin/env python3
"""Bring your own kernel: write assembly, run it under all three cores.

Shows the full public API surface below the benchmark suite: the text
assembler, the functional simulator, and direct pipeline construction
with a custom configuration. The kernel here is a tiny pointer-chase +
gather mix you can edit freely.

Run:  python examples/custom_workload.py
"""

import random

from repro.cdf import CDFPipeline
from repro.config import SimConfig
from repro.core import BaselinePipeline
from repro.harness.tables import render_table
from repro.isa import assemble, execute, trace_summary
from repro.runahead import PREPipeline

KERNEL = """
; r1 = iterations, r2 = index table, r3 = big array, r4 = i
    movi r1, 1200
    movi r2, 16777216
    movi r3, 67108864
    movi r4, 0
loop:
    and  r5, r4, 8191
    load r6, [r2 + r5*8]        ; idx = table[i & 8191]   (LLC resident)
    load r7, [r3 + r6*8]        ; big[idx]                (LLC miss)
    add  r8, r8, r7
    ; some non-critical work
    movi r20, 3
    add  r20, r20, 5
    mul  r21, r20, 7
    add  r22, r21, 9
    mul  r23, r22, 2
    add  r24, r23, 4
    add  r4, r4, 1
    sub  r1, r1, 1
    bnez r1, loop
    halt
"""


def main() -> None:
    program = assemble(KERNEL)
    rng = random.Random(1)
    memory = {16777216 + i * 8: rng.randrange(1 << 20) for i in range(8192)}

    trace = execute(program, memory, max_uops=200_000)
    print("kernel mix:", trace_summary(trace), "\n")

    base = BaselinePipeline(trace, SimConfig.baseline()).run()
    cdf = CDFPipeline(trace, SimConfig.with_cdf(), program).run()
    pre = PREPipeline(trace, SimConfig.with_pre(), program).run()

    rows = [(r.mode, f"{r.ipc:.3f}", f"{r.ipc / base.ipc:.3f}x",
             f"{r.mlp:.2f}", r.total_traffic)
            for r in (base, cdf, pre)]
    print(render_table("custom kernel under the three cores",
                       ("core", "IPC", "speedup", "MLP", "DRAM xfers"),
                       rows))

    # Try a different machine: halve the ROB.
    small = SimConfig.with_cdf()
    small.core = small.core.scaled(176)
    cdf_small = CDFPipeline(trace, small, program).run()
    print(f"\nCDF with a 176-entry ROB still reaches "
          f"{cdf_small.ipc / base.ipc:.3f}x of the 352-entry baseline "
          "(critical chains span more than the window).")


if __name__ == "__main__":
    main()
