#!/usr/bin/env python3
"""The paper's Fig. 2/3 motivation, reproduced end to end.

astar's inner loop loads an index from a (prefetchable) array and uses it
to access a large array that misses the LLC. On the baseline core the
ROB fills up with non-critical loop body work, holding only a few
instances of the critical load; CDF packs the critical chains instead.

This script shows all three paper motivations on the astar kernel:
  (a) MLP:    outstanding-miss parallelism grows under CDF;
  (b) branch: the hard bound-check branch resolves earlier;
  (c) window: the sequential span covered by in-flight critical loads
              exceeds the ROB size.

Run:  python examples/astar_motivation.py [scale]
"""

import sys

from repro.cdf import CDFPipeline
from repro.config import SimConfig
from repro.core import BaselinePipeline
from repro.harness import load_workload
from repro.harness.tables import render_table
from repro.stats import mark_critical_chains


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5
    workload = load_workload("astar", scale)
    trace = workload.trace()
    print(f"astar kernel: {len(trace)} dynamic uops\n")
    print("Inner loop (paper Fig. 2):")
    listing = workload.program.disassemble().splitlines()
    print("\n".join("  " + line for line in listing[:16]))
    print("  ...\n")

    base_cfg = SimConfig.baseline()
    base_cfg.stats_warmup_uops = workload.warmup_uops()
    base_pipe = BaselinePipeline(trace, base_cfg, benchmark="astar",
                                 profile_rob_stalls=True)
    base = base_pipe.run()

    cdf_cfg = SimConfig.with_cdf()
    cdf_cfg.stats_warmup_uops = workload.warmup_uops()
    cdf_pipe = CDFPipeline(trace, cdf_cfg, workload.program,
                           benchmark="astar")
    cdf = cdf_pipe.run()

    # Fig. 1-style breakdown for this kernel.
    roots = base_pipe.llc_miss_load_seqs + base_pipe.mispredicted_branch_seqs
    critical = mark_critical_chains(trace, roots)
    fraction = base_pipe.profiler.critical_fraction(critical)
    print(f"During baseline full-window stalls, only "
          f"{100 * fraction:.1f}% of ROB slots hold critical uops "
          f"(paper Fig. 1: the window is mostly non-critical work).\n")

    rows = [
        ("IPC", f"{base.ipc:.3f}", f"{cdf.ipc:.3f}",
         f"{cdf.ipc / base.ipc:.3f}x"),
        ("MLP", f"{base.mlp:.2f}", f"{cdf.mlp:.2f}",
         f"{cdf.mlp / max(base.mlp, 1e-9):.3f}x"),
        ("DRAM transfers", base.total_traffic, cdf.total_traffic,
         f"{cdf.traffic_ratio(base):.3f}x"),
        ("full-window stalls", base.full_window_stall_cycles,
         cdf.full_window_stall_cycles, ""),
    ]
    print(render_table("astar: baseline vs CDF (paper Fig. 3 effect)",
                       ("metric", "baseline", "CDF", "ratio"), rows))

    print(f"\nCritical fetch ran ahead through "
          f"{cdf.counters['crit_fetch_uops']} uops; "
          f"{cdf.counters['crit_fetch_blocked_on_critical_branch']} stalls "
          "waited on critical (early-resolving) branches vs "
          f"{cdf.counters['crit_fetch_blocked_on_noncritical_branch']} on "
          "non-critical ones.")


if __name__ == "__main__":
    main()
