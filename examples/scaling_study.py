#!/usr/bin/env python3
"""The Fig. 17 scaling study: is CDF worth its 3.2% area?

Sweeps ROB sizes (other window structures scaled proportionately) for
both a regular OoO core and a CDF core, then compares the CDF core at
352 entries against a scaled-up baseline: the paper reports the
area-equivalent scaled baseline gains only 3.7% IPC while consuming
2.5% more energy.

Run:  python examples/scaling_study.py [scale]
"""

import sys

from repro.energy import EnergyModel
from repro.config import SimConfig
from repro.harness import fig17_scaling, format_fig17


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.4
    if scale < 0.3:
        print(f"note: scale {scale} is too short for CDF's training "
              "structures to engage; using 0.3")
        scale = 0.3
    subset = ("astar", "milc", "nab", "lbm", "zeusmp", "sphinx")
    rob_sizes = (192, 256, 352, 512)
    print(f"Sweeping ROB sizes {rob_sizes} x {{baseline, CDF}} over "
          f"{subset} ...\n")
    data = fig17_scaling(rob_sizes=rob_sizes, names=subset, scale=scale)
    print(format_fig17(data))

    model = EnergyModel(SimConfig.with_cdf())
    overhead = model.cdf_area_overhead()
    base_352 = data["ipc"][(352, "baseline")]
    cdf_352 = data["ipc"][(352, "cdf")]
    base_512 = data["ipc"][(512, "baseline")]
    print(f"\nCDF area overhead: +{100 * overhead:.1f}% "
          "(paper: +3.2%).")
    print(f"CDF at 352 entries:        {100 * (cdf_352 / base_352 - 1):+.1f}% IPC")
    print(f"Baseline scaled to 512:    {100 * (base_512 / base_352 - 1):+.1f}% IPC "
          "(+45% window area)")
    print("\nThe CDF core extracts more of the window's value than simply "
          "buying a bigger window (paper Sec. 4.4).")


if __name__ == "__main__":
    main()
