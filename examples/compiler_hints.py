#!/usr/bin/env python3
"""Compiler-assisted CDF (the paper's future work, Sec. 6).

A profile-guided 'compiler pass' slices critical chains offline and emits
a hint artifact; preloading it into the Critical Uop Cache lets CDF mode
engage from cycle 0 instead of waiting for the first hardware training
interval (10k retired uops + 1200-cycle fill latency). On short runs the
difference is dramatic — exactly why the paper suggests it 'can help
reduce the hardware overhead and complexity of CDF significantly'.

Run:  python examples/compiler_hints.py [benchmark] [scale]
"""

import sys
import tempfile

from repro.cdf import CDFPipeline, StaticChainHints, preload_hints, \
    profile_chains
from repro.config import SimConfig
from repro.core import BaselinePipeline
from repro.harness import load_workload
from repro.harness.tables import render_table


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "astar"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.3
    workload = load_workload(name, scale)
    trace = workload.trace()

    print(f"Profiling {name} ({len(trace)} uops) to generate chain "
          "hints ...")
    hints = profile_chains(workload.program, trace, profile_uops=8000)
    print(f"  -> {len(hints)} basic blocks hinted, "
          f"{100 * hints.critical_fraction:.1f}% of profiled uops "
          "critical")

    # The artifact a compiler would ship next to the binary:
    with tempfile.NamedTemporaryFile(suffix=".hints.json",
                                     delete=False) as tmp:
        hints.save(tmp.name)
        print(f"  -> hint artifact written to {tmp.name}\n")
        hints = StaticChainHints.load(tmp.name)

    base = BaselinePipeline(trace, SimConfig.baseline()).run()
    plain = CDFPipeline(trace, SimConfig.with_cdf(), workload.program).run()
    hinted_pipe = CDFPipeline(trace, SimConfig.with_cdf(), workload.program)
    preload_hints(hinted_pipe, hints)
    hinted = hinted_pipe.run()

    rows = [
        ("baseline", f"{base.ipc:.3f}", "1.000x", "-"),
        ("CDF (hardware training only)", f"{plain.ipc:.3f}",
         f"{plain.ipc / base.ipc:.3f}x",
         plain.counters["cdf_mode_cycles"]),
        ("CDF + compiler hints", f"{hinted.ipc:.3f}",
         f"{hinted.ipc / base.ipc:.3f}x",
         hinted.counters["cdf_mode_cycles"]),
    ]
    print(render_table(f"{name}: compiler-assisted CDF",
                       ("configuration", "IPC", "speedup",
                        "CDF-mode cycles"), rows))


if __name__ == "__main__":
    main()
