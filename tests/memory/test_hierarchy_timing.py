"""Minimized regressions for the memory-hierarchy timing bugfixes (PR 5).

Each test here fails on the pre-fix ``MemoryHierarchy``:

1. *Prefetch instant-fill*: ``_issue_prefetch`` installs LLC tags at issue
   time, so a demand load to a line with an in-flight prefetch used to hit
   the tag store and complete at LLC latency — hiding the entire DRAM
   round trip.  Fixed: the LLC MSHRs are consulted before the tag store
   and the demand merges with the outstanding fill's completion.
2. *I-fetch MSHR bypass*: ``ifetch`` never consulted or allocated LLC
   MSHRs, so a same-line I-fetch miss while the fill was in flight either
   completed too early (tag hit) or issued duplicate DRAM traffic (tag
   evicted mid-flight).  Fixed: ifetch uses the same merge path as loads.
3. *Writeback at cycle 0 + dirty-line loss*: ``_fill_llc`` issued
   inclusive-eviction writebacks as ``dram.access(0, ...)`` (perturbing
   bank/bus state from the beginning of time) and back-invalidated a
   possibly-dirty L1D victim without writing it back.  Fixed: the real
   cycle is threaded through ``_fill_l1``/``_fill_llc`` and dirty L1D
   victims generate writeback traffic.

Plus property tests for the MSHR merge semantics all three fixes lean on.

Fingerprint note: the pinned suite fingerprints (scale 0.1 and 0.3,
baseline/cdf/pre) were re-checked after these fixes and did NOT shift —
the suite workloads at those scales almost never race a demand access
against an in-flight same-line LLC fill (probe: llc merge count is 0 for
every suite workload except lbm).  The fixes are therefore demonstrated
by the minimized unit tests below rather than by suite-level deltas; see
``test_hierarchy_fingerprints.py`` for the pinned end-to-end digests.
"""

import pytest

from repro.config import PrefetcherConfig, SimConfig
from repro.memory import MemoryHierarchy
from repro.memory.mshr import MSHRFile


def make_hierarchy(prefetch=False) -> MemoryHierarchy:
    cfg = SimConfig.baseline()
    cfg.prefetcher = PrefetcherConfig(enabled=prefetch)
    return MemoryHierarchy(cfg)


class DRAMRecorder:
    """Wrap ``dram.access`` and record every call's arguments."""

    def __init__(self, hierarchy: MemoryHierarchy) -> None:
        self.calls = []
        self._inner = hierarchy.dram.access

        def recording_access(cycle, line_addr, source="demand",
                             is_write=False, low_priority=False):
            self.calls.append((cycle, line_addr, source, is_write))
            return self._inner(cycle, line_addr, source=source,
                               is_write=is_write, low_priority=low_priority)

        hierarchy.dram.access = recording_access

    def by_source(self, source: str):
        return [c for c in self.calls if c[2] == source]


# ---------------------------------------------------------------------------
# Fix 1: demand load must merge with an in-flight prefetch, not hit tags.
# ---------------------------------------------------------------------------

def test_demand_load_merges_with_inflight_prefetch():
    h = make_hierarchy()
    line = h.line_of(0x40000)
    h._issue_prefetch(0, line)
    prefetch_completion = h.llc_mshrs.lookup(line)
    assert prefetch_completion is not None and prefetch_completion > 0

    result = h.load(1, 0x40000)
    assert result is not None
    # Pre-fix: tags hit -> level == "llc", completion == 1 + l1 + llc
    # latency, tens of cycles before the prefetched data exists.
    assert result.merged, "demand load must merge with the in-flight prefetch"
    assert result.level == "dram", "a merge behind DRAM is still an LLC miss"
    assert result.completion >= prefetch_completion, (
        f"load completed at {result.completion}, before the prefetch's "
        f"data arrives at {prefetch_completion} — prefetch hid DRAM latency")
    # The merge itself must not generate a second DRAM read.
    assert h.dram.reads["demand"] == 0
    assert h.dram.reads["prefetch"] == 1


def test_demand_merge_behind_prefetch_credits_usefulness_once():
    h = make_hierarchy()
    line = h.line_of(0x40000)
    h._issue_prefetch(0, line)
    h.load(1, 0x40000)
    assert h.prefetcher.useful == 1
    # After the fill lands, a plain L1 hit must not double-credit.
    done = h.llc_mshrs.lookup(line)
    if done is not None:
        h.load(done + 10, 0x40000)
    assert h.prefetcher.useful == 1


def test_prefetch_completion_reached_after_fill_lands():
    h = make_hierarchy()
    line = h.line_of(0x40000)
    h._issue_prefetch(0, line)
    prefetch_completion = h.llc_mshrs.lookup(line)
    # Once the fill has landed the line is a genuine LLC hit.
    late = h.load(prefetch_completion + 1, 0x40000)
    assert late.level in ("llc", "l1")
    assert not late.merged


# ---------------------------------------------------------------------------
# Fix 2: ifetch must use the same LLC-MSHR merge path as data loads.
# ---------------------------------------------------------------------------

def test_ifetch_merges_with_inflight_fill_not_tag_hit():
    h = make_hierarchy()
    pc_line = 7
    first = h.ifetch(0, pc_line)
    assert h.dram.reads["demand"] == 1
    outstanding = h.llc_mshrs.lookup(pc_line)
    assert outstanding == first, "ifetch miss must allocate an LLC MSHR"

    # The L1I copy conflicts out while the LLC fill is still in flight.
    h.l1i.invalidate(pc_line)
    second = h.ifetch(1, pc_line)
    # Pre-fix: LLC tag hit -> completes at 1 + l1i + llc latency, long
    # before the line's data arrives from DRAM.
    assert second >= first, (
        f"re-fetch completed at {second}, before the outstanding fill "
        f"arrives at {first}")
    assert h.dram.reads["demand"] == 1, "merge must not issue DRAM traffic"
    assert h.llc_mshrs.merges == 1


def test_ifetch_no_duplicate_dram_when_tag_evicted_midflight():
    h = make_hierarchy()
    pc_line = 7
    first = h.ifetch(0, pc_line)
    # Simulate a conflict eviction of both the L1I and LLC copies while
    # the fill is outstanding: only the MSHR entry remembers the miss.
    h.l1i.invalidate(pc_line)
    h.llc.invalidate(pc_line)
    second = h.ifetch(1, pc_line)
    # Pre-fix: tags miss everywhere -> a *second* full DRAM round trip
    # (reads == 2) serialized behind the first on the same bank.
    assert h.dram.reads["demand"] == 1, (
        "duplicate same-line ifetch miss must merge, not re-access DRAM")
    assert second >= first


def test_ifetch_merges_with_inflight_data_miss():
    h = make_hierarchy()
    line = h.line_of(0x40000)
    r = h.load(0, 0x40000)           # demand data miss -> LLC MSHR
    completion = h.ifetch(1, line)   # same line fetched as code
    assert completion >= r.completion
    assert h.dram.reads["demand"] == 1


def test_ifetch_merges_with_inflight_prefetch():
    h = make_hierarchy()
    pc_line = h.line_of(0x40000)
    h._issue_prefetch(0, pc_line)
    prefetch_completion = h.llc_mshrs.lookup(pc_line)
    completion = h.ifetch(1, pc_line)
    assert completion >= prefetch_completion
    assert h.dram.reads["demand"] == 0


def test_ifetch_after_fill_lands_is_llc_hit_latency():
    h = make_hierarchy()
    pc_line = 7
    first = h.ifetch(0, pc_line)
    h.l1i.invalidate(pc_line)
    again = h.ifetch(first + 1, pc_line)
    assert again == first + 1 + h.l1i.latency + h.llc.latency


# ---------------------------------------------------------------------------
# Fix 3: writebacks carry the real cycle; dirty L1D victims are written back.
# ---------------------------------------------------------------------------

def _conflicting_llc_lines(h: MemoryHierarchy, line: int, count: int):
    """Lines mapping to the same LLC set as *line* (and different tags)."""
    return [line + k * h.llc.num_sets for k in range(1, count + 1)]


def test_dirty_l1d_victim_written_back_on_llc_backinvalidate():
    h = make_hierarchy()
    rec = DRAMRecorder(h)
    h.store_commit(0, 0)             # line 0 dirty in L1D, clean in LLC
    line = h.line_of(0)
    assert h.l1d.probe(line)
    # Conflict-evict line 0 from the LLC; inclusion back-invalidates the
    # dirty L1D copy, which must generate a writeback (pre-fix: silently
    # dropped, because only the LLC copy's dirty bit was consulted).
    for conflict in _conflicting_llc_lines(h, line, h.llc.ways):
        h._fill_llc(5000, conflict)
    assert not h.llc.probe(line)
    assert not h.l1d.probe(line)
    writebacks = rec.by_source("writeback")
    assert len(writebacks) == 1, "dirty L1D victim must be written back"
    assert writebacks[0][3] is True  # is_write


def test_llc_eviction_writeback_uses_real_cycle_not_zero():
    h = make_hierarchy()
    rec = DRAMRecorder(h)
    h.store_commit(0, 0)
    line = h.line_of(0)
    # Propagate the dirty bit into the LLC by conflict-evicting the L1D
    # copy (dirty L1 victim -> llc.mark_dirty).
    for k in range(1, h.l1d.ways + 1):
        h._fill_l1(100, line + k * h.l1d.num_sets)
    assert not h.l1d.probe(line)
    # Now conflict-evict the dirty LLC copy at a late cycle.
    for conflict in _conflicting_llc_lines(h, line, h.llc.ways):
        h._fill_llc(5000, conflict)
    writebacks = rec.by_source("writeback")
    assert writebacks, "dirty LLC eviction must generate a writeback"
    for cycle, _, _, is_write in writebacks:
        assert is_write
        assert cycle >= 5000, (
            f"writeback issued at cycle {cycle}: pre-fix code issued all "
            f"inclusive-eviction writebacks at cycle 0, corrupting DRAM "
            f"bank/bus state from the beginning of time")


def test_clean_eviction_generates_no_writeback():
    h = make_hierarchy()
    rec = DRAMRecorder(h)
    line = 3
    h._fill_llc(10, line)
    for conflict in _conflicting_llc_lines(h, line, h.llc.ways):
        h._fill_llc(20, conflict)
    assert not h.llc.probe(line)
    assert rec.by_source("writeback") == []


def test_store_commit_merges_with_outstanding_llc_fill():
    h = make_hierarchy()
    h.load(0, 0x40000)               # miss in flight
    # Evict the (instant-tag) L1D copy so store_commit takes the slow path.
    line = h.line_of(0x40000)
    h.l1d.snoop_invalidate(line)
    h.llc.invalidate(line)
    h.store_commit(1, 0x40000)
    # The outstanding fill brings the data; no second DRAM trip (RFO).
    assert h.dram.reads["demand"] == 1


# ---------------------------------------------------------------------------
# MSHR merge-semantics property tests.
# ---------------------------------------------------------------------------

def test_mshr_merge_returns_allocated_completion():
    m = MSHRFile(4)
    m.allocate(0x10, 250, payload="demand")
    assert m.lookup(0x10) == 250
    assert m.payload(0x10) == "demand"
    assert m.merge(0x10) == 250
    assert m.merges == 1
    assert m.allocations == 1


def test_mshr_duplicate_allocate_raises():
    m = MSHRFile(4)
    m.allocate(0x10, 250)
    with pytest.raises(ValueError):
        m.allocate(0x10, 300)


def test_mshr_capacity_enforced():
    m = MSHRFile(2)
    m.allocate(1, 100)
    m.allocate(2, 100)
    assert not m.can_allocate()
    with pytest.raises(RuntimeError):
        m.allocate(3, 100)


def test_mshr_expiry_frees_entries_in_completion_order():
    m = MSHRFile(4)
    m.allocate(1, 100)
    m.allocate(2, 200)
    m.allocate(3, 150)
    m.expire(99)
    assert len(m) == 3
    m.expire(150)
    assert m.lookup(1) is None
    assert m.lookup(3) is None
    assert m.lookup(2) == 200
    assert m.next_expiry == 200
    m.expire(200)
    assert len(m) == 0
    assert m.next_expiry is None


def test_mshr_realloc_after_expiry_uses_new_completion():
    m = MSHRFile(2)
    m.allocate(5, 100)
    m.expire(100)
    m.allocate(5, 400)
    # The stale heap entry for completion=100 must not evict the new one.
    m.expire(101)
    assert m.lookup(5) == 400
    assert m.merge(5) == 400


def test_mshr_merge_property_random_interleaving():
    """Random allocate/expire/merge stream vs a naive reference model."""
    import random
    rng = random.Random(1234)
    m = MSHRFile(8)
    ref = {}                         # line -> completion
    for step in range(2000):
        cycle = step
        # Reference + real expiry.
        ref = {l: c for l, c in ref.items() if c > cycle}
        m.expire(cycle)
        line = rng.randrange(16)
        if line in ref:
            assert m.lookup(line) == ref[line]
            assert m.merge(line) == ref[line]
        else:
            assert m.lookup(line) is None
            if len(ref) < 8:
                completion = cycle + rng.randrange(1, 300)
                m.allocate(line, completion)
                ref[line] = completion
        assert len(m) == len(ref)
