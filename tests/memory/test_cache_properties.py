"""Property-based tests: the cache against a reference model."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.config import CacheConfig
from repro.memory import Cache

_LINE = st.integers(min_value=0, max_value=255)
_OPS = st.lists(
    st.tuples(st.sampled_from(["lookup", "fill", "invalidate", "dirty"]),
              _LINE),
    min_size=1, max_size=300)


def make_cache(ways=2, sets=4):
    return Cache(CacheConfig(size_bytes=ways * sets * 64, ways=ways,
                             latency=1))


class ReferenceLRU:
    """Dict-of-lists reference model for a set-associative LRU cache."""

    def __init__(self, ways, sets):
        self.ways = ways
        self.sets = sets
        self.contents = {i: [] for i in range(sets)}   # MRU at end

    def _set(self, line):
        return line % self.sets

    def lookup(self, line):
        bucket = self.contents[self._set(line)]
        if line in bucket:
            bucket.remove(line)
            bucket.append(line)
            return True
        return False

    def fill(self, line):
        bucket = self.contents[self._set(line)]
        if line in bucket:
            bucket.remove(line)
            bucket.append(line)
            return None
        evicted = None
        if len(bucket) == self.ways:
            evicted = bucket.pop(0)
        bucket.append(line)
        return evicted

    def invalidate(self, line):
        bucket = self.contents[self._set(line)]
        if line in bucket:
            bucket.remove(line)
            return True
        return False

    def resident(self):
        return {line for bucket in self.contents.values()
                for line in bucket}


@given(_OPS)
@settings(max_examples=120, deadline=None)
def test_cache_matches_reference_lru(ops):
    ways, sets = 2, 4
    cache = make_cache(ways, sets)
    ref = ReferenceLRU(ways, sets)
    for op, line in ops:
        if op == "lookup":
            assert cache.lookup(line) == ref.lookup(line)
        elif op == "fill":
            got = cache.fill(line)
            expected = ref.fill(line)
            if expected is None:
                assert got is None
            else:
                assert got is not None and got[0] == expected
        elif op == "invalidate":
            assert cache.invalidate(line) == ref.invalidate(line)
        else:  # dirty
            assert cache.mark_dirty(line) == (line in ref.resident())
    # Final contents agree.
    for line in range(256):
        assert cache.probe(line) == (line in ref.resident())


@given(_OPS)
@settings(max_examples=80, deadline=None)
def test_cache_capacity_never_exceeded(ops):
    ways, sets = 2, 4
    cache = make_cache(ways, sets)
    inserted = set()
    for op, line in ops:
        if op == "fill":
            cache.fill(line)
            inserted.add(line)
    resident = [line for line in range(256) if cache.probe(line)]
    assert len(resident) <= ways * sets
    assert set(resident) <= inserted


@given(_OPS)
@settings(max_examples=80, deadline=None)
def test_stats_identities(ops):
    cache = make_cache()
    for op, line in ops:
        if op == "lookup":
            cache.lookup(line)
        elif op == "fill":
            cache.fill(line)
    assert cache.accesses == cache.hits + cache.misses
    assert cache.dirty_evictions <= cache.evictions
    assert cache.useful_prefetches <= cache.prefetch_fills + cache.hits
