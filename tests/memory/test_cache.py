"""Unit tests for the set-associative cache model."""

import pytest

from repro.config import CacheConfig
from repro.memory import Cache


def small_cache(ways=2, sets=4, latency=2) -> Cache:
    cfg = CacheConfig(size_bytes=ways * sets * 64, ways=ways, latency=latency)
    return Cache(cfg, name="test")


def test_num_sets_must_be_power_of_two():
    cfg = CacheConfig(size_bytes=3 * 64, ways=1, latency=1)
    with pytest.raises(ValueError):
        Cache(cfg)


def test_miss_then_hit():
    c = small_cache()
    assert not c.lookup(0x100)
    c.fill(0x100)
    assert c.lookup(0x100)
    assert c.accesses == 2 and c.hits == 1 and c.misses == 1


def test_probe_does_not_touch_stats_or_lru():
    c = small_cache(ways=2, sets=1)
    c.fill(0)   # set 0
    c.fill(4)   # wait: with 1 set, every line maps to set 0
    # lines 0 and 4 both map to set 0 (mask == 0)
    assert c.probe(0) and c.probe(4)
    assert c.accesses == 0
    # probe must not refresh LRU: line 0 is still the LRU victim
    evicted = c.fill(8)
    assert evicted is not None and evicted[0] == 0


def test_lru_eviction_within_set():
    c = small_cache(ways=2, sets=4)
    # Three lines mapping to set 0: line addresses 0, 4, 8.
    c.fill(0)
    c.fill(4)
    c.lookup(0)          # make line 0 most recent
    evicted = c.fill(8)
    assert evicted == (4, False)
    assert c.probe(0) and c.probe(8) and not c.probe(4)


def test_dirty_eviction_reported():
    c = small_cache(ways=1, sets=1)
    c.fill(0, dirty=True)
    evicted = c.fill(1)
    assert evicted == (0, True)
    assert c.dirty_evictions == 1


def test_fill_existing_line_is_idempotent():
    c = small_cache()
    c.fill(0x10)
    assert c.fill(0x10) is None
    assert c.evictions == 0


def test_fill_existing_line_can_set_dirty():
    c = small_cache()
    c.fill(0x10)
    c.fill(0x10, dirty=True)
    evicted_line = None
    # force eviction of 0x10's set: with 2 ways need 2 more conflicting lines
    conflict1 = 0x10 + c.num_sets
    conflict2 = 0x10 + 2 * c.num_sets
    c.fill(conflict1)
    evicted = c.fill(conflict2)
    assert evicted == (0x10, True)


def test_mark_dirty():
    c = small_cache()
    assert not c.mark_dirty(0x99)
    c.fill(0x99)
    assert c.mark_dirty(0x99)


def test_invalidate():
    c = small_cache()
    c.fill(0x42)
    assert c.invalidate(0x42)
    assert not c.probe(0x42)
    assert not c.invalidate(0x42)


def test_prefetched_hit_feedback_flag():
    c = small_cache()
    c.fill(0x7, prefetched=True)
    assert c.prefetch_fills == 1
    assert c.lookup(0x7)
    assert c.last_hit_prefetched
    assert c.useful_prefetches == 1
    # Second hit: bit was consumed.
    assert c.lookup(0x7)
    assert not c.last_hit_prefetched
    assert c.useful_prefetches == 1


def test_miss_rate():
    c = small_cache()
    c.lookup(1)
    c.fill(1)
    c.lookup(1)
    assert c.miss_rate == pytest.approx(0.5)


def test_reset_stats():
    c = small_cache()
    c.lookup(1)
    c.fill(1, prefetched=True)
    c.reset_stats()
    assert c.accesses == 0 and c.prefetch_fills == 0
    assert c.probe(1)   # contents preserved


def test_distinct_sets_do_not_conflict():
    c = small_cache(ways=1, sets=4)
    for line in range(4):
        c.fill(line)
    for line in range(4):
        assert c.probe(line)
