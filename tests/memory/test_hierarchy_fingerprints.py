"""Pinned end-to-end SimResult fingerprints (post memory-timing bugfixes).

These digests were re-pinned after the PR-5 memory-hierarchy fixes
(prefetch instant-fill, ifetch MSHR bypass, cycle-0 writebacks /
dirty-L1D-victim loss — see ``test_hierarchy_timing.py``).  Probing the
suite showed the fixed paths are almost never exercised by the pinned
workloads at small scales (LLC merge count is 0 for every suite workload
except lbm at scale 0.3), so most digests are *unchanged* from the
pre-fix code; the pins exist so that any future change to memory timing,
stat plumbing, or result serialization shows up as an explicit diff here
rather than silently.

They are also the enforcement point for the ``obs_level=0`` bit-identity
contract: attaching the observability layer at level 0 must leave every
one of these digests untouched (the trace-smoke CI job re-asserts this
from the CLI side).

If a deliberate timing change shifts these, re-pin with::

    PYTHONPATH=src python - <<'EOF'
    from repro.harness import run_benchmark
    for name in ("astar", "mcf"):
        for mode in ("baseline", "cdf", "pre"):
            print(name, mode, run_benchmark(name, mode, scale=0.05)
                  .fingerprint())
    EOF

and explain the shift in the commit message.
"""

import pytest

from repro.config import SimConfig
from repro.harness import run_benchmark

PINS = {
    ("astar", "baseline"):
        "0f8ae37ddee109d5a4773f665779d9878a35aa012e5cf247f0648bebe06c9bc4",
    ("astar", "cdf"):
        "e137f70a5eb8819a1fc5001d0b8909bea31cfd278a5f089f3b90771f61761f10",
    ("astar", "pre"):
        "f28a1568d5abcecc6e0841c4d6d85b9a7ac54114a7f035c069c7552459f0f8b9",
    ("mcf", "baseline"):
        "92d80edbff8165fa504da587e0c740b256a465d7072db12ecfa66900be126341",
    ("mcf", "cdf"):
        "cb4683ef8f71e0b7fdf02d6e1fee7b24966f476957341884893425a8ae4a8e0e",
    ("mcf", "pre"):
        "940e3ad9002fb43e532a10d4ea8b69d9221ecd100e09681beb794b248c4b284a",
}

SCALE = 0.05


@pytest.mark.parametrize("name,mode", sorted(PINS))
def test_pinned_fingerprint(name, mode):
    result = run_benchmark(name, mode, scale=SCALE)
    assert result.fingerprint() == PINS[(name, mode)], (
        f"{name}/{mode} fingerprint shifted — if this is a deliberate "
        f"timing/serialization change, re-pin (see module docstring)")


@pytest.mark.parametrize("name,mode", sorted(PINS))
def test_obs_level_zero_is_bit_identical(name, mode):
    """obs_level=0 must not perturb results (hook-elision contract)."""
    result = run_benchmark(name, mode, scale=SCALE, obs_level=0)
    assert result.fingerprint() == PINS[(name, mode)]


def test_obs_level_knob_exists_and_defaults_off():
    cfg = SimConfig.baseline()
    assert cfg.obs_level == 0
