"""Corner-case tests for the memory hierarchy."""

from repro.config import PrefetcherConfig, SimConfig
from repro.memory import MemoryHierarchy


def make_hierarchy(prefetch=False):
    cfg = SimConfig.baseline()
    cfg.prefetcher = PrefetcherConfig(enabled=prefetch)
    return MemoryHierarchy(cfg)


def test_cold_ifetch_goes_to_dram_and_warms_all_levels():
    h = make_hierarchy()
    first = h.ifetch(0, pc_line=100)
    assert first > 40                       # DRAM round trip
    assert h.l1i.probe(100)
    assert h.llc.probe(100)
    second = h.ifetch(first + 1, pc_line=100)
    assert second == first + 1 + h.l1i.latency


def test_ifetch_llc_hit_path():
    h = make_hierarchy()
    # Warm the LLC with a data access to the same line.
    r = h.load(0, 100 * 64)
    # Evict from L1I impossible (never there); ifetch should hit LLC.
    t = h.ifetch(r.completion + 1, pc_line=100)
    assert t == r.completion + 1 + h.l1i.latency + h.llc.latency


def test_store_commit_hits_llc_without_dram():
    h = make_hierarchy()
    r = h.load(0, 0x9000)                   # warm LLC + L1
    # Evict from L1 with conflicting loads.
    line = h.line_of(0x9000)
    cycle = r.completion + 1
    for way in range(1, h.l1d.ways + 2):
        rr = h.load(cycle, (line + way * h.l1d.num_sets) * 64)
        if rr:
            cycle = rr.completion + 1
    reads_before = h.dram.total_reads
    h.store_commit(cycle, 0x9000)           # LLC hit: no RFO to DRAM
    assert h.dram.total_reads == reads_before


def test_load_to_dirty_line_after_writeback_cycle():
    h = make_hierarchy()
    h.store_commit(0, 0x4000)
    result = h.load(10, 0x4000)
    assert result.level == "l1"


def test_rewalking_warm_region_generates_no_demand_traffic():
    h = make_hierarchy(prefetch=True)
    # Pre-warm a run of lines.
    cycle = 0
    for i in range(12):
        r = h.load(cycle, i * 64)
        cycle = (r.completion if r else cycle) + 1
    demand_before = h.dram.reads["demand"]
    for i in range(12):
        result = h.load(cycle + 500 + i, i * 64)
        assert result.level in ("l1", "llc")
    # Resident lines are never re-fetched from DRAM (the prefetcher may
    # legitimately extend *forward* coverage, but demand stays quiet).
    assert h.dram.reads["demand"] == demand_before


def test_reset_stats_clears_everything():
    h = make_hierarchy(prefetch=True)
    for i in range(6):
        h.load(i, i * 64)
    h.store_commit(100, 0x8000)
    h.reset_stats()
    assert h.demand_loads == 0
    assert h.store_commits == 0
    assert h.prefetches_issued == 0
    assert h.dram.total_traffic == 0
    assert h.l1d.accesses == 0


def test_merged_llc_miss_attribution():
    h = make_hierarchy()
    first = h.load(0, 1 << 22)
    # Evict line from L1 quickly? Instead: second request to same line
    # while outstanding must merge and report llc_miss for training.
    second = h.load(1, (1 << 22) + 32)
    assert second.merged
    assert second.llc_miss
