"""Unit tests for the full memory hierarchy."""

import pytest

from repro.config import PrefetcherConfig, SimConfig
from repro.memory import MemoryHierarchy
from repro.stats import MLPTracker


def make_hierarchy(prefetch=False, mlp=None) -> MemoryHierarchy:
    cfg = SimConfig.baseline()
    cfg.prefetcher = PrefetcherConfig(enabled=prefetch)
    return MemoryHierarchy(cfg, mlp_tracker=mlp)


def test_cold_load_goes_to_dram():
    h = make_hierarchy()
    result = h.load(0, 0x10000)
    assert result is not None
    assert result.level == "dram"
    assert result.llc_miss
    assert result.completion > 40   # at least one DRAM round trip
    assert h.dram.reads["demand"] == 1


def test_second_load_hits_l1():
    h = make_hierarchy()
    first = h.load(0, 0x10000)
    second = h.load(first.completion + 1, 0x10000)
    assert second.level == "l1"
    assert second.completion == first.completion + 1 + h.l1d.latency


def test_same_line_outstanding_miss_merges():
    h = make_hierarchy()
    first = h.load(0, 0x10000)
    merged = h.load(1, 0x10000 + 8)   # same 64B line
    assert merged.merged
    assert merged.level == "dram"     # attribution: behind a DRAM fetch
    assert merged.completion >= first.completion
    assert h.dram.reads["demand"] == 1   # no extra traffic


def test_mshr_exhaustion_rejects():
    h = make_hierarchy()
    h.config.l1d.mshrs  # default 16
    rejected = 0
    for i in range(40):
        if h.load(0, i * 64 * 1024) is None:
            rejected += 1
    assert rejected > 0


def test_mshr_free_after_completion():
    h = make_hierarchy()
    results = []
    for i in range(16):
        results.append(h.load(0, i * 64 * 1024))
    assert h.load(0, 999 * 64 * 1024) is None
    latest = max(r.completion for r in results if r)
    again = h.load(latest + 1, 999 * 64 * 1024)
    assert again is not None


def test_llc_hit_path():
    h = make_hierarchy()
    first = h.load(0, 0x2000)
    # Evict from L1 by filling its set with conflicting lines.
    l1_sets = h.l1d.num_sets
    base_line = h.line_of(0x2000)
    cycle = first.completion + 1
    for way in range(1, h.l1d.ways + 2):
        conflict_addr = (base_line + way * l1_sets) * 64
        r = h.load(cycle, conflict_addr)
        cycle = max(cycle, r.completion) + 1 if r else cycle + 1
    assert not h.l1d.probe(base_line)
    assert h.llc.probe(base_line)
    again = h.load(cycle + 1000, 0x2000)
    assert again.level == "llc"
    assert not again.llc_miss


def test_store_commit_write_allocates_and_dirties():
    h = make_hierarchy()
    h.store_commit(0, 0x5000)
    line = h.line_of(0x5000)
    assert h.l1d.probe(line)
    assert h.dram.reads["demand"] == 1     # RFO fetch
    # A dirty line evicted all the way out generates writeback traffic at
    # the LLC level eventually; here just check the dirty bit via eviction.


def test_ifetch_hits_after_first_miss():
    h = make_hierarchy()
    first = h.ifetch(0, pc_line=4)
    second = h.ifetch(first + 1, pc_line=4)
    assert second == first + 1 + h.l1i.latency


def test_prefetcher_generates_llc_fills():
    h = make_hierarchy(prefetch=True)
    cycle = 0
    for i in range(8):
        r = h.load(cycle, i * 64)
        cycle = (r.completion if r else cycle) + 1
    assert h.dram.reads["prefetch"] > 0
    assert h.prefetches_issued > 0


def test_prefetched_line_hits_in_llc():
    h = make_hierarchy(prefetch=True)
    cycle = 0
    for i in range(6):
        r = h.load(cycle, i * 64)
        cycle = (r.completion if r else cycle) + 1
    # Lines just ahead of the stream should now be in the LLC.
    ahead = h.load(cycle + 500, 6 * 64)
    assert ahead.level in ("llc", "l1")


def test_mlp_tracker_records_overlapping_misses():
    tracker = MLPTracker()
    h = make_hierarchy(mlp=tracker)
    # Two independent far-apart lines at the same cycle: overlapping misses.
    h.load(0, 0)
    h.load(0, 8 * 1024 * 1024)
    assert tracker.intervals == 2
    assert tracker.mlp > 1.0


def test_writeback_traffic_on_dirty_llc_eviction():
    h = make_hierarchy()
    # Dirty a line, then stream enough lines through the LLC to evict it.
    h.store_commit(0, 0)
    llc_lines = h.llc.num_sets * h.llc.ways
    cycle = 100
    for i in range(1, llc_lines + h.llc.num_sets + 1):
        r = h.load(cycle, (i * h.llc.num_sets) * 64)
        if r:
            cycle = r.completion
    # not all mapped to same set; brute force more conflicting fills
    line0 = 0
    for i in range(1, h.llc.ways + 2):
        h.load(cycle + i, (line0 + i * h.llc.num_sets) * 64)
    assert h.dram.writes["writeback"] >= 0  # smoke: counter exists
