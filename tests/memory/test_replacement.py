"""Unit tests for replacement policies."""

import pytest

from repro.memory.replacement import (
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    make_policy,
)


def test_lru_evicts_least_recently_used():
    lru = LRUPolicy(4)
    for way in (0, 1, 2, 3):
        lru.on_access(way)
    assert lru.victim() == 0
    lru.on_access(0)
    assert lru.victim() == 1


def test_lru_hit_refreshes_recency():
    lru = LRUPolicy(2)
    lru.on_access(0)
    lru.on_access(1)
    lru.on_access(0)   # refresh way 0
    assert lru.victim() == 1


def test_fifo_ignores_hits():
    fifo = FIFOPolicy(2)
    fifo.on_access(0)
    fifo.on_access(1)
    fifo.on_access(0)  # hit should not change order
    assert fifo.victim() == 0
    assert fifo.victim() == 1
    assert fifo.victim() == 0


def test_random_is_seeded_and_in_range():
    a = RandomPolicy(8, seed=7)
    b = RandomPolicy(8, seed=7)
    seq_a = [a.victim() for _ in range(20)]
    seq_b = [b.victim() for _ in range(20)]
    assert seq_a == seq_b
    assert all(0 <= v < 8 for v in seq_a)


def test_factory():
    assert isinstance(make_policy("lru", 4), LRUPolicy)
    assert isinstance(make_policy("fifo", 4), FIFOPolicy)
    assert isinstance(make_policy("random", 4), RandomPolicy)
    with pytest.raises(ValueError):
        make_policy("plru", 4)
